//! Optimal distribution of the per-round query budget across drill-down
//! *age groups* — Corollaries 4.1 and 4.3 of the paper.
//!
//! At round `R_j`, drill-downs are grouped by the round `R_x` in which they
//! were last updated. Updating `c_x` drill-downs of group `x` yields a
//! group estimate with variance
//!
//! ```text
//! v_x(c_x) = α_x / c_x + β_x
//! ```
//!
//! where `α_x` is the per-drill-down variance of the change term and `β_x`
//! the irreducible variance inherited from the group's historic base
//! estimate (equations 38–40). Fresh drill-downs have `β = 0`. The round
//! estimate combines groups by inverse variance (Corollary 4.2), so the
//! allocator maximises `Σ_x 1/v_x(c_x)` subject to `Σ_x g_x·c_x ≤ G` and
//! `0 ≤ c_x ≤ cap_x`.
//!
//! ## Implementation note (deviation from the paper)
//!
//! Equation (41) as printed in the paper is dimensionally inconsistent; we
//! instead solve the KKT conditions of the (concave) program directly with
//! a water-filling search over the Lagrange multiplier λ:
//!
//! * `β_x > 0`:  `c_x(λ) = clamp((√(α_x/(λ g_x)) − α_x)/β_x, 0, cap_x)`
//! * `β_x = 0`:  bang-bang at value rate `1/(α_x g_x)`
//!
//! Total spend is non-increasing in λ, so a bisection finds the budget-
//! binding multiplier. On the two-group instance of Corollary 4.1 this
//! reproduces equation (34) exactly (tested), and on the mixed case it
//! reproduces equation (43).

/// Parameters of one age group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupParams {
    /// Per-drill-down variance of the group's change/estimate term (`α_x`).
    pub alpha: f64,
    /// Irreducible variance from the historic base estimate (`β_x`); 0 for
    /// fresh drill-downs.
    pub beta: f64,
    /// Expected query cost per drill-down (`g_x`), > 0.
    pub cost: f64,
    /// Drill-downs available in this group (`h_x`); `f64::INFINITY` for the
    /// fresh group.
    pub cap: f64,
}

impl GroupParams {
    /// Convenience constructor.
    pub fn new(alpha: f64, beta: f64, cost: f64, cap: f64) -> Self {
        Self { alpha, beta, cost, cap }
    }
}

/// Floor applied to `α` so a lucky pilot sample that saw zero change cannot
/// claim an exact (zero-variance) update path.
pub const ALPHA_FLOOR: f64 = 1e-12;

/// Combined estimation variance for an allocation (equation 37):
/// `1 / Σ_{c_x>0} 1/(α_x/c_x + β_x)`; infinite if nothing is allocated.
pub fn combined_variance(groups: &[GroupParams], alloc: &[f64]) -> f64 {
    let mut inv = 0.0;
    for (g, &c) in groups.iter().zip(alloc) {
        if c > 0.0 {
            inv += 1.0 / (g.alpha.max(ALPHA_FLOOR) / c + g.beta);
        }
    }
    if inv == 0.0 {
        f64::INFINITY
    } else {
        1.0 / inv
    }
}

/// Allocates the budget `g_total` across groups, returning fractional
/// drill-down counts `c_x` (callers round / pool as Algorithm 2 does).
///
/// Groups with non-positive cost or cap receive 0.
pub fn allocate(groups: &[GroupParams], g_total: f64) -> Vec<f64> {
    let n = groups.len();
    let mut alloc = vec![0.0; n];
    if g_total <= 0.0 || n == 0 {
        return alloc;
    }
    // Effective caps: can't exceed budget / cost either.
    let caps: Vec<f64> = groups
        .iter()
        .map(|g| if g.cost <= 0.0 || g.cap <= 0.0 { 0.0 } else { g.cap.min(g_total / g.cost) })
        .collect();

    let alloc_at = |lambda: f64, alloc: &mut [f64]| {
        for (i, g) in groups.iter().enumerate() {
            if caps[i] == 0.0 {
                alloc[i] = 0.0;
                continue;
            }
            let alpha = g.alpha.max(ALPHA_FLOOR);
            alloc[i] = if g.beta > 0.0 {
                let c = ((alpha / (lambda * g.cost)).sqrt() - alpha) / g.beta;
                c.clamp(0.0, caps[i])
            } else {
                // Bang-bang: worth funding iff marginal value exceeds λ.
                if 1.0 / (alpha * g.cost) >= lambda {
                    caps[i]
                } else {
                    0.0
                }
            };
        }
    };
    let spend =
        |alloc: &[f64]| -> f64 { alloc.iter().zip(groups).map(|(&c, g)| c * g.cost).sum::<f64>() };

    // λ → 0⁺ maximises spend. If even that fits the budget, take it.
    let mut lo = 1e-300;
    alloc_at(lo, &mut alloc);
    if spend(&alloc) <= g_total {
        return alloc;
    }
    // Find an upper λ with zero spend.
    let mut hi = groups
        .iter()
        .enumerate()
        .filter(|(i, _)| caps[*i] > 0.0)
        .map(|(_, g)| 1.0 / (g.alpha.max(ALPHA_FLOOR) * g.cost))
        .fold(0.0f64, f64::max)
        * 4.0
        + 1.0;
    for _ in 0..200 {
        let mid = (lo * hi).sqrt(); // log-scale bisection: λ spans decades
        alloc_at(mid, &mut alloc);
        if spend(&alloc) > g_total {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi / lo < 1.0 + 1e-12 {
            break;
        }
    }
    alloc_at(hi, &mut alloc);
    // hi under-spends slightly; top up the best β=0 group with leftovers
    // (they absorb fractional budget without changing the KKT structure).
    let leftover = g_total - spend(&alloc);
    if leftover > 0.0 {
        if let Some((i, g)) =
            groups.iter().enumerate().filter(|(i, g)| g.beta == 0.0 && caps[*i] > alloc[*i]).min_by(
                |(_, a), (_, b)| {
                    (a.alpha * a.cost)
                        .partial_cmp(&(b.alpha * b.cost))
                        .unwrap_or(std::cmp::Ordering::Equal)
                },
            )
        {
            alloc[i] = (alloc[i] + leftover / g.cost).min(caps[i]);
        }
    }
    alloc
}

/// Closed-form `h_1` of Corollary 4.1 (equation 34): the number of
/// round-1 drill-downs to update in round 2.
///
/// * `h` — drill-downs performed in round 1;
/// * `g_c`, `g_d` — query cost per updated / new drill-down;
/// * `sigma_c2` — per-drill-down variance of the change estimate (`σ_c²`);
/// * `sigma_d2` — per-drill-down variance of a new drill-down (`σ_d²`);
/// * `sigma_12` — per-drill-down variance of the round-1 estimate (`σ_1²`);
/// * `g_total` — the round budget `G`.
pub fn corollary_4_1(
    h: f64,
    g_c: f64,
    g_d: f64,
    sigma_c2: f64,
    sigma_d2: f64,
    sigma_12: f64,
    g_total: f64,
) -> f64 {
    let sigma_c2 = sigma_c2.max(ALPHA_FLOOR);
    let inner = (g_d * sigma_d2 * sigma_c2 / g_c).sqrt() - sigma_c2;
    let candidate = h * inner / sigma_12;
    candidate.max(0.0).min((g_total / g_c).min(h))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spend(groups: &[GroupParams], alloc: &[f64]) -> f64 {
        alloc.iter().zip(groups).map(|(&c, g)| c * g.cost).sum()
    }

    #[test]
    fn respects_budget_and_caps() {
        let groups = [
            GroupParams::new(4.0, 0.5, 2.0, 10.0),
            GroupParams::new(9.0, 0.0, 3.0, f64::INFINITY),
            GroupParams::new(1.0, 0.2, 1.0, 3.0),
        ];
        let g_total = 30.0;
        let alloc = allocate(&groups, g_total);
        assert!(spend(&groups, &alloc) <= g_total + 1e-6);
        for (c, g) in alloc.iter().zip(&groups) {
            assert!(*c >= 0.0 && *c <= g.cap + 1e-9);
        }
        // Budget should be (nearly) fully used: a β=0 group absorbs slack.
        assert!(spend(&groups, &alloc) > g_total - 1e-3);
    }

    #[test]
    fn all_beta_zero_winner_takes_all() {
        // Corollary 4.3's first case: fund only the group minimising α·g.
        let groups = [
            GroupParams::new(2.0, 0.0, 3.0, f64::INFINITY), // α·g = 6
            GroupParams::new(1.0, 0.0, 4.0, f64::INFINITY), // α·g = 4 ← winner
            GroupParams::new(5.0, 0.0, 1.0, f64::INFINITY), // α·g = 5
        ];
        let alloc = allocate(&groups, 40.0);
        assert!(alloc[1] > 0.0);
        assert!((alloc[1] - 10.0).abs() < 1e-6, "c = G/g = 10, got {}", alloc[1]);
        assert_eq!(alloc[0], 0.0);
        assert_eq!(alloc[2], 0.0);
    }

    #[test]
    fn matches_corollary_4_1_closed_form() {
        // Two groups: updates (α=σc², β=σ1²/h, cost gc, cap h) and fresh
        // (α=σd², β=0, cost gd, cap ∞).
        let (h, g_c, g_d) = (50.0, 2.0, 5.0);
        let (sigma_c2, sigma_d2, sigma_12) = (3.0, 40.0, 35.0);
        let g_total = 200.0;
        let groups = [
            GroupParams::new(sigma_c2, sigma_12 / h, g_c, h),
            GroupParams::new(sigma_d2, 0.0, g_d, f64::INFINITY),
        ];
        let alloc = allocate(&groups, g_total);
        let h1 = corollary_4_1(h, g_c, g_d, sigma_c2, sigma_d2, sigma_12, g_total);
        assert!(h1 > 0.0 && h1 < h, "fixture should land interior, h1={h1}");
        assert!(
            (alloc[0] - h1).abs() < 1e-3 * h1.max(1.0),
            "waterfilling {} vs closed form {h1}",
            alloc[0]
        );
        assert!((spend(&groups, &alloc) - g_total).abs() < 1e-3);
    }

    #[test]
    fn no_change_means_no_updates() {
        // σc² ≈ 0 (database unchanged): everything goes to fresh
        // drill-downs — the Corollary 4.1 discussion in §4.2.
        let groups = [
            GroupParams::new(0.0, 1.0, 2.0, 100.0),
            GroupParams::new(50.0, 0.0, 5.0, f64::INFINITY),
        ];
        let alloc = allocate(&groups, 100.0);
        assert!(alloc[0] < 1e-3, "near-zero updates, got {}", alloc[0]);
        assert!((alloc[1] - 20.0).abs() < 1e-3);
    }

    #[test]
    fn drastic_change_updates_everything_possible() {
        // σc² ≈ σd² ≈ σ1² and gd > gc: updating dominates (§4.2:
        // "exactly like what REISSUE-ESTIMATOR would do").
        let s = 25.0;
        let h = 30.0;
        let groups =
            [GroupParams::new(s, s / h, 2.0, h), GroupParams::new(s, 0.0, 6.0, f64::INFINITY)];
        let alloc = allocate(&groups, 200.0);
        // h1 = min(G/gc, h, h(√(gd/gc)−1)) = min(100, 30, 30·0.732) = 21.96
        let expect = h * ((6.0f64 / 2.0).sqrt() - 1.0);
        assert!((alloc[0] - expect).abs() < 0.1, "expected ≈{expect}, got {}", alloc[0]);
    }

    #[test]
    fn allocation_is_locally_optimal() {
        // Move ε of budget between any funded pair: variance must not drop.
        let groups = [
            GroupParams::new(4.0, 0.3, 2.0, 40.0),
            GroupParams::new(12.0, 0.0, 4.0, f64::INFINITY),
            GroupParams::new(2.0, 0.8, 1.5, 25.0),
        ];
        let g_total = 120.0;
        let alloc = allocate(&groups, g_total);
        let base = combined_variance(&groups, &alloc);
        let eps = 0.05;
        for i in 0..groups.len() {
            for j in 0..groups.len() {
                if i == j {
                    continue;
                }
                let mut perturbed = alloc.clone();
                let dc_i = eps / groups[i].cost;
                let dc_j = eps / groups[j].cost;
                if perturbed[i] < dc_i || perturbed[j] + dc_j > groups[j].cap {
                    continue;
                }
                perturbed[i] -= dc_i;
                perturbed[j] += dc_j;
                let v = combined_variance(&groups, &perturbed);
                assert!(
                    v >= base - 1e-7 * base,
                    "moving budget {i}→{j} improved variance: {base} → {v}"
                );
            }
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(allocate(&[], 10.0).is_empty());
        let g = [GroupParams::new(1.0, 0.0, 1.0, f64::INFINITY)];
        assert_eq!(allocate(&g, 0.0), vec![0.0]);
        assert_eq!(allocate(&g, -5.0), vec![0.0]);
        // Zero-cost and zero-cap groups get nothing.
        let g = [
            GroupParams::new(1.0, 0.0, 0.0, f64::INFINITY),
            GroupParams::new(1.0, 0.0, 1.0, 0.0),
            GroupParams::new(1.0, 0.0, 1.0, f64::INFINITY),
        ];
        let alloc = allocate(&g, 10.0);
        assert_eq!(alloc[0], 0.0);
        assert_eq!(alloc[1], 0.0);
        assert!((alloc[2] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn small_budget_still_respected() {
        let groups = [
            GroupParams::new(4.0, 0.5, 7.0, 10.0),
            GroupParams::new(9.0, 0.0, 11.0, f64::INFINITY),
        ];
        let alloc = allocate(&groups, 5.0);
        assert!(spend(&groups, &alloc) <= 5.0 + 1e-9);
    }

    #[test]
    fn corollary_4_1_clamps() {
        // Negative inner term → 0.
        let h1 = corollary_4_1(10.0, 1.0, 1.0, 100.0, 0.01, 1.0, 50.0);
        assert_eq!(h1, 0.0);
        // Huge inner term → min(G/gc, h).
        let h1 = corollary_4_1(10.0, 1.0, 100.0, 10.0, 1000.0, 0.001, 50.0);
        assert_eq!(h1, 10.0);
        let h1 = corollary_4_1(1000.0, 1.0, 100.0, 10.0, 1000.0, 0.001, 50.0);
        assert_eq!(h1, 50.0);
    }
}
