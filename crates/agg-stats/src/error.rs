//! Accuracy metrics used throughout the paper's evaluation (§6.1):
//! relative error, MSE decomposition, and per-round series summaries
//! across repeated trials.

use crate::moments::RunningMoments;

/// `|θ̃ − θ| / |θ|`, the paper's accuracy measure. When the ground truth is
/// zero, returns 0 for an exact estimate and ∞ otherwise (the convention
/// that keeps the metric monotone; the paper's workloads never hit θ = 0).
/// [`SeriesSummary`] excludes such non-finite values from its means and
/// counts them separately, so one θ = 0 round cannot poison a series.
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        return if estimate == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (estimate - truth).abs() / truth.abs()
}

/// Decomposition `MSE = bias² + variance` (equation 1) computed from a set
/// of independent estimates of a known ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MseDecomposition {
    /// `E[θ̃] − θ`.
    pub bias: f64,
    /// Variance of the estimates (population).
    pub variance: f64,
    /// `bias² + variance`.
    pub mse: f64,
}

/// Computes the MSE decomposition of `estimates` against `truth`.
/// Returns `None` for an empty slice.
pub fn mse_decomposition(estimates: &[f64], truth: f64) -> Option<MseDecomposition> {
    let m = RunningMoments::from_slice(estimates);
    let mean = m.mean()?;
    let variance = m.population_variance()?;
    let bias = mean - truth;
    Some(MseDecomposition { bias, variance, mse: bias * bias + variance })
}

/// Accumulates one metric across trials for each point of a series (e.g.
/// relative error per round, across 20 seeded trials).
///
/// Non-finite observations (±∞ from [`relative_error`] against a zero
/// truth, NaN from a degraded round) are *not* folded into the moments —
/// a single ∞ would otherwise poison the point's mean forever. They are
/// instead tallied per point in a [`non_finite`](Self::non_finite)
/// counter so the caller can still see that something went wrong.
#[derive(Debug, Clone, Default)]
pub struct SeriesSummary {
    points: Vec<RunningMoments>,
    non_finite: Vec<u64>,
}

impl SeriesSummary {
    /// An empty summary with `len` points.
    pub fn new(len: usize) -> Self {
        Self { points: vec![RunningMoments::new(); len], non_finite: vec![0; len] }
    }

    /// Number of points in the series.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Records one trial's value at `point`. Non-finite values are counted
    /// in [`non_finite`](Self::non_finite) instead of entering the moments.
    pub fn record(&mut self, point: usize, value: f64) {
        if value.is_finite() {
            self.points[point].push(value);
        } else {
            self.non_finite[point] += 1;
        }
    }

    /// Records a whole trial (one value per point; length must match).
    pub fn record_trial(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.points.len(), "trial length mismatch");
        for (i, &v) in values.iter().enumerate() {
            self.record(i, v);
        }
    }

    /// Number of non-finite observations discarded at `point`.
    pub fn non_finite(&self, point: usize) -> u64 {
        self.non_finite[point]
    }

    /// Total non-finite observations discarded across all points.
    pub fn total_non_finite(&self) -> u64 {
        self.non_finite.iter().sum()
    }

    /// Mean at `point` (NaN if nothing recorded — keeps CSV columns
    /// aligned).
    pub fn mean(&self, point: usize) -> f64 {
        self.points[point].mean().unwrap_or(f64::NAN)
    }

    /// Sample standard deviation at `point` (0 with < 2 trials).
    pub fn std(&self, point: usize) -> f64 {
        self.points[point].sample_variance().map(f64::sqrt).unwrap_or(0.0)
    }

    /// Means of all points.
    pub fn means(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.mean(i)).collect()
    }

    /// Sample standard deviations of all points.
    pub fn stds(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.std(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basics() {
        assert_eq!(relative_error(110.0, 100.0), 0.1);
        assert_eq!(relative_error(90.0, 100.0), 0.1);
        assert_eq!(relative_error(-50.0, -100.0), 0.5);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn mse_decomposes() {
        // Estimates 9, 11 of truth 8: mean 10, bias 2, variance 1.
        let d = mse_decomposition(&[9.0, 11.0], 8.0).unwrap();
        assert!((d.bias - 2.0).abs() < 1e-12);
        assert!((d.variance - 1.0).abs() < 1e-12);
        assert!((d.mse - 5.0).abs() < 1e-12);
        assert!(mse_decomposition(&[], 1.0).is_none());
    }

    #[test]
    fn series_summary_accumulates_trials() {
        let mut s = SeriesSummary::new(3);
        s.record_trial(&[1.0, 2.0, 3.0]);
        s.record_trial(&[3.0, 2.0, 1.0]);
        assert_eq!(s.means(), vec![2.0, 2.0, 2.0]);
        assert!((s.std(0) - (2.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.std(1), 0.0);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn unrecorded_points_are_nan() {
        let mut s = SeriesSummary::new(2);
        s.record(0, 1.0);
        assert_eq!(s.mean(0), 1.0);
        assert!(s.mean(1).is_nan());
        assert_eq!(s.std(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "trial length mismatch")]
    fn mismatched_trial_panics() {
        let mut s = SeriesSummary::new(2);
        s.record_trial(&[1.0]);
    }

    /// Regression: one ∞ (e.g. `relative_error` against a zero truth) or
    /// NaN used to poison the point's mean for every later trial. Now it
    /// is skipped and tallied.
    #[test]
    fn non_finite_values_are_skipped_and_counted() {
        let mut s = SeriesSummary::new(2);
        s.record_trial(&[1.0, relative_error(1.0, 0.0)]); // point 1 gets ∞
        s.record_trial(&[3.0, 4.0]);
        s.record(1, f64::NAN);
        s.record(1, f64::NEG_INFINITY);
        assert_eq!(s.means(), vec![2.0, 4.0], "finite data unaffected by ∞/NaN");
        assert_eq!(s.non_finite(0), 0);
        assert_eq!(s.non_finite(1), 3);
        assert_eq!(s.total_non_finite(), 3);
        assert!(s.std(1).is_finite());
    }
}
