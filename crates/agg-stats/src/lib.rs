//! # agg-stats — the statistical toolkit behind RS-ESTIMATOR
//!
//! Self-contained (no dependency on the database substrate) implementations
//! of the statistics used by *Aggregate Estimation Over Dynamic Hidden Web
//! Databases*:
//!
//! * [`moments`] — Welford running moments with Bessel-corrected sample
//!   variance (the paper's §4.2 variance plug-ins);
//! * [`weighted`] — inverse-variance combination of unbiased estimators
//!   (Theorem 4.2 / Corollary 4.2);
//! * [`allocation`] — optimal query-budget distribution across drill-down
//!   age groups (Corollaries 4.1 and 4.3), solved by water-filling;
//! * [`bootstrap`] — pilot drill-down summaries (`g_x`, `α_x`);
//! * [`error`] — relative error, MSE decomposition, and trial series
//!   summaries for the experiment harness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod allocation;
pub mod bootstrap;
pub mod error;
pub mod moments;
pub mod quantiles;
pub mod weighted;

pub use allocation::{allocate, combined_variance, corollary_4_1, GroupParams};
pub use bootstrap::PilotGroup;
pub use error::{mse_decomposition, relative_error, MseDecomposition, SeriesSummary};
pub use moments::RunningMoments;
pub use quantiles::P2Quantile;
pub use weighted::{combine, optimal_two_weight, Combined, Component};
