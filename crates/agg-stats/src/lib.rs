//! # agg-stats — the statistical toolkit behind RS-ESTIMATOR
//!
//! Self-contained (no dependency on the database substrate) implementations
//! of the statistics used by *Aggregate Estimation Over Dynamic Hidden Web
//! Databases*:
//!
//! * [`moments`] — Welford running moments with Bessel-corrected sample
//!   variance (the paper's §4.2 variance plug-ins);
//! * [`weighted`] — inverse-variance combination of unbiased estimators
//!   (Theorem 4.2 / Corollary 4.2);
//! * [`allocation`] — optimal query-budget distribution across drill-down
//!   age groups (Corollaries 4.1 and 4.3), solved by water-filling;
//! * [`pilot`] — pilot drill-down summaries (`g_x`, `α_x`; the paper's
//!   "bootstrapping" phase, which is not a statistical bootstrap);
//! * [`resample`] — the statistical bootstrap: n-out-of-n, m-out-of-n and
//!   moving-block resampling with percentile confidence intervals,
//!   deterministically parallel across replicates;
//! * [`error`] — relative error, MSE decomposition, and trial series
//!   summaries for the experiment harness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod allocation;
pub mod error;
pub mod moments;
pub mod pilot;
pub mod quantiles;
pub mod resample;
pub mod weighted;

/// Deprecated alias for [`pilot`]: the module held the paper's §4.2–4.3
/// *pilot-sample* accumulator, not a statistical bootstrap. The name now
/// belongs to the resampling engine in [`resample`].
#[deprecated(note = "renamed to `pilot`; the statistical bootstrap lives in `resample`")]
pub mod bootstrap {
    pub use crate::pilot::PilotGroup;
}

pub use allocation::{allocate, combined_variance, corollary_4_1, GroupParams};
pub use error::{mse_decomposition, relative_error, MseDecomposition, SeriesSummary};
pub use moments::RunningMoments;
pub use pilot::PilotGroup;
pub use quantiles::{nearest_rank_index, P2Quantile};
pub use resample::{Bootstrap, ConfidenceInterval, Replicates, Variant};
pub use weighted::{combine, optimal_two_weight, Combined, Component};
