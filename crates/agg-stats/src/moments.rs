//! Numerically stable running moments (Welford's algorithm).

/// Streaming mean/variance accumulator.
///
/// Uses Welford's online update, so it is stable even when values are large
/// and close together (e.g. Horvitz–Thompson estimates in the 1e5 range
/// differing by a few units).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMoments {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningMoments {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an accumulator from a slice.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut m = Self::new();
        for &v in values {
            m.push(v);
        }
        m
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; `None` if no observations.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Bessel-corrected sample variance (divides by `n−1`); `None` for
    /// fewer than two observations. This is the correction the paper
    /// invokes (§4.2, ref \[23\]) to de-bias the plug-in variance estimates.
    pub fn sample_variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Population variance (divides by `n`); `None` if empty.
    pub fn population_variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// Variance of the sample mean: `sample_variance / n`.
    pub fn variance_of_mean(&self) -> Option<f64> {
        self.sample_variance().map(|v| v / self.n as f64)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Self) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn empty_and_single() {
        let mut m = RunningMoments::new();
        assert_eq!(m.mean(), None);
        assert_eq!(m.sample_variance(), None);
        m.push(5.0);
        assert_eq!(m.mean(), Some(5.0));
        assert_eq!(m.sample_variance(), None);
        assert_eq!(m.population_variance(), Some(0.0));
    }

    #[test]
    fn matches_two_pass_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let m = RunningMoments::from_slice(&xs);
        assert!(close(m.mean().unwrap(), 5.0));
        assert!(close(m.population_variance().unwrap(), 4.0));
        assert!(close(m.sample_variance().unwrap(), 32.0 / 7.0));
        assert!(close(m.variance_of_mean().unwrap(), 32.0 / 7.0 / 8.0));
    }

    #[test]
    fn stable_for_large_offsets() {
        let base = 1e12;
        let xs: Vec<f64> = (0..100).map(|i| base + (i % 5) as f64).collect();
        let m = RunningMoments::from_slice(&xs);
        // Exact variance of the pattern 0,1,2,3,4 repeated: 2.0 (population).
        assert!((m.population_variance().unwrap() - 2.0).abs() < 1e-3);
    }

    #[test]
    fn merge_equals_bulk() {
        let xs = [1.0, 2.0, 3.0, 10.0, -4.0];
        let ys = [7.0, 0.5];
        let mut a = RunningMoments::from_slice(&xs);
        let b = RunningMoments::from_slice(&ys);
        a.merge(&b);
        let all: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        let bulk = RunningMoments::from_slice(&all);
        assert_eq!(a.count(), bulk.count());
        assert!(close(a.mean().unwrap(), bulk.mean().unwrap()));
        assert!(close(a.sample_variance().unwrap(), bulk.sample_variance().unwrap()));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningMoments::from_slice(&[1.0, 2.0]);
        let before = a;
        a.merge(&RunningMoments::new());
        assert_eq!(a, before);
        let mut e = RunningMoments::new();
        e.merge(&before);
        assert_eq!(e, before);
    }
}
