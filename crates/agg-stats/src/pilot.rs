//! Pilot (§4.2–4.3) sample summaries.
//!
//! RS-ESTIMATOR opens each round by running `ϖ` pilot drill-downs per age
//! group to learn, per group: the average query cost `g_x`, and the
//! variance `α_x` of the per-drill-down estimate term. This module
//! accumulates those pilots and converts them into
//! [`allocation::GroupParams`](crate::allocation::GroupParams).
//!
//! The paper calls this phase "bootstrapping", and this module used to be
//! named `bootstrap` after it — but it is *not* a statistical bootstrap
//! (no resampling happens). It was renamed `pilot` so that
//! [`resample`](crate::resample), the actual bootstrap engine, can own
//! that vocabulary; the old path survives as a deprecated re-export.

use crate::allocation::GroupParams;
use crate::moments::RunningMoments;

/// Accumulates pilot observations for one age group.
#[derive(Debug, Clone, Default)]
pub struct PilotGroup {
    costs: RunningMoments,
    values: RunningMoments,
}

impl PilotGroup {
    /// An empty pilot accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one pilot drill-down: its query cost and its per-drill-down
    /// estimate term (`f_Q(x, q_j(r))` for updates, the plain HT estimate
    /// for fresh drill-downs).
    pub fn record(&mut self, cost: f64, value: f64) {
        self.costs.push(cost);
        self.values.push(value);
    }

    /// Number of pilots recorded.
    pub fn count(&self) -> u64 {
        self.costs.count()
    }

    /// Average query cost per drill-down, `g_x`. Falls back to
    /// `default_cost` when no pilot ran.
    pub fn mean_cost(&self, default_cost: f64) -> f64 {
        self.costs.mean().unwrap_or(default_cost).max(1.0)
    }

    /// Bessel-corrected per-drill-down variance `α_x`. Falls back to
    /// `default_alpha` with fewer than 2 pilots.
    pub fn alpha(&self, default_alpha: f64) -> f64 {
        self.values.sample_variance().unwrap_or(default_alpha)
    }

    /// Mean of the recorded estimate terms (the pilots also contribute to
    /// the round estimate — Algorithm 2 folds them into the pool).
    pub fn mean_value(&self) -> Option<f64> {
        self.values.mean()
    }

    /// The group's estimate-term moments (for folding pilots into the
    /// final round estimate).
    pub fn values(&self) -> &RunningMoments {
        &self.values
    }

    /// Converts to allocator parameters.
    ///
    /// * `beta` — the irreducible base variance of the group (variance of
    ///   the historic estimate it chains from; 0 for fresh drill-downs);
    /// * `cap` — drill-downs available in the group;
    /// * defaults — used when pilots are too few to estimate.
    pub fn to_group_params(
        &self,
        beta: f64,
        cap: f64,
        default_cost: f64,
        default_alpha: f64,
    ) -> GroupParams {
        GroupParams::new(self.alpha(default_alpha), beta, self.mean_cost(default_cost), cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarises() {
        let mut p = PilotGroup::new();
        p.record(2.0, 100.0);
        p.record(4.0, 110.0);
        p.record(3.0, 90.0);
        assert_eq!(p.count(), 3);
        assert!((p.mean_cost(0.0) - 3.0).abs() < 1e-12);
        assert!((p.alpha(0.0) - 100.0).abs() < 1e-9, "sample var of 100,110,90");
        assert!((p.mean_value().unwrap() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn defaults_when_insufficient() {
        let p = PilotGroup::new();
        assert_eq!(p.mean_cost(5.0), 5.0);
        assert_eq!(p.alpha(42.0), 42.0);
        assert_eq!(p.mean_value(), None);
        let mut p = PilotGroup::new();
        p.record(2.0, 7.0);
        assert_eq!(p.alpha(42.0), 42.0, "one sample cannot estimate variance");
        assert_eq!(p.mean_cost(5.0), 2.0);
    }

    #[test]
    fn cost_floor_is_one_query() {
        let mut p = PilotGroup::new();
        p.record(0.2, 1.0); // corrupt cost below one query
        p.record(0.4, 2.0);
        assert_eq!(p.mean_cost(3.0), 1.0);
    }

    /// The pre-rename path must keep resolving (deprecated, not removed).
    #[test]
    #[allow(deprecated)]
    fn deprecated_bootstrap_path_still_resolves() {
        let mut p = crate::bootstrap::PilotGroup::new();
        p.record(1.0, 2.0);
        assert_eq!(p.count(), 1);
    }

    #[test]
    fn converts_to_group_params() {
        let mut p = PilotGroup::new();
        p.record(2.0, 10.0);
        p.record(2.0, 14.0);
        let gp = p.to_group_params(0.5, 20.0, 3.0, 1.0);
        assert_eq!(gp.beta, 0.5);
        assert_eq!(gp.cap, 20.0);
        assert_eq!(gp.cost, 2.0);
        assert!((gp.alpha - 8.0).abs() < 1e-9);
    }
}
