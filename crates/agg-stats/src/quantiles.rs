//! Streaming quantile estimation (the P² algorithm of Jain & Chlamtac,
//! 1985): constant-memory percentile tracking for experiment reporting.
//!
//! The harness summarises per-trial error distributions; means hide the
//! heavy tails that drive estimator behaviour here, so EXPERIMENTS.md
//! also reports medians/p90 — computed by this accumulator without
//! buffering the observations.

/// Zero-based index of the nearest-rank `p`-quantile of a sorted sample
/// of `len` elements.
///
/// Convention (the inverse empirical CDF, "type 1" in the Hyndman–Fan
/// taxonomy): the `p`-quantile is the `⌈p·len⌉`-th order statistic
/// (1-based), clamped into `[1, len]` so that `p = 0.0` maps to the
/// minimum (index 0) and `p = 1.0` to the maximum (index `len − 1`).
/// Single-element samples always map to index 0. Used both by the P²
/// seed-phase fallback and by the bootstrap percentile CI in
/// [`resample`](crate::resample), which must agree on the convention.
///
/// # Panics
/// If `len == 0` (an empty sample has no quantiles) or `p` is NaN or
/// outside `[0, 1]`.
pub fn nearest_rank_index(p: f64, len: usize) -> usize {
    assert!(len > 0, "nearest_rank_index: empty sample");
    assert!((0.0..=1.0).contains(&p), "nearest_rank_index: p={p} outside [0,1]");
    ((p * len as f64).ceil() as usize).clamp(1, len) - 1
}

/// P² estimator for a single quantile `p ∈ (0, 1)`.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (the 5 tracked order statistics).
    q: [f64; 5],
    /// Marker positions (1-based ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Position increments.
    dn: [f64; 5],
    count: usize,
    /// Initial observations until the markers are seeded.
    seed: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `p`-quantile.
    ///
    /// # Panics
    /// If `p` is not strictly between 0 and 1.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0,1)");
        Self {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            seed: Vec::with_capacity(5),
        }
    }

    /// The median tracker.
    pub fn median() -> Self {
        Self::new(0.5)
    }

    /// Observations seen.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.seed.len() < 5 {
            self.seed.push(x);
            if self.seed.len() == 5 {
                self.seed.sort_by(|a, b| a.partial_cmp(b).unwrap());
                self.q.copy_from_slice(&self.seed);
            }
            return;
        }
        // Find the cell k with q[k] ≤ x < q[k+1], adjusting extremes.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.q[i] <= x && x < self.q[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }
        // Adjust interior markers by parabolic (or linear) interpolation.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] =
                    if self.q[i - 1] < qp && qp < self.q[i + 1] { qp } else { self.linear(i, d) };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.q;
        let n = &self.n;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current quantile estimate; `None` before any observation. With
    /// fewer than 5 observations, the exact order statistic is returned.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.seed.len() < 5 {
            let mut s = self.seed.clone();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            return Some(s[nearest_rank_index(self.p, s.len())]);
        }
        Some(self.q[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn median_of_uniform_stream() {
        let mut q = P2Quantile::median();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..20_000 {
            q.push(rng.random::<f64>());
        }
        let m = q.estimate().unwrap();
        assert!((m - 0.5).abs() < 0.02, "median {m}");
        assert_eq!(q.count(), 20_000);
    }

    #[test]
    fn p90_of_skewed_stream() {
        // Exponential-ish: -ln(U). True p90 = -ln(0.1) ≈ 2.3026.
        let mut q = P2Quantile::new(0.9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..50_000 {
            let u: f64 = rng.random();
            q.push(-u.max(1e-12).ln());
        }
        let e = q.estimate().unwrap();
        assert!((e - std::f64::consts::LN_10).abs() < 0.12, "p90 {e}");
    }

    #[test]
    fn small_streams_fall_back_to_order_statistics() {
        let mut q = P2Quantile::median();
        assert_eq!(q.estimate(), None);
        q.push(3.0);
        assert_eq!(q.estimate(), Some(3.0));
        q.push(1.0);
        q.push(2.0);
        // Median of {1,2,3} = 2.
        assert_eq!(q.estimate(), Some(2.0));
    }

    #[test]
    fn constant_stream_is_exact() {
        let mut q = P2Quantile::new(0.75);
        for _ in 0..1_000 {
            q.push(42.0);
        }
        assert_eq!(q.estimate(), Some(42.0));
    }

    #[test]
    fn monotone_under_sorted_input() {
        let mut q = P2Quantile::median();
        for i in 0..10_000 {
            q.push(i as f64);
        }
        let m = q.estimate().unwrap();
        assert!((m - 5_000.0).abs() < 150.0, "median of 0..10000 ≈ {m}");
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0,1)")]
    fn invalid_quantile_rejected() {
        let _ = P2Quantile::new(1.0);
    }

    /// Pins the nearest-rank convention at the edges the bootstrap
    /// percentile CI exercises: p = 0 → minimum, p = 1 → maximum,
    /// single-element samples → the element, and no off-by-one at exact
    /// rank boundaries.
    #[test]
    fn nearest_rank_edges() {
        assert_eq!(nearest_rank_index(0.0, 1), 0);
        assert_eq!(nearest_rank_index(1.0, 1), 0);
        assert_eq!(nearest_rank_index(0.5, 1), 0);
        assert_eq!(nearest_rank_index(0.0, 10), 0);
        assert_eq!(nearest_rank_index(1.0, 10), 9);
        // ⌈0.5·10⌉ = 5 → index 4 (the lower middle element).
        assert_eq!(nearest_rank_index(0.5, 10), 4);
        // Just past an exact boundary rounds up to the next rank.
        assert_eq!(nearest_rank_index(0.51, 10), 5);
        // ⌈0.025·1000⌉ = 25 → index 24; ⌈0.975·1000⌉ = 975 → index 974.
        assert_eq!(nearest_rank_index(0.025, 1000), 24);
        assert_eq!(nearest_rank_index(0.975, 1000), 974);
        // Tiny p still lands on the minimum, not below it.
        assert_eq!(nearest_rank_index(1e-12, 4), 0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn nearest_rank_rejects_empty() {
        let _ = nearest_rank_index(0.5, 0);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn nearest_rank_rejects_out_of_range() {
        let _ = nearest_rank_index(1.5, 10);
    }
}
