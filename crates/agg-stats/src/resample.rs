//! The statistical bootstrap: resample the observed records, re-evaluate
//! the statistic on each replicate, and read percentile confidence
//! intervals off the replicate distribution.
//!
//! Three resampling variants:
//!
//! * [`Variant::NOutOfN`] — the classic bootstrap: draw `n` indices with
//!   replacement from `n` records. Right when records are exchangeable
//!   (e.g. independent seeded trials of one experiment point).
//! * [`Variant::MOutOfN`] — draw `m < n` indices with replacement; the
//!   subsampling bootstrap that stays consistent for non-smooth
//!   statistics and heavy tails (HT drill-down estimates are exactly
//!   that shape).
//! * [`Variant::Block`] — the moving-block bootstrap: draw contiguous
//!   runs of `block_len` records until `n` indices are collected.
//!   Per-round records of one trial are serially dependent (REISSUE
//!   reuses its drill-down pool across rounds), so i.i.d. resampling
//!   would understate the variance; keeping runs intact preserves the
//!   trans-round dependence inside each block.
//!
//! Determinism is the same discipline as everywhere in this workspace:
//! replicate `r` draws from an RNG stream seeded purely by `(seed, r)`,
//! replicates are fanned out over [`aggtrack_parallel`] and merged in
//! replicate order — so the result is bit-identical at any thread count.
//!
//! ```
//! use agg_stats::resample::{Bootstrap, Variant};
//!
//! let data: Vec<f64> = (0..50).map(|i| i as f64).collect();
//! let reps = Bootstrap::new(data.len(), |idx: &[usize]| {
//!     Some(idx.iter().map(|&i| data[i]).sum::<f64>() / idx.len() as f64)
//! })
//! .variant(Variant::NOutOfN)
//! .replicates(500)
//! .seed(7)
//! .run();
//! let ci = reps.percentile_ci(0.95).unwrap();
//! assert!(ci.contains(24.5), "CI {ci:?} should cover the sample mean");
//! ```

use crate::moments::RunningMoments;
use crate::quantiles::nearest_rank_index;
use aggtrack_parallel::{par_map_indexed_chunked, Threads};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How each replicate resamples the `n` observed records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Draw `n` indices with replacement (the classic bootstrap).
    NOutOfN,
    /// Draw `m` indices with replacement (subsampling bootstrap).
    MOutOfN {
        /// Resample size; must be ≥ 1.
        m: usize,
    },
    /// Moving-block bootstrap: draw contiguous runs of `block_len`
    /// records (uniform start in `0..=n − block_len`) until `n` indices
    /// are collected, truncating the last block.
    Block {
        /// Block length; must be in `1..=n`. `1` degenerates to
        /// [`Variant::NOutOfN`]'s distribution. See [`default_block_len`].
        block_len: usize,
    },
}

/// A two-sided confidence interval at a nominal coverage `level`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Nominal coverage probability in `(0, 1)`, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Builds an interval; swaps the bounds if given in reverse order.
    pub fn new(lo: f64, hi: f64, level: f64) -> Self {
        assert!(level > 0.0 && level < 1.0, "coverage level must be in (0,1)");
        if lo <= hi {
            Self { lo, hi, level }
        } else {
            Self { lo: hi, hi: lo, level }
        }
    }

    /// Whether `x` lies inside the (closed) interval.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// `hi − lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Rule-of-thumb block length for [`Variant::Block`]: `⌈n^{1/3}⌉`, the
/// standard rate at which moving-block bootstraps balance bias (blocks
/// too short break dependence) against variance (blocks too long leave
/// too few distinct blocks). Always ≥ 1 and ≤ `n`.
pub fn default_block_len(n: usize) -> usize {
    ((n as f64).cbrt().ceil() as usize).clamp(1, n.max(1))
}

/// Builder-style bootstrap over `data_len` records.
///
/// The statistic is a closure over *indices into the caller's data* —
/// the engine never copies the records, only index vectors — returning
/// `None` when the statistic is undefined on that replicate (e.g. an
/// empty stratum). Evaluation fans out over a thread pool with results
/// merged in replicate order, so output is independent of thread count.
pub struct Bootstrap<F> {
    data_len: usize,
    statistic: F,
    variant: Variant,
    replicates: usize,
    seed: u64,
    threads: Threads,
}

impl<F> Bootstrap<F>
where
    F: Fn(&[usize]) -> Option<f64> + Sync,
{
    /// A bootstrap of `statistic` over `data_len` records with defaults:
    /// [`Variant::NOutOfN`], 1000 replicates, seed 0, sequential.
    ///
    /// # Panics
    /// If `data_len == 0`.
    pub fn new(data_len: usize, statistic: F) -> Self {
        assert!(data_len > 0, "cannot bootstrap an empty sample");
        Self {
            data_len,
            statistic,
            variant: Variant::NOutOfN,
            replicates: 1000,
            seed: 0,
            threads: Threads::sequential(),
        }
    }

    /// Sets the resampling variant (validated in [`run`](Self::run)).
    pub fn variant(mut self, v: Variant) -> Self {
        self.variant = v;
        self
    }

    /// Sets the number of replicates (must be ≥ 1).
    pub fn replicates(mut self, b: usize) -> Self {
        assert!(b >= 1, "need at least one replicate");
        self.replicates = b;
        self
    }

    /// Sets the base seed; replicate `r`'s stream depends only on
    /// `(seed, r)`.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the thread policy for replicate evaluation. The result is
    /// bit-identical for every choice.
    pub fn threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    /// Draws and evaluates all replicates.
    ///
    /// # Panics
    /// If the variant is invalid for `data_len` (`m == 0`, or
    /// `block_len` outside `1..=data_len`).
    pub fn run(&self) -> Replicates {
        let n = self.data_len;
        match self.variant {
            Variant::NOutOfN => {}
            Variant::MOutOfN { m } => assert!(m >= 1, "m-out-of-n needs m ≥ 1"),
            Variant::Block { block_len } => {
                assert!((1..=n).contains(&block_len), "block_len {block_len} outside 1..={n}")
            }
        }
        let sample_len = match self.variant {
            Variant::MOutOfN { m } => m,
            _ => n,
        };

        // One atomic claim per 32 replicates: replicate evaluation is
        // often microseconds, far below per-index handout cost.
        let raw = par_map_indexed_chunked(self.replicates, 32, self.threads, |r| {
            let mut rng = StdRng::seed_from_u64(replicate_seed(self.seed, r as u64));
            let mut idx = Vec::with_capacity(sample_len);
            match self.variant {
                Variant::NOutOfN | Variant::MOutOfN { .. } => {
                    for _ in 0..sample_len {
                        idx.push(rng.random_range(0..n));
                    }
                }
                Variant::Block { block_len } => {
                    while idx.len() < sample_len {
                        let start = rng.random_range(0..=(n - block_len));
                        let take = block_len.min(sample_len - idx.len());
                        idx.extend(start..start + take);
                    }
                }
            }
            (self.statistic)(&idx)
        });

        let mut values = Vec::with_capacity(raw.len());
        let mut non_finite = 0u64;
        let mut skipped = 0u64;
        for v in raw {
            match v {
                Some(x) if x.is_finite() => values.push(x),
                Some(_) => non_finite += 1,
                None => skipped += 1,
            }
        }
        Replicates { values, requested: self.replicates, non_finite, skipped }
    }
}

/// SplitMix64 finaliser over `(seed, replicate index)`: decorrelates
/// consecutive replicate streams while keeping each a pure function of
/// its index — the bit-identical parallel merge relies on exactly this.
fn replicate_seed(seed: u64, r: u64) -> u64 {
    let mut z = seed ^ r.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The evaluated replicate distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct Replicates {
    values: Vec<f64>,
    requested: usize,
    non_finite: u64,
    skipped: u64,
}

impl Replicates {
    /// Finite replicate statistics, in replicate order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of finite replicate values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no replicate produced a finite value.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Replicates requested (= `len() + non_finite() + skipped()`).
    pub fn requested(&self) -> usize {
        self.requested
    }

    /// Replicates whose statistic came back NaN or ±∞ (excluded from the
    /// distribution, same discipline as
    /// [`SeriesSummary`](crate::error::SeriesSummary)).
    pub fn non_finite(&self) -> u64 {
        self.non_finite
    }

    /// Replicates where the statistic was undefined (returned `None`).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Mean of the replicate distribution; `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        RunningMoments::from_slice(&self.values).mean()
    }

    /// Bootstrap standard error: sample standard deviation of the
    /// replicate distribution. `None` with fewer than two values.
    pub fn std_error(&self) -> Option<f64> {
        RunningMoments::from_slice(&self.values).sample_variance().map(f64::sqrt)
    }

    /// Two-sided percentile interval at nominal coverage `level` (e.g.
    /// `0.95` → the 2.5th and 97.5th percentiles of the replicate
    /// distribution, nearest-rank convention). `None` if no replicate
    /// produced a finite value.
    ///
    /// # Panics
    /// If `level` is not in `(0, 1)`.
    pub fn percentile_ci(&self, level: f64) -> Option<ConfidenceInterval> {
        assert!(level > 0.0 && level < 1.0, "coverage level must be in (0,1)");
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite by construction"));
        let tail = (1.0 - level) / 2.0;
        let lo = sorted[nearest_rank_index(tail, sorted.len())];
        let hi = sorted[nearest_rank_index(1.0 - tail, sorted.len())];
        Some(ConfidenceInterval::new(lo, hi, level))
    }
}

/// Percentile CI for the mean of exchangeable observations (n-out-of-n
/// over the finite values of `data`). `None` with fewer than two finite
/// observations.
pub fn mean_ci(
    data: &[f64],
    replicates: usize,
    seed: u64,
    level: f64,
) -> Option<ConfidenceInterval> {
    let finite: Vec<f64> = data.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.len() < 2 {
        return None;
    }
    Bootstrap::new(finite.len(), |idx: &[usize]| {
        Some(idx.iter().map(|&i| finite[i]).sum::<f64>() / idx.len() as f64)
    })
    .replicates(replicates)
    .seed(seed)
    .run()
    .percentile_ci(level)
}

/// Percentile CI for the mean of a *serially dependent* series
/// (moving-block bootstrap over the finite values, order preserved).
/// Pass `block_len = 0` to use [`default_block_len`]. `None` with fewer
/// than two finite observations.
pub fn series_mean_ci(
    series: &[f64],
    block_len: usize,
    replicates: usize,
    seed: u64,
    level: f64,
) -> Option<ConfidenceInterval> {
    let finite: Vec<f64> = series.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.len() < 2 {
        return None;
    }
    let b = if block_len == 0 { default_block_len(finite.len()) } else { block_len };
    Bootstrap::new(finite.len(), |idx: &[usize]| {
        Some(idx.iter().map(|&i| finite[i]).sum::<f64>() / idx.len() as f64)
    })
    .variant(Variant::Block { block_len: b.min(finite.len()) })
    .replicates(replicates)
    .seed(seed)
    .run()
    .percentile_ci(level)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_stat(data: &[f64]) -> impl Fn(&[usize]) -> Option<f64> + Sync + '_ {
        move |idx: &[usize]| Some(idx.iter().map(|&i| data[i]).sum::<f64>() / idx.len() as f64)
    }

    #[test]
    fn deterministic_per_seed() {
        let data: Vec<f64> = (0..40).map(|i| (i as f64).sin()).collect();
        let run =
            |seed| Bootstrap::new(data.len(), mean_stat(&data)).replicates(200).seed(seed).run();
        assert_eq!(run(1).values(), run(1).values());
        assert_ne!(run(1).values(), run(2).values());
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        let data: Vec<f64> = (0..64).map(|i| (i * i % 37) as f64).collect();
        for variant in
            [Variant::NOutOfN, Variant::MOutOfN { m: 17 }, Variant::Block { block_len: 4 }]
        {
            let at = |threads| {
                Bootstrap::new(data.len(), mean_stat(&data))
                    .variant(variant)
                    .replicates(999)
                    .seed(42)
                    .threads(threads)
                    .run()
            };
            let seq = at(Threads::sequential());
            for t in [2, 4, 8] {
                let par = at(Threads::fixed(t));
                assert_eq!(seq.values(), par.values(), "{variant:?} at {t} threads");
            }
        }
    }

    #[test]
    fn percentile_ci_covers_the_sample_mean() {
        // Mean of 0..100 is 49.5; the bootstrap CI of the mean must cover
        // it and be roughly ±2·SE/√n wide.
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let reps = Bootstrap::new(data.len(), mean_stat(&data)).replicates(2000).seed(3).run();
        let ci = reps.percentile_ci(0.95).unwrap();
        assert!(ci.contains(49.5), "{ci:?}");
        assert!(ci.width() > 5.0 && ci.width() < 20.0, "width {}", ci.width());
        assert!(reps.std_error().unwrap() > 0.0);
        assert_eq!(reps.requested(), 2000);
        assert_eq!(reps.len(), 2000);
    }

    #[test]
    fn m_out_of_n_draws_m_indices() {
        let reps = Bootstrap::new(50, |idx: &[usize]| {
            assert_eq!(idx.len(), 7);
            assert!(idx.iter().all(|&i| i < 50));
            Some(idx.len() as f64)
        })
        .variant(Variant::MOutOfN { m: 7 })
        .replicates(50)
        .run();
        assert_eq!(reps.len(), 50);
    }

    #[test]
    fn block_variant_draws_contiguous_runs() {
        let n = 30;
        let b = 5;
        let reps = Bootstrap::new(n, |idx: &[usize]| {
            assert_eq!(idx.len(), n);
            for chunk in idx.chunks(b) {
                for w in chunk.windows(2) {
                    assert_eq!(w[1], w[0] + 1, "block broken: {chunk:?}");
                }
                assert!(chunk[0] + b <= n, "block start out of range");
            }
            Some(0.0)
        })
        .variant(Variant::Block { block_len: b })
        .replicates(100)
        .run();
        assert_eq!(reps.len(), 100);
    }

    #[test]
    fn block_truncates_when_n_not_multiple_of_block_len() {
        let n = 13;
        let b = 5;
        let reps = Bootstrap::new(n, |idx: &[usize]| {
            assert_eq!(idx.len(), n, "resample size is n even when b ∤ n");
            Some(1.0)
        })
        .variant(Variant::Block { block_len: b })
        .replicates(20)
        .run();
        assert_eq!(reps.len(), 20);
    }

    #[test]
    fn undefined_and_non_finite_replicates_are_counted() {
        // Statistic: undefined when index 0 is drawn, ∞ when index 1 is
        // drawn (checked in that order), finite otherwise.
        let reps = Bootstrap::new(6, |idx: &[usize]| {
            if idx.contains(&0) {
                None
            } else if idx.contains(&1) {
                Some(f64::INFINITY)
            } else {
                Some(1.0)
            }
        })
        .replicates(400)
        .seed(9)
        .run();
        assert!(reps.skipped() > 0, "index 0 should appear in some replicate");
        assert!(reps.non_finite() > 0, "index 1 should appear in some replicate");
        assert_eq!(reps.len() as u64 + reps.skipped() + reps.non_finite(), 400);
        // CI still defined from the surviving replicates.
        assert_eq!(reps.percentile_ci(0.9).map(|c| (c.lo, c.hi)), Some((1.0, 1.0)));
    }

    #[test]
    fn interval_helpers() {
        let ci = ConfidenceInterval::new(2.0, 1.0, 0.5);
        assert_eq!((ci.lo, ci.hi), (1.0, 2.0), "bounds are normalised");
        assert!(ci.contains(1.0) && ci.contains(2.0) && !ci.contains(2.1));
        assert_eq!(ci.width(), 1.0);
    }

    #[test]
    fn default_block_len_follows_cube_root() {
        assert_eq!(default_block_len(1), 1);
        assert_eq!(default_block_len(8), 2);
        assert_eq!(default_block_len(20), 3);
        assert_eq!(default_block_len(1000), 10);
        assert_eq!(default_block_len(0), 1, "degenerate input stays usable");
    }

    #[test]
    fn mean_ci_skips_non_finite_input() {
        let mut data: Vec<f64> = (0..60).map(|i| (i % 10) as f64).collect();
        data.push(f64::INFINITY);
        data.push(f64::NAN);
        let ci = mean_ci(&data, 800, 11, 0.95).unwrap();
        assert!(ci.contains(4.5), "{ci:?} should cover the finite mean");
        assert!(ci.lo.is_finite() && ci.hi.is_finite());
        assert!(mean_ci(&[1.0, f64::NAN], 100, 0, 0.95).is_none());
    }

    #[test]
    fn series_mean_ci_uses_block_bootstrap() {
        // AR(1)-ish dependent series: x_t = 0.8 x_{t-1} + noise.
        let mut x = 0.0;
        let series: Vec<f64> = (0..200)
            .map(|i| {
                x = 0.8 * x + ((i * 2654435761u64 as usize % 1000) as f64 / 1000.0 - 0.5);
                x
            })
            .collect();
        let blocked = series_mean_ci(&series, 0, 1000, 5, 0.95).unwrap();
        let iid = mean_ci(&series, 1000, 5, 0.95).unwrap();
        // Positive serial dependence ⇒ the honest (block) interval is wider.
        assert!(
            blocked.width() > iid.width(),
            "block {b:?} should be wider than iid {i:?}",
            b = blocked.width(),
            i = iid.width()
        );
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_data_rejected() {
        let _ = Bootstrap::new(0, |_: &[usize]| Some(0.0));
    }

    #[test]
    #[should_panic(expected = "block_len")]
    fn oversized_block_rejected() {
        let _ = Bootstrap::new(4, |_: &[usize]| Some(0.0))
            .variant(Variant::Block { block_len: 5 })
            .run();
    }
}
