//! Inverse-variance weighting of independent unbiased estimators.
//!
//! This is the combination rule behind Theorem 4.2 (two estimators) and
//! Corollary 4.2 (one estimator per age group): given independent unbiased
//! estimates `e_x` with variances `v_x`, the minimum-variance unbiased
//! linear combination weights each by `1/v_x`, achieving variance
//! `1 / Σ(1/v_x)` — equation (37) of the paper.

/// One component estimate: value and (estimated) variance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Component {
    /// The estimate.
    pub estimate: f64,
    /// Its variance (≥ 0; 0 means exact).
    pub variance: f64,
}

impl Component {
    /// Creates a component.
    pub fn new(estimate: f64, variance: f64) -> Self {
        Self { estimate, variance }
    }
}

/// The optimally combined estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Combined {
    /// The weighted estimate.
    pub estimate: f64,
    /// Its variance, `1/Σ(1/v_x)` (0 if any component was exact).
    pub variance: f64,
    /// Number of components that contributed.
    pub used: usize,
}

/// Combines independent unbiased estimates by inverse-variance weighting.
///
/// Rules for degenerate inputs:
/// * components with non-finite estimate or variance are skipped;
/// * if any component has zero variance, those (exact) components are
///   averaged and the variance is 0;
/// * `None` if no usable component remains.
pub fn combine(components: &[Component]) -> Option<Combined> {
    let usable: Vec<&Component> = components
        .iter()
        .filter(|c| c.estimate.is_finite() && c.variance.is_finite() && c.variance >= 0.0)
        .collect();
    if usable.is_empty() {
        return None;
    }
    let exact: Vec<&&Component> = usable.iter().filter(|c| c.variance == 0.0).collect();
    if !exact.is_empty() {
        let mean = exact.iter().map(|c| c.estimate).sum::<f64>() / exact.len() as f64;
        return Some(Combined { estimate: mean, variance: 0.0, used: exact.len() });
    }
    let mut inv_sum = 0.0;
    let mut weighted = 0.0;
    for c in &usable {
        let w = 1.0 / c.variance;
        inv_sum += w;
        weighted += w * c.estimate;
    }
    Some(Combined { estimate: weighted / inv_sum, variance: 1.0 / inv_sum, used: usable.len() })
}

/// The optimal first-component weight for the two-estimator case — `w_1` of
/// Theorem 4.2 (equation 24): `w_1 = v_2 / (v_1 + v_2)` where `v_1` is the
/// variance of the reissue-path estimate and `v_2` of the fresh-path one.
pub fn optimal_two_weight(var_first: f64, var_second: f64) -> f64 {
    if var_first == 0.0 && var_second == 0.0 {
        return 0.5;
    }
    var_second / (var_first + var_second)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_variances_average() {
        let c = combine(&[Component::new(10.0, 4.0), Component::new(20.0, 4.0)]).unwrap();
        assert!((c.estimate - 15.0).abs() < 1e-12);
        assert!((c.variance - 2.0).abs() < 1e-12);
        assert_eq!(c.used, 2);
    }

    #[test]
    fn lower_variance_dominates() {
        let c = combine(&[Component::new(10.0, 1.0), Component::new(20.0, 9.0)]).unwrap();
        // Weights 0.9 / 0.1.
        assert!((c.estimate - 11.0).abs() < 1e-12);
        assert!((c.variance - 0.9).abs() < 1e-12);
    }

    #[test]
    fn combined_variance_never_exceeds_best_component() {
        let comps = [Component::new(5.0, 3.0), Component::new(6.0, 10.0), Component::new(4.0, 0.5)];
        let c = combine(&comps).unwrap();
        assert!(c.variance <= 0.5 + 1e-12);
    }

    #[test]
    fn exact_components_short_circuit() {
        let c = combine(&[
            Component::new(10.0, 0.0),
            Component::new(99.0, 5.0),
            Component::new(12.0, 0.0),
        ])
        .unwrap();
        assert!((c.estimate - 11.0).abs() < 1e-12);
        assert_eq!(c.variance, 0.0);
        assert_eq!(c.used, 2);
    }

    #[test]
    fn skips_non_finite() {
        let c = combine(&[
            Component::new(f64::NAN, 1.0),
            Component::new(3.0, f64::INFINITY),
            Component::new(7.0, 2.0),
        ])
        .unwrap();
        assert_eq!(c.used, 1);
        assert!((c.estimate - 7.0).abs() < 1e-12);
        assert!(combine(&[Component::new(f64::NAN, 1.0)]).is_none());
        assert!(combine(&[]).is_none());
    }

    #[test]
    fn two_weight_matches_theorem_4_2() {
        // w1 = (σd²/h2) / (σc²/h1 + σ1²/h + σd²/h2): with
        // v1 = σc²/h1 + σ1²/h and v2 = σd²/h2 this is v2/(v1+v2).
        let v1 = 2.0;
        let v2 = 6.0;
        let w1 = optimal_two_weight(v1, v2);
        assert!((w1 - 0.75).abs() < 1e-12);
        // Cross-check against the generic combiner.
        let c = combine(&[Component::new(1.0, v1), Component::new(0.0, v2)]).unwrap();
        assert!((c.estimate - w1).abs() < 1e-12);
        assert_eq!(optimal_two_weight(0.0, 0.0), 0.5);
    }
}
