//! Property tests for the budget allocator (Corollaries 4.1/4.3) and the
//! inverse-variance combiner (Theorem 4.2 / Corollary 4.2).

use agg_stats::allocation::{allocate, combined_variance, GroupParams};
use agg_stats::moments::RunningMoments;
use agg_stats::weighted::{combine, Component};
use proptest::prelude::*;

fn group_strategy() -> impl Strategy<Value = GroupParams> {
    (
        0.01..100.0f64,                                                   // alpha
        prop_oneof![Just(0.0), 0.01..10.0f64],                            // beta (often zero)
        1.0..10.0f64,                                                     // cost
        prop_oneof![(0.0..60.0f64).boxed(), Just(f64::INFINITY).boxed()], // cap
    )
        .prop_map(|(alpha, beta, cost, cap)| GroupParams::new(alpha, beta, cost, cap))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn allocation_respects_budget_and_caps(
        groups in prop::collection::vec(group_strategy(), 1..6),
        budget in 0.0..500.0f64,
    ) {
        let alloc = allocate(&groups, budget);
        prop_assert_eq!(alloc.len(), groups.len());
        let spend: f64 = alloc.iter().zip(&groups).map(|(c, g)| c * g.cost).sum();
        prop_assert!(spend <= budget + 1e-6, "spend {} > budget {}", spend, budget);
        for (c, g) in alloc.iter().zip(&groups) {
            prop_assert!(*c >= 0.0);
            prop_assert!(*c <= g.cap + 1e-9, "c {} > cap {}", c, g.cap);
        }
    }

    #[test]
    fn allocation_is_locally_optimal(
        groups in prop::collection::vec(group_strategy(), 2..5),
        budget in 50.0..400.0f64,
    ) {
        let alloc = allocate(&groups, budget);
        let base = combined_variance(&groups, &alloc);
        if !base.is_finite() {
            return Ok(());
        }
        // Moving a small amount of budget between any funded pair must not
        // improve the combined variance (first-order KKT check).
        let eps_budget = 0.01;
        for i in 0..groups.len() {
            for j in 0..groups.len() {
                if i == j { continue; }
                let dc_i = eps_budget / groups[i].cost;
                let dc_j = eps_budget / groups[j].cost;
                if alloc[i] < dc_i || alloc[j] + dc_j > groups[j].cap {
                    continue;
                }
                let mut p = alloc.clone();
                p[i] -= dc_i;
                p[j] += dc_j;
                let v = combined_variance(&groups, &p);
                prop_assert!(
                    v >= base * (1.0 - 1e-4) - 1e-9,
                    "perturbation {}→{} improved variance {} → {}", i, j, base, v
                );
            }
        }
    }

    #[test]
    fn more_budget_never_hurts(
        groups in prop::collection::vec(group_strategy(), 1..5),
        budget in 10.0..200.0f64,
        extra in 1.0..100.0f64,
    ) {
        let v1 = combined_variance(&groups, &allocate(&groups, budget));
        let v2 = combined_variance(&groups, &allocate(&groups, budget + extra));
        // Allow tiny numerical slack from the bisection.
        prop_assert!(
            v2 <= v1 * (1.0 + 1e-3) + 1e-9,
            "more budget worsened variance: {} → {}", v1, v2
        );
    }

    #[test]
    fn combiner_never_worse_than_best_component(
        comps in prop::collection::vec(
            ((-1e6..1e6f64), 0.01..1e6f64).prop_map(|(e, v)| Component::new(e, v)),
            1..8
        ),
    ) {
        let c = combine(&comps).unwrap();
        let best = comps.iter().map(|c| c.variance).fold(f64::INFINITY, f64::min);
        prop_assert!(c.variance <= best + 1e-9);
        // Estimate lies within the component hull.
        let lo = comps.iter().map(|c| c.estimate).fold(f64::INFINITY, f64::min);
        let hi = comps.iter().map(|c| c.estimate).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(c.estimate >= lo - 1e-9 && c.estimate <= hi + 1e-9);
    }

    #[test]
    fn welford_matches_two_pass(
        xs in prop::collection::vec(-1e6..1e6f64, 2..60),
    ) {
        let m = RunningMoments::from_slice(&xs);
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((m.mean().unwrap() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!(
            (m.sample_variance().unwrap() - var).abs() < 1e-6 * (1.0 + var.abs())
        );
    }

    #[test]
    fn welford_merge_is_associative_enough(
        xs in prop::collection::vec(-1e3..1e3f64, 1..30),
        ys in prop::collection::vec(-1e3..1e3f64, 1..30),
    ) {
        let mut a = RunningMoments::from_slice(&xs);
        a.merge(&RunningMoments::from_slice(&ys));
        let all: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        let bulk = RunningMoments::from_slice(&all);
        prop_assert!((a.mean().unwrap() - bulk.mean().unwrap()).abs() < 1e-9);
        prop_assert!(
            (a.population_variance().unwrap() - bulk.population_variance().unwrap()).abs()
                < 1e-7
        );
    }
}
