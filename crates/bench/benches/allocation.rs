//! Statistics-toolkit benchmarks: the water-filling allocator, the
//! inverse-variance combiner, and the moment accumulator.

use agg_stats::allocation::{allocate, GroupParams};
use agg_stats::moments::RunningMoments;
use agg_stats::weighted::{combine, Component};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn groups(n: usize) -> Vec<GroupParams> {
    (0..n)
        .map(|i| {
            GroupParams::new(
                1.0 + i as f64,
                if i % 3 == 0 { 0.0 } else { 0.1 * i as f64 },
                2.0 + (i % 5) as f64,
                if i % 4 == 0 { f64::INFINITY } else { 20.0 + i as f64 },
            )
        })
        .collect()
}

fn bench_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(400));
    for n in [2usize, 8, 32] {
        let gs = groups(n);
        group.bench_function(format!("allocate_{n}_groups"), |b| {
            b.iter(|| black_box(allocate(black_box(&gs), 500.0)))
        });
    }
    group.finish();
}

fn bench_combine(c: &mut Criterion) {
    let mut group = c.benchmark_group("combine");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(400));
    let comps: Vec<Component> =
        (0..100).map(|i| Component::new(100.0 + i as f64, 1.0 + (i % 7) as f64)).collect();
    group.bench_function("combine_100", |b| b.iter(|| black_box(combine(black_box(&comps)))));
    group.finish();
}

fn bench_moments(c: &mut Criterion) {
    let mut group = c.benchmark_group("moments");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(400));
    group.bench_function("welford_push_1k", |b| {
        b.iter(|| {
            let mut m = RunningMoments::new();
            for i in 0..1_000 {
                m.push(black_box(i as f64 * 1.7));
            }
            black_box(m.sample_variance())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_allocation, bench_combine, bench_moments);
criterion_main!(benches);
