//! Drill-down machinery benchmarks: fresh drills vs resumed (reissued)
//! drills — the query-cost asymmetry the whole paper exploits, measured
//! in wall-clock on the simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use hidden_db::ranking::ScoringPolicy;
use hidden_db::session::SearchSession;
use query_tree::{drill_from_root, resume_from, QueryTree, ReissuePolicy, Signature};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;
use workloads::{load_database, AutosGenerator};

fn bench_drills(c: &mut Criterion) {
    let mut group = c.benchmark_group("drilldown");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(400));

    let mut gen = AutosGenerator::with_attrs(16);
    let mut rng = StdRng::seed_from_u64(3);
    let mut db = load_database(&mut gen, &mut rng, 20_000, 100, ScoringPolicy::default());
    let tree = QueryTree::full(&db.schema().clone());

    // Pre-sample signatures and terminal depths.
    let sigs: Vec<Signature> = (0..256).map(|_| Signature::sample(&tree, &mut rng)).collect();
    let mut depths = Vec::with_capacity(sigs.len());
    for sig in &sigs {
        let mut s = SearchSession::unlimited(&mut db);
        depths.push(drill_from_root(&tree, sig, &mut s).unwrap().depth);
    }
    // Warm the per-version cache so both benches measure the steady state
    // an estimator sees mid-round.
    let mut i = 0usize;
    group.bench_function("fresh_drill_warm_cache", |b| {
        b.iter(|| {
            let sig = &sigs[i % sigs.len()];
            i += 1;
            let mut s = SearchSession::unlimited(&mut db);
            black_box(drill_from_root(&tree, sig, &mut s).unwrap());
        })
    });
    let mut j = 0usize;
    group.bench_function("resume_unchanged_strict", |b| {
        b.iter(|| {
            let idx = j % sigs.len();
            j += 1;
            let mut s = SearchSession::unlimited(&mut db);
            black_box(
                resume_from(&tree, &sigs[idx], depths[idx], ReissuePolicy::Strict, &mut s).unwrap(),
            );
        })
    });
    let mut l = 0usize;
    group.bench_function("resume_unchanged_trusting", |b| {
        b.iter(|| {
            let idx = l % sigs.len();
            l += 1;
            let mut s = SearchSession::unlimited(&mut db);
            black_box(
                resume_from(&tree, &sigs[idx], depths[idx], ReissuePolicy::Trusting, &mut s)
                    .unwrap(),
            );
        })
    });
    group.finish();
}

criterion_group!(benches, bench_drills, bench_crawl);
criterion_main!(benches);

// ---------------------------------------------------------------------
// Crawling baseline (the §1 strawman): cost of exactness vs estimation.
// ---------------------------------------------------------------------

fn bench_crawl(c: &mut Criterion) {
    let mut group = c.benchmark_group("crawl_baseline");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(400));
    let mut gen = AutosGenerator::with_attrs(12);
    let mut rng = StdRng::seed_from_u64(11);
    let mut db = load_database(&mut gen, &mut rng, 8_000, 100, ScoringPolicy::default());
    let tree = QueryTree::full(&db.schema().clone());
    group.bench_function("full_crawl_8k", |b| {
        b.iter(|| {
            let mut s = SearchSession::unlimited(&mut db);
            black_box(query_tree::crawl::crawl(&tree, &mut s))
        })
    });
    group.finish();
}
