//! Whole-round estimator benchmarks, plus the Strict/Trusting reissue
//! policy ablation called out in DESIGN.md.

use aggtrack_core::{AggregateSpec, Estimator, ReissueEstimator, RestartEstimator, RsEstimator};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hidden_db::ranking::ScoringPolicy;
use hidden_db::session::SearchSession;
use query_tree::{QueryTree, ReissuePolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;
use workloads::{load_database, AutosGenerator};

fn fixture() -> (hidden_db::HiddenDatabase, QueryTree) {
    let mut gen = AutosGenerator::with_attrs(12);
    let mut rng = StdRng::seed_from_u64(4);
    let db = load_database(&mut gen, &mut rng, 8_000, 100, ScoringPolicy::default());
    let tree = QueryTree::full(&db.schema().clone());
    (db, tree)
}

const G: u64 = 200;

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator_round");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(400));
    let (db, tree) = fixture();

    group.bench_function("restart_round", |b| {
        b.iter_batched(
            || (db.clone(), RestartEstimator::new(AggregateSpec::count_star(), tree.clone(), 1)),
            |(mut db, mut est)| {
                let mut s = SearchSession::new(&mut db, G);
                black_box(est.run_round(&mut s));
            },
            BatchSize::LargeInput,
        )
    });

    // Steady-state REISSUE: round 1 executed in setup, round 2 measured.
    group.bench_function("reissue_round2", |b| {
        b.iter_batched(
            || {
                let mut db2 = db.clone();
                let mut est = ReissueEstimator::new(AggregateSpec::count_star(), tree.clone(), 2);
                {
                    let mut s = SearchSession::new(&mut db2, G);
                    est.run_round(&mut s);
                }
                (db2, est)
            },
            |(mut db, mut est)| {
                let mut s = SearchSession::new(&mut db, G);
                black_box(est.run_round(&mut s));
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("rs_round2", |b| {
        b.iter_batched(
            || {
                let mut db2 = db.clone();
                let mut est = RsEstimator::new(AggregateSpec::count_star(), tree.clone(), 3);
                {
                    let mut s = SearchSession::new(&mut db2, G);
                    est.run_round(&mut s);
                }
                (db2, est)
            },
            |(mut db, mut est)| {
                let mut s = SearchSession::new(&mut db, G);
                black_box(est.run_round(&mut s));
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_policy_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("reissue_policy_ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(400));
    let (db, tree) = fixture();
    for (name, policy) in [("strict", ReissuePolicy::Strict), ("trusting", ReissuePolicy::Trusting)]
    {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut db2 = db.clone();
                    let mut est = ReissueEstimator::with_policy(
                        AggregateSpec::count_star(),
                        tree.clone(),
                        5,
                        policy,
                    );
                    {
                        let mut s = SearchSession::new(&mut db2, G);
                        est.run_round(&mut s);
                    }
                    (db2, est)
                },
                |(mut db, mut est)| {
                    let mut s = SearchSession::new(&mut db, G);
                    black_box(est.run_round(&mut s));
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rounds, bench_policy_ablation);
criterion_main!(benches);
