//! One Criterion bench per paper figure: times a miniaturised version of
//! each figure's workload (same code paths as the `figNN_*` harness
//! binaries, without the CSV printing). Use the binaries to regenerate
//! the actual series; use these benches to watch for performance
//! regressions in each experiment family.

use aggtrack_bench::cli::{BaseCfg, Scale};
use aggtrack_bench::runner::{count_star_tracked, standard_algos, track, Tracked};
use aggtrack_core::{
    AggregateSpec, Estimator, ReissueEstimator, RsConfig, RsEstimator, TrackingTarget,
};
use criterion::{criterion_group, criterion_main, Criterion};
use hidden_db::query::{ConjunctiveQuery, Predicate};
use hidden_db::session::SearchSession;
use hidden_db::value::{AttrId, MeasureId, ValueId};
use query_tree::QueryTree;
use std::hint::black_box;
use std::time::Duration;
use workloads::{spread_evenly, AmazonSim, DeleteSpec, EbaySim, IntraRoundSession};

/// Micro config: 3 rounds × 1 trial on a 2 000-tuple population.
fn micro() -> BaseCfg {
    let mut cfg = BaseCfg::for_scale(Scale::Quick);
    cfg.initial = 2_000;
    cfg.rounds = 3;
    cfg.trials = 1;
    cfg.g = 120;
    cfg
}

fn run_track(cfg: &BaseCfg) {
    black_box(track(cfg, &standard_algos(), RsConfig::default(), &count_star_tracked));
}

fn run_track_change(cfg: &BaseCfg) {
    let rs = RsConfig { target: TrackingTarget::Change, ..RsConfig::default() };
    black_box(track(cfg, &standard_algos(), rs, &count_star_tracked));
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(400));

    g.bench_function("fig02_default_tracking", |b| {
        let cfg = micro();
        b.iter(|| run_track(&cfg))
    });
    g.bench_function("fig03_error_bars", |b| {
        let mut cfg = micro();
        cfg.trials = 2; // error bars need ≥ 2 trials
        b.iter(|| run_track(&cfg))
    });
    g.bench_function("fig04_intra_round", |b| {
        b.iter(|| {
            let mut gen = workloads::AutosGenerator::with_attrs(12);
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
            let db = workloads::load_database(
                &mut gen,
                &mut rng,
                2_000,
                100,
                hidden_db::ScoringPolicy::default(),
            );
            let schedule = workloads::PerRoundSchedule::new(gen, 8, DeleteSpec::Fraction(0.001));
            let mut driver = workloads::RoundDriver::new(db, schedule, 2);
            let tree = QueryTree::full(&driver.db().schema().clone());
            let mut est = ReissueEstimator::new(AggregateSpec::count_star(), tree, 3);
            for _ in 0..3 {
                let batch = driver.peek_batch();
                let mut session =
                    IntraRoundSession::new(driver.db_mut(), 120, spread_evenly(batch));
                black_box(est.run_round(&mut session));
                session.drain_pending();
                driver.mark_round();
            }
        })
    });
    g.bench_function("fig05_little_change", |b| {
        let mut cfg = micro();
        cfg.inserts = 1;
        cfg.delete = DeleteSpec::None;
        b.iter(|| run_track(&cfg))
    });
    g.bench_function("fig06_big_change", |b| {
        let mut cfg = micro();
        cfg.inserts = cfg.initial / 10;
        cfg.delete = DeleteSpec::Fraction(0.05);
        b.iter(|| run_track(&cfg))
    });
    g.bench_function("fig07_big_change_k1", |b| {
        let mut cfg = micro();
        cfg.k = 1;
        cfg.initial = 500;
        cfg.inserts = 50;
        cfg.delete = DeleteSpec::Fraction(0.05);
        b.iter(|| run_track(&cfg))
    });
    g.bench_function("fig08_k_sweep_point", |b| {
        let mut cfg = micro();
        cfg.k = 50;
        b.iter(|| run_track(&cfg))
    });
    g.bench_function("fig09_budget_sweep_point", |b| {
        let mut cfg = micro();
        cfg.g = 60;
        b.iter(|| run_track(&cfg))
    });
    g.bench_function("fig10_net_change_point", |b| {
        let mut cfg = micro();
        cfg.inserts = 0;
        cfg.delete = DeleteSpec::Count(30);
        b.iter(|| run_track(&cfg))
    });
    g.bench_function("fig11_m_sweep_point", |b| {
        let mut cfg = micro();
        cfg.attrs = 16;
        b.iter(|| run_track(&cfg))
    });
    g.bench_function("fig12_size_point", |b| {
        let mut cfg = micro();
        cfg.initial = 8_000;
        b.iter(|| run_track(&cfg))
    });
    g.bench_function("fig13_sum_with_conditions", |b| {
        let cfg = micro();
        let tracked_of = |schema: &hidden_db::Schema| -> Tracked {
            let cond = ConjunctiveQuery::from_predicates([
                Predicate::new(AttrId(0), ValueId(0)),
                Predicate::new(AttrId(1), ValueId(0)),
            ]);
            Tracked {
                spec: AggregateSpec::sum_measure(MeasureId(0), cond.clone()),
                tree: QueryTree::subtree(schema, cond.clone()),
                truth: Box::new(move |db| db.exact_sum(Some(&cond), |t| t.measure(MeasureId(0)))),
            }
        };
        b.iter(|| black_box(track(&cfg, &standard_algos(), RsConfig::default(), &tracked_of)))
    });
    g.bench_function("fig14_running_average", |b| {
        let cfg = micro();
        b.iter(|| run_track(&cfg))
    });
    g.bench_function("fig15_change_small", |b| {
        let mut cfg = micro();
        cfg.inserts = 35;
        cfg.delete = DeleteSpec::Fraction(0.005);
        b.iter(|| run_track_change(&cfg))
    });
    g.bench_function("fig16_change_abs", |b| {
        let mut cfg = micro();
        cfg.inserts = 35;
        cfg.delete = DeleteSpec::Fraction(0.005);
        b.iter(|| run_track_change(&cfg))
    });
    g.bench_function("fig17_change_big", |b| {
        let mut cfg = micro();
        cfg.inserts = cfg.initial / 10;
        cfg.delete = DeleteSpec::Fraction(0.05);
        b.iter(|| run_track_change(&cfg))
    });
    g.bench_function("fig18_budget_search_point", |b| {
        let mut cfg = micro();
        cfg.g = 40;
        b.iter(|| run_track(&cfg))
    });
    g.bench_function("fig19_drill_accounting", |b| {
        let cfg = micro();
        b.iter(|| run_track(&cfg))
    });
    g.bench_function("fig20_amazon_day", |b| {
        b.iter(|| {
            let (mut db, mut sim) = AmazonSim::build(2_000, 9);
            let tree = QueryTree::full(&db.schema().clone());
            let mut est = RsEstimator::new(
                AggregateSpec::avg_measure(
                    workloads::amazon::PRICE,
                    ConjunctiveQuery::select_all(),
                ),
                tree,
                1,
            );
            for day in 0..2 {
                let batch = sim.batch_for_day(&db, day);
                db.apply(batch).unwrap();
                let mut s = SearchSession::new(&mut db, 120);
                black_box(est.run_round(&mut s));
            }
        })
    });
    g.bench_function("fig21_ebay_hour", |b| {
        b.iter(|| {
            let (mut db, mut sim) = EbaySim::build(800, 1_200, 9);
            let tree = QueryTree::full(&db.schema().clone());
            let mut est = RsEstimator::new(
                AggregateSpec::avg_measure(
                    workloads::ebay::PRICE,
                    EbaySim::segment_condition(workloads::ebay::attrs::FIX),
                ),
                tree,
                1,
            );
            for _ in 0..2 {
                let mut s = SearchSession::new(&mut db, 120);
                black_box(est.run_round(&mut s));
                let batch = sim.batch_for_hour(&db);
                db.apply(batch).unwrap();
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
