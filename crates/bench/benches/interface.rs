//! Microbenchmarks of the hidden-database substrate: query evaluation
//! (cold and memoised), mutation throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hidden_db::query::{ConjunctiveQuery, Predicate};
use hidden_db::ranking::ScoringPolicy;
use hidden_db::tuple::Tuple;
use hidden_db::value::{AttrId, TupleKey, ValueId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;
use workloads::{load_database, AutosGenerator, TupleFactory};

fn autos_db(n: usize, attrs: usize, k: usize) -> hidden_db::HiddenDatabase {
    let mut gen = AutosGenerator::with_attrs(attrs);
    let mut rng = StdRng::seed_from_u64(1);
    load_database(&mut gen, &mut rng, n, k, ScoringPolicy::default())
}

fn bench_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("interface_eval");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(400));

    // Cold evaluation: clone the db so each iteration starts cache-empty.
    let base = autos_db(10_000, 12, 100);
    let root = ConjunctiveQuery::select_all();
    group.bench_function("root_cold_10k", |b| {
        b.iter_batched(|| base.clone(), |mut db| black_box(db.answer(&root)), BatchSize::LargeInput)
    });
    let depth2 = ConjunctiveQuery::from_predicates([
        Predicate::new(AttrId(0), ValueId(0)),
        Predicate::new(AttrId(1), ValueId(0)),
    ]);
    group.bench_function("depth2_cold_10k", |b| {
        b.iter_batched(
            || base.clone(),
            |mut db| black_box(db.answer(&depth2)),
            BatchSize::LargeInput,
        )
    });
    // Warm (memoised) evaluation.
    let mut warm = base.clone();
    warm.answer(&root);
    group.bench_function("root_warm_10k", |b| b.iter(|| black_box(warm.answer(&root))));
    group.finish();
}

fn bench_mutations(c: &mut Criterion) {
    let mut group = c.benchmark_group("interface_mutations");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(400));
    let mut gen = AutosGenerator::with_attrs(12);
    let mut rng = StdRng::seed_from_u64(2);
    let mut db = load_database(&mut gen, &mut rng, 10_000, 100, ScoringPolicy::default());
    let mut key = 1_000_000u64;
    group.bench_function("insert_delete_pair", |b| {
        b.iter(|| {
            let mut t = gen.make(&mut rng);
            // Force a fresh key so inserts never collide.
            key += 1;
            t = Tuple::new(TupleKey(key), t.values().to_vec(), t.measures().to_vec());
            db.insert(t).unwrap();
            db.delete(TupleKey(key)).unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, bench_eval, bench_mutations);
criterion_main!(benches);
