//! Intersection-strategy microbenchmark: galloping vs per-segment bitset
//! vs the legacy per-candidate re-check, across selectivity ratios of the
//! two driven posting lists. This is the data that pins the engine's
//! density cut-over (`GALLOP_RATIO` in `hidden-db/src/database.rs`):
//! galloping wins when the larger list dwarfs the smaller, the bitset
//! wins when the lists are comparably dense, and both skip the residual
//! column loads the re-check scan pays for every rarest-list candidate.
//!
//! The population plants one dense attribute (A0 = 0 on half the tuples,
//! the "large" list) and a staircase attribute whose values select
//! progressively rarer slices (the "small" list), so `ratio_R` means
//! `|large| ≈ R × |small|`.
//!
//! Two groups:
//!
//! * `intersect` — the original two-list sweep, now with a `blockmax`
//!   row per ratio: the same `GALLOP_RATIO` doubles as the k-way
//!   engine's *per-block* sparse/dense cut (the run-length ratio inside
//!   one 256-slot block tracks the list-level ratio here), so this sweep
//!   re-pins the cutover at block granularity. On this host the block
//!   paths cross in the same ratio-4..16 window as the list-level
//!   strategies, so the shared constant 8 stands for both.
//! * `kway` — 2/3/4/6-predicate conjunctions over half-density
//!   attributes, the k-way merge's home turf: the pair strategies pay a
//!   columnar residual check per extra predicate, the block-max engine
//!   intersects all lists at once.

use criterion::{criterion_group, criterion_main, Criterion};
use hidden_db::database::HiddenDatabase;
use hidden_db::query::{ConjunctiveQuery, Predicate};
use hidden_db::ranking::ScoringPolicy;
use hidden_db::schema::Schema;
use hidden_db::tuple::Tuple;
use hidden_db::value::{AttrId, TupleKey, ValueId};
use hidden_db::{EvalConfig, IntersectPolicy, InvalidationPolicy};
use std::hint::black_box;
use std::time::Duration;

const N: u64 = 40_000;

/// Small-list sizes giving large/small ratios ≈ 1, 4, 16, 64, 256
/// against the ~N/2 dense list.
const STAIRS: [u64; 5] = [20_000, 5_000, 1_250, 312, 78];

fn staircase_db() -> HiddenDatabase {
    let schema = Schema::with_domain_sizes(&[2, STAIRS.len() as u32 + 1], &[]).unwrap();
    let mut db = HiddenDatabase::new(schema, 100, ScoringPolicy::default());
    db.set_invalidation_policy(InvalidationPolicy::Disabled);
    let mut stair_left: Vec<u64> = STAIRS.to_vec();
    for key in 0..N {
        // A1: walk the staircase until each tier has its quota; the
        // remainder lands in the overflow value. Interleave A0 so every
        // tier is half-covered by the dense value.
        let a1 = match stair_left.iter().position(|&left| left > 0) {
            Some(tier) => {
                stair_left[tier] -= 1;
                tier as u32
            }
            None => STAIRS.len() as u32,
        };
        let a0 = (key % 2) as u32;
        db.insert(Tuple::new(TupleKey(key), vec![ValueId(a0), ValueId(a1)], vec![])).unwrap();
    }
    db
}

fn bench_intersection(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));

    let mut db = staircase_db();
    let modes = [
        ("gallop", IntersectPolicy::Gallop),
        ("bitset", IntersectPolicy::Bitset),
        ("recheck", IntersectPolicy::Recheck),
        ("blockmax", IntersectPolicy::BlockMax),
    ];
    let ratios = [1u64, 4, 16, 64, 256];
    for (tier, &ratio) in ratios.iter().enumerate() {
        let q = ConjunctiveQuery::from_predicates([
            Predicate::new(AttrId(0), ValueId(0)),
            Predicate::new(AttrId(1), ValueId(tier as u32)),
        ]);
        for (name, intersect) in modes {
            db.set_eval_config(EvalConfig { early_exit: false, intersect });
            group.bench_function(format!("ratio_{ratio}_{name}"), |b| {
                b.iter(|| black_box(db.answer(&q)))
            });
        }
    }
    group.finish();
}

/// Population for the k-way group: six binary attributes, each value
/// covering half the tuples via independent key bits, so a `p`-predicate
/// conjunction selects ≈ `N / 2^p` tuples and every posting list is
/// comparably dense (the regime where two-rarest + residual re-check
/// does the most per-candidate work). `NewestFirst` ranking makes
/// scores monotone in slot order, so block-max bounds are sharply
/// tiered and the skip machinery engages once the top-`k` floor pins.
fn kway_db() -> HiddenDatabase {
    let schema = Schema::with_domain_sizes(&[2; 6], &[]).unwrap();
    let mut db = HiddenDatabase::new(schema, 100, ScoringPolicy::NewestFirst);
    db.set_invalidation_policy(InvalidationPolicy::Disabled);
    for key in 0..N {
        let values = (0..6).map(|bit| ValueId(((key >> bit) & 1) as u32)).collect();
        db.insert(Tuple::new(TupleKey(key), values, vec![])).unwrap();
    }
    db
}

fn bench_kway(c: &mut Criterion) {
    let mut group = c.benchmark_group("kway");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));

    let mut db = kway_db();
    let modes = [
        ("blockmax", IntersectPolicy::BlockMax),
        ("gallop", IntersectPolicy::Gallop),
        ("bitset", IntersectPolicy::Bitset),
        ("recheck", IntersectPolicy::Recheck),
    ];
    for preds in [2usize, 3, 4, 6] {
        let q = ConjunctiveQuery::from_predicates(
            (0..preds).map(|attr| Predicate::new(AttrId(attr as u16), ValueId(0))),
        );
        for (name, intersect) in modes {
            db.set_eval_config(EvalConfig { early_exit: true, intersect });
            group.bench_function(format!("preds_{preds}_{name}"), |b| {
                b.iter(|| black_box(db.answer(&q)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_intersection, bench_kway);
criterion_main!(benches);
