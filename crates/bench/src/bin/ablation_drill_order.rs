//! Ablation: attribute drill-order heuristics (query-tree `order`
//! module). Measures, per heuristic: mean drill cost (queries per fresh
//! drill-down) and RESTART relative error at a fixed budget.
//!
//! ```sh
//! cargo run --release -p aggtrack-bench --bin ablation_drill_order
//! ```

use aggtrack_bench::cli::{BaseCfg, Cli};
use aggtrack_core::{AggregateSpec, Estimator, RestartEstimator};
use hidden_db::ranking::ScoringPolicy;
use hidden_db::session::SearchSession;
use query_tree::order::{tree_with_heuristic, OrderHeuristic};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workloads::{load_database, AutosGenerator};

fn main() {
    let cli = Cli::parse();
    let cfg = BaseCfg::from_cli(&cli);
    let mut gen = AutosGenerator::with_attrs(cfg.attrs);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = load_database(&mut gen, &mut rng, cfg.initial, cfg.k, ScoringPolicy::default());
    let truth = db.exact_count(None) as f64;

    println!("# Ablation: drill order heuristics (RESTART, G = {}, k = {})", cfg.g, cfg.k);
    println!("heuristic,mean_drill_cost,mean_rel_err");
    for (name, heur) in [
        ("schema_order", OrderHeuristic::SchemaOrder),
        ("largest_domain_first", OrderHeuristic::LargestDomainFirst),
        ("smallest_domain_first", OrderHeuristic::SmallestDomainFirst),
    ] {
        let tree = tree_with_heuristic(db.schema(), heur);
        let mut err = 0.0;
        let mut cost_per_drill = 0.0;
        let trials = cfg.trials.max(4) as u64;
        for seed in 0..trials {
            let mut est = RestartEstimator::new(AggregateSpec::count_star(), tree.clone(), seed);
            let mut session = SearchSession::new(&mut db, cfg.g);
            let report = est.run_round(&mut session);
            err += agg_stats::relative_error(report.count.value, truth) / trials as f64;
            cost_per_drill +=
                report.queries_spent as f64 / report.initiated.max(1) as f64 / trials as f64;
        }
        println!("{name},{cost_per_drill:.3},{err:.6}");
    }
}
