//! Ablation: the RS robustness guards (DESIGN.md §6.5) vs the paper's
//! exact rule. Runs the default tracking workload with each RS
//! configuration and prints tail relative errors.
//!
//! ```sh
//! cargo run --release -p aggtrack-bench --bin ablation_rs_robustness
//! ```

use aggtrack_bench::cli::{BaseCfg, Cli};
use aggtrack_bench::runner::{count_star_tracked, tail_mean, track, AlgoKind};
use aggtrack_core::RsConfig;

fn main() {
    let cli = Cli::parse();
    let mut cfg = BaseCfg::from_cli(&cli);
    if cli.rounds.is_none() {
        cfg.rounds = cfg.rounds.min(35);
    }
    let variants: [(&str, RsConfig); 4] = [
        (
            "paper_exact",
            RsConfig {
                fresh_weight_floor: 0.0,
                process_noise: 0.0,
                max_staleness: u32::MAX,
                ..RsConfig::default()
            },
        ),
        (
            "floor_only",
            RsConfig {
                fresh_weight_floor: 0.2,
                process_noise: 0.0,
                max_staleness: u32::MAX,
                ..RsConfig::default()
            },
        ),
        (
            "floor_and_noise",
            RsConfig {
                fresh_weight_floor: 0.2,
                process_noise: 0.1,
                max_staleness: u32::MAX,
                ..RsConfig::default()
            },
        ),
        ("robust_defaults", RsConfig::default()),
    ];
    println!("# Ablation: RS robustness guards (tail mean relative error, COUNT(*))");
    println!("variant,tail_rel_err");
    for (name, rs_cfg) in variants {
        let out = track(&cfg, &[AlgoKind::Rs], rs_cfg, &count_star_tracked);
        println!("{name},{:.6}", tail_mean(&out.algos[0].rel_err, 5));
    }
}
