//! Runs every figure harness (use --scale quick for a smoke run, the
//! default scale for the committed EXPERIMENTS.md numbers).
//!
//! Figures are independent, so they run concurrently. The thread budget
//! (`AGGTRACK_THREADS` or the machine's parallelism) is **divided**
//! between the two nesting levels — figure-level fan-out × per-figure
//! trial pools ≈ the budget — so nested pools never multiply into
//! figures × budget workers. Every figure's CSV is captured per-thread
//! and printed in figure order, so stdout is byte-identical to the
//! sequential run; progress lines go to stderr as figures finish.
use aggtrack_bench::runner::capture_csv;
use aggtrack_bench::{figures, Cli};
use aggtrack_parallel::{par_run, Threads};

/// A figure-harness entry: name and runner.
type FigureEntry = (&'static str, fn(&Cli));

fn main() {
    let cli = Cli::parse();
    let figs: [FigureEntry; 20] = [
        ("fig02", figures::fig02),
        ("fig03", figures::fig03),
        ("fig04", figures::fig04),
        ("fig05", figures::fig05),
        ("fig06", figures::fig06),
        ("fig07", figures::fig07),
        ("fig08", figures::fig08),
        ("fig09", figures::fig09),
        ("fig10", figures::fig10),
        ("fig11", figures::fig11),
        ("fig12", figures::fig12),
        ("fig13", figures::fig13),
        ("fig14", figures::fig14),
        ("fig15", figures::fig15),
        ("fig16", figures::fig16),
        ("fig17", figures::fig17),
        ("fig18", figures::fig18),
        ("fig19", figures::fig19),
        ("fig20", figures::fig20),
        ("fig21", figures::fig21),
    ];
    let total_start = std::time::Instant::now();
    // Split the thread budget across the two levels: N budget threads
    // become F concurrent figures × N/F threads inside each figure's
    // trial loop (the inner pools read AGGTRACK_THREADS, set here before
    // any worker spawns).
    let budget = Threads::Auto.resolve(usize::MAX);
    let fig_workers = budget.min(figs.len());
    let inner_threads = (budget / fig_workers).max(1);
    std::env::set_var("AGGTRACK_THREADS", inner_threads.to_string());
    let jobs: Vec<Box<dyn FnOnce() -> String + Send>> = figs
        .into_iter()
        .map(|(name, f)| {
            let cli = cli.clone();
            Box::new(move || {
                let start = std::time::Instant::now();
                let csv = capture_csv(|| f(&cli));
                eprintln!(">>> {name} done in {:.1?}", start.elapsed());
                csv
            }) as Box<dyn FnOnce() -> String + Send>
        })
        .collect();
    for csv in par_run(jobs, Threads::fixed(fig_workers)) {
        print!("{csv}");
    }
    eprintln!(">>> all figures done in {:.1?}", total_start.elapsed());
}
