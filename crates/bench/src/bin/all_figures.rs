//! Runs every figure harness in sequence (use --scale quick for a smoke
//! run, the default scale for the committed EXPERIMENTS.md numbers).
use aggtrack_bench::{figures, Cli};

/// A figure-harness entry: name and runner.
type FigureEntry = (&'static str, fn(&Cli));

fn main() {
    let cli = Cli::parse();
    let figs: [FigureEntry; 20] = [
        ("fig02", figures::fig02),
        ("fig03", figures::fig03),
        ("fig04", figures::fig04),
        ("fig05", figures::fig05),
        ("fig06", figures::fig06),
        ("fig07", figures::fig07),
        ("fig08", figures::fig08),
        ("fig09", figures::fig09),
        ("fig10", figures::fig10),
        ("fig11", figures::fig11),
        ("fig12", figures::fig12),
        ("fig13", figures::fig13),
        ("fig14", figures::fig14),
        ("fig15", figures::fig15),
        ("fig16", figures::fig16),
        ("fig17", figures::fig17),
        ("fig18", figures::fig18),
        ("fig19", figures::fig19),
        ("fig20", figures::fig20),
        ("fig21", figures::fig21),
    ];
    for (name, f) in figs {
        eprintln!(">>> {name}");
        let start = std::time::Instant::now();
        f(&cli);
        eprintln!(">>> {name} done in {:.1?}", start.elapsed());
    }
}
