//! Regenerates Figure 02 of the paper. Flags: --scale quick|default|paper etc.
fn main() {
    aggtrack_bench::figures::fig02(&aggtrack_bench::Cli::parse());
}
