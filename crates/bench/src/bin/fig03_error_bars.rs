//! Regenerates Figure 03 of the paper. Flags: --scale quick|default|paper etc.
fn main() {
    aggtrack_bench::figures::fig03(&aggtrack_bench::Cli::parse());
}
