//! Regenerates Figure 04 of the paper. Flags: --scale quick|default|paper etc.
fn main() {
    aggtrack_bench::figures::fig04(&aggtrack_bench::Cli::parse());
}
