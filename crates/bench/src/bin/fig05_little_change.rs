//! Regenerates Figure 05 of the paper. Flags: --scale quick|default|paper etc.
fn main() {
    aggtrack_bench::figures::fig05(&aggtrack_bench::Cli::parse());
}
