//! Regenerates Figure 06 of the paper. Flags: --scale quick|default|paper etc.
fn main() {
    aggtrack_bench::figures::fig06(&aggtrack_bench::Cli::parse());
}
