//! Regenerates Figure 07 of the paper. Flags: --scale quick|default|paper etc.
fn main() {
    aggtrack_bench::figures::fig07(&aggtrack_bench::Cli::parse());
}
