//! Regenerates Figure 08 of the paper. Flags: --scale quick|default|paper etc.
fn main() {
    aggtrack_bench::figures::fig08(&aggtrack_bench::Cli::parse());
}
