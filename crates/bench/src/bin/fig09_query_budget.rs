//! Regenerates Figure 09 of the paper. Flags: --scale quick|default|paper etc.
fn main() {
    aggtrack_bench::figures::fig09(&aggtrack_bench::Cli::parse());
}
