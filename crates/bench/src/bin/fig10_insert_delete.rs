//! Regenerates Figure 10 of the paper. Flags: --scale quick|default|paper etc.
fn main() {
    aggtrack_bench::figures::fig10(&aggtrack_bench::Cli::parse());
}
