//! Regenerates Figure 11 of the paper. Flags: --scale quick|default|paper etc.
fn main() {
    aggtrack_bench::figures::fig11(&aggtrack_bench::Cli::parse());
}
