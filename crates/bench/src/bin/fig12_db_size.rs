//! Regenerates Figure 12 of the paper. Flags: --scale quick|default|paper etc.
fn main() {
    aggtrack_bench::figures::fig12(&aggtrack_bench::Cli::parse());
}
