//! Regenerates Figure 13 of the paper. Flags: --scale quick|default|paper etc.
fn main() {
    aggtrack_bench::figures::fig13(&aggtrack_bench::Cli::parse());
}
