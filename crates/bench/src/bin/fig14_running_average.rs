//! Regenerates Figure 14 of the paper. Flags: --scale quick|default|paper etc.
fn main() {
    aggtrack_bench::figures::fig14(&aggtrack_bench::Cli::parse());
}
