//! Regenerates Figure 15 of the paper. Flags: --scale quick|default|paper etc.
fn main() {
    aggtrack_bench::figures::fig15(&aggtrack_bench::Cli::parse());
}
