//! Regenerates Figure 16 of the paper. Flags: --scale quick|default|paper etc.
fn main() {
    aggtrack_bench::figures::fig16(&aggtrack_bench::Cli::parse());
}
