//! Regenerates Figure 17 of the paper. Flags: --scale quick|default|paper etc.
fn main() {
    aggtrack_bench::figures::fig17(&aggtrack_bench::Cli::parse());
}
