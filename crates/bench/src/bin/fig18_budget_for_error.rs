//! Regenerates Figure 18 of the paper. Flags: --scale quick|default|paper etc.
fn main() {
    aggtrack_bench::figures::fig18(&aggtrack_bench::Cli::parse());
}
