//! Regenerates Figure 19 of the paper. Flags: --scale quick|default|paper etc.
fn main() {
    aggtrack_bench::figures::fig19(&aggtrack_bench::Cli::parse());
}
