//! Regenerates Figure 20 of the paper. Flags: --scale quick|default|paper etc.
fn main() {
    aggtrack_bench::figures::fig20(&aggtrack_bench::Cli::parse());
}
