//! Regenerates Figure 21 of the paper. Flags: --scale quick|default|paper etc.
fn main() {
    aggtrack_bench::figures::fig21(&aggtrack_bench::Cli::parse());
}
