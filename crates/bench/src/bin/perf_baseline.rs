//! perf_baseline — the standard, committed performance workload.
//!
//! Runs fixed workloads and writes a machine-readable report (default
//! `BENCH_PR10.json`, see `--out`) so future PRs have a perf trajectory
//! to beat:
//!
//! 1. **Interface microbench** — query throughput of the hidden-database
//!    substrate on a 10 k-tuple Autos population: one cold pass over a
//!    distinct-query pool (every answer evaluates) and repeated warm
//!    passes (every answer is a memo hit), plus insert+delete mutation
//!    throughput.
//! 2. **Track workload** — the Fig 2 configuration at `quick` scale
//!    (8 trials × 10 rounds, three estimators): wall-clock of the
//!    sequential trial loop vs the parallel runner, with a bitwise
//!    identity check of every estimator series between the two, and a
//!    second identity check of incremental vs wholesale memo
//!    invalidation.
//! 3. **Memo little-change workload** (PR 2) — Fig 5-style rounds where
//!    a small batch mutates the database and a fixed overlapping query
//!    pool is re-asked each round, once per invalidation policy: hit
//!    rate, wall-clock, invalidation counters, and a cross-policy
//!    answer-fingerprint consistency check.
//! 4. **Memo adversarial stream** (PR 2) — a distinct-query flood
//!    against a small memo capacity: the memo must stay bounded and
//!    evict.
//! 5. **Intersection engine** (PR 3) — a deep-query (3–4 predicate)
//!    pool evaluated cold by the galloping/bitset intersection engine vs
//!    the PR 2 rarest-list re-check scan: queries/sec both ways and an
//!    answer-fingerprint identity check (`intersect_identical`).
//! 6. **Early exit** (PR 3) — overflow-heavy `NewestFirst` scans with
//!    the heap-floor early exit on vs off (`early_exit_consistent`).
//! 7. **Ground-truth parallelism** (PR 3) — `exact_count`/`exact_sum`
//!    fanned out over store segments at 1/2/4/7 threads with a bitwise
//!    identity check against the sequential sweep
//!    (`ground_truth_bit_identical`).
//! 8. **Compaction** (PR 5) — a delete-heavy `ByMeasureDesc` pool whose
//!    churn purges the top scorers everywhere except one segment: stale
//!    bounds keep the early exit dark (`0` segment skips, the pre-PR-5
//!    state), a `compact()` pass re-arms it (`early_exit_rearmed`) with
//!    bit-identical answers (`compaction_identical`).
//! 9. **Revalidation** (PR 5) — a churn-heavy Fig 10-style pool
//!    (inserts + deletes + measure updates every round) re-asking a
//!    fixed query pool: cross-round memo revalidation on vs the PR 2
//!    incremental baseline vs memo-disabled, with a three-way answer
//!    fingerprint check (`revalidation_consistent`) and a strict
//!    hit-rate win (`revalidation_hit_rate_improved`).
//! 10. **Fault recovery** (PR 6) — the fault-injected interface stack:
//!     drill-level bit-identity under recovered seeded storms at three
//!     injection rates (`faults_identical_when_recovered`), the cost of
//!     the wrapper with a quiet schedule
//!     (`fault_off_overhead_near_zero`), and a quality-vs-fault-rate
//!     sweep of the tracked Fig 2 workload (faults burn budget, so
//!     accuracy decays gracefully as the rate climbs). The interface
//!     microbench also gains a `mutation_throughput_ok` floor pinning
//!     the PR 5 mutation-path regression fixed by PR 6.
//! 11. **Shared service** (PR 7) — the concurrent `DbService`: 1/2/4/8
//!     client threads issue deterministic query scripts against a
//!     snapshot pinned at epoch 0 while a writer thread churns the
//!     service through the apply queue (with pressure-triggered
//!     auto-compaction enabled). Every client's answer fingerprint must
//!     equal the one a private database frozen at epoch 0 produces
//!     (`shared_service_bit_identical`), and aggregate read throughput
//!     is recorded per client count.
//! 12. **K-way block-max intersection** (PR 8) — conjunctions of
//!     2/3/4/6 half-density predicates (every posting list ≈ N/2, the
//!     regime where two-rarest + residual re-check pays the most per
//!     candidate) on the canonical block-max score distribution: one
//!     hot 256-slot block per segment with hot scores interleaved
//!     across segments, so segment bounds are all near the maximum
//!     (segment-granular pruning is blind) while block bounds still
//!     discriminate. All four strategies must agree bit-for-bit
//!     (`kway_identical`), and the block-max engine must beat the
//!     better pair engine by ≥1.3× on the 4-predicate pool
//!     (`kway_speedup_on_multipredicate`).
//!
//! 13. **Persistence tier** (PR 9) — the out-of-core pager on a fig12-
//!     style size sweep (10⁵/10⁶/10⁷ tuples): each pool is built three
//!     times — fully in RAM, and out-of-core at resident budgets of 1/4
//!     and 1/16 of the segment count — churned (contiguous deletes,
//!     strided measure updates, free-slot reuse), queried, and
//!     ground-truth aggregated. Every fingerprint and aggregate must be
//!     bit-identical across the three builds (`persistence_identical`)
//!     and every paged build's residency high-water mark must respect
//!     its budget (`resident_memory_bounded`). The largest size also
//!     times a checkpoint + warm restart (`open_persistent`) whose
//!     reopened fingerprint folds into the identity flag.
//!
//! 14. **Bootstrap resampling** (PR 10) — the `agg_stats::resample`
//!     engine: replicate-throughput sweep (100/1 000/10 000 replicates
//!     of a mean statistic over a fixed 4 096-point sample), parallel
//!     replicate fan-out at 1/2/4/8 threads with a bitwise identity
//!     check of every replicate vector across thread counts and all
//!     three variants (`bootstrap_parallel_identical`), and a seeded
//!     coverage experiment — per-trial block-bootstrap 95 % intervals
//!     of the REISSUE estimate/truth ratio on a churning pool must
//!     cover the ground-truth ratio 1.0 at roughly the nominal rate
//!     (`bootstrap_coverage_ok`).
//!
//! The workloads are fixed on purpose — do not "tune" them in later
//! PRs; add new sections instead, so the numbers stay comparable.
//!
//! Flags: `--out PATH` (default `BENCH_PR10.json`), `--threads N`
//! (thread pool for the parallel track run; default auto).

use std::time::Instant;

use agg_stats::resample::{default_block_len, Bootstrap, Variant};
use aggtrack_bench::cli::{BaseCfg, FaultsMode, Scale};
use aggtrack_bench::json::Json;
use aggtrack_bench::runner::{
    count_star_tracked, standard_algos, tail_block_ci, tail_mean, track, track_with_threads,
    trial_cis, AlgoKind, TrackOutcome,
};
use aggtrack_core::{ht_sample, AggregateSpec, RsConfig};
use aggtrack_parallel::Threads;
use hidden_db::fault::{FaultSchedule, FaultyBackend, ResilientBackend, RetryPolicy};
use hidden_db::query::{ConjunctiveQuery, Predicate};
use hidden_db::ranking::ScoringPolicy;
use hidden_db::session::SearchSession;
use hidden_db::tuple::Tuple;
use hidden_db::updates::UpdateBatch;
use hidden_db::value::{MeasureId, TupleKey};
use hidden_db::{
    AutoMaintain, DbService, EvalConfig, IntersectPolicy, InvalidationPolicy, QueryOutcome,
    SearchBackend,
};
use query_tree::{drill_from_root, enumerate_all, QueryTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use workloads::{load_database, AutosGenerator, DeleteSpec, TupleFactory};

fn main() {
    let flags = Flags::parse();
    eprintln!(">>> perf_baseline: interface microbench");
    let micro = interface_microbench();
    eprintln!(">>> perf_baseline: multi-trial track workload");
    let track = track_workload(flags.pool());
    eprintln!(">>> perf_baseline: memo little-change workload");
    let memo_little = memo_little_change();
    eprintln!(">>> perf_baseline: memo adversarial distinct-query stream");
    let memo_adv = memo_adversarial();
    eprintln!(">>> perf_baseline: deep-query intersection engine");
    let intersection = intersection_engine();
    eprintln!(">>> perf_baseline: k-way block-max intersection");
    let kway = intersection_kway();
    eprintln!(">>> perf_baseline: early-exit overflow classification");
    let early_exit = early_exit_workload();
    eprintln!(">>> perf_baseline: ground-truth segment fan-out");
    let ground_truth = ground_truth_parallelism();
    eprintln!(">>> perf_baseline: segment compaction / early-exit re-arm");
    let compaction = compaction_workload();
    eprintln!(">>> perf_baseline: cross-round memo revalidation");
    let revalidation = revalidation_workload();
    eprintln!(">>> perf_baseline: fault injection / recovery stack");
    let faults = fault_recovery(flags.pool());
    eprintln!(">>> perf_baseline: shared concurrent service");
    let shared = shared_service();
    eprintln!(">>> perf_baseline: out-of-core persistence tier");
    let persistence = persistence_tier();
    eprintln!(">>> perf_baseline: bootstrap resampling engine");
    let bootstrap = bootstrap_workload();
    let report = Json::obj()
        .field("schema_version", 1u64)
        .field("report", "perf_baseline")
        .field(
            "generated_unix_s",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
        )
        .field("build", if cfg!(debug_assertions) { "debug" } else { "release" })
        .field(
            "host",
            Json::obj()
                .field("num_cpus", num_cpus())
                .field("cores", num_cpus())
                .field(
                    "aggtrack_threads_env",
                    std::env::var("AGGTRACK_THREADS").map(Json::from).unwrap_or(Json::Null),
                )
                .field("threads_flag", flags.threads.map(Json::from).unwrap_or(Json::Null))
                .field(
                    "section_threads",
                    Json::obj()
                        .field("track_workload", flags.pool().resolve(8))
                        .field("ground_truth_parallelism", "1, 2, 4, 7")
                        .field("shared_service_clients", "1, 2, 4, 8"),
                ),
        )
        .field("interface_microbench", micro)
        .field("track_workload", track)
        .field("memo_little_change", memo_little)
        .field("memo_adversarial", memo_adv)
        .field("intersection", intersection)
        .field("intersection_kway", kway)
        .field("early_exit", early_exit)
        .field("ground_truth_parallelism", ground_truth)
        .field("compaction", compaction)
        .field("revalidation", revalidation)
        .field("fault_recovery", faults)
        .field("shared_service", shared)
        .field("persistence", persistence)
        .field("bootstrap", bootstrap);
    std::fs::write(&flags.out, report.pretty())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", flags.out));
    eprintln!(">>> perf_baseline: wrote {}", flags.out);
}

struct Flags {
    out: String,
    /// Worker count for the fan-out pool (parallel track run); `None`
    /// resolves to `AGGTRACK_THREADS` / available parallelism.
    threads: Option<usize>,
}

impl Flags {
    fn parse() -> Self {
        let mut flags = Flags { out: "BENCH_PR10.json".to_string(), threads: None };
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            let mut value =
                |name: &str| it.next().unwrap_or_else(|| panic!("flag {name} needs a value"));
            match arg.as_str() {
                "--out" => flags.out = value("--out"),
                "--threads" => {
                    flags.threads =
                        Some(value("--threads").parse().expect("--threads takes a positive count"))
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --out PATH (default BENCH_PR10.json)  --threads N (default auto)"
                    );
                    std::process::exit(0);
                }
                other => panic!("unsupported argument {other:?} (try --help)"),
            }
        }
        flags
    }

    fn pool(&self) -> Threads {
        self.threads.map_or(Threads::Auto, Threads::fixed)
    }
}

/// The microbench's fixed query pool: root, every depth-1 query, and all
/// depth-2 combinations over the first three attribute pairs.
fn query_pool(schema: &hidden_db::schema::Schema) -> Vec<ConjunctiveQuery> {
    let mut pool = vec![ConjunctiveQuery::select_all()];
    for a in schema.attr_ids() {
        for v in 0..schema.domain_size(a) {
            pool.push(ConjunctiveQuery::from_predicates([Predicate::new(
                a,
                hidden_db::value::ValueId(v),
            )]));
        }
    }
    let attrs: Vec<_> = schema.attr_ids().collect();
    for pair in attrs.windows(2).take(3) {
        for v0 in 0..schema.domain_size(pair[0]) {
            for v1 in 0..schema.domain_size(pair[1]) {
                pool.push(ConjunctiveQuery::from_predicates([
                    Predicate::new(pair[0], hidden_db::value::ValueId(v0)),
                    Predicate::new(pair[1], hidden_db::value::ValueId(v1)),
                ]));
            }
        }
    }
    pool
}

fn interface_microbench() -> Json {
    const N: usize = 10_000;
    const K: usize = 100;
    const ATTRS: usize = 12;
    const WARM_PASSES: usize = 20;
    const MUTATION_PAIRS: usize = 20_000;

    let mut gen = AutosGenerator::with_attrs(ATTRS);
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let mut db = load_database(&mut gen, &mut rng, N, K, ScoringPolicy::default());
    let pool = query_pool(&db.schema().clone());

    // Cold: fresh memo (no query asked since the last mutation) — every
    // answer runs the streaming evaluator.
    let t0 = Instant::now();
    for q in &pool {
        std::hint::black_box(db.answer(q));
    }
    let cold = t0.elapsed();

    // Warm: identical pool again — every answer is a memo hit sharing the
    // materialised page.
    let t0 = Instant::now();
    for _ in 0..WARM_PASSES {
        for q in &pool {
            std::hint::black_box(db.answer(q));
        }
    }
    let warm = t0.elapsed();
    let stats = db.stats();
    assert!(stats.cache_hits >= (WARM_PASSES * pool.len()) as u64, "warm passes must hit the memo");

    // Mutations: insert+delete pairs through store + index (+ memo drop).
    let t0 = Instant::now();
    let mut key = 10_000_000u64;
    for _ in 0..MUTATION_PAIRS {
        let t = gen.make(&mut rng);
        key += 1;
        let t = Tuple::new(TupleKey(key), t.values().to_vec(), t.measures().to_vec());
        db.insert(t).expect("unique key");
        db.delete(TupleKey(key)).expect("alive key");
    }
    let mutations = t0.elapsed();

    let per_sec = |count: usize, d: std::time::Duration| count as f64 / d.as_secs_f64();
    // Floor pinning the PR 5 mutation-path regression (the quadratic
    // TouchedSet absorb) fixed in PR 6: deliberately far below healthy
    // release-build rates so only a real algorithmic regression — not a
    // slow CI runner — can trip it. Debug builds are exempt.
    const MUTATION_FLOOR_PAIRS_PER_SEC: f64 = 100_000.0;
    let mutation_rate = per_sec(MUTATION_PAIRS, mutations);
    Json::obj()
        .field("population", N)
        .field("attrs", ATTRS)
        .field("k", K)
        .field("distinct_queries", pool.len())
        .field("cold_queries_per_sec", per_sec(pool.len(), cold))
        .field("warm_queries_per_sec", per_sec(WARM_PASSES * pool.len(), warm))
        .field("mutation_pairs_per_sec", mutation_rate)
        .field("mutation_floor_pairs_per_sec", MUTATION_FLOOR_PAIRS_PER_SEC)
        .field(
            "mutation_throughput_ok",
            cfg!(debug_assertions) || mutation_rate >= MUTATION_FLOOR_PAIRS_PER_SEC,
        )
        .field("cold_wall_s", cold.as_secs_f64())
        .field("warm_wall_s", warm.as_secs_f64())
        .field("mutation_wall_s", mutations.as_secs_f64())
}

/// Fig 2 config at quick scale, 8 trials: sequential vs parallel runner,
/// plus the PR 2 cross-policy identity check (incremental memo
/// invalidation vs the wholesale-clear baseline). `pool` is the
/// `--threads` flag's pool (auto when absent).
fn track_workload(pool: Threads) -> Json {
    let mut cfg = BaseCfg::for_scale(Scale::Quick);
    cfg.trials = 8;
    let algos = standard_algos();
    let rs = RsConfig::default();

    let t0 = Instant::now();
    let seq = track_with_threads(&cfg, &algos, rs, &count_star_tracked, Threads::fixed(1));
    let seq_wall = t0.elapsed();

    let threads_used = pool.resolve(cfg.trials);
    let t0 = Instant::now();
    let par = track_with_threads(&cfg, &algos, rs, &count_star_tracked, pool);
    let par_wall = t0.elapsed();

    // Same track with the legacy wholesale-clear policy: estimator
    // records must be bit-identical — caching is invisible to figures.
    let mut wholesale_cfg = cfg.clone();
    wholesale_cfg.memo_policy = InvalidationPolicy::Wholesale;
    let t0 = Instant::now();
    let wholesale =
        track_with_threads(&wholesale_cfg, &algos, rs, &count_star_tracked, Threads::fixed(1));
    let wholesale_wall = t0.elapsed();

    Json::obj()
        .field("config", "fig02 quick scale")
        .field("initial", cfg.initial)
        .field("rounds", cfg.rounds)
        .field("trials", cfg.trials)
        .field("budget_g", cfg.g)
        .field("sequential_wall_s", seq_wall.as_secs_f64())
        .field("parallel_wall_s", par_wall.as_secs_f64())
        .field("parallel_threads", threads_used)
        .field("speedup", seq_wall.as_secs_f64() / par_wall.as_secs_f64().max(f64::MIN_POSITIVE))
        .field("bit_identical", outcomes_bit_identical(&seq, &par))
        .field("wholesale_sequential_wall_s", wholesale_wall.as_secs_f64())
        .field("bit_identical_across_policies", outcomes_bit_identical(&seq, &wholesale))
}

/// Order-sensitive FNV-1a-style fold of one answer into a running
/// fingerprint: classification, page keys, and raw measure bits.
fn fold_outcome(mut h: u64, out: &QueryOutcome) -> u64 {
    const P: u64 = 0x0000_0100_0000_01B3;
    let mut eat = |word: u64| {
        h ^= word;
        h = h.wrapping_mul(P);
    };
    eat(match out {
        QueryOutcome::Underflow => 1,
        QueryOutcome::Valid(_) => 2,
        QueryOutcome::Overflow(_) => 3,
    });
    for t in out.tuples() {
        eat(t.key().0);
        for m in t.measures() {
            eat(m.to_bits());
        }
    }
    h
}

/// Fig 5-style little-change rounds: a small batch mutates the database,
/// then a fixed overlapping query pool is re-asked — once per policy.
/// This is the workload incremental invalidation exists for: wholesale
/// clears pay a full cold pool every round, incremental keeps everything
/// the batch didn't touch warm.
fn memo_little_change() -> Json {
    const N: usize = 4_000;
    const K: usize = 100;
    const ATTRS: usize = 12;
    const ROUNDS: usize = 30;
    const INSERTS_PER_ROUND: usize = 4;

    let run = |policy: InvalidationPolicy| {
        let mut gen = AutosGenerator::with_attrs(ATTRS);
        let mut rng = StdRng::seed_from_u64(0xF165);
        let mut db = load_database(&mut gen, &mut rng, N, K, ScoringPolicy::default());
        db.set_invalidation_policy(policy);
        let pool = query_pool(&db.schema().clone());
        let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;
        let mut fresh_key = 20_000_000u64;
        let t0 = Instant::now();
        for round in 0..ROUNDS {
            // Little-change batch: 4 inserts, 2 deletes, 2 measure
            // updates (disjoint victims: one sample, split).
            let victims = db.sample_alive_keys(&mut rng, 4);
            let mut batch = UpdateBatch::empty();
            for key in victims.iter().take(2) {
                batch = batch.delete(*key);
            }
            for key in victims.iter().skip(2) {
                batch = batch.update_measures(*key, vec![round as f64]);
            }
            for _ in 0..INSERTS_PER_ROUND {
                let t = gen.make(&mut rng);
                fresh_key += 1;
                batch = batch.insert(Tuple::new(
                    TupleKey(fresh_key),
                    t.values().to_vec(),
                    t.measures().to_vec(),
                ));
            }
            db.apply(batch).expect("little-change batch is valid");
            for q in &pool {
                fingerprint = fold_outcome(fingerprint, &db.answer(q));
            }
        }
        let wall = t0.elapsed();
        (db, fingerprint, wall, pool.len())
    };

    let (inc_db, inc_fp, inc_wall, pool_len) = run(InvalidationPolicy::Incremental);
    let (who_db, who_fp, who_wall, _) = run(InvalidationPolicy::Wholesale);
    let (_, dis_fp, dis_wall, _) = run(InvalidationPolicy::Disabled);

    let inc_rate = inc_db.stats().cache_hit_rate();
    let who_rate = who_db.stats().cache_hit_rate();
    let policy_json = |db: &hidden_db::HiddenDatabase, wall: std::time::Duration| {
        let s = db.stats();
        let m = db.memo_stats();
        Json::obj()
            .field("wall_s", wall.as_secs_f64())
            .field("answered", s.answered)
            .field("cache_hits", s.cache_hits)
            .field("hit_rate", s.cache_hit_rate())
            .field("memo_len_final", db.memo_len())
            .field("invalidated", m.invalidated)
            .field("retained", m.retained)
            .field("evicted", m.evicted)
            .field("wholesale_clears", m.wholesale_clears)
    };
    Json::obj()
        .field("population", N)
        .field("rounds", ROUNDS)
        .field("pool_distinct_queries", pool_len)
        .field("batch_per_round", "4 inserts, 2 deletes, 2 measure updates")
        .field("incremental", policy_json(&inc_db, inc_wall))
        .field("wholesale", policy_json(&who_db, who_wall))
        .field("disabled_wall_s", dis_wall.as_secs_f64())
        .field("memo_consistent", inc_fp == who_fp && inc_fp == dis_fp)
        .field("memo_hit_rate_improved", inc_rate > who_rate)
        .field("hit_rate_gain", inc_rate - who_rate)
}

/// A distinct-query flood against a deliberately small memo capacity:
/// the CLOCK admission policy must keep the memo bounded (and actually
/// evict) instead of growing without limit as it did pre-PR-2.
fn memo_adversarial() -> Json {
    const N: usize = 2_000;
    const K: usize = 50;
    const ATTRS: usize = 12;
    const CAPACITY: usize = 512;
    const TARGET_QUERIES: usize = 4_096;

    let mut gen = AutosGenerator::with_attrs(ATTRS);
    let mut rng = StdRng::seed_from_u64(0xAD7E);
    let mut db = load_database(&mut gen, &mut rng, N, K, ScoringPolicy::default());
    db.set_memo_capacity(CAPACITY);
    let schema = db.schema().clone();
    let attrs: Vec<_> = schema.attr_ids().collect();

    let mut issued = 0usize;
    let mut max_len = 0usize;
    let t0 = Instant::now();
    'outer: for (i, &a0) in attrs.iter().enumerate() {
        for &a1 in attrs.iter().skip(i + 1) {
            for v0 in 0..schema.domain_size(a0) {
                for v1 in 0..schema.domain_size(a1) {
                    let q = ConjunctiveQuery::from_predicates([
                        Predicate::new(a0, hidden_db::value::ValueId(v0)),
                        Predicate::new(a1, hidden_db::value::ValueId(v1)),
                    ]);
                    db.answer(&q);
                    issued += 1;
                    max_len = max_len.max(db.memo_len());
                    if issued >= TARGET_QUERIES {
                        break 'outer;
                    }
                }
            }
        }
    }
    let wall = t0.elapsed();
    let m = db.memo_stats();
    Json::obj()
        .field("population", N)
        .field("capacity", CAPACITY)
        .field("distinct_queries", issued)
        .field("queries_per_sec", issued as f64 / wall.as_secs_f64())
        .field("max_memo_len", max_len)
        .field("memo_len_final", db.memo_len())
        .field("evicted", m.evicted)
        .field("memo_bounded", max_len <= CAPACITY && m.evicted > 0)
}

/// Deep-query pool: every 3-predicate combination over the first three
/// attributes plus a 4-predicate layer — the workload where the PR 2
/// rarest-list scan re-checked every other predicate per candidate.
fn deep_query_pool(schema: &hidden_db::schema::Schema) -> Vec<ConjunctiveQuery> {
    let attrs: Vec<_> = schema.attr_ids().collect();
    let mut pool = Vec::new();
    for v0 in 0..schema.domain_size(attrs[0]) {
        for v1 in 0..schema.domain_size(attrs[1]) {
            for v2 in 0..schema.domain_size(attrs[2]) {
                let q3 = ConjunctiveQuery::from_predicates([
                    Predicate::new(attrs[0], hidden_db::value::ValueId(v0)),
                    Predicate::new(attrs[1], hidden_db::value::ValueId(v1)),
                    Predicate::new(attrs[2], hidden_db::value::ValueId(v2)),
                ]);
                for v3 in 0..schema.domain_size(attrs[3]) {
                    pool.push(q3.with(attrs[3], hidden_db::value::ValueId(v3)));
                }
                pool.push(q3);
            }
        }
    }
    pool
}

/// PR 3: the galloping/bitset intersection engine vs the PR 2
/// rarest-list re-check scan on cold deep queries (memo disabled so
/// every answer evaluates). `intersect_identical` must always be true.
fn intersection_engine() -> Json {
    const N: usize = 20_000;
    const K: usize = 50;
    const ATTRS: usize = 12;
    const PASSES: usize = 6;

    let run = |config: EvalConfig| {
        let mut gen = AutosGenerator::with_attrs(ATTRS);
        let mut rng = StdRng::seed_from_u64(0x1A7E);
        let mut db = load_database(&mut gen, &mut rng, N, K, ScoringPolicy::default());
        db.set_invalidation_policy(InvalidationPolicy::Disabled);
        db.set_eval_config(config);
        let pool = deep_query_pool(&db.schema().clone());
        let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;
        let t0 = Instant::now();
        for _ in 0..PASSES {
            for q in &pool {
                fingerprint = fold_outcome(fingerprint, &db.answer(q));
            }
        }
        let wall = t0.elapsed();
        (db, fingerprint, wall, PASSES * pool.len())
    };

    let engine = EvalConfig::default();
    let recheck = EvalConfig { early_exit: false, intersect: IntersectPolicy::Recheck };
    let (engine_db, engine_fp, engine_wall, queries) = run(engine);
    let (_, recheck_fp, recheck_wall, _) = run(recheck);
    let stats = engine_db.eval_stats();
    let engine_qps = queries as f64 / engine_wall.as_secs_f64();
    let recheck_qps = queries as f64 / recheck_wall.as_secs_f64();
    Json::obj()
        .field("population", N)
        .field("k", K)
        .field("deep_queries_per_pass", queries / PASSES)
        .field("min_predicates", 3u64)
        .field("engine_queries_per_sec", engine_qps)
        .field("recheck_queries_per_sec", recheck_qps)
        .field("engine_speedup", engine_qps / recheck_qps)
        .field("gallop_intersections", stats.gallop_intersections)
        .field("bitset_intersections", stats.bitset_intersections)
        .field("blockmax_intersections", stats.blockmax_intersections)
        .field("blocks_scanned", stats.blocks_scanned)
        .field("blocks_skipped", stats.blocks_skipped)
        .field("pivot_advances", stats.pivot_advances)
        .field("early_exits", stats.early_exits)
        .field("intersect_identical", engine_fp == recheck_fp)
        .field("engine_beats_recheck", engine_qps > recheck_qps)
}

/// PR 8: the k-way block-max engine vs the pair strategies on
/// conjunctions of 2/3/4/6 half-density predicates — six binary
/// attributes populated from independent key bits, so every posting
/// list covers ≈ N/2 tuples and a `p`-predicate conjunction selects
/// ≈ N/2^p. This is the regime where two-rarest + residual re-check
/// pays the most per candidate: the pair engines intersect two ~60 k
/// lists and column-check the rest per survivor, while the block-max
/// engine merges all lists at once.
///
/// The ranking is the canonical block-max motivating distribution: the
/// top scorers live in one *hot* 256-slot block per segment, with the
/// hot scores interleaved across segments so every segment's bound is
/// within a hair of the global maximum. Segment-granular pruning is
/// blind — no segment bound ever drops under the top-`k` floor, so the
/// pair engines scan every segment end to end — while per-block bounds
/// still discriminate perfectly: the block-max engine visits the ~30
/// hot blocks and skips the other ~450 whole.
/// `kway_identical` must always be true;
/// `kway_speedup_on_multipredicate` asserts the ≥1.3× win on the
/// 4-predicate pool against the better pair engine.
fn intersection_kway() -> Json {
    const SEGMENTS: u64 = 30;
    const N: u64 = SEGMENTS * hidden_db::SEGMENT_SLOTS as u64;
    const K: usize = 25;
    const PASSES: usize = 10;
    const ATTRS: usize = 6;

    let block_slots = hidden_db::BLOCK_SLOTS as u64;
    let blocks_per_segment = hidden_db::BLOCKS_PER_SEGMENT as u64;
    // Hot block = the first block of each segment. Hot scores form one
    // global staircase dealt round-robin across segments (rank
    // `i * SEGMENTS + segment` within the hot set), so the true top-k
    // spans many segments and every segment bound stays near the top.
    // Cold tuples cycle far below.
    let measure = move |key: u64| {
        let in_block = key % block_slots;
        if (key / block_slots).is_multiple_of(blocks_per_segment) {
            1_000_000.0 - (in_block * SEGMENTS + key / (block_slots * blocks_per_segment)) as f64
        } else {
            in_block as f64
        }
    };
    let fresh = |config: EvalConfig| {
        let schema = hidden_db::schema::Schema::with_domain_sizes(&[2; ATTRS], &["m"])
            .expect("valid schema");
        let mut db =
            hidden_db::HiddenDatabase::new(schema, K, ScoringPolicy::ByMeasureDesc(MeasureId(0)));
        db.set_invalidation_policy(InvalidationPolicy::Disabled);
        db.set_eval_config(config);
        for key in 0..N {
            let values = (0..ATTRS)
                .map(|bit| hidden_db::value::ValueId(((key >> bit) & 1) as u32))
                .collect();
            db.insert(Tuple::new(TupleKey(key), values, vec![measure(key)])).expect("fresh key");
        }
        db
    };
    // All value combinations over the first `preds` attributes.
    let pool_for = |preds: usize| -> Vec<ConjunctiveQuery> {
        (0..1u32 << preds)
            .map(|mask| {
                ConjunctiveQuery::from_predicates((0..preds).map(|a| {
                    Predicate::new(
                        hidden_db::value::AttrId(a as u16),
                        hidden_db::value::ValueId((mask >> a) & 1),
                    )
                }))
            })
            .collect()
    };

    let policies = [
        ("blockmax", EvalConfig { early_exit: true, intersect: IntersectPolicy::BlockMax }),
        ("gallop", EvalConfig { early_exit: true, intersect: IntersectPolicy::Gallop }),
        ("bitset", EvalConfig { early_exit: true, intersect: IntersectPolicy::Bitset }),
        ("recheck", EvalConfig { early_exit: false, intersect: IntersectPolicy::Recheck }),
    ];
    let mut dbs: Vec<(&str, hidden_db::HiddenDatabase)> =
        policies.iter().map(|&(name, config)| (name, fresh(config))).collect();

    let mut report = Json::obj()
        .field("population", N)
        .field("k", K)
        .field("passes", PASSES)
        .field("list_density", "each of 6 binary attributes covers ~N/2");
    let mut all_identical = true;
    let mut speedup4 = 0.0f64;
    for preds in [2usize, 3, 4, 6] {
        let pool = pool_for(preds);
        let mut section = Json::obj().field("pool_queries", pool.len());
        let mut fingerprints: Vec<u64> = Vec::new();
        let mut qps_by_policy: Vec<f64> = Vec::new();
        for (name, db) in dbs.iter_mut() {
            let mut fp = 0xcbf2_9ce4_8422_2325u64;
            let t0 = Instant::now();
            for _ in 0..PASSES {
                for q in &pool {
                    fp = fold_outcome(fp, &db.answer(q));
                }
            }
            let wall = t0.elapsed();
            let qps = (PASSES * pool.len()) as f64 / wall.as_secs_f64();
            fingerprints.push(fp);
            qps_by_policy.push(qps);
            section = section.field(&format!("{name}_queries_per_sec"), qps);
        }
        let identical = fingerprints.iter().all(|&fp| fp == fingerprints[0]);
        all_identical &= identical;
        section = section.field("identical", identical);
        if preds == 4 {
            // policies[0] is blockmax; [1]/[2] are the pair engines.
            speedup4 = qps_by_policy[0] / qps_by_policy[1].max(qps_by_policy[2]);
            section = section.field("blockmax_vs_best_pair_speedup", speedup4);
        }
        report = report.field(&format!("preds_{preds}"), section);
    }
    let stats = dbs[0].1.eval_stats();
    report
        .field("blockmax_intersections", stats.blockmax_intersections)
        .field("blocks_scanned", stats.blocks_scanned)
        .field("blocks_skipped", stats.blocks_skipped)
        .field("pivot_advances", stats.pivot_advances)
        .field("early_exits", stats.early_exits)
        .field("speedup_4pred", speedup4)
        .field("kway_identical", all_identical)
        .field("kway_speedup_on_multipredicate", speedup4 >= 1.3)
}

/// PR 3: overflow-heavy `NewestFirst` scans with the heap-floor early
/// exit on vs off. `early_exit_consistent` must always be true.
fn early_exit_workload() -> Json {
    const N: usize = 30_000;
    const K: usize = 100;
    const ATTRS: usize = 12;
    const PASSES: usize = 40;

    let run = |early_exit: bool| {
        let mut gen = AutosGenerator::with_attrs(ATTRS);
        let mut rng = StdRng::seed_from_u64(0xEE17);
        let mut db = load_database(&mut gen, &mut rng, N, K, ScoringPolicy::NewestFirst);
        db.set_invalidation_policy(InvalidationPolicy::Disabled);
        db.set_eval_config(EvalConfig { early_exit, ..EvalConfig::default() });
        let schema = db.schema().clone();
        // Root + every depth-1 query: the popular ones overflow hard.
        let mut pool = vec![ConjunctiveQuery::select_all()];
        for a in schema.attr_ids() {
            for v in 0..schema.domain_size(a) {
                pool.push(ConjunctiveQuery::from_predicates([Predicate::new(
                    a,
                    hidden_db::value::ValueId(v),
                )]));
            }
        }
        let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;
        let t0 = Instant::now();
        for _ in 0..PASSES {
            for q in &pool {
                fingerprint = fold_outcome(fingerprint, &db.answer(q));
            }
        }
        let wall = t0.elapsed();
        (db, fingerprint, wall, PASSES * pool.len())
    };

    let (exit_db, exit_fp, exit_wall, queries) = run(true);
    let (_, full_fp, full_wall, _) = run(false);
    let stats = exit_db.eval_stats();
    Json::obj()
        .field("population", N)
        .field("k", K)
        .field("scoring", "NewestFirst")
        .field("queries", queries)
        .field("early_exit_queries_per_sec", queries as f64 / exit_wall.as_secs_f64())
        .field("exhaustive_queries_per_sec", queries as f64 / full_wall.as_secs_f64())
        .field("speedup", full_wall.as_secs_f64() / exit_wall.as_secs_f64().max(f64::MIN_POSITIVE))
        .field("early_exits", stats.early_exits)
        .field("segments_skipped", stats.segments_skipped)
        .field("early_exit_consistent", exit_fp == full_fp)
}

/// PR 3: ground truth fanned out over store segments. The segment-
/// ordered replay merge must reproduce the sequential sweep bit-for-bit
/// at every thread count (`ground_truth_bit_identical`).
fn ground_truth_parallelism() -> Json {
    const N: usize = 60_000;
    const K: usize = 100;
    const ATTRS: usize = 12;
    const PASSES: usize = 10;

    let mut gen = AutosGenerator::with_attrs(ATTRS);
    let mut rng = StdRng::seed_from_u64(0x67A7);
    let mut db = load_database(&mut gen, &mut rng, N, K, ScoringPolicy::default());
    // Fragment segments so the fan-out sees uneven alive counts.
    for victim in db.sample_alive_keys(&mut rng, N / 8) {
        db.delete(victim).expect("sampled keys are alive");
    }
    let schema = db.schema().clone();
    let attrs: Vec<_> = schema.attr_ids().collect();
    let cond =
        ConjunctiveQuery::from_predicates([Predicate::new(attrs[0], hidden_db::value::ValueId(0))]);

    let seq_count = db.exact_count(Some(&cond));
    let seq_sum = db.exact_sum(Some(&cond), |t| t.measure(MeasureId(0)));
    let seq_root = db.exact_sum(None, |t| t.measure(MeasureId(0)));

    let mut bit_identical = true;
    let mut per_threads = Json::obj();
    let mut seq_wall_s = 0.0;
    for workers in [1usize, 2, 4, 7] {
        let threads = Threads::fixed(workers);
        let t0 = Instant::now();
        let mut count = 0u64;
        let mut sum = 0.0;
        let mut root = 0.0;
        for _ in 0..PASSES {
            count = db.exact_count_threads(Some(&cond), threads);
            sum = db.exact_sum_threads(Some(&cond), |t| t.measure(MeasureId(0)), threads);
            root = db.exact_sum_threads(None, |t| t.measure(MeasureId(0)), threads);
        }
        let wall = t0.elapsed().as_secs_f64() / PASSES as f64;
        if workers == 1 {
            seq_wall_s = wall;
        }
        bit_identical &= count == seq_count
            && sum.to_bits() == seq_sum.to_bits()
            && root.to_bits() == seq_root.to_bits();
        per_threads = per_threads.field(
            &workers.to_string(),
            Json::obj()
                .field("wall_s_per_pass", wall)
                .field("speedup_vs_1", seq_wall_s / wall.max(f64::MIN_POSITIVE)),
        );
    }
    Json::obj()
        .field("population", N)
        .field("alive", db.len())
        .field("segments", N.div_ceil(hidden_db::SEGMENT_SLOTS))
        .field("passes", PASSES)
        .field("per_threads", per_threads)
        .field("ground_truth_bit_identical", bit_identical)
}

/// PR 5: the delete-heavy `ByMeasureDesc` pool where stale segment
/// bounds disarm the early exit. Every segment starts with the same
/// measure distribution (all bounds near the global maximum); the churn
/// then purges the high scorers everywhere *except* the last segment —
/// a category-style purge that leaves the alive maxima skewed while
/// every stale bound still sits at the old global maximum. Post-churn,
/// overflowing scans cannot skip a single segment (`skips_before`, the
/// state of main); one `compact()` recomputes exact bounds and the same
/// pool skips nearly everything (`early_exit_rearmed`) with
/// bit-identical answers (`compaction_identical`).
fn compaction_workload() -> Json {
    const SEGS: usize = 6;
    const K: usize = 100;
    const PASSES: usize = 40;
    const CUTOFF: u64 = 500_000;

    let n = (SEGS * hidden_db::SEGMENT_SLOTS) as u64;
    let measure = |key: u64| (key.wrapping_mul(2654435761) % 1_000_000) as f64;
    let schema = hidden_db::schema::Schema::with_domain_sizes(&[4, 5], &["m"]).unwrap();
    let mut db = hidden_db::HiddenDatabase::new(
        schema.clone(),
        K,
        ScoringPolicy::ByMeasureDesc(MeasureId(0)),
    );
    db.set_invalidation_policy(InvalidationPolicy::Disabled);
    for key in 0..n {
        db.insert(Tuple::new(
            TupleKey(key),
            vec![
                hidden_db::value::ValueId((key % 4) as u32),
                hidden_db::value::ValueId((key % 5) as u32),
            ],
            vec![measure(key)],
        ))
        .expect("unique keys");
    }
    // The purge: high scorers die everywhere but the last segment.
    let last_seg_start = ((SEGS - 1) * hidden_db::SEGMENT_SLOTS) as u64;
    for key in 0..last_seg_start {
        if measure(key) >= CUTOFF as f64 {
            db.delete(TupleKey(key)).expect("alive key");
        }
    }
    let stale_segments = db.stale_segment_count();

    // Root + every depth-1 query: all overflow hard at k=100.
    let mut pool = vec![ConjunctiveQuery::select_all()];
    for a in schema.attr_ids() {
        for v in 0..schema.domain_size(a) {
            pool.push(ConjunctiveQuery::from_predicates([Predicate::new(
                a,
                hidden_db::value::ValueId(v),
            )]));
        }
    }
    let run = |db: &mut hidden_db::HiddenDatabase| {
        let before = db.eval_stats();
        let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;
        let t0 = Instant::now();
        for _ in 0..PASSES {
            for q in &pool {
                fingerprint = fold_outcome(fingerprint, &db.answer(q));
            }
        }
        let wall = t0.elapsed();
        let after = db.eval_stats();
        let skips = after.segments_skipped - before.segments_skipped;
        let exits = after.early_exits - before.early_exits;
        (fingerprint, wall, skips, exits)
    };

    let mut stale_db = db.clone();
    let (fp_before, wall_before, skips_before, exits_before) = run(&mut stale_db);

    let report = db.compact();
    let (fp_after, wall_after, skips_after, exits_after) = run(&mut db);

    // Third opinion: the exhaustive (early-exit-off) engine on the
    // compacted store.
    let mut exhaustive = db.clone();
    exhaustive.set_eval_config(EvalConfig { early_exit: false, ..EvalConfig::default() });
    let (fp_exhaustive, _, _, _) = run(&mut exhaustive);

    let queries = PASSES * pool.len();
    let qps_before = queries as f64 / wall_before.as_secs_f64();
    let qps_after = queries as f64 / wall_after.as_secs_f64();
    Json::obj()
        .field("population", n)
        .field("alive", db.len())
        .field("segments", SEGS)
        .field("k", K)
        .field("scoring", "ByMeasureDesc")
        .field("stale_segments_after_churn", stale_segments)
        .field("bounds_tightened", report.bounds_tightened)
        .field("postings_purged", report.postings_purged)
        .field("maintenance_slots_scanned", report.slots_scanned)
        .field("queries", queries)
        .field("stale_queries_per_sec", qps_before)
        .field("compacted_queries_per_sec", qps_after)
        .field("speedup", qps_after / qps_before.max(f64::MIN_POSITIVE))
        .field("early_exits_before", exits_before)
        .field("early_exits_after", exits_after)
        .field("segment_skips_before", skips_before)
        .field("segment_skips_after", skips_after)
        .field("early_exit_rearmed", skips_before == 0 && skips_after > 0)
        .field("compaction_identical", fp_before == fp_after && fp_after == fp_exhaustive)
}

/// PR 5: cross-round memo revalidation on a churn-heavy Fig 10-style
/// pool (inserts + deletes + measure updates every round, a fixed
/// overlapping query pool re-asked each round). The PR 2 incremental
/// baseline drops every affected entry and re-evaluates from cold;
/// revalidation demotes spared overflow pages and resurrects them at the
/// next ask. `revalidation_consistent` (three-way answer fingerprints)
/// and `revalidation_hit_rate_improved` (strictly above the PR 2
/// baseline) must always hold.
fn revalidation_workload() -> Json {
    const N: usize = 4_000;
    const K: usize = 100;
    const ATTRS: usize = 12;
    const ROUNDS: usize = 30;
    const INSERTS_PER_ROUND: usize = 6;

    let run = |policy: InvalidationPolicy, revalidation: bool| {
        let mut gen = AutosGenerator::with_attrs(ATTRS);
        let mut rng = StdRng::seed_from_u64(0xF110);
        let mut db = load_database(&mut gen, &mut rng, N, K, ScoringPolicy::default());
        db.set_invalidation_policy(policy);
        db.set_revalidation(revalidation);
        let pool = query_pool(&db.schema().clone());
        let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;
        let mut fresh_key = 30_000_000u64;
        let t0 = Instant::now();
        for round in 0..ROUNDS {
            // Churn-heavy batch: 6 inserts, 6 deletes, 2 measure updates.
            let victims = db.sample_alive_keys(&mut rng, 8);
            let mut batch = UpdateBatch::empty();
            for key in victims.iter().take(6) {
                batch = batch.delete(*key);
            }
            for key in victims.iter().skip(6) {
                batch = batch.update_measures(*key, vec![round as f64]);
            }
            for _ in 0..INSERTS_PER_ROUND {
                let t = gen.make(&mut rng);
                fresh_key += 1;
                batch = batch.insert(Tuple::new(
                    TupleKey(fresh_key),
                    t.values().to_vec(),
                    t.measures().to_vec(),
                ));
            }
            db.apply(batch).expect("churn batch is valid");
            for q in &pool {
                fingerprint = fold_outcome(fingerprint, &db.answer(q));
            }
        }
        let wall = t0.elapsed();
        (db, fingerprint, wall)
    };

    let (reval_db, reval_fp, reval_wall) = run(InvalidationPolicy::Incremental, true);
    let (base_db, base_fp, base_wall) = run(InvalidationPolicy::Incremental, false);
    let (_, oracle_fp, _) = run(InvalidationPolicy::Disabled, false);

    let reval_rate = reval_db.stats().cache_hit_rate();
    let base_rate = base_db.stats().cache_hit_rate();
    let m = reval_db.memo_stats();
    Json::obj()
        .field("population", N)
        .field("rounds", ROUNDS)
        .field("batch_per_round", "6 inserts, 6 deletes, 2 measure updates")
        .field("revalidation_wall_s", reval_wall.as_secs_f64())
        .field("baseline_wall_s", base_wall.as_secs_f64())
        .field("revalidation_hit_rate", reval_rate)
        .field("baseline_hit_rate", base_rate)
        .field("hit_rate_gain", reval_rate - base_rate)
        .field("demoted", m.demoted)
        .field("resurrected", m.resurrected)
        .field("revalidation_failed", m.revalidation_failed)
        .field(
            "resurrection_rate",
            m.resurrected as f64 / (m.resurrected + m.revalidation_failed).max(1) as f64,
        )
        .field("revalidation_consistent", reval_fp == base_fp && reval_fp == oracle_fp)
        .field("revalidation_hit_rate_improved", reval_rate > base_rate)
}

/// PR 6: the fault-injected interface stack over a small exhaustive
/// signature pool (schema `[3, 4, 2]`, so every drill terminates fast
/// and the pool is enumerable).
///
/// Three measurements:
/// 1. **Wrapper overhead when quiet** — the same drill pool bare vs
///    through `FaultyBackend(off) + ResilientBackend`; the wrapper adds
///    a schedule decision and a match per issue, so the fraction must
///    stay small (`fault_off_overhead_near_zero`; generous slack because
///    warm drills are memo-hit cheap and timing-noisy). The experiment
///    runner skips the wrapper entirely at `--faults off`, so its
///    structural overhead is exactly zero — this measures the worst
///    case of leaving the layer permanently interposed.
/// 2. **Recovered-storm identity** — seeded storms at rates 0.1/0.3/0.5
///    recovered by the default policy must reproduce every fault-free
///    drill bit-for-bit with zero give-ups
///    (`faults_identical_when_recovered`).
/// 3. **Quality vs fault rate** — the Fig 2 tracked workload with
///    `--faults seeded:<rate>`: burned retries shrink the effective
///    per-round budget, so accuracy decays gracefully as the rate
///    climbs (reported, not asserted — the decay is the figure).
fn fault_recovery(pool: Threads) -> Json {
    const N: u64 = 2_000;
    const K: usize = 50;
    const PASSES: usize = 60;
    const STORM_RATES: [f64; 3] = [0.1, 0.3, 0.5];

    let schema = hidden_db::schema::Schema::with_domain_sizes(&[3, 4, 2], &["m"]).unwrap();
    let mut db = hidden_db::HiddenDatabase::new(schema.clone(), K, ScoringPolicy::default());
    let mut rng = StdRng::seed_from_u64(0xFA17);
    for t in 0..N {
        db.insert(Tuple::new(
            TupleKey(t),
            vec![
                hidden_db::value::ValueId(rng.random_range(0..3)),
                hidden_db::value::ValueId(rng.random_range(0..4)),
                hidden_db::value::ValueId(rng.random_range(0..2)),
            ],
            vec![rng.random_range(1..100) as f64],
        ))
        .expect("unique keys");
    }
    let tree = QueryTree::full(&schema);
    let sigs = enumerate_all(&tree);
    let spec = AggregateSpec::sum_measure(MeasureId(0), ConjunctiveQuery::select_all());
    let digest = |out: &query_tree::DrillOutcome| {
        let sample = ht_sample(&spec, &tree, out);
        (out.depth, out.cost, sample.count.to_bits(), sample.sum.to_bits())
    };

    // Bare reference (also warms the memo so both timed passes compare
    // steady-state costs).
    let mut reference = Vec::with_capacity(sigs.len());
    for sig in &sigs {
        let mut s = SearchSession::unlimited(&mut db);
        reference.push(digest(&drill_from_root(&tree, sig, &mut s).expect("unlimited budget")));
    }
    let t0 = Instant::now();
    for _ in 0..PASSES {
        for sig in &sigs {
            let mut s = SearchSession::unlimited(&mut db);
            std::hint::black_box(drill_from_root(&tree, sig, &mut s).expect("unlimited budget"));
        }
    }
    let bare_wall = t0.elapsed();

    // The full stack with a quiet schedule: identical answers, near-zero
    // added cost.
    let mut off_identical = true;
    let t0 = Instant::now();
    for _ in 0..PASSES {
        for (i, sig) in sigs.iter().enumerate() {
            let session = SearchSession::unlimited(&mut db);
            let faulty = FaultyBackend::new(session, FaultSchedule::off());
            let mut stack = ResilientBackend::new(faulty, RetryPolicy::default(), 0xD1CE);
            let out = drill_from_root(&tree, sig, &mut stack).expect("quiet schedule");
            off_identical &= digest(&out) == reference[i];
        }
    }
    let off_wall = t0.elapsed();
    let overhead_frac =
        off_wall.as_secs_f64() / bare_wall.as_secs_f64().max(f64::MIN_POSITIVE) - 1.0;
    let off_overhead_near_zero =
        overhead_frac < 0.5 || (off_wall.as_secs_f64() - bare_wall.as_secs_f64()).abs() < 0.1;

    // Recovered storms: every drill must come back bit-identical with
    // zero give-ups (the default burst cap sits below the retry budget).
    let mut storm_identical = true;
    let mut retries = 0u64;
    let mut recovered = 0u64;
    let mut gave_up = 0u64;
    for (r, &rate) in STORM_RATES.iter().enumerate() {
        for (i, sig) in sigs.iter().enumerate() {
            let seed = 0x00FA_0000 ^ ((r as u64) << 32) ^ i as u64;
            let session = SearchSession::unlimited(&mut db);
            let faulty = FaultyBackend::new(session, FaultSchedule::seeded(seed, rate));
            let mut stack = ResilientBackend::new(faulty, RetryPolicy::default(), seed ^ 0x1ABE);
            let out = drill_from_root(&tree, sig, &mut stack).expect("recoverable storm");
            let stats = stack.stats();
            retries += stats.retries;
            recovered += stats.recovered;
            gave_up += stats.gave_up;
            storm_identical &= digest(&out) == reference[i];
        }
    }

    // Quality vs fault rate on the tracked workload: the burn shrinks
    // the effective budget, accuracy decays gracefully.
    let mut sweep = Json::obj();
    for rate in [0.0f64, 0.2, 0.4] {
        let mut cfg = BaseCfg::for_scale(Scale::Quick);
        cfg.initial = 1_500;
        cfg.rounds = 6;
        cfg.trials = 2;
        cfg.faults = if rate == 0.0 { FaultsMode::Off } else { FaultsMode::Seeded { rate } };
        let t0 = Instant::now();
        let out = track_with_threads(
            &cfg,
            &standard_algos(),
            RsConfig::default(),
            &count_star_tracked,
            pool,
        );
        let wall = t0.elapsed();
        let mut per = Json::obj().field("wall_s", wall.as_secs_f64());
        for a in &out.algos {
            per = per.field(
                a.name,
                Json::obj()
                    .field("tail_rel_err", tail_mean(&a.rel_err, 3))
                    .field("cum_queries_final", a.cum_queries.mean(cfg.rounds - 1)),
            );
        }
        sweep = sweep.field(&format!("rate_{rate}"), per);
    }

    Json::obj()
        .field("population", N)
        .field("signatures", sigs.len())
        .field("passes", PASSES)
        .field("bare_wall_s", bare_wall.as_secs_f64())
        .field("wrapped_off_wall_s", off_wall.as_secs_f64())
        .field("off_overhead_frac", overhead_frac)
        .field("fault_off_overhead_near_zero", off_overhead_near_zero && off_identical)
        .field("storm_rates", "0.1, 0.3, 0.5")
        .field("storm_retries", retries)
        .field("storm_recovered", recovered)
        .field("storm_gave_up", gave_up)
        .field("faults_identical_when_recovered", storm_identical && gave_up == 0)
        .field("quality_vs_rate", sweep)
}

fn num_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// PR 7: the shared concurrent service. For each client count `C` in
/// {1, 2, 4, 8}, `C` reader threads run deterministic per-client query
/// scripts against a session pinned to the epoch-0 snapshot while a
/// writer thread churns the service through the apply queue (deletes +
/// inserts every batch, pressure-triggered auto-compaction on). Each
/// client's answer fingerprint must equal the one computed from a
/// private `HiddenDatabase` frozen at epoch 0 — at every client count
/// and whatever interleaving the scheduler produces
/// (`shared_service_bit_identical`).
fn shared_service() -> Json {
    const N: usize = 10_000;
    const K: usize = 100;
    const ATTRS: usize = 12;
    const SCRIPT_PASSES: usize = 4;
    const CHURN_BATCHES: u64 = 50;
    const DELETES_PER_BATCH: u64 = 20;
    const CLIENTS: [usize; 4] = [1, 2, 4, 8];

    let mut gen = AutosGenerator::with_attrs(ATTRS);
    let mut rng = StdRng::seed_from_u64(0x5E4C);
    let reference = load_database(&mut gen, &mut rng, N, K, ScoringPolicy::default());
    let pool = query_pool(&reference.schema().clone());
    let script_len = SCRIPT_PASSES * pool.len();

    // Expected fingerprints per client slot, from a private copy frozen
    // at epoch 0. Client `c` walks the pool starting at offset `c * 17`
    // so concurrent clients never ride each other's issue order.
    let max_clients = *CLIENTS.iter().max().unwrap();
    let expected: Vec<u64> = (0..max_clients)
        .map(|c| {
            let mut frozen = reference.clone();
            let mut fp = 0xcbf2_9ce4_8422_2325u64;
            for i in 0..script_len {
                let q = &pool[(i + c * 17) % pool.len()];
                fp = fold_outcome(fp, &frozen.answer(q));
            }
            fp
        })
        .collect();

    let mut bit_identical = true;
    let mut per_clients = Json::obj();
    let mut single_qps = 0.0;
    let mut last_stats = hidden_db::ServiceStats::default();
    let mut last_memo = hidden_db::SharedMemoStats::default();
    for &clients in &CLIENTS {
        // A fresh service per client count so every run starts with a
        // cold shared memo and identical churn, making the throughput
        // numbers comparable.
        let service = DbService::with_auto_maintain(
            reference.clone(),
            AutoMaintain::Pressure { threshold: 256 },
        );
        let snap0 = service.snapshot();
        let t0 = Instant::now();
        let fingerprints: Vec<u64> = std::thread::scope(|scope| {
            let writer = service.clone();
            scope.spawn(move || {
                let mut gen = AutosGenerator::with_attrs(ATTRS);
                let mut rng = StdRng::seed_from_u64(0xC402);
                let mut fresh_key = 40_000_000u64;
                for round in 0..CHURN_BATCHES {
                    let mut batch = UpdateBatch::empty();
                    let base = round * DELETES_PER_BATCH;
                    for key in base..base + DELETES_PER_BATCH {
                        batch = batch.delete(TupleKey(key));
                    }
                    for _ in 0..DELETES_PER_BATCH {
                        let t = gen.make(&mut rng);
                        fresh_key += 1;
                        batch = batch.insert(Tuple::new(
                            TupleKey(fresh_key),
                            t.values().to_vec(),
                            t.measures().to_vec(),
                        ));
                    }
                    writer.apply(batch).expect("churn batch is valid");
                }
            });
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let mut session = service.session_at(std::sync::Arc::clone(&snap0), u64::MAX);
                    let pool = &pool;
                    scope.spawn(move || {
                        let mut fp = 0xcbf2_9ce4_8422_2325u64;
                        for i in 0..script_len {
                            let q = &pool[(i + c * 17) % pool.len()];
                            fp = fold_outcome(fp, &session.issue(q).expect("unlimited budget"));
                        }
                        fp
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
        });
        let wall = t0.elapsed();
        for (c, fp) in fingerprints.iter().enumerate() {
            bit_identical &= *fp == expected[c];
        }
        let qps = (clients * script_len) as f64 / wall.as_secs_f64();
        if clients == 1 {
            single_qps = qps;
        }
        per_clients = per_clients.field(
            &clients.to_string(),
            Json::obj()
                .field("wall_s", wall.as_secs_f64())
                .field("aggregate_queries_per_sec", qps)
                .field("scaling_vs_1", qps / single_qps.max(f64::MIN_POSITIVE)),
        );
        last_stats = service.stats();
        last_memo = service.memo_stats();
    }

    Json::obj()
        .field("population", N)
        .field("k", K)
        .field("distinct_queries", pool.len())
        .field("script_len_per_client", script_len)
        .field("churn_batches", CHURN_BATCHES)
        .field("auto_maintain", "pressure:256")
        .field("per_clients", per_clients)
        .field("batches_applied", last_stats.batches_applied)
        .field("epochs_published", last_stats.epochs_published)
        .field("auto_maintain_runs", last_stats.auto_maintain_runs)
        .field("memo_hits", last_memo.hits)
        .field("memo_misses", last_memo.misses)
        .field("memo_hit_rate", last_memo.hit_rate())
        .field("shared_service_bit_identical", bit_identical)
}

/// PR 9: the out-of-core persistence tier on a fig12-style size sweep.
///
/// Per size `n`: the same deterministic pool (6 attributes and one
/// measure derived from multiplicative key hashes) is built three ways —
/// in RAM, and paged at resident budgets of `segments/4` and
/// `segments/16` (min 2, pager-clamped) with the tier attached from the
/// first insert, so residency is bounded through the *entire* build, not
/// just at query time. Each build then takes the same churn (a
/// contiguous 2 % delete window, strided measure updates, and fresh
/// inserts that reuse freed slots), answers the same query pool, and
/// computes the same ground-truth aggregates.
///
/// `persistence_identical`: every fingerprint and aggregate bit agrees
/// across all three builds at every size — paging is invisible to
/// answers. `resident_memory_bounded`: every paged build's
/// `peak_resident_segments` stays within its budget. At the largest
/// size the 1/4-budget build is also checkpointed and reopened
/// (`open_persistent`); the reopened database must reproduce the query
/// fingerprint, and both walls are recorded.
fn persistence_tier() -> Json {
    const DOMAINS: [u32; 6] = [4, 3, 5, 2, 6, 2];
    const K: usize = 100;
    // Debug builds sweep toy sizes (the flags still must hold); the
    // committed report is release-built at the full fig12-style sweep.
    let sizes: &[usize] =
        if cfg!(debug_assertions) { &[20_000, 60_000] } else { &[100_000, 1_000_000, 10_000_000] };

    let schema = hidden_db::schema::Schema::with_domain_sizes(&DOMAINS, &["m"]).unwrap();
    let value_of = |key: u64, a: usize| {
        (key.wrapping_mul(2654435761).rotate_left(a as u32 * 7) % u64::from(DOMAINS[a])) as u32
    };
    let measure_of = |key: u64| (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as f64;
    let tuple_of = |key: u64| {
        Tuple::new(
            TupleKey(key),
            (0..DOMAINS.len()).map(|a| hidden_db::value::ValueId(value_of(key, a))).collect(),
            vec![measure_of(key)],
        )
    };
    let pool = {
        let mut pool = vec![ConjunctiveQuery::select_all()];
        for a in [0u16, 1] {
            for v in 0..DOMAINS[a as usize] {
                pool.push(ConjunctiveQuery::from_predicates([Predicate::new(
                    hidden_db::value::AttrId(a),
                    hidden_db::value::ValueId(v),
                )]));
            }
        }
        pool.push(ConjunctiveQuery::from_predicates([
            Predicate::new(hidden_db::value::AttrId(2), hidden_db::value::ValueId(1)),
            Predicate::new(hidden_db::value::AttrId(4), hidden_db::value::ValueId(3)),
        ]));
        pool
    };

    struct BuildOut {
        db: hidden_db::HiddenDatabase,
        build_wall_s: f64,
        query_wall_s: f64,
        fingerprint: u64,
        count: u64,
        sum_bits: u64,
    }
    let run = |n: usize, persist: Option<(&std::path::Path, usize)>| -> BuildOut {
        let mut db = hidden_db::HiddenDatabase::new(schema.clone(), K, ScoringPolicy::default());
        // No memo: every answer must travel the paged eval path.
        db.set_invalidation_policy(InvalidationPolicy::Disabled);
        if let Some((dir, budget)) = persist {
            db.enable_persist(&hidden_db::PersistConfig::new(dir, budget))
                .expect("--persist dir must be writable");
        }
        let t0 = Instant::now();
        for key in 0..n as u64 {
            db.insert(tuple_of(key)).expect("unique keys");
        }
        // Churn: a contiguous 2 % delete window (sequential segments, so
        // the paged builds fault a bounded strip), strided measure
        // updates, then fresh inserts that pop the freed slots.
        let lo = (n / 2) as u64;
        let hi = lo + (n / 50) as u64;
        for key in lo..hi {
            db.delete(TupleKey(key)).expect("alive key");
        }
        for key in (0..lo).step_by(2_048) {
            db.update_measures(TupleKey(key), vec![measure_of(key) + 1.0]).expect("alive key");
        }
        for i in 0..(n / 200) as u64 {
            db.insert(tuple_of(10 * n as u64 + i)).expect("fresh key");
        }
        let build_wall_s = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;
        for q in &pool {
            fingerprint = fold_outcome(fingerprint, &db.answer(q));
        }
        let count = db.exact_count(None);
        let sum_bits = db.exact_sum(None, |t| t.measure(MeasureId(0))).to_bits();
        let query_wall_s = t0.elapsed().as_secs_f64();
        BuildOut { db, build_wall_s, query_wall_s, fingerprint, count, sum_bits }
    };

    let scratch =
        std::env::temp_dir().join(format!("aggtrack-persist-bench-{}", std::process::id()));
    let mut report = Json::obj()
        .field("attrs", DOMAINS.len())
        .field("k", K)
        .field("pool_queries", pool.len())
        .field("churn", "2% contiguous deletes, 1/2048 measure updates, 0.5% reinserts");
    let mut identical = true;
    let mut bounded = true;
    let largest = *sizes.last().unwrap();
    for &n in sizes {
        let segments = (n + n / 200).div_ceil(hidden_db::SEGMENT_SLOTS);
        let ram = run(n, None);
        let mut section = Json::obj().field("segments", segments).field(
            "in_ram",
            Json::obj()
                .field("build_wall_s", ram.build_wall_s)
                .field("query_wall_s", ram.query_wall_s)
                .field("inserts_per_sec", n as f64 / ram.build_wall_s.max(f64::MIN_POSITIVE)),
        );
        for (label, frac) in [("budget_quarter", 4usize), ("budget_sixteenth", 16)] {
            let budget = (segments / frac).max(2);
            let dir = scratch.join(format!("{n}-{frac}"));
            let out = run(n, Some((&dir, budget)));
            let stats = out.db.persist_stats();
            identical &= out.fingerprint == ram.fingerprint
                && out.count == ram.count
                && out.sum_bits == ram.sum_bits;
            bounded &= stats.peak_resident_segments <= budget as u64;
            let mut sub = Json::obj()
                .field("resident_budget", budget)
                .field("build_wall_s", out.build_wall_s)
                .field("query_wall_s", out.query_wall_s)
                .field("inserts_per_sec", n as f64 / out.build_wall_s.max(f64::MIN_POSITIVE))
                .field("segments_spilled", stats.segments_spilled)
                .field("segments_faulted", stats.segments_faulted)
                .field("evictions", stats.evictions)
                .field("bytes_on_disk", stats.bytes_on_disk)
                .field("resident_segments", stats.resident_segments)
                .field("peak_resident_segments", stats.peak_resident_segments);
            // Warm restart at the largest size, 1/4 budget: checkpoint
            // the churned pool, reopen from the journal, re-answer.
            if n == largest && frac == 4 {
                let t0 = Instant::now();
                out.db.checkpoint().expect("checkpoint must succeed");
                let checkpoint_wall_s = t0.elapsed().as_secs_f64();
                drop(out);
                let t0 = Instant::now();
                let mut reopened = hidden_db::HiddenDatabase::open_persistent(
                    &hidden_db::PersistConfig::new(&dir, budget),
                )
                .expect("journal has a durable snapshot");
                let reopen_wall_s = t0.elapsed().as_secs_f64();
                reopened.set_invalidation_policy(InvalidationPolicy::Disabled);
                let mut fp = 0xcbf2_9ce4_8422_2325u64;
                for q in &pool {
                    fp = fold_outcome(fp, &reopened.answer(q));
                }
                identical &= fp == ram.fingerprint;
                sub = sub
                    .field("checkpoint_wall_s", checkpoint_wall_s)
                    .field("reopen_wall_s", reopen_wall_s)
                    .field("reopened_identical", fp == ram.fingerprint);
            }
            section = section.field(label, sub);
            let _ = std::fs::remove_dir_all(&dir);
        }
        report = report.field(&format!("size_{n}"), section);
    }
    let _ = std::fs::remove_dir_all(&scratch);
    report.field("persistence_identical", identical).field("resident_memory_bounded", bounded)
}

/// PR 10: the `agg_stats::resample` bootstrap engine.
///
/// Three sub-experiments:
/// 1. **Replicate sweep** — sequential replicate throughput of a mean
///    statistic over a fixed 4 096-point sample at 100/1 000/10 000
///    replicates, with the percentile-CI width per count (the width
///    should stabilise as B grows; the cost is linear in B).
/// 2. **Parallel scaling** — the same statistic at 20 000 replicates
///    fanned out over 1/2/4/8 workers for every variant (n-out-of-n,
///    m-out-of-n, block). Per-replicate RNG streams are derived from
///    the replicate index alone, so every replicate *vector* must be
///    bitwise equal to the sequential one
///    (`bootstrap_parallel_identical`).
/// 3. **Coverage** — 20 independent seeded experiments, each 12
///    REISSUE trials on a churning pool. Two interval families are
///    checked against the ground-truth ratio 1.0 (REISSUE is
///    unbiased): per experiment, the block-bootstrap 95 % interval of
///    the mean tail ratio (blocks are whole per-trial tail windows, so
///    trans-round dependence survives resampling), and per round, the
///    n-out-of-n 95 % interval of the across-trial mean. A trial's
///    *own* round series is useless here — REISSUE freezes its drill
///    pool at round 1, so within-trial resampling brackets that
///    trial's plateau, not the truth; coverage has to come from
///    resampling across trials. Percentile intervals undercover at
///    these block counts (12 per interval), so the floors sit below
///    the nominal 0.95: observed rates are ≈0.80 (block tail) and
///    ≈0.92 (per round), both deterministic under the fixed seeds
///    (`bootstrap_coverage_ok`).
fn bootstrap_workload() -> Json {
    const N: usize = 4_096;
    const SWEEP: [usize; 3] = [100, 1_000, 10_000];
    const SCALE_REPLICATES: usize = 20_000;

    // Fixed seeded sample with some spread (lognormal-ish tail).
    let mut rng = StdRng::seed_from_u64(0xB007_5717);
    let data: Vec<f64> = (0..N).map(|_| rng.random_range(0.0..1.0f64).powi(3) * 100.0).collect();
    let mean_stat = |idx: &[usize]| {
        let sum: f64 = idx.iter().map(|&i| data[i]).sum();
        Some(sum / idx.len() as f64)
    };

    // 1. Sequential replicate-count sweep.
    let mut sweep = Json::obj();
    for b in SWEEP {
        let boot =
            Bootstrap::new(N, &mean_stat).replicates(b).seed(7).threads(Threads::sequential());
        let t0 = Instant::now();
        let reps = boot.run();
        let wall = t0.elapsed();
        let ci = reps.percentile_ci(0.95).expect("mean statistic is always defined");
        sweep = sweep.field(
            &b.to_string(),
            Json::obj()
                .field("wall_s", wall.as_secs_f64())
                .field("replicates_per_sec", b as f64 / wall.as_secs_f64().max(f64::MIN_POSITIVE))
                .field("ci_width", ci.width()),
        );
    }

    // 2. Parallel scaling + bit-identity across thread counts.
    let variants = [
        ("n_out_of_n", Variant::NOutOfN),
        ("m_out_of_n", Variant::MOutOfN { m: N / 2 }),
        ("block", Variant::Block { block_len: default_block_len(N) }),
    ];
    let mut identical = true;
    let mut scaling = Json::obj();
    for (name, variant) in variants {
        let base = |threads| {
            Bootstrap::new(N, &mean_stat)
                .variant(variant)
                .replicates(SCALE_REPLICATES)
                .seed(11)
                .threads(threads)
        };
        let seq = base(Threads::sequential()).run();
        let seq_bits: Vec<u64> = seq.values().iter().map(|v| v.to_bits()).collect();
        let mut per_threads = Json::obj();
        let mut one_wall = 0.0;
        for workers in [1usize, 2, 4, 8] {
            let boot = base(Threads::fixed(workers));
            let t0 = Instant::now();
            let reps = boot.run();
            let wall = t0.elapsed().as_secs_f64();
            if workers == 1 {
                one_wall = wall;
            }
            identical &= reps.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>() == seq_bits;
            per_threads = per_threads.field(
                &workers.to_string(),
                Json::obj()
                    .field("wall_s", wall)
                    .field("speedup_vs_1", one_wall / wall.max(f64::MIN_POSITIVE)),
            );
        }
        scaling = scaling.field(name, per_threads);
    }

    // 3. Seeded coverage experiment on a churning REISSUE pool.
    const EXPERIMENTS: usize = 20;
    const TAIL_W: usize = 5;
    const COVERAGE_REPLICATES: usize = 400;
    const TAIL_FLOOR: f64 = 0.70;
    const PER_ROUND_FLOOR: f64 = 0.85;
    let mut cfg = BaseCfg::for_scale(Scale::Quick);
    cfg.initial = 2_000;
    cfg.rounds = 10;
    cfg.trials = 12;
    cfg.inserts = 40;
    cfg.delete = DeleteSpec::Fraction(0.01);
    let t0 = Instant::now();
    let mut tail_covered = 0usize;
    let mut round_covered = 0usize;
    let mut round_judged = 0usize;
    for e in 0..EXPERIMENTS {
        let mut cfg = cfg.clone();
        cfg.seed = 0xC0FE + (e as u64) * 1_000;
        let out = track(&cfg, &[AlgoKind::Reissue], RsConfig::default(), &count_star_tracked);
        let rows = &out.algos[0].ratio_trials;
        let ci = tail_block_ci(rows, TAIL_W, COVERAGE_REPLICATES, cfg.seed, 0.95)
            .expect("tail window has finite records");
        if ci.contains(1.0) {
            tail_covered += 1;
        }
        let (lo, hi) = trial_cis(rows, cfg.rounds, COVERAGE_REPLICATES, cfg.seed, 0.95);
        for r in 0..cfg.rounds {
            if lo[r].is_finite() && hi[r].is_finite() {
                round_judged += 1;
                if lo[r] <= 1.0 && 1.0 <= hi[r] {
                    round_covered += 1;
                }
            }
        }
    }
    let wall = t0.elapsed();
    let tail_coverage = tail_covered as f64 / EXPERIMENTS as f64;
    let round_coverage = round_covered as f64 / round_judged.max(1) as f64;

    Json::obj()
        .field("sample_len", N)
        .field("replicate_sweep", sweep)
        .field("scale_replicates", SCALE_REPLICATES)
        .field("parallel_scaling", scaling)
        .field("bootstrap_parallel_identical", identical)
        .field(
            "coverage",
            Json::obj()
                .field("experiments", EXPERIMENTS)
                .field("trials_per_experiment", cfg.trials)
                .field("rounds", cfg.rounds)
                .field("initial", cfg.initial)
                .field("inserts_per_round", cfg.inserts)
                .field("tail_window", TAIL_W)
                .field("replicates", COVERAGE_REPLICATES)
                .field("nominal_level", 0.95)
                .field("tail_covered", tail_covered)
                .field("tail_coverage", tail_coverage)
                .field("tail_floor", TAIL_FLOOR)
                .field("per_round_judged", round_judged)
                .field("per_round_covered", round_covered)
                .field("per_round_coverage", round_coverage)
                .field("per_round_floor", PER_ROUND_FLOOR)
                .field("wall_s", wall.as_secs_f64()),
        )
        .field(
            "bootstrap_coverage_ok",
            tail_coverage >= TAIL_FLOOR && round_coverage >= PER_ROUND_FLOOR,
        )
}

fn outcomes_bit_identical(a: &TrackOutcome, b: &TrackOutcome) -> bool {
    let bits = |xs: Vec<f64>| xs.into_iter().map(f64::to_bits).collect::<Vec<_>>();
    if a.algos.len() != b.algos.len() {
        return false;
    }
    bits(a.truth.means()) == bits(b.truth.means())
        && a.algos.iter().zip(&b.algos).all(|(x, y)| {
            bits(x.rel_err.means()) == bits(y.rel_err.means())
                && bits(x.rel_err.stds()) == bits(y.rel_err.stds())
                && bits(x.ratio.means()) == bits(y.ratio.means())
                && bits(x.cum_queries.means()) == bits(y.cum_queries.means())
        })
}
