//! Minimal flag parsing shared by the figure harness binaries.
//!
//! Flags (all optional):
//! * `--scale quick|default|paper` — experiment size preset;
//! * `--trials N` — override trials per configuration;
//! * `--rounds N` — override tracked rounds;
//! * `--budget N` — override the per-round query budget `G`;
//! * `--seed N` — base seed;
//! * `--memo incremental|wholesale|disabled` — the database's memo
//!   invalidation policy (outcome-invariant; pinned by the determinism
//!   suite);
//! * `--maintain off|N` — per-round segment-maintenance budget in
//!   scanned slots/postings (`off` = never maintain, the default;
//!   outcome-invariant like the memo policy);
//! * `--faults off|seeded:<rate>` — interface fault injection: `off` (the
//!   default) runs estimators straight against the session; `seeded:0.2`
//!   interposes the deterministic FaultyBackend + ResilientBackend stack
//!   with a per-query fault probability of 0.2 (faults only consume
//!   budget — recovered runs stay on the fault-free drill outcomes);
//! * `--auto-maintain off|pressure:<t>` — pressure-triggered automatic
//!   compaction: `off` (the default) never compacts on its own;
//!   `pressure:64` compacts after any round that leaves a segment with
//!   pressure (stale bound ops + dead slots) ≥ 64. Outcome-invariant
//!   like `--maintain`.
//! * `--persist <dir>,resident:<N>` — attach the out-of-core persistence
//!   tier to every trial database: segment columns live in a region file
//!   under `<dir>` (one subdirectory per trial) with at most `N`
//!   segments resident in memory. Outcome-invariant by construction —
//!   paging never changes an answer bit.
//! * `--bootstrap off|N` — bootstrap percentile CIs in the figure output:
//!   `N` replicates per interval (default 1000), `off` drops the CI
//!   columns entirely. The point estimates are untouched either way —
//!   resampling happens after the experiment, never inside it.

use hidden_db::{AutoMaintain, InvalidationPolicy, PersistConfig};
use workloads::DeleteSpec;

/// Interface fault-injection mode for the experiment loop.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FaultsMode {
    /// No fault layer at all: estimators talk to the session directly
    /// (wrapper overhead exactly zero).
    #[default]
    Off,
    /// Deterministic seeded injection at the given per-query rate,
    /// recovered by the default retry policy (always recoverable: the
    /// default schedule's burst cap is below the retry budget).
    Seeded {
        /// Per-query fault probability in `[0, 1]`.
        rate: f64,
    },
}

/// Experiment size preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Smoke-test size (seconds): used by `cargo bench` wrappers.
    Quick,
    /// The committed EXPERIMENTS.md size (tens of seconds per figure).
    #[default]
    Default,
    /// The paper's full size (170 000 tuples, m = 38, k = 1000, G = 500).
    Paper,
}

/// Parsed command line.
#[derive(Debug, Clone, Default)]
pub struct Cli {
    /// Size preset.
    pub scale: Scale,
    /// Trials override.
    pub trials: Option<usize>,
    /// Rounds override.
    pub rounds: Option<usize>,
    /// Budget override.
    pub budget: Option<u64>,
    /// Seed override.
    pub seed: Option<u64>,
    /// Memo invalidation policy override.
    pub memo: Option<InvalidationPolicy>,
    /// Per-round maintenance budget override (`Some(None)` = explicit
    /// `off`, `Some(Some(n))` = budget of `n` scanned slots/postings).
    pub maintain: Option<Option<usize>>,
    /// Fault-injection mode override.
    pub faults: Option<FaultsMode>,
    /// Pressure-triggered automatic maintenance override.
    pub auto_maintain: Option<AutoMaintain>,
    /// Out-of-core persistence tier for trial databases.
    pub persist: Option<PersistConfig>,
    /// Bootstrap CI override (`Some(None)` = explicit `off`,
    /// `Some(Some(n))` = `n` replicates per interval).
    pub bootstrap: Option<Option<usize>>,
}

impl Cli {
    /// Parses `std::env::args()`. Unknown flags abort with a usage message.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut cli = Cli::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value =
                |name: &str| it.next().unwrap_or_else(|| panic!("flag {name} needs a value"));
            match arg.as_str() {
                "--scale" => {
                    cli.scale = match value("--scale").as_str() {
                        "quick" => Scale::Quick,
                        "default" => Scale::Default,
                        "paper" => Scale::Paper,
                        other => panic!("unknown scale {other:?}"),
                    }
                }
                "--trials" => cli.trials = Some(value("--trials").parse().expect("usize")),
                "--rounds" => cli.rounds = Some(value("--rounds").parse().expect("usize")),
                "--budget" => cli.budget = Some(value("--budget").parse().expect("u64")),
                "--seed" => cli.seed = Some(value("--seed").parse().expect("u64")),
                "--memo" => {
                    cli.memo = Some(match value("--memo").as_str() {
                        "incremental" => InvalidationPolicy::Incremental,
                        "wholesale" => InvalidationPolicy::Wholesale,
                        "disabled" => InvalidationPolicy::Disabled,
                        other => panic!("unknown memo policy {other:?}"),
                    })
                }
                "--maintain" => {
                    cli.maintain = Some(match value("--maintain").as_str() {
                        "off" => None,
                        n => Some(n.parse().expect("--maintain takes `off` or a slot budget")),
                    })
                }
                "--faults" => {
                    cli.faults = Some(match value("--faults").as_str() {
                        "off" => FaultsMode::Off,
                        spec => {
                            let rate = spec
                                .strip_prefix("seeded:")
                                .and_then(|r| r.parse::<f64>().ok())
                                .filter(|r| (0.0..=1.0).contains(r))
                                .expect("--faults takes `off` or `seeded:<rate in [0,1]>`");
                            FaultsMode::Seeded { rate }
                        }
                    })
                }
                "--auto-maintain" => {
                    cli.auto_maintain = Some(
                        AutoMaintain::parse(&value("--auto-maintain"))
                            .unwrap_or_else(|e| panic!("{e}")),
                    )
                }
                "--persist" => {
                    cli.persist = Some(
                        PersistConfig::parse(&value("--persist")).unwrap_or_else(|e| panic!("{e}")),
                    )
                }
                "--bootstrap" => {
                    cli.bootstrap = Some(match value("--bootstrap").as_str() {
                        "off" => None,
                        n => Some(
                            n.parse()
                                .ok()
                                .filter(|&b: &usize| b >= 1)
                                .expect("--bootstrap takes `off` or a replicate count ≥ 1"),
                        ),
                    })
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --scale quick|default|paper  --trials N  --rounds N  \
                         --budget N  --seed N  --memo incremental|wholesale|disabled  \
                         --maintain off|N  --faults off|seeded:<rate>  \
                         --auto-maintain off|pressure:<t>  \
                         --persist <dir>,resident:<N>  --bootstrap off|N"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other:?} (try --help)"),
            }
        }
        cli
    }
}

/// Base configuration for the synthetic-Autos tracking experiments.
#[derive(Debug, Clone)]
pub struct BaseCfg {
    /// Initial population `|D_1|`.
    pub initial: usize,
    /// Attribute count `m`.
    pub attrs: usize,
    /// Interface page size `k`.
    pub k: usize,
    /// Per-round query budget `G` (per algorithm).
    pub g: u64,
    /// Rounds tracked.
    pub rounds: usize,
    /// Seeded trials averaged per configuration.
    pub trials: usize,
    /// Tuples inserted per round.
    pub inserts: usize,
    /// Deletions per round.
    pub delete: DeleteSpec,
    /// Base seed (trial t uses `seed + t`).
    pub seed: u64,
    /// Memo invalidation policy for every trial database. Outcome-
    /// invariant (estimator records are bit-identical across policies);
    /// only wall-clock and cache counters change.
    pub memo_policy: InvalidationPolicy,
    /// Per-round segment-maintenance budget (scanned slots/postings per
    /// [`hidden_db::MaintenanceBudget`]); `None` never maintains.
    /// Outcome-invariant exactly like the memo policy — pinned by the
    /// determinism suite's maintenance test.
    pub maintain_slots: Option<usize>,
    /// Interface fault injection (PR 6). `Off` bypasses the fault layer
    /// entirely; `Seeded` wraps every per-round session in the
    /// deterministic FaultyBackend + ResilientBackend stack.
    pub faults: FaultsMode,
    /// Pressure-triggered automatic compaction (PR 7): after each round's
    /// updates, compact if any segment's pressure reached the threshold.
    /// Outcome-invariant like `maintain_slots`.
    pub auto_maintain: AutoMaintain,
    /// Out-of-core persistence tier (PR 9): when set, every trial
    /// database pages its segments through a region file in a unique
    /// subdirectory of `dir`, holding at most `resident_segments` in
    /// memory. Outcome-invariant like the other knobs.
    pub persist: Option<PersistConfig>,
    /// Bootstrap replicates for the figure pipeline's percentile CIs
    /// (PR 10); `None` drops the CI columns. Resampling runs on the
    /// already-collected records, so point estimates and all other
    /// columns are bit-identical either way.
    pub bootstrap_replicates: Option<usize>,
}

impl BaseCfg {
    /// The preset for a scale, before figure-specific tweaks.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Quick => Self {
                initial: 4_000,
                attrs: 12,
                k: 100,
                g: 200,
                rounds: 10,
                trials: 2,
                inserts: 8,
                delete: DeleteSpec::Fraction(0.001),
                seed: 0x5EED,
                memo_policy: InvalidationPolicy::Incremental,
                maintain_slots: None,
                faults: FaultsMode::Off,
                auto_maintain: AutoMaintain::Off,
                persist: None,
                bootstrap_replicates: Some(1_000),
            },
            Scale::Default => Self {
                initial: 30_000,
                attrs: 20,
                k: 200,
                g: 300,
                rounds: 50,
                trials: 8,
                // +300 of 170 000 ≈ 0.18 %/round, scaled to 30 000.
                inserts: 53,
                delete: DeleteSpec::Fraction(0.001),
                seed: 0x5EED,
                memo_policy: InvalidationPolicy::Incremental,
                maintain_slots: None,
                faults: FaultsMode::Off,
                auto_maintain: AutoMaintain::Off,
                persist: None,
                bootstrap_replicates: Some(1_000),
            },
            Scale::Paper => Self {
                initial: 170_000,
                attrs: 38,
                k: 1_000,
                g: 500,
                rounds: 50,
                trials: 10,
                inserts: 300,
                delete: DeleteSpec::Fraction(0.001),
                seed: 0x5EED,
                memo_policy: InvalidationPolicy::Incremental,
                maintain_slots: None,
                faults: FaultsMode::Off,
                auto_maintain: AutoMaintain::Off,
                persist: None,
                bootstrap_replicates: Some(1_000),
            },
        }
    }

    /// Applies the CLI overrides.
    pub fn with_cli(mut self, cli: &Cli) -> Self {
        if let Some(t) = cli.trials {
            self.trials = t;
        }
        if let Some(r) = cli.rounds {
            self.rounds = r;
        }
        if let Some(g) = cli.budget {
            self.g = g;
        }
        if let Some(s) = cli.seed {
            self.seed = s;
        }
        if let Some(p) = cli.memo {
            self.memo_policy = p;
        }
        if let Some(m) = cli.maintain {
            self.maintain_slots = m;
        }
        if let Some(f) = cli.faults {
            self.faults = f;
        }
        if let Some(a) = cli.auto_maintain {
            self.auto_maintain = a;
        }
        if let Some(p) = &cli.persist {
            self.persist = Some(p.clone());
        }
        if let Some(b) = cli.bootstrap {
            self.bootstrap_replicates = b;
        }
        self
    }

    /// Preset + overrides in one call.
    pub fn from_cli(cli: &Cli) -> Self {
        Self::for_scale(cli.scale).with_cli(cli)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Cli {
        Cli::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_flags() {
        let cli = parse(&["--scale", "paper", "--trials", "3", "--budget", "123"]);
        assert_eq!(cli.scale, Scale::Paper);
        assert_eq!(cli.trials, Some(3));
        assert_eq!(cli.budget, Some(123));
        assert_eq!(cli.rounds, None);
    }

    #[test]
    fn defaults_are_default_scale() {
        let cli = parse(&[]);
        assert_eq!(cli.scale, Scale::Default);
        let cfg = BaseCfg::from_cli(&cli);
        assert_eq!(cfg.initial, 30_000);
    }

    #[test]
    fn overrides_apply() {
        let cli = parse(&["--rounds", "7", "--seed", "9"]);
        let cfg = BaseCfg::from_cli(&cli);
        assert_eq!(cfg.rounds, 7);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.memo_policy, InvalidationPolicy::Incremental, "default policy");
    }

    #[test]
    fn memo_policy_flag_parses_and_applies() {
        let cli = parse(&["--memo", "wholesale"]);
        assert_eq!(cli.memo, Some(InvalidationPolicy::Wholesale));
        let cfg = BaseCfg::from_cli(&cli);
        assert_eq!(cfg.memo_policy, InvalidationPolicy::Wholesale);
        assert_eq!(
            BaseCfg::from_cli(&parse(&["--memo", "disabled"])).memo_policy,
            InvalidationPolicy::Disabled
        );
    }

    #[test]
    #[should_panic(expected = "unknown memo policy")]
    fn unknown_memo_policy_panics() {
        parse(&["--memo", "sometimes"]);
    }

    #[test]
    fn bootstrap_flag_parses_and_applies() {
        assert_eq!(
            BaseCfg::from_cli(&parse(&[])).bootstrap_replicates,
            Some(1_000),
            "CIs on by default"
        );
        let cli = parse(&["--bootstrap", "250"]);
        assert_eq!(cli.bootstrap, Some(Some(250)));
        assert_eq!(BaseCfg::from_cli(&cli).bootstrap_replicates, Some(250));
        let off = parse(&["--bootstrap", "off"]);
        assert_eq!(off.bootstrap, Some(None));
        assert_eq!(BaseCfg::from_cli(&off).bootstrap_replicates, None);
    }

    #[test]
    #[should_panic(expected = "--bootstrap takes")]
    fn zero_bootstrap_replicates_panics() {
        parse(&["--bootstrap", "0"]);
    }

    #[test]
    fn maintain_flag_parses_and_applies() {
        assert_eq!(BaseCfg::from_cli(&parse(&[])).maintain_slots, None, "off by default");
        let cli = parse(&["--maintain", "4096"]);
        assert_eq!(cli.maintain, Some(Some(4096)));
        assert_eq!(BaseCfg::from_cli(&cli).maintain_slots, Some(4096));
        let cli = parse(&["--maintain", "off"]);
        assert_eq!(cli.maintain, Some(None));
        assert_eq!(BaseCfg::from_cli(&cli).maintain_slots, None);
    }

    #[test]
    #[should_panic(expected = "slot budget")]
    fn bogus_maintain_budget_panics() {
        parse(&["--maintain", "sometimes"]);
    }

    #[test]
    fn faults_flag_parses_and_applies() {
        assert_eq!(BaseCfg::from_cli(&parse(&[])).faults, FaultsMode::Off, "off by default");
        let cli = parse(&["--faults", "seeded:0.25"]);
        assert_eq!(cli.faults, Some(FaultsMode::Seeded { rate: 0.25 }));
        assert_eq!(BaseCfg::from_cli(&cli).faults, FaultsMode::Seeded { rate: 0.25 });
        let cli = parse(&["--faults", "off"]);
        assert_eq!(cli.faults, Some(FaultsMode::Off));
        assert_eq!(BaseCfg::from_cli(&cli).faults, FaultsMode::Off);
    }

    #[test]
    #[should_panic(expected = "seeded:<rate in [0,1]>")]
    fn bogus_fault_spec_panics() {
        parse(&["--faults", "sometimes"]);
    }

    #[test]
    #[should_panic(expected = "seeded:<rate in [0,1]>")]
    fn out_of_range_fault_rate_panics() {
        parse(&["--faults", "seeded:1.5"]);
    }

    #[test]
    fn auto_maintain_flag_parses_and_applies() {
        assert_eq!(
            BaseCfg::from_cli(&parse(&[])).auto_maintain,
            AutoMaintain::Off,
            "off by default"
        );
        let cli = parse(&["--auto-maintain", "pressure:64"]);
        assert_eq!(cli.auto_maintain, Some(AutoMaintain::Pressure { threshold: 64 }));
        assert_eq!(BaseCfg::from_cli(&cli).auto_maintain, AutoMaintain::Pressure { threshold: 64 });
        let cli = parse(&["--auto-maintain", "off"]);
        assert_eq!(cli.auto_maintain, Some(AutoMaintain::Off));
        assert_eq!(BaseCfg::from_cli(&cli).auto_maintain, AutoMaintain::Off);
    }

    #[test]
    #[should_panic(expected = "off|pressure:<t>")]
    fn bogus_auto_maintain_panics() {
        parse(&["--auto-maintain", "sometimes"]);
    }

    #[test]
    fn persist_flag_parses_and_applies() {
        assert_eq!(BaseCfg::from_cli(&parse(&[])).persist, None, "off by default");
        let cli = parse(&["--persist", "/tmp/pool,resident:64"]);
        let cfg = cli.persist.clone().expect("parsed");
        assert_eq!(cfg.dir, std::path::PathBuf::from("/tmp/pool"));
        assert_eq!(cfg.resident_segments, 64);
        assert_eq!(BaseCfg::from_cli(&cli).persist, Some(cfg));
    }

    #[test]
    #[should_panic(expected = "resident:")]
    fn bogus_persist_spec_panics() {
        parse(&["--persist", "/tmp/pool"]);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        parse(&["--bogus"]);
    }
}
