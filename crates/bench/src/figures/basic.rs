//! Figures 2, 3, 5, 6, 7: single-round COUNT(*) tracking under the
//! default, little-change, and big-change schedules.

use aggtrack_core::RsConfig;
use workloads::DeleteSpec;

use crate::cli::{BaseCfg, Cli};
use crate::runner::{
    count_star_tracked, print_csv, round_labels, standard_algos, track, trial_cis, TrackOutcome,
};

fn print_rel_err(title: &str, out: &TrackOutcome, rounds: usize) {
    let columns: Vec<(&str, Vec<f64>)> =
        out.algos.iter().map(|a| (a.name, a.rel_err.means())).collect();
    print_csv(title, "round", &round_labels(rounds), &columns);
}

/// Fig 2: relative error vs round, default schedule.
pub fn fig02(cli: &Cli) {
    let cfg = BaseCfg::from_cli(cli);
    let out = track(&cfg, &standard_algos(), RsConfig::default(), &count_star_tracked);
    print_rel_err(
        "Fig 2: relative error of COUNT(*) per round (default schedule)",
        &out,
        cfg.rounds,
    );
}

/// Fig 3: error bars — mean estimate/truth ratio ± std per round, plus
/// (unless `--bootstrap off`) the bootstrap percentile CI of the
/// across-trial mean next to the analytic spread.
pub fn fig03(cli: &Cli) {
    let cfg = BaseCfg::from_cli(cli);
    let out = track(&cfg, &standard_algos(), RsConfig::default(), &count_star_tracked);
    let mut columns: Vec<(String, Vec<f64>)> = Vec::new();
    for a in &out.algos {
        columns.push((format!("{}_ratio", a.name), a.ratio.means()));
        columns.push((format!("{}_std", a.name), a.ratio.stds()));
        if let Some(b) = cfg.bootstrap_replicates {
            let (lo, hi) = trial_cis(&a.ratio_trials, cfg.rounds, b, cfg.seed ^ 0xB007, 0.95);
            columns.push((format!("{}_ci_lo", a.name), lo));
            columns.push((format!("{}_ci_hi", a.name), hi));
        }
    }
    let named: Vec<(&str, Vec<f64>)> =
        columns.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
    print_csv(
        "Fig 3: estimate/truth ratio with across-trial std and bootstrap 95% CI (error bars)",
        "round",
        &round_labels(cfg.rounds),
        &named,
    );
}

/// Fig 5: little change — one inserted tuple per round, no deletions.
/// REISSUE's error tapers off; RS keeps improving.
pub fn fig05(cli: &Cli) {
    let mut cfg = BaseCfg::from_cli(cli);
    cfg.inserts = 1;
    cfg.delete = DeleteSpec::None;
    let out = track(&cfg, &standard_algos(), RsConfig::default(), &count_star_tracked);
    print_rel_err(
        "Fig 5: relative error per round, little change (+1 tuple/round)",
        &out,
        cfg.rounds,
    );
}

/// Shared setup for the big-change figures: start at ~59 % of the default
/// initial size, insert 10 % of it and delete 5 % of the population per
/// round (the paper's 100 000 / +10 000 / −5 % profile, scaled).
fn big_change_cfg(cli: &Cli) -> BaseCfg {
    let mut cfg = BaseCfg::from_cli(cli);
    cfg.initial = (cfg.initial as f64 * 100.0 / 170.0) as usize;
    cfg.inserts = cfg.initial / 10;
    cfg.delete = DeleteSpec::Fraction(0.05);
    if cli.rounds.is_none() {
        cfg.rounds = 10;
    }
    cfg
}

/// Fig 6: big change — our algorithms still beat the baseline.
pub fn fig06(cli: &Cli) {
    let cfg = big_change_cfg(cli);
    let out = track(&cfg, &standard_algos(), RsConfig::default(), &count_star_tracked);
    print_rel_err(
        "Fig 6: relative error per round, big change (+10 %, −5 % per round)",
        &out,
        cfg.rounds,
    );
}

/// Fig 7: big change with k = 1 — the Theorem 3.2 regime where RESTART
/// wins (roll-ups get expensive, savings vanish).
pub fn fig07(cli: &Cli) {
    let mut cfg = big_change_cfg(cli);
    cfg.k = 1;
    if cli.rounds.is_none() {
        cfg.rounds = 20;
    }
    // k = 1 drills deep; shrink the population so the harness stays fast.
    cfg.initial /= 4;
    cfg.inserts = cfg.initial / 10;
    let out = track(&cfg, &standard_algos(), RsConfig::default(), &count_star_tracked);
    print_rel_err("Fig 7: relative error per round, big change with k = 1", &out, cfg.rounds);
}
