//! Figures 18 and 19: the query-cost view — budget needed for a target
//! accuracy, and drill-downs bought per query spent.

use aggtrack_core::RsConfig;

use crate::cli::{BaseCfg, Cli, Scale};
use crate::runner::{
    count_star_tracked, print_csv, round_labels, standard_algos, tail_mean, track,
};

/// Fig 18: minimum per-round budget at which each algorithm reaches a
/// target relative error (0.15 / 0.2 / 0.3) by the end of the horizon.
pub fn fig18(cli: &Cli) {
    let mut base = BaseCfg::from_cli(cli);
    if cli.rounds.is_none() {
        base.rounds = match cli.scale {
            Scale::Quick => 8,
            _ => 25,
        };
    }
    base.trials = base.trials.min(4);
    let grid: &[u64] = match cli.scale {
        Scale::Quick => &[50, 100, 200, 400],
        _ => &[25, 50, 75, 100, 150, 200, 300, 400, 600],
    };
    let algos = standard_algos();
    // errs[gi][ai] = tail error of algorithm ai at budget grid[gi].
    let mut errs: Vec<Vec<f64>> = Vec::new();
    for &g in grid {
        let mut cfg = base.clone();
        cfg.g = g;
        let out = track(&cfg, &algos, RsConfig::default(), &count_star_tracked);
        errs.push(out.algos.iter().map(|a| tail_mean(&a.rel_err, 5)).collect());
    }
    let targets = [0.15f64, 0.2, 0.3];
    let mut columns: Vec<(&'static str, Vec<f64>)> =
        algos.iter().map(|a| (a.name(), Vec::new())).collect();
    let mut xs = Vec::new();
    for &t in &targets {
        xs.push(format!("{t}"));
        for (ai, col) in columns.iter_mut().enumerate() {
            let budget = grid
                .iter()
                .zip(&errs)
                .find(|(_, e)| e[ai] <= t)
                .map(|(g, _)| *g as f64)
                .unwrap_or(f64::NAN); // target unreachable on this grid
            col.1.push(budget);
        }
    }
    print_csv(
        "Fig 18: minimum per-round budget G to reach a target relative error",
        "target_rel_err",
        &xs,
        &columns,
    );
}

/// Fig 19: cumulative drill-downs performed vs cumulative query cost over
/// the horizon — the efficiency of reuse.
pub fn fig19(cli: &Cli) {
    let cfg = BaseCfg::from_cli(cli);
    let out = track(&cfg, &standard_algos(), RsConfig::default(), &count_star_tracked);
    let mut columns: Vec<(String, Vec<f64>)> = Vec::new();
    for a in &out.algos {
        columns.push((format!("{}_queries", a.name), a.cum_queries.means()));
        columns.push((format!("{}_drills", a.name), a.cum_drills.means()));
    }
    let named: Vec<(&str, Vec<f64>)> =
        columns.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
    print_csv(
        "Fig 19: cumulative drill-downs vs cumulative query cost",
        "round",
        &round_labels(cfg.rounds),
        &named,
    );
}
