//! Figures 18 and 19: the query-cost view — budget needed for a target
//! accuracy, and drill-downs bought per query spent.

use aggtrack_core::RsConfig;

use crate::cli::{BaseCfg, Cli, Scale};
use crate::runner::{
    count_star_tracked, print_csv, round_labels, standard_algos, tail_block_ci, tail_mean, track,
};

/// Tail window (rounds) for the fig18 error scalar and its bootstrap CI.
const FIG18_TAIL: usize = 5;

/// Fig 18: minimum per-round budget at which each algorithm reaches a
/// target relative error (0.15 / 0.2 / 0.3) by the end of the horizon.
/// Unless `--bootstrap off`, a companion block also reports the tail
/// error per budget with its block-bootstrap percentile CI — the
/// per-round records inside a trial's tail window are serially
/// dependent, so the blocks keep whole windows intact.
pub fn fig18(cli: &Cli) {
    let mut base = BaseCfg::from_cli(cli);
    if cli.rounds.is_none() {
        base.rounds = match cli.scale {
            Scale::Quick => 8,
            _ => 25,
        };
    }
    base.trials = base.trials.min(4);
    let grid: &[u64] = match cli.scale {
        Scale::Quick => &[50, 100, 200, 400],
        _ => &[25, 50, 75, 100, 150, 200, 300, 400, 600],
    };
    let algos = standard_algos();
    // errs[gi][ai] = tail error of algorithm ai at budget grid[gi];
    // cis[gi][ai] = its block-bootstrap CI, when enabled.
    let mut errs: Vec<Vec<f64>> = Vec::new();
    let mut cis: Vec<Vec<Option<agg_stats::resample::ConfidenceInterval>>> = Vec::new();
    for &g in grid {
        let mut cfg = base.clone();
        cfg.g = g;
        let out = track(&cfg, &algos, RsConfig::default(), &count_star_tracked);
        errs.push(out.algos.iter().map(|a| tail_mean(&a.rel_err, FIG18_TAIL)).collect());
        cis.push(
            out.algos
                .iter()
                .map(|a| {
                    base.bootstrap_replicates.and_then(|b| {
                        tail_block_ci(&a.rel_err_trials, FIG18_TAIL, b, cfg.seed ^ g, 0.95)
                    })
                })
                .collect(),
        );
    }
    let targets = [0.15f64, 0.2, 0.3];
    let mut columns: Vec<(&'static str, Vec<f64>)> =
        algos.iter().map(|a| (a.name(), Vec::new())).collect();
    let mut xs = Vec::new();
    for &t in &targets {
        xs.push(format!("{t}"));
        for (ai, col) in columns.iter_mut().enumerate() {
            let budget = grid
                .iter()
                .zip(&errs)
                .find(|(_, e)| e[ai] <= t)
                .map(|(g, _)| *g as f64)
                .unwrap_or(f64::NAN); // target unreachable on this grid
            col.1.push(budget);
        }
    }
    print_csv(
        "Fig 18: minimum per-round budget G to reach a target relative error",
        "target_rel_err",
        &xs,
        &columns,
    );
    if base.bootstrap_replicates.is_some() {
        let mut ci_columns: Vec<(String, Vec<f64>)> = Vec::new();
        for (ai, a) in algos.iter().enumerate() {
            ci_columns.push((format!("{}_err", a.name()), errs.iter().map(|e| e[ai]).collect()));
            ci_columns.push((
                format!("{}_ci_lo", a.name()),
                cis.iter().map(|c| c[ai].map_or(f64::NAN, |ci| ci.lo)).collect(),
            ));
            ci_columns.push((
                format!("{}_ci_hi", a.name()),
                cis.iter().map(|c| c[ai].map_or(f64::NAN, |ci| ci.hi)).collect(),
            ));
        }
        let named: Vec<(&str, Vec<f64>)> =
            ci_columns.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
        print_csv(
            "Fig 18 (companion): tail relative error per budget with block-bootstrap 95% CI",
            "budget_g",
            &grid.iter().map(|g| g.to_string()).collect::<Vec<_>>(),
            &named,
        );
    }
}

/// Fig 19: cumulative drill-downs performed vs cumulative query cost over
/// the horizon — the efficiency of reuse.
pub fn fig19(cli: &Cli) {
    let cfg = BaseCfg::from_cli(cli);
    let out = track(&cfg, &standard_algos(), RsConfig::default(), &count_star_tracked);
    let mut columns: Vec<(String, Vec<f64>)> = Vec::new();
    for a in &out.algos {
        columns.push((format!("{}_queries", a.name), a.cum_queries.means()));
        columns.push((format!("{}_drills", a.name), a.cum_drills.means()));
    }
    let named: Vec<(&str, Vec<f64>)> =
        columns.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
    print_csv(
        "Fig 19: cumulative drill-downs vs cumulative query cost",
        "round",
        &round_labels(cfg.rounds),
        &named,
    );
}
