//! Figure 4: the constant-update model (§5.2) — REISSUE and RS with
//! updates landing *between the estimator's own queries*, compared with
//! the clean round-update model on the same update stream.

use agg_stats::error::{relative_error, SeriesSummary};
use aggtrack_core::{AggregateSpec, Estimator, ReissueEstimator, RsEstimator};
use hidden_db::ranking::ScoringPolicy;
use query_tree::QueryTree;
use rand::rngs::StdRng;
use rand::SeedableRng;
use workloads::{
    load_database, spread_evenly, AutosGenerator, IntraRoundSession, PerRoundSchedule, RoundDriver,
};

use crate::cli::{BaseCfg, Cli};
use crate::runner::{print_csv, round_labels};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    RoundModel,
    IntraRound,
}

#[derive(Clone, Copy, PartialEq)]
enum Algo {
    Reissue,
    Rs,
}

/// One configuration = one fresh, identically-seeded trajectory, so all
/// four lines see the same update stream (applied at round boundaries or
/// spread through the hour).
fn run_line(cfg: &BaseCfg, algo: Algo, mode: Mode, trial: u64, series: &mut SeriesSummary) {
    let mut gen = AutosGenerator::with_attrs(cfg.attrs);
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(trial));
    let db = load_database(&mut gen, &mut rng, cfg.initial, cfg.k, ScoringPolicy::default());
    let schedule = PerRoundSchedule::new(gen, cfg.inserts, cfg.delete);
    let mut driver = RoundDriver::new(db, schedule, cfg.seed ^ (trial.wrapping_mul(7919)));
    let tree = QueryTree::full(&driver.db().schema().clone());
    let mut est: Box<dyn Estimator> = match algo {
        Algo::Reissue => {
            Box::new(ReissueEstimator::new(AggregateSpec::count_star(), tree, cfg.seed ^ trial))
        }
        Algo::Rs => Box::new(RsEstimator::new(AggregateSpec::count_star(), tree, cfg.seed ^ trial)),
    };
    for round in 0..cfg.rounds {
        let estimate = match mode {
            Mode::RoundModel => {
                let report = {
                    let mut session = driver.session(cfg.g);
                    est.run_round(&mut session)
                };
                driver.advance();
                report.count.value
            }
            Mode::IntraRound => {
                let batch = driver.peek_batch();
                let updates = spread_evenly(batch);
                let mut session = IntraRoundSession::new(driver.db_mut(), cfg.g, updates);
                let report = est.run_round(&mut session);
                session.drain_pending();
                driver.mark_round();
                report.count.value
            }
        };
        // Ground truth at the end of the hour (post-update state) — the
        // same instant for both modes since the streams are identical.
        let truth = driver.db().exact_count(None) as f64;
        series.record(round, relative_error(estimate, truth));
    }
}

/// Fig 4: intra-round updates barely hurt REISSUE/RS (§5.2's claim).
pub fn fig04(cli: &Cli) {
    let cfg = BaseCfg::from_cli(cli);
    let lines = [
        ("REISSUE", Algo::Reissue, Mode::RoundModel),
        ("REISSUE_intra", Algo::Reissue, Mode::IntraRound),
        ("RS", Algo::Rs, Mode::RoundModel),
        ("RS_intra", Algo::Rs, Mode::IntraRound),
    ];
    let mut columns: Vec<(&str, Vec<f64>)> = Vec::new();
    for (name, algo, mode) in lines {
        let mut series = SeriesSummary::new(cfg.rounds);
        for trial in 0..cfg.trials {
            run_line(&cfg, algo, mode, trial as u64, &mut series);
        }
        columns.push((name, series.means()));
    }
    print_csv(
        "Fig 4: round-model vs intra-round (constant-update) relative error",
        "hour",
        &round_labels(cfg.rounds),
        &columns,
    );
}
