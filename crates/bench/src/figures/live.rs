//! Figures 20–21: the (simulated) live experiments. Unlike the paper's
//! live runs we have ground truth, so both figures also report error.

use agg_stats::error::relative_error;
use aggtrack_core::{
    AggKind, AggregateSpec, Estimator, ReissueEstimator, RestartEstimator, RsEstimator, TupleFn,
};
use hidden_db::query::ConjunctiveQuery;
use hidden_db::session::SearchSession;
use hidden_db::value::ValueId;
use query_tree::QueryTree;
use std::sync::Arc;
use workloads::amazon::{self, DAY_LABELS};
use workloads::ebay::{self, attrs as ebay_attrs};
use workloads::{AmazonSim, EbaySim};

use crate::cli::{Cli, Scale};
use crate::runner::print_csv;

/// Fig 20: AVG price, % men's, % wrist over Thanksgiving week, k = 100,
/// 1 000 queries/day (333 per tracked aggregate), RS-ESTIMATOR.
pub fn fig20(cli: &Cli) {
    let n = match cli.scale {
        Scale::Quick => 4_000,
        _ => 15_000,
    };
    let (mut db, mut sim) = AmazonSim::build(n, cli.seed.unwrap_or(42));
    let tree = QueryTree::full(&db.schema().clone());
    let g = cli.budget.unwrap_or(333);

    let mut price = RsEstimator::new(
        AggregateSpec::avg_measure(amazon::PRICE, ConjunctiveQuery::select_all()),
        tree.clone(),
        1,
    );
    let proportion = |attr, value: ValueId, seed| {
        let f = TupleFn::Custom(Arc::new(move |t: &hidden_db::tuple::TupleView| {
            (t.value(attr) == value) as u8 as f64
        }));
        RsEstimator::new(
            AggregateSpec {
                kind: AggKind::Avg,
                value_fn: f,
                condition: ConjunctiveQuery::select_all(),
                filter: None,
            },
            tree.clone(),
            seed,
        )
    };
    let mut men = proportion(amazon::attrs::DEPARTMENT, amazon::attrs::MEN, 2);
    let mut wrist = proportion(amazon::attrs::STYLE, amazon::attrs::WRIST, 3);

    let mut cols: Vec<(&str, Vec<f64>)> = vec![
        ("price_est", vec![]),
        ("price_true", vec![]),
        ("men_est", vec![]),
        ("men_true", vec![]),
        ("wrist_est", vec![]),
        ("wrist_true", vec![]),
    ];
    let mut xs = Vec::new();
    for (day, label) in DAY_LABELS.iter().enumerate() {
        let batch = sim.batch_for_day(&db, day);
        db.apply(batch).unwrap();
        xs.push(label.to_string());
        let run = |est: &mut RsEstimator, db: &mut hidden_db::HiddenDatabase| {
            let mut s = SearchSession::new(db, g);
            est.run_round(&mut s).avg().unwrap_or(f64::NAN)
        };
        let pe = run(&mut price, &mut db);
        let me = run(&mut men, &mut db);
        let we = run(&mut wrist, &mut db);
        cols[0].1.push(pe);
        cols[1].1.push(AmazonSim::true_avg_price(&db));
        cols[2].1.push(me);
        cols[3].1.push(AmazonSim::true_frac_men(&db));
        cols[4].1.push(we);
        cols[5].1.push(AmazonSim::true_frac_wrist(&db));
    }
    print_csv(
        "Fig 20: simulated Amazon watch store, Thanksgiving week (RS tracker)",
        "day",
        &xs,
        &cols,
    );
}

/// Fig 21: simulated eBay, AVG price of FIX vs BID listings, hourly
/// 1pm–9pm, 250 queries/hour per algorithm, all three estimators.
pub fn fig21(cli: &Cli) {
    let (n_fix, n_bid) = match cli.scale {
        Scale::Quick => (2_000, 3_000),
        _ => (8_000, 12_000),
    };
    let (mut db, mut sim) = EbaySim::build(n_fix, n_bid, cli.seed.unwrap_or(7));
    let tree = QueryTree::full(&db.schema().clone());
    let g = cli.budget.unwrap_or(250);
    let hours = cli.rounds.unwrap_or(8);

    let spec = |segment: ValueId| {
        AggregateSpec::avg_measure(ebay::PRICE, EbaySim::segment_condition(segment))
    };
    let mut estimators: Vec<(String, ValueId, Box<dyn Estimator>)> = Vec::new();
    for (seg_name, seg) in [("FIX", ebay_attrs::FIX), ("BID", ebay_attrs::BID)] {
        estimators.push((
            format!("RESTART_{seg_name}"),
            seg,
            Box::new(RestartEstimator::new(spec(seg), tree.clone(), 100)),
        ));
        estimators.push((
            format!("REISSUE_{seg_name}"),
            seg,
            Box::new(ReissueEstimator::new(spec(seg), tree.clone(), 101)),
        ));
        estimators.push((
            format!("RS_{seg_name}"),
            seg,
            Box::new(RsEstimator::new(spec(seg), tree.clone(), 102)),
        ));
    }

    let mut xs = Vec::new();
    let mut est_cols: Vec<Vec<f64>> = vec![Vec::new(); estimators.len()];
    let mut err_cols: Vec<Vec<f64>> = vec![Vec::new(); estimators.len()];
    let mut truth_fix = Vec::new();
    let mut truth_bid = Vec::new();
    for hour in 0..hours {
        xs.push(format!("{}pm", hour + 1));
        let t_fix = EbaySim::true_avg_price(&db, ebay_attrs::FIX);
        let t_bid = EbaySim::true_avg_price(&db, ebay_attrs::BID);
        truth_fix.push(t_fix);
        truth_bid.push(t_bid);
        for (i, (_, seg, est)) in estimators.iter_mut().enumerate() {
            let truth = if *seg == ebay_attrs::FIX { t_fix } else { t_bid };
            let mut s = SearchSession::new(&mut db, g);
            let avg = est.run_round(&mut s).avg().unwrap_or(f64::NAN);
            est_cols[i].push(avg);
            err_cols[i].push(relative_error(avg, truth));
        }
        let batch = sim.batch_for_hour(&db);
        db.apply(batch).unwrap();
    }
    let mut cols: Vec<(String, Vec<f64>)> =
        vec![("true_FIX".to_string(), truth_fix), ("true_BID".to_string(), truth_bid)];
    for (i, (name, _, _)) in estimators.iter().enumerate() {
        cols.push((name.clone(), est_cols[i].clone()));
        cols.push((format!("{name}_relerr"), err_cols[i].clone()));
    }
    let named: Vec<(&str, Vec<f64>)> = cols.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
    print_csv("Fig 21: simulated eBay, AVG price per segment per algorithm", "hour", &xs, &named);
}
