//! One function per figure of the paper's evaluation (§6). Each prints the
//! figure's series as CSV to stdout; the thin binaries in `src/bin/`
//! forward to these, and `all_figures` runs the lot.

pub mod basic;
pub mod cost;
pub mod intra;
pub mod live;
pub mod sweeps;
pub mod transround;

pub use basic::{fig02, fig03, fig05, fig06, fig07};
pub use cost::{fig18, fig19};
pub use intra::fig04;
pub use live::{fig20, fig21};
pub use sweeps::{fig08, fig09, fig10, fig11, fig12, fig13};
pub use transround::{fig14, fig15, fig16, fig17};
