//! Figures 8–13: parameter sweeps reporting the error after the full
//! tracking horizon (the paper plots error-after-50/100-rounds against
//! the swept parameter).

use aggtrack_core::{AggregateSpec, RsConfig};
use hidden_db::query::{ConjunctiveQuery, Predicate};
use hidden_db::value::{AttrId, MeasureId, ValueId};
use query_tree::QueryTree;
use workloads::DeleteSpec;

use aggtrack_parallel::Threads;

use crate::cli::{BaseCfg, Cli, Scale};
use crate::runner::{
    count_star_tracked, print_csv, standard_algos, tail_mean, track_many, Tracked,
};

/// Averaging window for the "error after N rounds" scalar.
const TAIL: usize = 5;

/// Runs every configuration of a sweep through one shared pool at
/// `(configuration, trial)` granularity ([`track_many`]) instead of the
/// old per-configuration loop, which stalled the pool at each
/// configuration boundary. Output values are bit-identical to the
/// sequential sweep.
fn sweep_rows(
    cfgs: &[(String, BaseCfg)],
    tracked_of: &(dyn Fn(usize, &hidden_db::schema::Schema) -> Tracked + Sync),
) -> (Vec<String>, Vec<(&'static str, Vec<f64>)>) {
    let algos = standard_algos();
    let bare: Vec<BaseCfg> = cfgs.iter().map(|(_, c)| c.clone()).collect();
    let outs = track_many(&bare, &algos, RsConfig::default(), tracked_of, Threads::Auto);
    let mut columns: Vec<(&'static str, Vec<f64>)> =
        algos.iter().map(|a| (a.name(), Vec::new())).collect();
    let xs: Vec<String> = cfgs.iter().map(|(label, _)| label.clone()).collect();
    for out in &outs {
        for (i, a) in out.algos.iter().enumerate() {
            columns[i].1.push(tail_mean(&a.rel_err, TAIL));
        }
    }
    (xs, columns)
}

/// Fig 8: effect of the page size `k` on the error after 50 rounds.
pub fn fig08(cli: &Cli) {
    let base = BaseCfg::from_cli(cli);
    let ks: &[usize] = match cli.scale {
        Scale::Quick => &[50, 100, 200],
        Scale::Default => &[50, 100, 200, 300, 400],
        Scale::Paper => &[200, 400, 600, 800, 1000],
    };
    let cfgs: Vec<(String, BaseCfg)> = ks
        .iter()
        .map(|&k| {
            let mut c = base.clone();
            c.k = k;
            (k.to_string(), c)
        })
        .collect();
    let (xs, cols) = sweep_rows(&cfgs, &|_, schema| count_star_tracked(schema));
    print_csv("Fig 8: error after tracking horizon vs k", "k", &xs, &cols);
}

/// Fig 9: effect of the per-round budget `G`.
pub fn fig09(cli: &Cli) {
    let base = BaseCfg::from_cli(cli);
    let gs: &[u64] = match cli.scale {
        Scale::Quick => &[50, 100, 200],
        _ => &[50, 100, 200, 300, 400, 600],
    };
    let cfgs: Vec<(String, BaseCfg)> = gs
        .iter()
        .map(|&g| {
            let mut c = base.clone();
            c.g = g;
            (g.to_string(), c)
        })
        .collect();
    let (xs, cols) = sweep_rows(&cfgs, &|_, schema| count_star_tracked(schema));
    print_csv("Fig 9: error after tracking horizon vs per-round budget G", "G", &xs, &cols);
}

/// Fig 10: net insertions per round from −30 to +30 on a 5 000-tuple
/// database, 100 rounds; x = net tuples inserted over the horizon.
pub fn fig10(cli: &Cli) {
    let mut base = BaseCfg::from_cli(cli);
    base.initial = 5_000;
    base.k = 100;
    if cli.rounds.is_none() {
        base.rounds = match cli.scale {
            Scale::Quick => 20,
            _ => 100,
        };
    }
    let profiles: &[(usize, usize)] = &[(0, 30), (8, 22), (15, 15), (22, 8), (30, 0)];
    let cfgs: Vec<(String, BaseCfg)> = profiles
        .iter()
        .map(|&(ins, del)| {
            let mut c = base.clone();
            c.inserts = ins;
            c.delete = DeleteSpec::Count(del);
            let net = (ins as i64 - del as i64) * c.rounds as i64;
            (net.to_string(), c)
        })
        .collect();
    let (xs, cols) = sweep_rows(&cfgs, &|_, schema| count_star_tracked(schema));
    print_csv("Fig 10: error after horizon vs net tuples inserted", "net_inserted", &xs, &cols);
}

/// Fig 11: effect of the attribute count `m` (flat lines).
pub fn fig11(cli: &Cli) {
    let base = BaseCfg::from_cli(cli);
    let ms: &[usize] = match cli.scale {
        Scale::Quick => &[8, 12],
        Scale::Default => &[16, 20, 24],
        Scale::Paper => &[34, 36, 38],
    };
    let cfgs: Vec<(String, BaseCfg)> = ms
        .iter()
        .map(|&m| {
            let mut c = base.clone();
            c.attrs = m;
            (m.to_string(), c)
        })
        .collect();
    let (xs, cols) = sweep_rows(&cfgs, &|_, schema| count_star_tracked(schema));
    print_csv("Fig 11: error after tracking horizon vs attribute count m", "m", &xs, &cols);
}

/// Fig 12: effect of the initial database size (m = 50 in the paper; the
/// 10⁷ point is gated behind --scale paper).
pub fn fig12(cli: &Cli) {
    let mut base = BaseCfg::from_cli(cli);
    if cli.rounds.is_none() {
        base.rounds = 25;
    }
    base.trials = base.trials.min(4);
    let (attrs, sizes): (usize, &[usize]) = match cli.scale {
        Scale::Quick => (12, &[5_000, 20_000]),
        Scale::Default => (20, &[10_000, 100_000, 300_000]),
        Scale::Paper => (50, &[10_000, 100_000, 1_000_000, 10_000_000]),
    };
    base.attrs = attrs;
    let cfgs: Vec<(String, BaseCfg)> = sizes
        .iter()
        .map(|&n| {
            let mut c = base.clone();
            c.initial = n;
            // Keep the change *fraction* constant across sizes.
            c.inserts = (n as f64 * 0.0018) as usize;
            (n.to_string(), c)
        })
        .collect();
    let (xs, cols) = sweep_rows(&cfgs, &|_, schema| count_star_tracked(schema));
    print_csv(
        "Fig 12: error after tracking horizon vs initial database size",
        "initial_size",
        &xs,
        &cols,
    );
}

/// Fig 13: SUM(price) with 0–3 conjunctive selection predicates; the more
/// selective the aggregate, the lower the error (subtree drilling, §3.3).
pub fn fig13(cli: &Cli) {
    let mut base = BaseCfg::from_cli(cli);
    if cli.rounds.is_none() && cli.scale != Scale::Quick {
        base.rounds = 50;
    }
    // One configuration track per predicate depth; the tracked aggregate
    // varies with the configuration index, so all four depths share the
    // pool at (configuration, trial) granularity.
    let cfgs: Vec<(String, BaseCfg)> =
        (0..=3usize).map(|preds| (preds.to_string(), base.clone())).collect();
    let (xs, columns) = sweep_rows(&cfgs, &|ci, schema| {
        // Predicates on the first `ci` attributes, most popular value
        // (0) of each.
        let cond = ConjunctiveQuery::from_predicates(
            (0..ci).map(|a| Predicate::new(AttrId(a as u16), ValueId(0))),
        );
        let tree = QueryTree::subtree(schema, cond.clone());
        let spec = AggregateSpec::sum_measure(MeasureId(0), cond.clone());
        Tracked {
            spec,
            tree,
            truth: Box::new(move |db| db.exact_sum(Some(&cond), |t| t.measure(MeasureId(0)))),
        }
    });
    print_csv(
        "Fig 13: SUM(price) error after horizon vs #conjunctive predicates",
        "predicates",
        &xs,
        &columns,
    );
}
