//! Figures 14–17: trans-round aggregates — running averages of COUNT and
//! the round-over-round size change `|D_i| − |D_{i−1}|`.

use aggtrack_core::{RsConfig, TrackingTarget};
use workloads::DeleteSpec;

use crate::cli::{BaseCfg, Cli, Scale};
use crate::runner::{
    count_star_tracked, print_csv, round_labels, standard_algos, tail_mean, track, TrackOutcome,
};

/// Fig 14: running average of COUNT over the last 2/3/4 rounds — error
/// of the windowed average of estimates vs the windowed average of truths.
pub fn fig14(cli: &Cli) {
    let cfg = BaseCfg::from_cli(cli);
    let algos = standard_algos();
    let out = track(&cfg, &algos, RsConfig::default(), &count_star_tracked);
    let mut xs = Vec::new();
    let mut columns: Vec<(&'static str, Vec<f64>)> =
        algos.iter().map(|a| (a.name(), Vec::new())).collect();
    for (w, window) in crate::runner::RUNNING_AVG_WINDOWS.iter().enumerate() {
        xs.push(window.to_string());
        for (i, a) in out.algos.iter().enumerate() {
            columns[i].1.push(tail_mean(&a.running_avg_err[w], 5));
        }
    }
    print_csv("Fig 14: running-average COUNT error vs window size", "window", &xs, &columns);
}

fn change_cfg(cli: &Cli, insert_frac: f64, delete_frac: f64, default_rounds: usize) -> BaseCfg {
    let mut cfg = BaseCfg::from_cli(cli);
    cfg.inserts = (cfg.initial as f64 * insert_frac) as usize;
    cfg.delete = DeleteSpec::Fraction(delete_frac);
    if cli.rounds.is_none() {
        cfg.rounds = match cli.scale {
            Scale::Quick => default_rounds.min(8),
            _ => default_rounds,
        };
    }
    cfg
}

fn run_change(cfg: &BaseCfg) -> TrackOutcome {
    let rs_cfg = RsConfig { target: TrackingTarget::Change, ..RsConfig::default() };
    track(cfg, &standard_algos(), rs_cfg, &count_star_tracked)
}

fn print_change_rel(title: &str, out: &TrackOutcome, rounds: usize) {
    let columns: Vec<(&str, Vec<f64>)> =
        out.algos.iter().map(|a| (a.name, a.change_rel_err.means())).collect();
    print_csv(title, "round", &round_labels(rounds), &columns);
}

/// Fig 15: relative error of the size-change estimate under *small*
/// change (≈1.8 % inserts, 0.5 % deletes) — RESTART is off by orders of
/// magnitude (the paper plots this on a log axis).
pub fn fig15(cli: &Cli) {
    let cfg = change_cfg(cli, 0.0176, 0.005, 20);
    let out = run_change(&cfg);
    print_change_rel(
        "Fig 15: |D_i|-|D_i-1| relative error per round, small change",
        &out,
        cfg.rounds,
    );
}

/// Fig 16: the same run as Fig 15 but reporting the raw change estimates
/// against the true change (absolute view).
pub fn fig16(cli: &Cli) {
    let cfg = change_cfg(cli, 0.0176, 0.005, 20);
    let out = run_change(&cfg);
    let mut columns: Vec<(&str, Vec<f64>)> = vec![("true_change", out.truth_change.means())];
    for a in &out.algos {
        columns.push((a.name, a.change_est.means()));
    }
    print_csv(
        "Fig 16: absolute size-change estimates per round, small change",
        "round",
        &round_labels(cfg.rounds),
        &columns,
    );
}

/// Fig 17: size-change tracking under *big* change (+10 %, −5 % per
/// round); REISSUE and RS converge, both beat RESTART.
pub fn fig17(cli: &Cli) {
    let mut cfg = change_cfg(cli, 0.1, 0.05, 9);
    cfg.initial = (cfg.initial as f64 * 100.0 / 170.0) as usize;
    cfg.inserts = cfg.initial / 10;
    let out = run_change(&cfg);
    print_change_rel(
        "Fig 17: |D_i|-|D_i-1| relative error per round, big change",
        &out,
        cfg.rounds,
    );
}

/// Smoke check shared by tests: Fig 15's headline claim — REISSUE/RS
/// change error far below RESTART's.
pub fn fig15_headline_holds(cli: &Cli) -> bool {
    let cfg = change_cfg(cli, 0.0176, 0.005, 10);
    let out = run_change(&cfg);
    let restart = tail_mean(&out.algos[0].change_rel_err, 5);
    let reissue = tail_mean(&out.algos[1].change_rel_err, 5);
    reissue < restart
}
