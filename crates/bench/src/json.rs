//! A minimal JSON value tree + serialiser for machine-readable benchmark
//! reports (`BENCH_*.json`). Hand-rolled because the build environment is
//! offline (no `serde`); covers exactly what the reports need — objects
//! with stable key order, arrays, strings, bools, and finite/ non-finite
//! numbers (NaN/∞ serialise as `null`, matching `serde_json`).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (non-finite becomes `null` on output).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Self {
        Json::Obj(Vec::new())
    }

    /// Adds (or appends — keys are not deduplicated) a field; builder
    /// style for report construction.
    ///
    /// # Panics
    /// When `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("field() on non-object"),
        }
        self
    }

    /// Serialises with 2-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    // Integral values print without a fraction for
                    // readability; everything else round-trips via {}.
                    if n.fract() == 0.0 && n.abs() < 9.0e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Self {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_arrays_and_scalars_roundtrip_textually() {
        let j = Json::obj()
            .field("name", "perf_baseline")
            .field("ok", true)
            .field("count", 3u64)
            .field("ratio", 0.5)
            .field("nan_is_null", f64::NAN)
            .field("series", vec![1.0, 2.5])
            .field("nested", Json::obj().field("x", 1u64));
        let text = j.pretty();
        assert!(text.starts_with("{\n"));
        assert!(text.contains("\"name\": \"perf_baseline\""));
        assert!(text.contains("\"ok\": true"));
        assert!(text.contains("\"count\": 3"));
        assert!(text.contains("\"ratio\": 0.5"));
        assert!(text.contains("\"nan_is_null\": null"));
        assert!(text.contains("\"series\": [\n"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn strings_are_escaped() {
        let j = Json::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(j.pretty(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn empty_containers_are_compact() {
        assert_eq!(Json::obj().pretty(), "{}\n");
        assert_eq!(Json::Arr(vec![]).pretty(), "[]\n");
    }
}
