//! # aggtrack-bench — figure harnesses and benchmarks
//!
//! Everything needed to regenerate the paper's evaluation (§6):
//!
//! * [`cli`] — the `--scale quick|default|paper` presets and overrides;
//! * [`runner`] — the shared trials×rounds tracking loop, parallel over
//!   trials with bit-identical-to-sequential output;
//! * [`figures`] — one function per paper figure (2–21), each printing
//!   its series as CSV; invoked by the `figNN_*` binaries and by
//!   `all_figures` (which runs them concurrently, output in order);
//! * [`json`] — the hand-rolled JSON writer behind the `perf_baseline`
//!   binary's `BENCH_*.json` reports.
//!
//! Criterion micro-benchmarks live in `benches/`.

pub mod cli;
pub mod figures;
pub mod json;
pub mod runner;

pub use cli::{BaseCfg, Cli, Scale};
