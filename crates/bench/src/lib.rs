//! # aggtrack-bench — figure harnesses and benchmarks
//!
//! Everything needed to regenerate the paper's evaluation (§6):
//!
//! * [`cli`] — the `--scale quick|default|paper` presets and overrides;
//! * [`runner`] — the shared trials×rounds tracking loop;
//! * [`figures`] — one function per paper figure (2–21), each printing
//!   its series as CSV; invoked by the `figNN_*` binaries and by
//!   `all_figures`.
//!
//! Criterion micro-benchmarks live in `benches/`.

pub mod cli;
pub mod figures;
pub mod runner;

pub use cli::{BaseCfg, Cli, Scale};
