//! The shared experiment loop: run the three estimators over a scheduled
//! dynamic database for R rounds × T trials, collecting per-round series.
//!
//! Trials are embarrassingly parallel — each owns its database, schedule,
//! and RNG streams, all derived from `cfg.seed` and the trial index — so
//! [`track`] fans them out over [`aggtrack_parallel::par_map_indexed`].
//! Each trial produces a [`TrialOutcome`] (raw per-round records); the
//! main thread then merges them **in trial-index order**, which makes the
//! accumulated [`SeriesSummary`] state bit-identical to the sequential
//! loop for any thread count (Welford accumulation is order-sensitive in
//! the last bits; replaying records in a fixed order removes the
//! sensitivity).

use agg_stats::error::{relative_error, SeriesSummary};
use aggtrack_core::{
    AggregateSpec, Estimator, ReissueEstimator, RestartEstimator, RoundReport, RsConfig,
    RsEstimator,
};
use aggtrack_parallel::{par_map_indexed, Threads};
use hidden_db::database::HiddenDatabase;
use hidden_db::fault::{FaultSchedule, FaultyBackend, ResilientBackend, RetryPolicy};
use hidden_db::ranking::ScoringPolicy;
use hidden_db::schema::Schema;
use query_tree::QueryTree;
use rand::rngs::StdRng;
use rand::SeedableRng;
use workloads::{load_database, AutosGenerator, PerRoundSchedule, RoundDriver};

use crate::cli::{BaseCfg, FaultsMode};

/// Which estimator to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoKind {
    /// The repeated-execution baseline.
    Restart,
    /// Query reissuing (Algorithm 1).
    Reissue,
    /// Reservoir-style adaptive (Algorithm 2).
    Rs,
}

impl AlgoKind {
    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            Self::Restart => "RESTART",
            Self::Reissue => "REISSUE",
            Self::Rs => "RS",
        }
    }

    /// Instantiates the estimator.
    ///
    /// Both reissue-family estimators use the `Strict` policy (§4.1's
    /// two-query accounting): the cheaper `Trusting` variant of §3.2
    /// turns out to accumulate a serious downward bias on dynamic
    /// workloads — tuples leak out of the partition when an overflowing
    /// ancestor silently shrinks below `k`. The
    /// `reissue_policy_ablation` bench quantifies the trade-off.
    pub fn build(
        self,
        spec: AggregateSpec,
        tree: QueryTree,
        seed: u64,
        rs_cfg: RsConfig,
    ) -> Box<dyn Estimator> {
        match self {
            Self::Restart => Box::new(RestartEstimator::new(spec, tree, seed)),
            Self::Reissue => Box::new(ReissueEstimator::new(spec, tree, seed)),
            Self::Rs => Box::new(RsEstimator::with_config(spec, tree, seed, rs_cfg)),
        }
    }
}

/// The three paper algorithms, in legend order.
pub fn standard_algos() -> Vec<AlgoKind> {
    vec![AlgoKind::Restart, AlgoKind::Reissue, AlgoKind::Rs]
}

/// The aggregate being tracked in one experiment.
pub struct Tracked {
    /// Aggregate specification handed to the estimators.
    pub spec: AggregateSpec,
    /// Query tree (full tree or a §3.3 subtree).
    pub tree: QueryTree,
    /// Ground-truth oracle (experiments only).
    pub truth: Box<dyn Fn(&HiddenDatabase) -> f64>,
}

/// Builds the default tracked aggregate: `COUNT(*)`.
pub fn count_star_tracked(schema: &Schema) -> Tracked {
    Tracked {
        spec: AggregateSpec::count_star(),
        tree: QueryTree::full(schema),
        truth: Box::new(|db| db.exact_count(None) as f64),
    }
}

/// Per-algorithm series accumulated across trials.
pub struct SeriesSet {
    /// Legend name.
    pub name: &'static str,
    /// Relative error of the primary estimate per round.
    pub rel_err: SeriesSummary,
    /// estimate/truth ratio per round (Fig 3's error bars).
    pub ratio: SeriesSummary,
    /// Relative error of the change estimate per round (NaN round 1).
    pub change_rel_err: SeriesSummary,
    /// Raw change estimates (Fig 16's absolute plot).
    pub change_est: SeriesSummary,
    /// Cumulative drill-downs performed (Fig 19).
    pub cum_drills: SeriesSummary,
    /// Cumulative queries spent (Fig 19's x-axis).
    pub cum_queries: SeriesSummary,
    /// Relative error of the *running average* of the primary estimate
    /// over the last 2/3/4 rounds (Fig 14), computed per trial.
    pub running_avg_err: [SeriesSummary; 3],
    /// Raw estimate/truth ratios, one row per merged trial (`NaN` where a
    /// round went unrecorded) — the figure pipeline's bootstrap resamples
    /// these instead of the already-collapsed moments.
    pub ratio_trials: Vec<Vec<f64>>,
    /// Raw relative errors, one row per merged trial.
    pub rel_err_trials: Vec<Vec<f64>>,
}

/// Windows used by [`SeriesSet::running_avg_err`], matching Fig 14.
pub const RUNNING_AVG_WINDOWS: [usize; 3] = [2, 3, 4];

impl SeriesSet {
    fn new(name: &'static str, rounds: usize) -> Self {
        Self {
            name,
            rel_err: SeriesSummary::new(rounds),
            ratio: SeriesSummary::new(rounds),
            change_rel_err: SeriesSummary::new(rounds),
            change_est: SeriesSummary::new(rounds),
            cum_drills: SeriesSummary::new(rounds),
            cum_queries: SeriesSummary::new(rounds),
            running_avg_err: [
                SeriesSummary::new(rounds),
                SeriesSummary::new(rounds),
                SeriesSummary::new(rounds),
            ],
            ratio_trials: Vec::new(),
            rel_err_trials: Vec::new(),
        }
    }
}

/// A whole experiment's output.
pub struct TrackOutcome {
    /// One series set per algorithm, in input order.
    pub algos: Vec<SeriesSet>,
    /// Ground truth per round.
    pub truth: SeriesSummary,
    /// True round-over-round change per round (NaN round 1).
    pub truth_change: SeriesSummary,
}

/// One trial's worth of records for one series: at most one value per
/// round, in round order. Raw values (not moments) so the merge can
/// replay them into [`SeriesSummary`] in trial order.
struct TrialSeries(Vec<Option<f64>>);

impl TrialSeries {
    fn new(rounds: usize) -> Self {
        Self(vec![None; rounds])
    }

    fn record(&mut self, point: usize, value: f64) {
        self.0[point] = Some(value);
    }

    /// Replays this trial's records into the cross-trial summary.
    fn merge_into(&self, summary: &mut SeriesSummary) {
        for (point, v) in self.0.iter().enumerate() {
            if let Some(v) = v {
                summary.record(point, *v);
            }
        }
    }

    /// This trial as a dense row (`NaN` where nothing was recorded).
    fn row(&self) -> Vec<f64> {
        self.0.iter().map(|v| v.unwrap_or(f64::NAN)).collect()
    }
}

/// Per-trial mirror of [`SeriesSet`].
struct TrialSeriesSet {
    rel_err: TrialSeries,
    ratio: TrialSeries,
    change_rel_err: TrialSeries,
    change_est: TrialSeries,
    cum_drills: TrialSeries,
    cum_queries: TrialSeries,
    running_avg_err: [TrialSeries; 3],
}

impl TrialSeriesSet {
    fn new(rounds: usize) -> Self {
        Self {
            rel_err: TrialSeries::new(rounds),
            ratio: TrialSeries::new(rounds),
            change_rel_err: TrialSeries::new(rounds),
            change_est: TrialSeries::new(rounds),
            cum_drills: TrialSeries::new(rounds),
            cum_queries: TrialSeries::new(rounds),
            running_avg_err: [
                TrialSeries::new(rounds),
                TrialSeries::new(rounds),
                TrialSeries::new(rounds),
            ],
        }
    }

    fn merge_into(&self, set: &mut SeriesSet) {
        set.ratio_trials.push(self.ratio.row());
        set.rel_err_trials.push(self.rel_err.row());
        self.rel_err.merge_into(&mut set.rel_err);
        self.ratio.merge_into(&mut set.ratio);
        self.change_rel_err.merge_into(&mut set.change_rel_err);
        self.change_est.merge_into(&mut set.change_est);
        self.cum_drills.merge_into(&mut set.cum_drills);
        self.cum_queries.merge_into(&mut set.cum_queries);
        for (w, series) in self.running_avg_err.iter().enumerate() {
            series.merge_into(&mut set.running_avg_err[w]);
        }
    }
}

/// One trial's complete record set.
struct TrialOutcome {
    algos: Vec<TrialSeriesSet>,
    truth: TrialSeries,
    truth_change: TrialSeries,
}

/// Runs `cfg.trials` seeded trials of `cfg.rounds` rounds, tracking the
/// aggregate built by `tracked_of` with every algorithm in `algos`.
/// Trials run concurrently ([`Threads::Auto`]: `AGGTRACK_THREADS` or the
/// machine's parallelism); results are identical to the sequential loop.
pub fn track(
    cfg: &BaseCfg,
    algos: &[AlgoKind],
    rs_cfg: RsConfig,
    tracked_of: &(dyn Fn(&Schema) -> Tracked + Sync),
) -> TrackOutcome {
    track_with_threads(cfg, algos, rs_cfg, tracked_of, Threads::Auto)
}

/// [`track`] with an explicit thread policy. Estimator output is
/// **bit-identical** for every policy: trial seeds depend only on the
/// trial index, and per-round records merge in trial order.
pub fn track_with_threads(
    cfg: &BaseCfg,
    algos: &[AlgoKind],
    rs_cfg: RsConfig,
    tracked_of: &(dyn Fn(&Schema) -> Tracked + Sync),
    threads: Threads,
) -> TrackOutcome {
    track_many(std::slice::from_ref(cfg), algos, rs_cfg, &|_, schema| tracked_of(schema), threads)
        .pop()
        .expect("one config in, one outcome out")
}

/// Runs several independent configurations ("tracks") through **one**
/// shared pool at `(configuration, trial)` granularity — the flattened
/// job list keeps every worker busy across configuration boundaries,
/// where the old per-figure × per-trial nesting drained the pool at the
/// end of each configuration before starting the next. Used by the
/// fig08–fig13 sweeps.
///
/// `tracked_of` receives the configuration index, so sweeps can vary the
/// tracked aggregate per configuration (fig13). Outputs are
/// **bit-identical** to running [`track_with_threads`] per configuration:
/// each trial's records depend only on `(config, trial index)`, and the
/// merge replays them config-major in trial order.
pub fn track_many(
    cfgs: &[BaseCfg],
    algos: &[AlgoKind],
    rs_cfg: RsConfig,
    tracked_of: &(dyn Fn(usize, &Schema) -> Tracked + Sync),
    threads: Threads,
) -> Vec<TrackOutcome> {
    let jobs: Vec<(usize, u64)> = cfgs
        .iter()
        .enumerate()
        .flat_map(|(ci, cfg)| (0..cfg.trials as u64).map(move |t| (ci, t)))
        .collect();
    let trials = par_map_indexed(jobs.len(), threads, |j| {
        let (ci, trial) = jobs[j];
        run_trial(&cfgs[ci], algos, rs_cfg, &|schema: &Schema| tracked_of(ci, schema), trial)
    });
    let mut outs: Vec<TrackOutcome> = cfgs
        .iter()
        .map(|cfg| TrackOutcome {
            algos: algos.iter().map(|a| SeriesSet::new(a.name(), cfg.rounds)).collect(),
            truth: SeriesSummary::new(cfg.rounds),
            truth_change: SeriesSummary::new(cfg.rounds),
        })
        .collect();
    for (&(ci, _), trial) in jobs.iter().zip(&trials) {
        let out = &mut outs[ci];
        trial.truth.merge_into(&mut out.truth);
        trial.truth_change.merge_into(&mut out.truth_change);
        for (i, algo) in trial.algos.iter().enumerate() {
            algo.merge_into(&mut out.algos[i]);
        }
    }
    outs
}

fn run_trial(
    cfg: &BaseCfg,
    algos: &[AlgoKind],
    rs_cfg: RsConfig,
    tracked_of: &(dyn Fn(&Schema) -> Tracked + Sync),
    trial: u64,
) -> TrialOutcome {
    let mut out = TrialOutcome {
        algos: algos.iter().map(|_| TrialSeriesSet::new(cfg.rounds)).collect(),
        truth: TrialSeries::new(cfg.rounds),
        truth_change: TrialSeries::new(cfg.rounds),
    };
    let mut gen = AutosGenerator::with_attrs(cfg.attrs);
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(trial));
    let mut db = load_database(&mut gen, &mut rng, cfg.initial, cfg.k, ScoringPolicy::default());
    // Outcome-invariant (pinned by the determinism suite): the policy only
    // changes wall-clock and cache counters, never estimator records.
    db.set_invalidation_policy(cfg.memo_policy);
    // Out-of-core persistence tier: trials share cfg.persist.dir but run
    // concurrently, so each takes a globally unique subdirectory.
    let persist_dir = cfg.persist.as_ref().map(|p| {
        static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let unique = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = p.dir.join(format!("trial-{}-{unique}", std::process::id()));
        db.enable_persist(&hidden_db::PersistConfig::new(dir.clone(), p.resident_segments))
            .expect("--persist: could not open the region file");
        dir
    });
    let schedule = PerRoundSchedule::new(gen, cfg.inserts, cfg.delete);
    let mut driver = RoundDriver::new(db, schedule, cfg.seed ^ (trial.wrapping_mul(7919)));

    let tracked = tracked_of(driver.db().schema());
    let kind = tracked.spec.kind;
    let mut estimators: Vec<Box<dyn Estimator>> = algos
        .iter()
        .enumerate()
        .map(|(i, a)| {
            a.build(
                tracked.spec.clone(),
                tracked.tree.clone(),
                cfg.seed ^ (trial.wrapping_mul(31) + i as u64 + 1),
                rs_cfg,
            )
        })
        .collect();
    let mut cum_drills = vec![0u64; algos.len()];
    let mut cum_queries = vec![0u64; algos.len()];
    let mut prev_truth = f64::NAN;
    // Per-trial running averages (Fig 14): one per algorithm per window,
    // plus one per window for the truth.
    let mut ra_est: Vec<Vec<aggtrack_core::RunningAverage>> = algos
        .iter()
        .map(|_| {
            RUNNING_AVG_WINDOWS.iter().map(|&w| aggtrack_core::RunningAverage::new(w)).collect()
        })
        .collect();
    let mut ra_truth: Vec<aggtrack_core::RunningAverage> =
        RUNNING_AVG_WINDOWS.iter().map(|&w| aggtrack_core::RunningAverage::new(w)).collect();

    for round in 0..cfg.rounds {
        let truth = (tracked.truth)(driver.db());
        let true_change = truth - prev_truth;
        out.truth.record(round, truth);
        if round >= 1 {
            out.truth_change.record(round, true_change);
        }
        let truth_ra: Vec<f64> = ra_truth.iter_mut().map(|ra| ra.push(truth)).collect();
        for (i, est) in estimators.iter_mut().enumerate() {
            let report: RoundReport = match cfg.faults {
                FaultsMode::Off => {
                    let mut session = driver.session(cfg.g);
                    est.run_round(&mut session)
                }
                FaultsMode::Seeded { rate } => {
                    // Deterministic per-(trial, round, algorithm) fault and
                    // jitter streams, derived like the estimator seeds above
                    // so any thread policy replays the same storms.
                    let fault_seed = cfg.seed
                        ^ trial.wrapping_mul(7919)
                        ^ ((round as u64) << 20)
                        ^ ((i as u64 + 1) << 8);
                    let session = driver.session(cfg.g);
                    let faulty =
                        FaultyBackend::new(session, FaultSchedule::seeded(fault_seed, rate));
                    let mut stack =
                        ResilientBackend::new(faulty, RetryPolicy::default(), fault_seed ^ 0x171);
                    let report = est.run_round(&mut stack);
                    // The default schedule's burst cap sits below the default
                    // retry budget, so recovery must always succeed here.
                    assert_eq!(stack.stats().gave_up, 0, "recovery gave up for {}", est.name());
                    report
                }
            };
            assert!(report.queries_spent <= cfg.g, "budget violated by {}", est.name());
            let series = &mut out.algos[i];
            let primary = report.primary(kind);
            series.rel_err.record(round, relative_error(primary, truth));
            series.ratio.record(round, primary / truth);
            for (w, ra) in ra_est[i].iter_mut().enumerate() {
                let avg = ra.push(primary);
                series.running_avg_err[w].record(round, relative_error(avg, truth_ra[w]));
            }
            cum_drills[i] += (report.updated + report.initiated) as u64;
            cum_queries[i] += report.queries_spent;
            series.cum_drills.record(round, cum_drills[i] as f64);
            series.cum_queries.record(round, cum_queries[i] as f64);
            if round >= 1 {
                if let Some(change) = report.primary_change(kind) {
                    series.change_rel_err.record(round, relative_error(change, true_change));
                    series.change_est.record(round, change);
                }
            }
        }
        prev_truth = truth;
        driver.advance();
        // Amortised segment maintenance between rounds (bound recompute +
        // posting-list compaction). Outcome-invariant: estimator records
        // are bit-identical with any budget (pinned by the determinism
        // suite), only scan wall-clock moves.
        if let Some(budget) = cfg.maintain_slots {
            driver.db_mut().maintain(hidden_db::MaintenanceBudget::slots(budget));
        }
        // Pressure-triggered automatic compaction — the same trigger the
        // shared service's writer queue applies after draining a batch.
        if let hidden_db::AutoMaintain::Pressure { threshold } = cfg.auto_maintain {
            if driver.db().max_segment_pressure() >= threshold {
                driver.db_mut().compact();
            }
        }
    }
    if let Some(dir) = persist_dir {
        drop(driver);
        let _ = std::fs::remove_dir_all(dir);
    }
    out
}

std::thread_local! {
    /// When set, [`print_csv`] appends here instead of writing stdout —
    /// lets `all_figures` run figures concurrently and still emit their
    /// CSV blocks in figure order.
    static CSV_SINK: std::cell::RefCell<Option<String>> =
        const { std::cell::RefCell::new(None) };
}

/// Runs `f` with this thread's CSV output captured, returning it.
pub fn capture_csv(f: impl FnOnce()) -> String {
    CSV_SINK.with(|s| *s.borrow_mut() = Some(String::new()));
    f();
    CSV_SINK.with(|s| s.borrow_mut().take().expect("sink installed above"))
}

fn emit_line(line: std::fmt::Arguments<'_>) {
    CSV_SINK.with(|s| match &mut *s.borrow_mut() {
        Some(buf) => {
            use std::fmt::Write;
            writeln!(buf, "{line}").expect("string write cannot fail");
        }
        None => println!("{line}"),
    });
}

/// Prints a CSV block: header line then one row per x value. Output goes
/// to stdout, or to the thread's [`capture_csv`] buffer when one is
/// installed.
pub fn print_csv(title: &str, x_name: &str, x: &[String], columns: &[(&str, Vec<f64>)]) {
    emit_line(format_args!("# {title}"));
    let mut header = vec![x_name.to_string()];
    header.extend(columns.iter().map(|(n, _)| n.to_string()));
    emit_line(format_args!("{}", header.join(",")));
    for (i, xv) in x.iter().enumerate() {
        let mut row = vec![xv.clone()];
        for (_, col) in columns {
            row.push(format!("{:.6}", col.get(i).copied().unwrap_or(f64::NAN)));
        }
        emit_line(format_args!("{}", row.join(",")));
    }
    emit_line(format_args!(""));
}

/// Rounds 1..=n as x-axis labels.
pub fn round_labels(n: usize) -> Vec<String> {
    (1..=n).map(|r| r.to_string()).collect()
}

/// Mean of the last `w` finite values of a series' means — the "error
/// after N rounds" scalar used by the sweep figures (8, 9, 11, 12, 13).
///
/// Window semantics (pinned by `tail_mean_window_is_chronologically_last`):
/// the window is selected from the **end** of the series — the `rev()`
/// walks backwards from the final round, `filter` skips NaN (unrecorded)
/// points wherever they sit, and `take(w)` stops after `w` finite values.
/// The collected tail is therefore in reverse chronological order, which
/// is irrelevant to a mean; what matters is that the values are the last
/// `w` finite rounds, never the first.
pub fn tail_mean(series: &SeriesSummary, w: usize) -> f64 {
    let means = series.means();
    let tail: Vec<f64> = means.into_iter().rev().filter(|v| v.is_finite()).take(w).collect();
    if tail.is_empty() {
        f64::NAN
    } else {
        tail.iter().sum::<f64>() / tail.len() as f64
    }
}

/// Per-round bootstrap percentile CIs across trials: at each round, the
/// trial values are exchangeable (independent seeded trials), so an
/// n-out-of-n resample of the across-trial mean is honest. Returns
/// `(lo, hi)` vectors aligned with the round axis, `NaN` where fewer
/// than two finite trial values exist. Deterministic: round `r` uses the
/// stream `seed ^ r`.
pub fn trial_cis(
    rows: &[Vec<f64>],
    rounds: usize,
    replicates: usize,
    seed: u64,
    level: f64,
) -> (Vec<f64>, Vec<f64>) {
    let mut lo = vec![f64::NAN; rounds];
    let mut hi = vec![f64::NAN; rounds];
    for r in 0..rounds {
        let col: Vec<f64> = rows.iter().filter_map(|row| row.get(r).copied()).collect();
        if let Some(ci) = agg_stats::resample::mean_ci(&col, replicates, seed ^ r as u64, level) {
            lo[r] = ci.lo;
            hi[r] = ci.hi;
        }
    }
    (lo, hi)
}

/// Block-bootstrap percentile CI for the tail error scalar of a sweep
/// point (the [`tail_mean`] companion). Each trial contributes its last
/// `w` finite values in round order; the concatenated series is
/// resampled in blocks of `w` (capped by the series length), so the
/// trans-round serial dependence *within* a trial's window survives
/// resampling while trials still mix. `None` with fewer than two values.
pub fn tail_block_ci(
    rows: &[Vec<f64>],
    w: usize,
    replicates: usize,
    seed: u64,
    level: f64,
) -> Option<agg_stats::resample::ConfidenceInterval> {
    let mut series = Vec::new();
    for row in rows {
        let mut tail: Vec<f64> =
            row.iter().rev().copied().filter(|v| v.is_finite()).take(w).collect();
        tail.reverse(); // back to round order inside the window
        series.extend(tail);
    }
    let block = w.clamp(1, series.len().max(1));
    agg_stats::resample::series_mean_ci(&series, block, replicates, seed, level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::{BaseCfg, Scale};

    #[test]
    fn quick_track_produces_complete_series() {
        let mut cfg = BaseCfg::for_scale(Scale::Quick);
        cfg.rounds = 4;
        cfg.trials = 2;
        cfg.initial = 1_500;
        let out = track(&cfg, &standard_algos(), RsConfig::default(), &count_star_tracked);
        assert_eq!(out.algos.len(), 3);
        for a in &out.algos {
            for r in 0..cfg.rounds {
                let m = a.rel_err.mean(r);
                assert!(m.is_finite(), "{} round {r} rel err {m}", a.name);
                assert!(m < 1.0, "{} round {r} rel err {m} out of band", a.name);
            }
            // Cumulative metrics must be non-decreasing.
            let d = a.cum_drills.means();
            assert!(d.windows(2).all(|w| w[1] >= w[0]));
        }
        // Truth tracks the schedule: +8 −0.1 % per round from 1 500.
        assert!(out.truth.mean(0) == 1_500.0);
        assert!(out.truth.mean(3) > 1_500.0);
    }

    #[test]
    fn seeded_faults_stay_within_budget_and_are_deterministic() {
        let mut cfg = BaseCfg::for_scale(Scale::Quick);
        cfg.rounds = 3;
        cfg.trials = 1;
        cfg.initial = 1_200;
        cfg.faults = FaultsMode::Seeded { rate: 0.3 };
        let a = track(&cfg, &standard_algos(), RsConfig::default(), &count_star_tracked);
        let b = track(&cfg, &standard_algos(), RsConfig::default(), &count_star_tracked);
        for (sa, sb) in a.algos.iter().zip(&b.algos) {
            for r in 0..cfg.rounds {
                assert!(sa.rel_err.mean(r).is_finite(), "{} round {r}", sa.name);
                // Same seeds, same storms: replays are bit-identical.
                assert_eq!(sa.rel_err.mean(r).to_bits(), sb.rel_err.mean(r).to_bits());
                assert_eq!(sa.cum_queries.mean(r).to_bits(), sb.cum_queries.mean(r).to_bits());
                // Burned retries still respect the per-round cap G.
                let spent = sa.cum_queries.mean(r);
                assert!(spent <= (cfg.g * (r as u64 + 1)) as f64, "{} over cap", sa.name);
            }
        }
    }

    /// `--persist` is outcome-invariant: a tiny resident budget forces
    /// real paging, yet every estimator record stays bit-identical to the
    /// in-RAM run.
    #[test]
    fn persisted_track_is_bit_identical_to_in_ram() {
        let mut cfg = BaseCfg::for_scale(Scale::Quick);
        cfg.rounds = 3;
        cfg.trials = 1;
        cfg.initial = 1_200;
        let plain = track(&cfg, &standard_algos(), RsConfig::default(), &count_star_tracked);
        let dir =
            std::env::temp_dir().join(format!("aggtrack-runner-persist-{}", std::process::id()));
        cfg.persist = Some(hidden_db::PersistConfig::new(dir.clone(), 2));
        let paged = track(&cfg, &standard_algos(), RsConfig::default(), &count_star_tracked);
        for (sa, sb) in plain.algos.iter().zip(&paged.algos) {
            for r in 0..cfg.rounds {
                assert_eq!(
                    sa.rel_err.mean(r).to_bits(),
                    sb.rel_err.mean(r).to_bits(),
                    "{} round {r} drifted under paging",
                    sa.name
                );
                assert_eq!(sa.cum_queries.mean(r).to_bits(), sb.cum_queries.mean(r).to_bits());
            }
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn tail_mean_window_is_chronologically_last() {
        // An asymmetric series where a front-window bug would be loud:
        // means [40, 30, 2, 4]. The last-2 window must average 2 and 4,
        // not 40 and 30 (front) nor 30 and 2 (off-by-one).
        let mut s = SeriesSummary::new(4);
        for (i, v) in [40.0, 30.0, 2.0, 4.0].into_iter().enumerate() {
            s.record(i, v);
        }
        assert_eq!(tail_mean(&s, 2), 3.0);
        assert_eq!(tail_mean(&s, 1), 4.0);
        assert_eq!(tail_mean(&s, 4), 19.0);
        // A NaN hole in the tail widens the window backwards: last 2
        // finite of [40, 30, NaN(unrecorded), 4] are 30 and 4.
        let mut holey = SeriesSummary::new(4);
        holey.record(0, 40.0);
        holey.record(1, 30.0);
        holey.record(3, 4.0);
        assert_eq!(tail_mean(&holey, 2), 17.0);
    }

    #[test]
    fn track_retains_raw_trial_rows() {
        let mut cfg = BaseCfg::for_scale(Scale::Quick);
        cfg.rounds = 3;
        cfg.trials = 2;
        cfg.initial = 1_200;
        let out = track(&cfg, &standard_algos(), RsConfig::default(), &count_star_tracked);
        for a in &out.algos {
            assert_eq!(a.ratio_trials.len(), cfg.trials, "{}", a.name);
            assert_eq!(a.rel_err_trials.len(), cfg.trials);
            for row in &a.ratio_trials {
                assert_eq!(row.len(), cfg.rounds);
                assert!(row.iter().all(|v| v.is_finite()), "{}: {row:?}", a.name);
            }
            // The retained rows must reproduce the collapsed means.
            for r in 0..cfg.rounds {
                let mean: f64 =
                    a.ratio_trials.iter().map(|row| row[r]).sum::<f64>() / cfg.trials as f64;
                assert!((mean - a.ratio.mean(r)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn trial_cis_cover_the_across_trial_mean() {
        // 24 fake trials of 3 rounds with spread; CI must bracket the mean.
        let rows: Vec<Vec<f64>> = (0..24)
            .map(|t| (0..3).map(|r| 1.0 + 0.01 * ((t * 7 + r * 3) % 11) as f64).collect())
            .collect();
        let (lo, hi) = trial_cis(&rows, 3, 500, 99, 0.95);
        for r in 0..3 {
            let mean: f64 = rows.iter().map(|row| row[r]).sum::<f64>() / rows.len() as f64;
            assert!(lo[r] <= mean && mean <= hi[r], "round {r}: [{} {}] vs {mean}", lo[r], hi[r]);
            assert!(lo[r] < hi[r]);
        }
        // Determinism.
        assert_eq!(trial_cis(&rows, 3, 500, 99, 0.95), (lo, hi));
        // Too few trials → NaN, not a bogus interval.
        let (lo1, hi1) = trial_cis(&rows[..1], 3, 500, 99, 0.95);
        assert!(lo1[0].is_nan() && hi1[0].is_nan());
    }

    #[test]
    fn tail_block_ci_brackets_the_tail_mean() {
        let rows: Vec<Vec<f64>> =
            (0..8).map(|t| (0..10).map(|r| 0.2 + 0.005 * ((t + r) % 7) as f64).collect()).collect();
        let ci = tail_block_ci(&rows, 5, 800, 3, 0.95).expect("enough data");
        let all_tail: Vec<f64> = rows.iter().flat_map(|row| row[5..].iter().copied()).collect();
        let mean = all_tail.iter().sum::<f64>() / all_tail.len() as f64;
        assert!(ci.contains(mean), "{ci:?} vs {mean}");
        assert!(tail_block_ci(&[vec![f64::NAN; 4]], 2, 100, 0, 0.95).is_none());
    }

    #[test]
    fn tail_mean_ignores_nans() {
        let mut s = SeriesSummary::new(4);
        s.record(2, 1.0);
        s.record(3, 3.0);
        assert_eq!(tail_mean(&s, 2), 2.0);
        assert_eq!(tail_mean(&s, 10), 2.0);
        let empty = SeriesSummary::new(2);
        assert!(tail_mean(&empty, 3).is_nan());
    }
}
