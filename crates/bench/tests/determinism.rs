//! Parallel-vs-sequential determinism: the parallel trial runner must be
//! a pure performance optimisation — same `BaseCfg` + seed must produce
//! **bit-identical** summaries at every thread count. Likewise the memo
//! invalidation policy (incremental vs wholesale vs disabled) must be a
//! pure performance knob: estimator records cannot depend on caching.

use aggtrack_bench::cli::{BaseCfg, Scale};
use aggtrack_bench::runner::{
    count_star_tracked, standard_algos, track_with_threads, TrackOutcome,
};
use aggtrack_core::RsConfig;
use aggtrack_parallel::Threads;
use hidden_db::InvalidationPolicy;

fn run(threads: Threads) -> TrackOutcome {
    run_with_policy(threads, InvalidationPolicy::Incremental)
}

fn run_with_policy(threads: Threads, policy: InvalidationPolicy) -> TrackOutcome {
    let mut cfg = BaseCfg::for_scale(Scale::Quick);
    cfg.initial = 1_200;
    cfg.rounds = 4;
    cfg.trials = 5; // more trials than workers, so workers multiplex
    cfg.memo_policy = policy;
    track_with_threads(&cfg, &standard_algos(), RsConfig::default(), &count_star_tracked, threads)
}

/// Bitwise comparison (plain `==` would conflate NaNs and miss sign/ulp
/// differences — the whole point is catching accumulation-order drift).
fn assert_bits_equal(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x} != {y} (bitwise)");
    }
}

#[test]
fn parallel_track_is_bit_identical_to_sequential() {
    let seq = run(Threads::fixed(1));
    for workers in [2, 4, 7] {
        let par = run(Threads::fixed(workers));
        assert_eq!(seq.algos.len(), par.algos.len());
        assert_bits_equal(&seq.truth.means(), &par.truth.means(), "truth means");
        assert_bits_equal(&seq.truth.stds(), &par.truth.stds(), "truth stds");
        assert_bits_equal(
            &seq.truth_change.means(),
            &par.truth_change.means(),
            "truth_change means",
        );
        for (s, p) in seq.algos.iter().zip(&par.algos) {
            assert_eq!(s.name, p.name);
            let tag = |metric: &str| format!("{} {metric} ({workers} threads)", s.name);
            assert_bits_equal(&s.rel_err.means(), &p.rel_err.means(), &tag("rel_err μ"));
            assert_bits_equal(&s.rel_err.stds(), &p.rel_err.stds(), &tag("rel_err σ"));
            assert_bits_equal(&s.ratio.means(), &p.ratio.means(), &tag("ratio μ"));
            assert_bits_equal(&s.ratio.stds(), &p.ratio.stds(), &tag("ratio σ"));
            assert_bits_equal(
                &s.change_rel_err.means(),
                &p.change_rel_err.means(),
                &tag("change_rel_err μ"),
            );
            assert_bits_equal(&s.change_est.means(), &p.change_est.means(), &tag("change_est μ"));
            assert_bits_equal(&s.cum_drills.means(), &p.cum_drills.means(), &tag("cum_drills μ"));
            assert_bits_equal(
                &s.cum_queries.means(),
                &p.cum_queries.means(),
                &tag("cum_queries μ"),
            );
            for w in 0..s.running_avg_err.len() {
                assert_bits_equal(
                    &s.running_avg_err[w].means(),
                    &p.running_avg_err[w].means(),
                    &tag(&format!("running_avg_err[{w}] μ")),
                );
            }
        }
    }
}

/// Incremental invalidation (the default), the legacy wholesale clear,
/// and a memo-free database must all produce bit-identical estimator
/// series — caching is invisible to every figure track.
#[test]
fn memo_policy_is_outcome_invariant() {
    let incremental = run_with_policy(Threads::fixed(2), InvalidationPolicy::Incremental);
    for policy in [InvalidationPolicy::Wholesale, InvalidationPolicy::Disabled] {
        let other = run_with_policy(Threads::fixed(2), policy);
        assert_bits_equal(
            &incremental.truth.means(),
            &other.truth.means(),
            &format!("truth means vs {policy:?}"),
        );
        for (s, p) in incremental.algos.iter().zip(&other.algos) {
            let tag = |metric: &str| format!("{} {metric} (vs {policy:?})", s.name);
            assert_bits_equal(&s.rel_err.means(), &p.rel_err.means(), &tag("rel_err μ"));
            assert_bits_equal(&s.rel_err.stds(), &p.rel_err.stds(), &tag("rel_err σ"));
            assert_bits_equal(&s.ratio.means(), &p.ratio.means(), &tag("ratio μ"));
            assert_bits_equal(&s.change_est.means(), &p.change_est.means(), &tag("change_est μ"));
            assert_bits_equal(
                &s.cum_queries.means(),
                &p.cum_queries.means(),
                &tag("cum_queries μ"),
            );
        }
    }
}

/// Segment maintenance (PR 5) is outcome-invariant exactly like the memo
/// policy: running the bound-recompute/compaction pass between rounds —
/// with a tight or an unlimited budget — must leave every estimator
/// series bit-identical to the never-maintain run. This is the pin
/// behind the "figures identical with maintenance enabled vs. disabled"
/// acceptance bar: every figure binary goes through this runner.
#[test]
fn maintenance_is_outcome_invariant() {
    let run_with_maintenance = |maintain_slots: Option<usize>| {
        let mut cfg = BaseCfg::for_scale(Scale::Quick);
        cfg.initial = 1_200;
        cfg.rounds = 4;
        cfg.trials = 5;
        cfg.maintain_slots = maintain_slots;
        track_with_threads(
            &cfg,
            &standard_algos(),
            RsConfig::default(),
            &count_star_tracked,
            Threads::fixed(2),
        )
    };
    let plain = run_with_maintenance(None);
    for budget in [512usize, usize::MAX] {
        let maintained = run_with_maintenance(Some(budget));
        assert_bits_equal(
            &plain.truth.means(),
            &maintained.truth.means(),
            &format!("truth means (budget {budget})"),
        );
        for (s, p) in plain.algos.iter().zip(&maintained.algos) {
            let tag = |metric: &str| format!("{} {metric} (budget {budget})", s.name);
            assert_bits_equal(&s.rel_err.means(), &p.rel_err.means(), &tag("rel_err μ"));
            assert_bits_equal(&s.rel_err.stds(), &p.rel_err.stds(), &tag("rel_err σ"));
            assert_bits_equal(&s.ratio.means(), &p.ratio.means(), &tag("ratio μ"));
            assert_bits_equal(&s.change_est.means(), &p.change_est.means(), &tag("change_est μ"));
            assert_bits_equal(
                &s.cum_queries.means(),
                &p.cum_queries.means(),
                &tag("cum_queries μ"),
            );
        }
    }
}

#[test]
fn repeated_runs_are_reproducible() {
    let a = run(Threads::fixed(3));
    let b = run(Threads::fixed(3));
    for (x, y) in a.algos.iter().zip(&b.algos) {
        assert_bits_equal(&x.rel_err.means(), &y.rel_err.means(), "rerun rel_err");
    }
}

/// Ground-truth evaluation fans out over store segments (PR 3); the
/// segment-ordered replay merge must reproduce the sequential sweep
/// bit-for-bit at every thread count.
#[test]
fn ground_truth_fanout_is_bit_identical_across_thread_counts() {
    use hidden_db::query::{ConjunctiveQuery, Predicate};
    use hidden_db::ranking::ScoringPolicy;
    use hidden_db::value::{AttrId, MeasureId, ValueId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use workloads::{load_database, AutosGenerator};

    let mut gen = AutosGenerator::with_attrs(12);
    let mut rng = StdRng::seed_from_u64(0x6124);
    let mut db = load_database(&mut gen, &mut rng, 9_000, 100, ScoringPolicy::default());
    // Fragment the segments so the fan-out sees uneven alive counts.
    for victim in db.sample_alive_keys(&mut rng, 1_500) {
        db.delete(victim).unwrap();
    }
    let probe = ConjunctiveQuery::from_predicates([
        Predicate::new(AttrId(0), ValueId(0)),
        Predicate::new(AttrId(1), ValueId(0)),
    ]);
    let count = db.exact_count(Some(&probe));
    let cond_sum = db.exact_sum(Some(&probe), |t| t.measure(MeasureId(0)));
    let root_sum = db.exact_sum(None, |t| t.measure(MeasureId(0)));
    assert!(count > 0, "probe must select something for the test to bite");
    for workers in [1, 2, 4, 7] {
        let threads = Threads::fixed(workers);
        assert_eq!(db.exact_count_threads(Some(&probe), threads), count, "{workers} threads");
        assert_bits_equal(
            &[db.exact_sum_threads(Some(&probe), |t| t.measure(MeasureId(0)), threads)],
            &[cond_sum],
            &format!("conditional sum ({workers} threads)"),
        );
        assert_bits_equal(
            &[db.exact_sum_threads(None, |t| t.measure(MeasureId(0)), threads)],
            &[root_sum],
            &format!("root sum ({workers} threads)"),
        );
    }
}

/// The sweep scheduler (`track_many`, used by fig08–fig13) flattens
/// (configuration, trial) jobs into one pool; its per-configuration
/// outcomes must be bit-identical to running each configuration through
/// the plain runner, at every thread count.
#[test]
fn track_many_matches_per_config_tracking() {
    let mut base = BaseCfg::for_scale(Scale::Quick);
    base.initial = 1_000;
    base.rounds = 3;
    base.trials = 2;
    let mut other = base.clone();
    other.k = 50;
    other.trials = 3;
    let cfgs = [base.clone(), other.clone()];
    let algos = standard_algos();
    let rs = RsConfig::default();
    for workers in [1, 3] {
        let many = aggtrack_bench::runner::track_many(
            &cfgs,
            &algos,
            rs,
            &|_, schema| count_star_tracked(schema),
            Threads::fixed(workers),
        );
        assert_eq!(many.len(), 2);
        for (cfg, got) in cfgs.iter().zip(&many) {
            let want = track_with_threads(cfg, &algos, rs, &count_star_tracked, Threads::fixed(1));
            assert_bits_equal(&want.truth.means(), &got.truth.means(), "truth means");
            for (s, p) in want.algos.iter().zip(&got.algos) {
                assert_bits_equal(
                    &s.rel_err.means(),
                    &p.rel_err.means(),
                    &format!("{} rel_err ({workers} workers)", s.name),
                );
                assert_bits_equal(&s.cum_queries.means(), &p.cum_queries.means(), "cum_queries");
            }
        }
    }
}
