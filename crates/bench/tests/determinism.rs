//! Parallel-vs-sequential determinism: the parallel trial runner must be
//! a pure performance optimisation — same `BaseCfg` + seed must produce
//! **bit-identical** summaries at every thread count. Likewise the memo
//! invalidation policy (incremental vs wholesale vs disabled) must be a
//! pure performance knob: estimator records cannot depend on caching.

use aggtrack_bench::cli::{BaseCfg, Scale};
use aggtrack_bench::runner::{
    count_star_tracked, standard_algos, track_with_threads, TrackOutcome,
};
use aggtrack_core::RsConfig;
use aggtrack_parallel::Threads;
use hidden_db::InvalidationPolicy;

fn run(threads: Threads) -> TrackOutcome {
    run_with_policy(threads, InvalidationPolicy::Incremental)
}

fn run_with_policy(threads: Threads, policy: InvalidationPolicy) -> TrackOutcome {
    let mut cfg = BaseCfg::for_scale(Scale::Quick);
    cfg.initial = 1_200;
    cfg.rounds = 4;
    cfg.trials = 5; // more trials than workers, so workers multiplex
    cfg.memo_policy = policy;
    track_with_threads(&cfg, &standard_algos(), RsConfig::default(), &count_star_tracked, threads)
}

/// Bitwise comparison (plain `==` would conflate NaNs and miss sign/ulp
/// differences — the whole point is catching accumulation-order drift).
fn assert_bits_equal(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x} != {y} (bitwise)");
    }
}

#[test]
fn parallel_track_is_bit_identical_to_sequential() {
    let seq = run(Threads::fixed(1));
    for workers in [2, 4, 7] {
        let par = run(Threads::fixed(workers));
        assert_eq!(seq.algos.len(), par.algos.len());
        assert_bits_equal(&seq.truth.means(), &par.truth.means(), "truth means");
        assert_bits_equal(&seq.truth.stds(), &par.truth.stds(), "truth stds");
        assert_bits_equal(
            &seq.truth_change.means(),
            &par.truth_change.means(),
            "truth_change means",
        );
        for (s, p) in seq.algos.iter().zip(&par.algos) {
            assert_eq!(s.name, p.name);
            let tag = |metric: &str| format!("{} {metric} ({workers} threads)", s.name);
            assert_bits_equal(&s.rel_err.means(), &p.rel_err.means(), &tag("rel_err μ"));
            assert_bits_equal(&s.rel_err.stds(), &p.rel_err.stds(), &tag("rel_err σ"));
            assert_bits_equal(&s.ratio.means(), &p.ratio.means(), &tag("ratio μ"));
            assert_bits_equal(&s.ratio.stds(), &p.ratio.stds(), &tag("ratio σ"));
            assert_bits_equal(
                &s.change_rel_err.means(),
                &p.change_rel_err.means(),
                &tag("change_rel_err μ"),
            );
            assert_bits_equal(&s.change_est.means(), &p.change_est.means(), &tag("change_est μ"));
            assert_bits_equal(&s.cum_drills.means(), &p.cum_drills.means(), &tag("cum_drills μ"));
            assert_bits_equal(
                &s.cum_queries.means(),
                &p.cum_queries.means(),
                &tag("cum_queries μ"),
            );
            for w in 0..s.running_avg_err.len() {
                assert_bits_equal(
                    &s.running_avg_err[w].means(),
                    &p.running_avg_err[w].means(),
                    &tag(&format!("running_avg_err[{w}] μ")),
                );
            }
        }
    }
}

/// Incremental invalidation (the default), the legacy wholesale clear,
/// and a memo-free database must all produce bit-identical estimator
/// series — caching is invisible to every figure track.
#[test]
fn memo_policy_is_outcome_invariant() {
    let incremental = run_with_policy(Threads::fixed(2), InvalidationPolicy::Incremental);
    for policy in [InvalidationPolicy::Wholesale, InvalidationPolicy::Disabled] {
        let other = run_with_policy(Threads::fixed(2), policy);
        assert_bits_equal(
            &incremental.truth.means(),
            &other.truth.means(),
            &format!("truth means vs {policy:?}"),
        );
        for (s, p) in incremental.algos.iter().zip(&other.algos) {
            let tag = |metric: &str| format!("{} {metric} (vs {policy:?})", s.name);
            assert_bits_equal(&s.rel_err.means(), &p.rel_err.means(), &tag("rel_err μ"));
            assert_bits_equal(&s.rel_err.stds(), &p.rel_err.stds(), &tag("rel_err σ"));
            assert_bits_equal(&s.ratio.means(), &p.ratio.means(), &tag("ratio μ"));
            assert_bits_equal(&s.change_est.means(), &p.change_est.means(), &tag("change_est μ"));
            assert_bits_equal(
                &s.cum_queries.means(),
                &p.cum_queries.means(),
                &tag("cum_queries μ"),
            );
        }
    }
}

#[test]
fn repeated_runs_are_reproducible() {
    let a = run(Threads::fixed(3));
    let b = run(Threads::fixed(3));
    for (x, y) in a.algos.iter().zip(&b.algos) {
        assert_bits_equal(&x.rel_err.means(), &y.rel_err.means(), "rerun rel_err");
    }
}
