//! The ad-hoc query model of §5.1: answer aggregate queries that arrive
//! *after* the rounds they ask about.
//!
//! "Since all tuples retrieved by the previous drill downs can be
//! preserved, one can simulate the aggregate estimation as if the query
//! was issued prior to the drill downs being done." This module is that
//! sentence as a data structure: an archive of every drill-down's terminal
//! page per round, replayable against any [`AggregateSpec`] whose
//! selection condition is evaluable per tuple.

use hidden_db::errors::IssueError;
use hidden_db::session::SearchBackend;
use hidden_db::tuple::TupleView;
use query_tree::drill::{drill_from_root, resume_from, ReissuePolicy};
use query_tree::signature::Signature;
use query_tree::tree::QueryTree;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::aggregate::AggregateSpec;
use crate::estimator::moments_estimate;
use crate::report::EstimateWithVar;

/// One archived drill-down observation.
#[derive(Debug, Clone)]
struct Observation {
    /// Terminal depth (determines `p(q)`).
    depth: usize,
    /// The terminal page (empty for underflow).
    tuples: Vec<TupleView>,
}

/// A REISSUE-style tracker that archives terminal pages so *any* aggregate
/// can be estimated retroactively for any archived round.
#[derive(Debug)]
pub struct ArchivingTracker {
    tree: QueryTree,
    policy: ReissuePolicy,
    rng: StdRng,
    /// Live drill-down state: signature + last depth + last-updated round.
    records: Vec<(Signature, usize, u32)>,
    /// `archive[r][..]` = observations current at round `r + 1`.
    archive: Vec<Vec<Observation>>,
    round: u32,
}

impl ArchivingTracker {
    /// Creates the tracker.
    pub fn new(tree: QueryTree, seed: u64) -> Self {
        Self {
            tree,
            policy: ReissuePolicy::Strict,
            rng: StdRng::seed_from_u64(seed),
            records: Vec::new(),
            archive: Vec::new(),
            round: 0,
        }
    }

    /// Rounds archived so far.
    pub fn rounds(&self) -> u32 {
        self.round
    }

    /// Total archived observations (across rounds).
    pub fn archived_observations(&self) -> usize {
        self.archive.iter().map(Vec::len).sum()
    }

    /// Runs one round of drill-down maintenance: update every remembered
    /// drill-down, spend the leftover budget on fresh ones, archive every
    /// terminal page observed this round.
    pub fn run_round(&mut self, backend: &mut dyn SearchBackend) -> (usize, usize) {
        self.round += 1;
        let j = self.round;
        let mut observations = Vec::new();
        let mut order: Vec<usize> = (0..self.records.len()).collect();
        order.shuffle(&mut self.rng);
        let mut updated = 0;
        for idx in order {
            if backend.remaining() == 0 {
                break;
            }
            let (sig, depth, _) = &self.records[idx];
            let result: Result<_, IssueError> =
                resume_from(&self.tree, sig, *depth, self.policy, backend);
            match result {
                Ok(out) => {
                    observations.push(Observation {
                        depth: out.depth,
                        tuples: out.outcome.tuples().to_vec(),
                    });
                    let rec = &mut self.records[idx];
                    rec.1 = out.depth;
                    rec.2 = j;
                    updated += 1;
                }
                Err(_) => break,
            }
        }
        let mut initiated = 0;
        while backend.remaining() > 0 {
            let sig = Signature::sample(&self.tree, &mut self.rng);
            match drill_from_root(&self.tree, &sig, backend) {
                Ok(out) => {
                    observations.push(Observation {
                        depth: out.depth,
                        tuples: out.outcome.tuples().to_vec(),
                    });
                    self.records.push((sig, out.depth, j));
                    initiated += 1;
                }
                Err(_) => break,
            }
        }
        self.archive.push(observations);
        (updated, initiated)
    }

    /// Retroactively estimates `spec` over the database state of round
    /// `round` (1-based). `None` if the round is not archived or had no
    /// observations.
    ///
    /// The estimate replays the archived pages: it is exactly what the
    /// estimator would have produced had `spec` been registered before
    /// that round — the §5.1 simulation argument. Note the caveat from the
    /// paper: ad-hoc aggregates cannot benefit from condition-specific
    /// subtrees, so their accuracy matches full-tree (filtered) tracking.
    pub fn estimate_at(&self, round: u32, spec: &AggregateSpec) -> Option<EstimateWithVar> {
        let obs = self.archive.get(round.checked_sub(1)? as usize)?;
        if obs.is_empty() {
            return None;
        }
        let mut moments = agg_stats::moments::RunningMoments::new();
        for o in obs {
            let p = self.tree.selection_probability(o.depth);
            let mut value = 0.0;
            for t in &o.tuples {
                if spec.selects(t) {
                    value += match spec.kind {
                        crate::aggregate::AggKind::Count => 1.0,
                        _ => spec.value_fn.eval(t),
                    };
                }
            }
            moments.push(value / p);
        }
        Some(moments_estimate(&moments))
    }

    /// Retroactive change estimate `Q(D_round) − Q(D_{round−1})`.
    pub fn change_at(&self, round: u32, spec: &AggregateSpec) -> Option<EstimateWithVar> {
        if round < 2 {
            return None;
        }
        let cur = self.estimate_at(round, spec)?;
        let prev = self.estimate_at(round - 1, spec)?;
        (cur.is_usable() && prev.is_usable())
            .then(|| EstimateWithVar::new(cur.value - prev.value, cur.variance + prev.variance))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{grow, hashed_db};
    use hidden_db::query::{ConjunctiveQuery, Predicate};
    use hidden_db::session::SearchSession;
    use hidden_db::value::{AttrId, MeasureId, ValueId};

    #[test]
    fn retroactive_estimates_match_archived_rounds() {
        let mut db = hashed_db(120, 16, 0);
        let tree = QueryTree::full(&db.schema().clone());
        let mut tracker = ArchivingTracker::new(tree, 5);
        let truth_r1 = db.len() as f64;
        {
            let mut s = SearchSession::new(&mut db, 300);
            tracker.run_round(&mut s);
        }
        grow(&mut db, 5_000, 60);
        let truth_r2 = db.len() as f64;
        {
            let mut s = SearchSession::new(&mut db, 300);
            tracker.run_round(&mut s);
        }
        // The ad-hoc query arrives *now*, asking about both past rounds.
        let spec = AggregateSpec::count_star();
        let e1 = tracker.estimate_at(1, &spec).unwrap();
        let e2 = tracker.estimate_at(2, &spec).unwrap();
        assert!((e1.value - truth_r1).abs() / truth_r1 < 0.4, "{} vs {truth_r1}", e1.value);
        assert!((e2.value - truth_r2).abs() / truth_r2 < 0.4, "{} vs {truth_r2}", e2.value);
        assert!(e2.value > e1.value, "growth must be visible retroactively");
    }

    #[test]
    fn adhoc_conditions_and_measures_work() {
        let mut db = hashed_db(150, 16, 1);
        let tree = QueryTree::full(&db.schema().clone());
        let mut tracker = ArchivingTracker::new(tree, 6);
        {
            let mut s = SearchSession::new(&mut db, 400);
            tracker.run_round(&mut s);
        }
        let cond = ConjunctiveQuery::from_predicates([Predicate::new(AttrId(0), ValueId(0))]);
        let spec = AggregateSpec::sum_measure(MeasureId(0), cond.clone());
        let truth = db.exact_sum(Some(&cond), |t| t.measure(MeasureId(0)));
        let e = tracker.estimate_at(1, &spec).unwrap();
        assert!((e.value - truth).abs() / truth < 0.5, "ad-hoc SUM {} vs truth {truth}", e.value);
    }

    #[test]
    fn unknown_rounds_are_none() {
        let db = hashed_db(10, 16, 2);
        let tree = QueryTree::full(&db.schema().clone());
        let tracker = ArchivingTracker::new(tree, 0);
        assert!(tracker.estimate_at(1, &AggregateSpec::count_star()).is_none());
        assert!(tracker.estimate_at(0, &AggregateSpec::count_star()).is_none());
        assert_eq!(tracker.rounds(), 0);
    }

    #[test]
    fn change_at_requires_two_rounds() {
        let mut db = hashed_db(100, 16, 3);
        let tree = QueryTree::full(&db.schema().clone());
        let mut tracker = ArchivingTracker::new(tree, 7);
        let spec = AggregateSpec::count_star();
        {
            let mut s = SearchSession::new(&mut db, 200);
            tracker.run_round(&mut s);
        }
        assert!(tracker.change_at(1, &spec).is_none());
        grow(&mut db, 9_000, 30);
        {
            let mut s = SearchSession::new(&mut db, 200);
            tracker.run_round(&mut s);
        }
        let ch = tracker.change_at(2, &spec).unwrap();
        assert!(ch.value.is_finite());
        assert!(tracker.archived_observations() > 0);
    }
}
