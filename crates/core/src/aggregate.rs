//! Aggregate query specifications (§2.2) and per-drill-down
//! Horvitz–Thompson samples.
//!
//! A single-round aggregate is `SELECT AGG(f(t)) FROM D_i WHERE cond`,
//! with `AGG ∈ {COUNT, SUM, AVG}`, `f` any per-tuple function, and `cond`
//! any per-tuple-decidable condition. One drill-down terminating at node
//! `q` yields the unbiased sample `Q(q)/p(q)` (§3.1); we always carry the
//! COUNT and SUM samples together so AVG (their ratio) and selection
//! conditions come for free.

use std::sync::Arc;

/// Shared per-tuple predicate used as an extra selection filter.
pub type TupleFilter = Arc<dyn Fn(&TupleView) -> bool + Send + Sync>;

use hidden_db::query::ConjunctiveQuery;
use hidden_db::tuple::TupleView;
use hidden_db::value::MeasureId;
use query_tree::drill::DrillOutcome;
use query_tree::tree::QueryTree;

/// `f(t)`: the per-tuple value a SUM/AVG aggregates.
#[derive(Clone)]
pub enum TupleFn {
    /// `f(t) = 1` (COUNT).
    One,
    /// `f(t) = t[measure]`.
    Measure(MeasureId),
    /// Arbitrary function of the returned tuple.
    Custom(Arc<dyn Fn(&TupleView) -> f64 + Send + Sync>),
}

impl TupleFn {
    /// Evaluates `f(t)`.
    pub fn eval(&self, t: &TupleView) -> f64 {
        match self {
            Self::One => 1.0,
            Self::Measure(m) => t.measure(*m),
            Self::Custom(f) => f(t),
        }
    }
}

impl std::fmt::Debug for TupleFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::One => write!(f, "One"),
            Self::Measure(m) => write!(f, "Measure({m})"),
            Self::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

/// Which aggregate function is being tracked (drives reporting and the
/// scalar the RS allocator optimises).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// `COUNT(*)` / `COUNT(cond)`.
    Count,
    /// `SUM(f(t))`.
    Sum,
    /// `AVG(f(t))` — the SUM/COUNT ratio; slightly biased, as the paper
    /// notes after Theorem 3.1.
    Avg,
}

/// A tracked aggregate: kind, value function, and selection condition.
#[derive(Clone)]
pub struct AggregateSpec {
    /// COUNT / SUM / AVG.
    pub kind: AggKind,
    /// `f(t)` for SUM/AVG (ignored by COUNT).
    pub value_fn: TupleFn,
    /// Conjunctive selection condition over searchable attributes (empty =
    /// all tuples). May be evaluated per returned tuple *or* baked into the
    /// query tree as a subtree (§3.3) — both are supported and unbiased.
    pub condition: ConjunctiveQuery,
    /// Optional extra per-tuple predicate `g(t)` for conditions that are
    /// not expressible as conjunctive equality (e.g. `price < 100`).
    pub filter: Option<TupleFilter>,
}

impl std::fmt::Debug for AggregateSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AggregateSpec")
            .field("kind", &self.kind)
            .field("value_fn", &self.value_fn)
            .field("condition", &self.condition)
            .field("filter", &self.filter.as_ref().map(|_| ".."))
            .finish()
    }
}

impl AggregateSpec {
    /// `SELECT COUNT(*) FROM D`.
    pub fn count_star() -> Self {
        Self {
            kind: AggKind::Count,
            value_fn: TupleFn::One,
            condition: ConjunctiveQuery::select_all(),
            filter: None,
        }
    }

    /// `SELECT COUNT(*) FROM D WHERE cond`.
    pub fn count_where(cond: ConjunctiveQuery) -> Self {
        Self { condition: cond, ..Self::count_star() }
    }

    /// `SELECT SUM(measure) FROM D WHERE cond`.
    pub fn sum_measure(m: MeasureId, cond: ConjunctiveQuery) -> Self {
        Self { kind: AggKind::Sum, value_fn: TupleFn::Measure(m), condition: cond, filter: None }
    }

    /// `SELECT AVG(measure) FROM D WHERE cond`.
    pub fn avg_measure(m: MeasureId, cond: ConjunctiveQuery) -> Self {
        Self { kind: AggKind::Avg, value_fn: TupleFn::Measure(m), condition: cond, filter: None }
    }

    /// Adds an arbitrary per-tuple predicate.
    #[must_use]
    pub fn with_filter(mut self, f: TupleFilter) -> Self {
        self.filter = Some(f);
        self
    }

    /// Whether tuple `t` satisfies the selection condition (conjunctive
    /// part and custom filter).
    pub fn selects(&self, t: &TupleView) -> bool {
        self.condition.matches_values(t.values()) && self.filter.as_ref().is_none_or(|f| f(t))
    }
}

/// One drill-down's Horvitz–Thompson sample: unbiased estimates of the
/// selected COUNT and SUM.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HtSample {
    /// Estimate of `COUNT(cond)` from this drill-down.
    pub count: f64,
    /// Estimate of `SUM(f(t)) WHERE cond` from this drill-down.
    pub sum: f64,
}

impl HtSample {
    /// Component-wise difference (the trans-round change term).
    pub fn diff(self, older: HtSample) -> HtSample {
        HtSample { count: self.count - older.count, sum: self.sum - older.sum }
    }

    /// The scalar the estimator optimises for, per aggregate kind
    /// (AVG targets SUM — the dominant error term of the ratio).
    pub fn scalar(self, kind: AggKind) -> f64 {
        match kind {
            AggKind::Count => self.count,
            AggKind::Sum | AggKind::Avg => self.sum,
        }
    }
}

/// Computes the HT sample of a terminal drill-down node:
/// `Σ_{t ∈ q, cond(t)} f(t) / p(q)` and the matching count scaled the same
/// way. Underflow terminals contribute zero. Degenerate overflow terminals
/// (leaf overflow) use the returned page — documented bias, counted by the
/// caller via [`DrillOutcome::outcome`].
pub fn ht_sample(spec: &AggregateSpec, tree: &QueryTree, drill: &DrillOutcome) -> HtSample {
    let p = tree.selection_probability(drill.depth);
    let mut count = 0.0;
    let mut sum = 0.0;
    for t in drill.outcome.tuples() {
        if spec.selects(t) {
            count += 1.0;
            sum += spec.value_fn.eval(t);
        }
    }
    HtSample { count: count / p, sum: sum / p }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidden_db::interface::QueryOutcome;
    use hidden_db::query::Predicate;
    use hidden_db::schema::Schema;
    use hidden_db::tuple::TupleView;
    use hidden_db::value::{AttrId, TupleKey, ValueId};

    fn view(key: u64, vals: &[u32], price: f64) -> TupleView {
        // TupleView has a crate-private constructor; build through a tiny
        // throwaway database instead.
        let schema = Schema::with_domain_sizes(&[2, 3], &["price"]).unwrap();
        let mut db = hidden_db::database::HiddenDatabase::new(
            schema,
            10,
            hidden_db::ranking::ScoringPolicy::default(),
        );
        db.insert(hidden_db::tuple::Tuple::new(
            TupleKey(key),
            vals.iter().map(|&v| ValueId(v)).collect(),
            vec![price],
        ))
        .unwrap();
        let out = db.answer(&ConjunctiveQuery::select_all());
        out.tuples()[0].clone()
    }

    fn tree() -> QueryTree {
        let schema = Schema::with_domain_sizes(&[2, 3], &["price"]).unwrap();
        QueryTree::full(&schema)
    }

    #[test]
    fn tuple_fn_eval() {
        let t = view(1, &[0, 2], 25.0);
        assert_eq!(TupleFn::One.eval(&t), 1.0);
        assert_eq!(TupleFn::Measure(MeasureId(0)).eval(&t), 25.0);
        let double = TupleFn::Custom(Arc::new(|t: &TupleView| 2.0 * t.measure(MeasureId(0))));
        assert_eq!(double.eval(&t), 50.0);
    }

    #[test]
    fn selection_condition_and_filter() {
        let spec = AggregateSpec::count_where(ConjunctiveQuery::from_predicates([Predicate::new(
            AttrId(0),
            ValueId(0),
        )]));
        assert!(spec.selects(&view(1, &[0, 1], 5.0)));
        assert!(!spec.selects(&view(2, &[1, 1], 5.0)));
        let spec = spec.with_filter(Arc::new(|t: &TupleView| t.measure(MeasureId(0)) > 10.0));
        assert!(!spec.selects(&view(3, &[0, 1], 5.0)));
        assert!(spec.selects(&view(4, &[0, 1], 15.0)));
    }

    #[test]
    fn ht_sample_scales_by_inverse_probability() {
        let tr = tree();
        let ts = vec![view(1, &[0, 0], 10.0), view(2, &[0, 0], 30.0)];
        let drill = DrillOutcome { depth: 2, outcome: QueryOutcome::Valid(ts.into()), cost: 3 };
        // p(depth 2) = 1/(2·3) = 1/6.
        let spec = AggregateSpec::sum_measure(MeasureId(0), ConjunctiveQuery::select_all());
        let s = ht_sample(&spec, &tr, &drill);
        assert!((s.count - 12.0).abs() < 1e-9);
        assert!((s.sum - 240.0).abs() < 1e-9);
    }

    #[test]
    fn ht_sample_underflow_is_zero() {
        let tr = tree();
        let drill = DrillOutcome { depth: 1, outcome: QueryOutcome::Underflow, cost: 2 };
        let s = ht_sample(&AggregateSpec::count_star(), &tr, &drill);
        assert_eq!(s, HtSample::default());
    }

    #[test]
    fn ht_sample_applies_condition() {
        let tr = tree();
        let ts = vec![view(1, &[0, 0], 10.0), view(2, &[1, 0], 30.0)];
        let drill = DrillOutcome { depth: 0, outcome: QueryOutcome::Valid(ts.into()), cost: 1 };
        let spec = AggregateSpec::count_where(ConjunctiveQuery::from_predicates([Predicate::new(
            AttrId(0),
            ValueId(1),
        )]));
        let s = ht_sample(&spec, &tr, &drill);
        assert_eq!(s.count, 1.0); // p(root) = 1
    }

    #[test]
    fn sample_diff_and_scalar() {
        let a = HtSample { count: 10.0, sum: 100.0 };
        let b = HtSample { count: 4.0, sum: 90.0 };
        let d = a.diff(b);
        assert_eq!(d.count, 6.0);
        assert_eq!(d.sum, 10.0);
        assert_eq!(a.scalar(AggKind::Count), 10.0);
        assert_eq!(a.scalar(AggKind::Sum), 100.0);
        assert_eq!(a.scalar(AggKind::Avg), 100.0);
    }
}
