//! The estimator abstraction shared by RESTART, REISSUE, and RS, plus
//! small summarisation helpers they all use.

use agg_stats::moments::RunningMoments;
use agg_stats::resample;
use hidden_db::session::SearchBackend;

use crate::aggregate::{AggregateSpec, HtSample};
use crate::report::{Degraded, EstimateWithVar, RoundReport};

/// Opt-in configuration for per-round bootstrap percentile CIs on the
/// report's estimates.
///
/// When handed to [`Estimator::set_bootstrap`], estimators with a flat
/// per-drill-down sample pool (RESTART, REISSUE) retain the raw HT terms
/// of each round and fill [`EstimateWithVar::ci`] with an n-out-of-n
/// percentile interval of the resampled mean — within one round the
/// drill-downs are exchangeable, so i.i.d. resampling is honest there
/// (the *trans-round* serial dependence is the block bootstrap's job in
/// the experiment harness). The default configuration is `None`:
/// no retention, no resampling, bit-identical to the pre-CI behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapSpec {
    /// Bootstrap replicates per estimate (default 400).
    pub replicates: usize,
    /// Nominal coverage of the percentile interval (default 0.95).
    pub level: f64,
    /// Base seed; each (round, component) gets its own derived stream.
    pub seed: u64,
}

impl Default for BootstrapSpec {
    fn default() -> Self {
        Self { replicates: 400, level: 0.95, seed: 0 }
    }
}

/// A dynamic-database aggregate estimator: call [`Estimator::run_round`]
/// once per round with that round's budgeted session.
pub trait Estimator {
    /// Short display name ("RESTART" / "REISSUE" / "RS").
    fn name(&self) -> &'static str;

    /// The aggregate being tracked.
    fn spec(&self) -> &AggregateSpec;

    /// Executes one round against the backend (which enforces the budget)
    /// and reports the round's estimates. Must never panic on budget
    /// exhaustion or an unrecovered interface fault — partial rounds
    /// degrade gracefully, and fault-interrupted rounds additionally
    /// carry a [`Degraded`] marker in the report.
    fn run_round(&mut self, backend: &mut dyn SearchBackend) -> RoundReport;

    /// Opts into (or out of) bootstrap percentile CIs on future reports.
    /// The default implementation ignores the request — appropriate for
    /// estimators without a flat resampleable sample pool (RS combines
    /// age groups by inverse-variance weighting; resampling inside that
    /// weighted combination is future work).
    fn set_bootstrap(&mut self, _spec: Option<BootstrapSpec>) {}
}

/// Paired accumulators for the COUNT and SUM components of HT samples,
/// optionally retaining the raw terms for bootstrap resampling.
#[derive(Debug, Clone, Default)]
pub(crate) struct SampleMoments {
    pub count: RunningMoments,
    pub sum: RunningMoments,
    /// Raw per-drill terms, kept only when a bootstrap CI was requested.
    pub raw: Option<RawTerms>,
}

/// Raw per-drill-down HT terms of one round.
#[derive(Debug, Clone, Default)]
pub(crate) struct RawTerms {
    pub count: Vec<f64>,
    pub sum: Vec<f64>,
}

impl SampleMoments {
    /// An accumulator that additionally buffers every raw term.
    pub fn retaining_raw() -> Self {
        Self { raw: Some(RawTerms::default()), ..Self::default() }
    }

    pub fn push(&mut self, s: HtSample) {
        self.count.push(s.count);
        self.sum.push(s.sum);
        if let Some(raw) = &mut self.raw {
            raw.count.push(s.count);
            raw.sum.push(s.sum);
        }
    }

    pub fn n(&self) -> u64 {
        self.count.count()
    }

    /// Mean estimate with variance-of-mean for the COUNT component.
    pub fn count_estimate(&self) -> EstimateWithVar {
        moments_estimate(&self.count)
    }

    /// Mean estimate with variance-of-mean for the SUM component.
    pub fn sum_estimate(&self) -> EstimateWithVar {
        moments_estimate(&self.sum)
    }
}

/// Converts running moments into an estimate: mean ± var(mean). With a
/// single sample the variance is unknown — reported as infinite so
/// downstream inverse-variance weighting effectively ignores it unless it
/// is the only component.
pub(crate) fn moments_estimate(m: &RunningMoments) -> EstimateWithVar {
    match (m.mean(), m.variance_of_mean()) {
        (Some(mean), Some(var)) => EstimateWithVar::new(mean, var),
        (Some(mean), None) => EstimateWithVar::new(mean, f64::INFINITY),
        _ => EstimateWithVar::unknown(),
    }
}

/// Attaches a bootstrap percentile CI of the mean to `est` from the raw
/// per-drill terms, on a stream derived from `(spec.seed, stream)` so
/// every (round, component) pair resamples independently and
/// deterministically. No-op with fewer than two finite terms.
pub(crate) fn attach_mean_ci(
    est: &mut EstimateWithVar,
    terms: &[f64],
    spec: &BootstrapSpec,
    stream: u64,
) {
    if let Some(ci) = resample::mean_ci(terms, spec.replicates, spec.seed ^ stream, spec.level) {
        *est = est.with_ci(ci);
    }
}

/// Fills the count/sum CIs of `report` from retained raw terms (no-op if
/// the accumulator was not retaining them). Streams 4·round .. 4·round+1.
pub(crate) fn attach_report_cis(
    report: &mut RoundReport,
    samples: &SampleMoments,
    spec: &BootstrapSpec,
) {
    if let Some(raw) = &samples.raw {
        let base = report.round as u64 * 4;
        attach_mean_ci(&mut report.count, &raw.count, spec, base);
        attach_mean_ci(&mut report.sum, &raw.sum, spec, base + 1);
    }
}

/// Builds the portion of a [`RoundReport`] common to all estimators.
pub(crate) fn base_report(
    round: u32,
    backend: &dyn SearchBackend,
    updated: usize,
    initiated: usize,
    samples: &SampleMoments,
    degraded: Option<Degraded>,
) -> RoundReport {
    RoundReport {
        round,
        queries_spent: backend.spent(),
        updated,
        initiated,
        count: samples.count_estimate(),
        sum: samples.sum_estimate(),
        change_count: None,
        change_sum: None,
        degraded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_moments_accumulate_both_components() {
        let mut m = SampleMoments::default();
        m.push(HtSample { count: 10.0, sum: 100.0 });
        m.push(HtSample { count: 14.0, sum: 140.0 });
        assert_eq!(m.n(), 2);
        let c = m.count_estimate();
        assert_eq!(c.value, 12.0);
        assert!((c.variance - 4.0).abs() < 1e-9); // sample var 8 / n 2
        let s = m.sum_estimate();
        assert_eq!(s.value, 120.0);
    }

    #[test]
    fn single_sample_has_infinite_variance() {
        let mut m = SampleMoments::default();
        m.push(HtSample { count: 5.0, sum: 1.0 });
        let e = m.count_estimate();
        assert_eq!(e.value, 5.0);
        assert_eq!(e.variance, f64::INFINITY);
    }

    #[test]
    fn empty_moments_are_unknown() {
        let m = SampleMoments::default();
        assert!(!m.count_estimate().is_usable());
    }
}
