//! The estimator abstraction shared by RESTART, REISSUE, and RS, plus
//! small summarisation helpers they all use.

use agg_stats::moments::RunningMoments;
use hidden_db::session::SearchBackend;

use crate::aggregate::{AggregateSpec, HtSample};
use crate::report::{Degraded, EstimateWithVar, RoundReport};

/// A dynamic-database aggregate estimator: call [`Estimator::run_round`]
/// once per round with that round's budgeted session.
pub trait Estimator {
    /// Short display name ("RESTART" / "REISSUE" / "RS").
    fn name(&self) -> &'static str;

    /// The aggregate being tracked.
    fn spec(&self) -> &AggregateSpec;

    /// Executes one round against the backend (which enforces the budget)
    /// and reports the round's estimates. Must never panic on budget
    /// exhaustion or an unrecovered interface fault — partial rounds
    /// degrade gracefully, and fault-interrupted rounds additionally
    /// carry a [`Degraded`] marker in the report.
    fn run_round(&mut self, backend: &mut dyn SearchBackend) -> RoundReport;
}

/// Paired accumulators for the COUNT and SUM components of HT samples.
#[derive(Debug, Clone, Default)]
pub(crate) struct SampleMoments {
    pub count: RunningMoments,
    pub sum: RunningMoments,
}

impl SampleMoments {
    pub fn push(&mut self, s: HtSample) {
        self.count.push(s.count);
        self.sum.push(s.sum);
    }

    pub fn n(&self) -> u64 {
        self.count.count()
    }

    /// Mean estimate with variance-of-mean for the COUNT component.
    pub fn count_estimate(&self) -> EstimateWithVar {
        moments_estimate(&self.count)
    }

    /// Mean estimate with variance-of-mean for the SUM component.
    pub fn sum_estimate(&self) -> EstimateWithVar {
        moments_estimate(&self.sum)
    }
}

/// Converts running moments into an estimate: mean ± var(mean). With a
/// single sample the variance is unknown — reported as infinite so
/// downstream inverse-variance weighting effectively ignores it unless it
/// is the only component.
pub(crate) fn moments_estimate(m: &RunningMoments) -> EstimateWithVar {
    match (m.mean(), m.variance_of_mean()) {
        (Some(mean), Some(var)) => EstimateWithVar::new(mean, var),
        (Some(mean), None) => EstimateWithVar::new(mean, f64::INFINITY),
        _ => EstimateWithVar::unknown(),
    }
}

/// Builds the portion of a [`RoundReport`] common to all estimators.
pub(crate) fn base_report(
    round: u32,
    backend: &dyn SearchBackend,
    updated: usize,
    initiated: usize,
    samples: &SampleMoments,
    degraded: Option<Degraded>,
) -> RoundReport {
    RoundReport {
        round,
        queries_spent: backend.spent(),
        updated,
        initiated,
        count: samples.count_estimate(),
        sum: samples.sum_estimate(),
        change_count: None,
        change_sum: None,
        degraded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_moments_accumulate_both_components() {
        let mut m = SampleMoments::default();
        m.push(HtSample { count: 10.0, sum: 100.0 });
        m.push(HtSample { count: 14.0, sum: 140.0 });
        assert_eq!(m.n(), 2);
        let c = m.count_estimate();
        assert_eq!(c.value, 12.0);
        assert!((c.variance - 4.0).abs() < 1e-9); // sample var 8 / n 2
        let s = m.sum_estimate();
        assert_eq!(s.value, 120.0);
    }

    #[test]
    fn single_sample_has_infinite_variance() {
        let mut m = SampleMoments::default();
        m.push(HtSample { count: 5.0, sum: 1.0 });
        let e = m.count_estimate();
        assert_eq!(e.value, 5.0);
        assert_eq!(e.variance, f64::INFINITY);
    }

    #[test]
    fn empty_moments_are_unknown() {
        let m = SampleMoments::default();
        assert!(!m.count_estimate().is_usable());
    }
}
