//! # aggtrack-core — the paper's contribution
//!
//! Implements the three estimators of *Aggregate Estimation Over Dynamic
//! Hidden Web Databases* (Liu, Thirumuruganathan, Zhang, Das — VLDB 2014):
//!
//! | Estimator | Paper | Idea |
//! |---|---|---|
//! | [`RestartEstimator`] | §1/§3 baseline | rerun the static drill-down estimator of \[13\] from scratch each round |
//! | [`ReissueEstimator`] | §3, Algorithm 1 | reuse round-1 signatures; update each drill-down from its previous terminal node |
//! | [`RsEstimator`] | §4, Algorithm 2 | bootstrap the amount of change, then optimally split the budget between updating and fresh drilling |
//!
//! All three speak the same [`Estimator`] trait: one call per round with a
//! budget-enforcing [`hidden_db::session::SearchBackend`], one
//! [`RoundReport`] back. Aggregates are COUNT/SUM/AVG with arbitrary
//! conjunctive selection conditions ([`AggregateSpec`]), and the reports
//! natively carry trans-round change estimates (§2.2's second family).
//!
//! ## Quick start
//!
//! ```
//! use aggtrack_core::{AggregateSpec, Estimator, ReissueEstimator};
//! use hidden_db::{database::HiddenDatabase, ranking::ScoringPolicy,
//!                 schema::Schema, session::SearchSession,
//!                 tuple::Tuple, value::{TupleKey, ValueId}};
//! use query_tree::tree::QueryTree;
//!
//! // A small hidden database with a top-2 interface.
//! let schema = Schema::with_domain_sizes(&[2, 3], &[]).unwrap();
//! let mut db = HiddenDatabase::new(schema, 2, ScoringPolicy::default());
//! for t in 0..30u64 {
//!     db.insert(Tuple::new(
//!         TupleKey(t),
//!         vec![ValueId((t % 2) as u32), ValueId((t % 3) as u32)],
//!         vec![],
//!     ))
//!     .unwrap();
//! }
//!
//! // Track COUNT(*) with REISSUE under a 50-query budget per round.
//! let tree = QueryTree::full(&db.schema().clone());
//! let mut est = ReissueEstimator::new(AggregateSpec::count_star(), tree, 42);
//! for _round in 0..3 {
//!     let mut session = SearchSession::new(&mut db, 50);
//!     let report = est.run_round(&mut session);
//!     assert!(report.queries_spent <= 50);
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adhoc;
pub mod aggregate;
pub mod estimator;
pub mod record;
pub mod reissue;
pub mod report;
pub mod restart;
pub mod rs;
pub mod stratified;
pub mod tracker;
pub mod transround;

#[cfg(test)]
pub(crate) mod testutil;

pub use adhoc::ArchivingTracker;
pub use aggregate::{ht_sample, AggKind, AggregateSpec, HtSample, TupleFilter, TupleFn};
pub use estimator::{BootstrapSpec, Estimator};
pub use record::DrillRecord;
pub use reissue::ReissueEstimator;
pub use report::{ConfidenceInterval, Degraded, EstimateWithVar, RoundReport};
pub use restart::RestartEstimator;
pub use rs::{RsConfig, RsEstimator, TrackingTarget};
pub use stratified::StratifiedEstimator;
pub use tracker::{MultiTracker, WorkloadReport};
pub use transround::{ChangeAccumulator, DegradationLog, RunningAverage};
