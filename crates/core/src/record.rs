//! Drill-down records: the persistent state REISSUE/RS carry between
//! rounds — exactly the "signature set" `S = {r_1, …, r_h}` of §3.1, plus
//! each drill-down's last known terminal node and HT sample.

use std::collections::BTreeMap;

use query_tree::signature::Signature;

use crate::aggregate::HtSample;

/// One remembered drill-down.
#[derive(Debug, Clone)]
pub struct DrillRecord {
    /// The leaf signature (fixed for the drill-down's whole life).
    pub sig: Signature,
    /// Terminal node depth at the last update.
    pub depth: usize,
    /// The round at which the record was last updated.
    pub round: u32,
    /// HT sample observed at the last update.
    pub sample: HtSample,
}

impl DrillRecord {
    /// Creates a record freshly drilled at `round`.
    pub fn new(sig: Signature, depth: usize, round: u32, sample: HtSample) -> Self {
        Self { sig, depth, round, sample }
    }
}

/// Groups pool indices by the round at which each record was last updated
/// — the RS "age groups" (`c_1 … c_{j−1}` of Corollary 4.2). Ordered by
/// round, oldest first.
pub fn group_by_age(pool: &[DrillRecord]) -> BTreeMap<u32, Vec<usize>> {
    let mut groups: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, rec) in pool.iter().enumerate() {
        groups.entry(rec.round).or_default().push(i);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(round: u32) -> DrillRecord {
        DrillRecord::new(Signature::from_choices(vec![0]), 0, round, HtSample::default())
    }

    #[test]
    fn groups_by_round_oldest_first() {
        let pool = vec![rec(3), rec(1), rec(3), rec(2)];
        let groups = group_by_age(&pool);
        let rounds: Vec<u32> = groups.keys().copied().collect();
        assert_eq!(rounds, vec![1, 2, 3]);
        assert_eq!(groups[&3], vec![0, 2]);
        assert_eq!(groups[&1], vec![1]);
    }

    #[test]
    fn empty_pool_no_groups() {
        assert!(group_by_age(&[]).is_empty());
    }
}
