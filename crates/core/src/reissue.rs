//! REISSUE-ESTIMATOR (§3, Algorithm 1).
//!
//! Keeps the signature set generated in round 1 and, each later round,
//! *updates* every remembered drill-down starting from its previous
//! terminal node: re-issue that node, drill deeper if it now overflows,
//! roll up if it now underflows. Query savings relative to restarting are
//! reinvested into brand-new drill-downs, shrinking variance round after
//! round (Theorem 3.2).
//!
//! Trans-round aggregates come out naturally: a drill-down updated in two
//! consecutive rounds yields the paired difference
//! `|q_j(r)|/p(q_j(r)) − |q_{j−1}(r)|/p(q_{j−1}(r))`, an unbiased change
//! estimate whose variance does not include the two rounds' full estimate
//! variances — the decisive advantage over RESTART in Figs 15–17.

use hidden_db::session::SearchBackend;
use query_tree::drill::{drill_from_root, resume_from, ReissuePolicy};
use query_tree::signature::Signature;
use query_tree::tree::QueryTree;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::aggregate::{ht_sample, AggregateSpec};
use crate::estimator::{
    attach_mean_ci, attach_report_cis, base_report, moments_estimate, BootstrapSpec, Estimator,
    SampleMoments,
};
use crate::record::DrillRecord;
use crate::report::RoundReport;
use crate::transround::DegradationLog;

/// The query-reissuing estimator.
#[derive(Debug)]
pub struct ReissueEstimator {
    spec: AggregateSpec,
    tree: QueryTree,
    policy: ReissuePolicy,
    rng: StdRng,
    pool: Vec<DrillRecord>,
    round: u32,
    degradation: DegradationLog,
    bootstrap: Option<BootstrapSpec>,
}

impl ReissueEstimator {
    /// Creates the estimator with the default (`Strict`, unbiased) reissue
    /// policy.
    pub fn new(spec: AggregateSpec, tree: QueryTree, seed: u64) -> Self {
        Self::with_policy(spec, tree, seed, ReissuePolicy::Strict)
    }

    /// Creates the estimator with an explicit reissue policy (`Trusting`
    /// reproduces the §3.2 one-query-per-unchanged-node cost model; see
    /// the ablation bench).
    pub fn with_policy(
        spec: AggregateSpec,
        tree: QueryTree,
        seed: u64,
        policy: ReissuePolicy,
    ) -> Self {
        Self {
            spec,
            tree,
            policy,
            rng: StdRng::seed_from_u64(seed),
            pool: Vec::new(),
            round: 0,
            degradation: DegradationLog::new(),
            bootstrap: None,
        }
    }

    /// Number of drill-downs currently remembered.
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// The query tree in use.
    pub fn tree(&self) -> &QueryTree {
        &self.tree
    }
}

impl Estimator for ReissueEstimator {
    fn name(&self) -> &'static str {
        "REISSUE"
    }

    fn spec(&self) -> &AggregateSpec {
        &self.spec
    }

    fn set_bootstrap(&mut self, spec: Option<BootstrapSpec>) {
        self.bootstrap = spec;
    }

    fn run_round(&mut self, backend: &mut dyn SearchBackend) -> RoundReport {
        self.round += 1;
        let j = self.round;
        self.degradation.begin_round();
        let mut diffs = if self.bootstrap.is_some() {
            SampleMoments::retaining_raw()
        } else {
            SampleMoments::default()
        };

        // --- update pass (Algorithm 1, lines 4–10) -----------------------
        // Random order so that, if the budget dies early, the updated
        // subset is uniformly random (keeps the round estimate unbiased).
        let mut order: Vec<usize> = (0..self.pool.len()).collect();
        order.shuffle(&mut self.rng);
        let mut updated = 0;
        for idx in order {
            if backend.remaining() == 0 {
                break;
            }
            let rec = &mut self.pool[idx];
            match resume_from(&self.tree, &rec.sig, rec.depth, self.policy, backend) {
                Ok(out) => {
                    let sample = ht_sample(&self.spec, &self.tree, &out);
                    if rec.round == j - 1 {
                        diffs.push(sample.diff(rec.sample));
                    }
                    rec.depth = out.depth;
                    rec.sample = sample;
                    rec.round = j;
                    updated += 1;
                }
                // Interrupted mid-resume (exhaustion or unrecovered
                // fault): the record keeps its previous depth and stays
                // resumable next round.
                Err(e) => {
                    self.degradation.interrupted(backend.remaining(), !e.is_budget());
                    break;
                }
            }
        }

        // --- new drill-downs with the saved budget (line 11) -------------
        let mut initiated = 0;
        while backend.remaining() > 0 {
            let sig = Signature::sample(&self.tree, &mut self.rng);
            match drill_from_root(&self.tree, &sig, backend) {
                Ok(out) => {
                    let sample = ht_sample(&self.spec, &self.tree, &out);
                    self.pool.push(DrillRecord::new(sig, out.depth, j, sample));
                    initiated += 1;
                }
                Err(e) => {
                    self.degradation.interrupted(backend.remaining(), !e.is_budget());
                    break;
                }
            }
        }

        // --- estimation (line 12): all drill-downs current at round j ----
        let mut samples = if self.bootstrap.is_some() {
            SampleMoments::retaining_raw()
        } else {
            SampleMoments::default()
        };
        for rec in &self.pool {
            if rec.round == j {
                samples.push(rec.sample);
            }
        }
        let mut report =
            base_report(j, backend, updated, initiated, &samples, self.degradation.tag());
        if j > 1 && diffs.n() > 0 {
            report.change_count = Some(moments_estimate(&diffs.count));
            report.change_sum = Some(moments_estimate(&diffs.sum));
        }
        if let Some(spec) = &self.bootstrap {
            attach_report_cis(&mut report, &samples, spec);
            if let Some(raw) = &diffs.raw {
                let base = j as u64 * 4;
                if let Some(est) = &mut report.change_count {
                    attach_mean_ci(est, &raw.count, spec, base + 2);
                }
                if let Some(est) = &mut report.change_sum {
                    attach_mean_ci(est, &raw.sum, spec, base + 3);
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{grow, hashed_db, shrink};
    use hidden_db::session::SearchSession;

    #[test]
    fn round_one_matches_restart_behaviour() {
        let mut db = hashed_db(100, 16, 0);
        let tree = QueryTree::full(&db.schema().clone());
        let mut est = ReissueEstimator::new(AggregateSpec::count_star(), tree, 5);
        let mut s = SearchSession::new(&mut db, 300);
        let r = est.run_round(&mut s);
        assert_eq!(r.updated, 0);
        assert!(r.initiated > 30);
        assert!(est.pool_size() > 0);
        let rel = (r.count.value - 100.0).abs() / 100.0;
        assert!(rel < 0.4, "round-1 rel err {rel}");
    }

    #[test]
    fn unchanged_database_grows_pool_and_shrinks_error() {
        let mut db = hashed_db(100, 16, 1);
        let tree = QueryTree::full(&db.schema().clone());
        let mut est = ReissueEstimator::new(AggregateSpec::count_star(), tree, 6);
        let mut first_updated = 0;
        let mut pool_sizes = Vec::new();
        for round in 0..4 {
            let mut s = SearchSession::new(&mut db, 200);
            let r = est.run_round(&mut s);
            if round == 1 {
                first_updated = r.updated;
            }
            pool_sizes.push(est.pool_size());
        }
        assert!(first_updated > 0, "round 2 must update round-1 drill-downs");
        assert!(
            pool_sizes.windows(2).all(|w| w[1] >= w[0]),
            "pool must never shrink: {pool_sizes:?}"
        );
        assert!(
            pool_sizes[3] > pool_sizes[0],
            "saved queries must fund new drill-downs: {pool_sizes:?}"
        );
    }

    #[test]
    fn change_estimate_tracks_insertions_exactly_in_expectation() {
        let mut db = hashed_db(80, 16, 2);
        let tree = QueryTree::full(&db.schema().clone());
        // Many trials: the mean change estimate must approach +40.
        let mut grand = agg_stats::moments::RunningMoments::new();
        for seed in 0..30 {
            let mut db_t = db.clone();
            let mut est = ReissueEstimator::new(AggregateSpec::count_star(), tree.clone(), seed);
            {
                let mut s = SearchSession::new(&mut db_t, 150);
                est.run_round(&mut s);
            }
            grow(&mut db_t, 1_000, 40);
            let mut s = SearchSession::new(&mut db_t, 150);
            let r = est.run_round(&mut s);
            if let Some(ch) = r.change_count {
                grand.push(ch.value);
            }
        }
        let mean = grand.mean().unwrap();
        let se = grand.variance_of_mean().unwrap_or(100.0).sqrt();
        assert!((mean - 40.0).abs() < 5.0 * se + 2.0, "mean change {mean} (se {se}) vs truth 40");
        let _ = &mut db;
    }

    #[test]
    fn deletion_heavy_round_still_unbiased_strict() {
        let mut grand = agg_stats::moments::RunningMoments::new();
        for seed in 0..30 {
            let mut db = hashed_db(90, 16, seed);
            let tree = QueryTree::full(&db.schema().clone());
            let mut est = ReissueEstimator::new(AggregateSpec::count_star(), tree, seed ^ 0xAB);
            {
                let mut s = SearchSession::new(&mut db, 120);
                est.run_round(&mut s);
            }
            shrink(&mut db, 45);
            let truth = db.len() as f64;
            let mut s = SearchSession::new(&mut db, 120);
            let r = est.run_round(&mut s);
            grand.push(r.count.value - truth);
        }
        let mean_err = grand.mean().unwrap();
        let se = grand.variance_of_mean().unwrap().sqrt();
        assert!(mean_err.abs() < 5.0 * se + 1.0, "bias {mean_err} (se {se}) after mass deletion");
    }

    #[test]
    fn update_cost_is_lower_than_restart_cost() {
        // On an unchanged database, updating a drill-down costs ≤ 2 queries
        // (Strict) while restarting costs depth+1 ≥ 2; with deep terminals
        // REISSUE must fit strictly more drill-downs into the same budget.
        let mut db = hashed_db(100, 4, 7); // small k → deep drills
        let tree = QueryTree::full(&db.schema().clone());
        let mut est = ReissueEstimator::new(AggregateSpec::count_star(), tree, 8);
        let (r1, r2);
        {
            let mut s = SearchSession::new(&mut db, 100);
            r1 = est.run_round(&mut s);
        }
        {
            let mut s = SearchSession::new(&mut db, 100);
            r2 = est.run_round(&mut s);
        }
        let drills_r1 = r1.initiated;
        let drills_r2 = r2.updated + r2.initiated;
        assert!(
            drills_r2 > drills_r1,
            "same budget must cover more drill-downs when reissuing: {drills_r1} vs {drills_r2}"
        );
    }

    #[test]
    fn fault_interruption_leaves_same_resumable_state_as_exhaustion() {
        use hidden_db::fault::{FaultKind, FaultSchedule, FaultyBackend};

        // Identical twins through round 1.
        let mut db_a = hashed_db(100, 16, 12);
        let mut db_b = db_a.clone();
        let tree = QueryTree::full(&db_a.schema().clone());
        let mut est_a = ReissueEstimator::new(AggregateSpec::count_star(), tree.clone(), 13);
        let mut est_b = ReissueEstimator::new(AggregateSpec::count_star(), tree, 13);
        {
            let mut s = SearchSession::new(&mut db_a, 150);
            est_a.run_round(&mut s);
            let mut s = SearchSession::new(&mut db_b, 150);
            est_b.run_round(&mut s);
        }
        // Round 2a: plain budget exhaustion before anything happens.
        let r_a = {
            let mut s = SearchSession::new(&mut db_a, 0);
            est_a.run_round(&mut s)
        };
        // Round 2b: budget is there, but every query faults and recovery
        // is absent — an unrecovered interruption on the first resume.
        let r_b = {
            let s = SearchSession::new(&mut db_b, 50);
            let schedule = FaultSchedule::always(FaultKind::Timeout).with_max_consecutive(u32::MAX);
            let mut faulty = FaultyBackend::new(s, schedule);
            est_b.run_round(&mut faulty)
        };
        // Exhaustion is the normal regime; the fault round is Degraded.
        assert!(r_a.degraded.is_none());
        let tag = r_b.degraded.expect("unrecovered fault must tag the report");
        assert!(tag.queries_lost > 0);
        assert_eq!(tag.rounds_affected, 1);
        // Both interruptions leave the identical resumable pool: every
        // record keeps its previous depth and round stamp.
        assert_eq!(est_a.pool_size(), est_b.pool_size());
        for (ra, rb) in est_a.pool.iter().zip(&est_b.pool) {
            assert_eq!(ra.depth, rb.depth);
            assert_eq!(ra.round, rb.round);
            assert_eq!(ra.round, 1, "interrupted round must not stamp records");
        }
        // Round 3 (clean, ample budget): both resume the full pool.
        let r3_a = {
            let mut s = SearchSession::new(&mut db_a, 500);
            est_a.run_round(&mut s)
        };
        let r3_b = {
            let mut s = SearchSession::new(&mut db_b, 500);
            est_b.run_round(&mut s)
        };
        assert_eq!(r3_a.updated, r3_b.updated);
        assert!(r3_a.updated > 0);
        assert!(r3_b.count.is_usable());
        // The degradation marker is cumulative: it survives clean rounds.
        assert!(r3_a.degraded.is_none());
        assert_eq!(r3_b.degraded, Some(tag));
    }

    /// Opting into bootstrap CIs must (a) fill `ci` on every usable
    /// estimate, (b) leave the point estimates and analytic variances
    /// bit-identical to a bootstrap-free twin, and (c) produce intervals
    /// that actually bracket the point estimate.
    #[test]
    fn bootstrap_opt_in_fills_cis_without_perturbing_estimates() {
        let mut db_a = hashed_db(100, 16, 21);
        let mut db_b = db_a.clone();
        let tree = QueryTree::full(&db_a.schema().clone());
        let mut plain = ReissueEstimator::new(AggregateSpec::count_star(), tree.clone(), 22);
        let mut booted = ReissueEstimator::new(AggregateSpec::count_star(), tree, 22);
        booted.set_bootstrap(Some(crate::estimator::BootstrapSpec::default()));
        for round in 0..3 {
            let r_a = {
                let mut s = SearchSession::new(&mut db_a, 200);
                plain.run_round(&mut s)
            };
            let r_b = {
                let mut s = SearchSession::new(&mut db_b, 200);
                booted.run_round(&mut s)
            };
            assert_eq!(r_a.count.value, r_b.count.value, "round {round}");
            assert_eq!(r_a.count.variance, r_b.count.variance);
            assert_eq!(r_a.sum.value, r_b.sum.value);
            assert!(r_a.count.ci.is_none(), "plain estimator must not resample");
            let ci = r_b.count.ci.expect("bootstrap estimator must fill the CI");
            assert!(ci.contains(r_b.count.value), "{ci:?} vs {}", r_b.count.value);
            assert_eq!(ci.level, 0.95);
            if round > 0 {
                let ch = r_b.change_count.expect("REISSUE reports changes from round 2");
                let chci = ch.ci.expect("change estimate must carry a CI too");
                assert!(chci.contains(ch.value));
            }
        }
    }

    #[test]
    fn budget_starvation_updates_random_subset() {
        let mut db = hashed_db(100, 8, 9);
        let tree = QueryTree::full(&db.schema().clone());
        let mut est = ReissueEstimator::new(AggregateSpec::count_star(), tree, 10);
        {
            let mut s = SearchSession::new(&mut db, 200);
            est.run_round(&mut s);
        }
        let pool = est.pool_size();
        // Tiny budget: only a few updates possible.
        let mut s = SearchSession::new(&mut db, 6);
        let r = est.run_round(&mut s);
        assert!(r.updated < pool);
        assert!(r.updated >= 1);
        assert!(r.queries_spent <= 6);
        assert!(r.count.is_usable());
    }
}
