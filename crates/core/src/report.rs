//! Per-round estimator output.

pub use agg_stats::resample::ConfidenceInterval;

use crate::aggregate::AggKind;

/// An estimate together with the estimator's own variance estimate
/// (used for error bars, inverse-variance combination, and as the `β` of
/// future RS rounds), plus an optional bootstrap percentile CI.
///
/// The analytic `variance` is the plug-in variance-of-mean, honest only
/// under the estimator's i.i.d. assumptions; `ci` is a resampled interval
/// filled in when the estimator was configured with a
/// [`BootstrapSpec`](crate::estimator::BootstrapSpec) (absent otherwise —
/// the default path does no resampling work).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateWithVar {
    /// The point estimate.
    pub value: f64,
    /// Estimated variance of the estimator (not of the data).
    pub variance: f64,
    /// Bootstrap percentile confidence interval, when requested.
    pub ci: Option<ConfidenceInterval>,
}

impl EstimateWithVar {
    /// Creates an estimate (no bootstrap CI).
    pub fn new(value: f64, variance: f64) -> Self {
        Self { value, variance, ci: None }
    }

    /// A degenerate "no information" estimate.
    pub fn unknown() -> Self {
        Self { value: f64::NAN, variance: f64::INFINITY, ci: None }
    }

    /// Attaches a bootstrap percentile CI.
    pub fn with_ci(mut self, ci: ConfidenceInterval) -> Self {
        self.ci = Some(ci);
        self
    }

    /// Whether the estimate carries usable information.
    pub fn is_usable(&self) -> bool {
        self.value.is_finite()
    }
}

/// Marker that an estimator survived unrecoverable interface faults by
/// degrading gracefully: the report's estimates are real but built from
/// fewer drill-downs than the budget would have allowed.
///
/// Budget exhaustion is *not* degradation — spending the whole budget is
/// the normal §2.1 regime. This marker appears only when queries were
/// lost to faults the recovery layer could not cure; the interrupted
/// drill-downs stay resumable (their pool records keep the previous
/// depth), so the next round carries on exactly as after exhaustion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Degraded {
    /// Budget units lost to unrecovered faults (cumulative over the
    /// estimator's lifetime).
    pub queries_lost: u64,
    /// Rounds in which at least one fault interruption occurred
    /// (cumulative).
    pub rounds_affected: u32,
}

/// Everything an estimator reports about one round.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Round index (1-based).
    pub round: u32,
    /// Queries spent this round (≤ the session budget).
    pub queries_spent: u64,
    /// Drill-downs updated (resumed) this round.
    pub updated: usize,
    /// Fresh drill-downs initiated this round.
    pub initiated: usize,
    /// Estimate of `COUNT(cond)` over the current round's database.
    pub count: EstimateWithVar,
    /// Estimate of `SUM(f(t)) WHERE cond`.
    pub sum: EstimateWithVar,
    /// Direct estimate of the change `COUNT_j − COUNT_{j−1}` (trans-round),
    /// when the estimator can produce one.
    pub change_count: Option<EstimateWithVar>,
    /// Direct estimate of `SUM_j − SUM_{j−1}`.
    pub change_sum: Option<EstimateWithVar>,
    /// Present iff unrecoverable faults cost this estimator queries
    /// (this round or earlier); the estimates above are partial but
    /// honest.
    pub degraded: Option<Degraded>,
}

impl RoundReport {
    /// `AVG = SUM/COUNT`; `None` when the COUNT estimate is non-positive.
    pub fn avg(&self) -> Option<f64> {
        (self.count.value > 0.0).then(|| self.sum.value / self.count.value)
    }

    /// The estimate of the tracked aggregate, per kind.
    pub fn primary(&self, kind: AggKind) -> f64 {
        match kind {
            AggKind::Count => self.count.value,
            AggKind::Sum => self.sum.value,
            AggKind::Avg => self.avg().unwrap_or(f64::NAN),
        }
    }

    /// The direct change estimate for the tracked kind, if available
    /// (COUNT and SUM only — AVG change is not a SUM/COUNT aggregate).
    pub fn primary_change(&self, kind: AggKind) -> Option<f64> {
        match kind {
            AggKind::Count => self.change_count.map(|e| e.value),
            AggKind::Sum => self.change_sum.map(|e| e.value),
            AggKind::Avg => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RoundReport {
        RoundReport {
            round: 3,
            queries_spent: 100,
            updated: 10,
            initiated: 5,
            count: EstimateWithVar::new(200.0, 4.0),
            sum: EstimateWithVar::new(5_000.0, 100.0),
            change_count: Some(EstimateWithVar::new(12.0, 1.0)),
            change_sum: None,
            degraded: None,
        }
    }

    #[test]
    fn avg_is_ratio() {
        let r = report();
        assert_eq!(r.avg(), Some(25.0));
        let mut r = r;
        r.count.value = 0.0;
        assert_eq!(r.avg(), None);
    }

    #[test]
    fn primary_selects_by_kind() {
        let r = report();
        assert_eq!(r.primary(AggKind::Count), 200.0);
        assert_eq!(r.primary(AggKind::Sum), 5_000.0);
        assert_eq!(r.primary(AggKind::Avg), 25.0);
        assert_eq!(r.primary_change(AggKind::Count), Some(12.0));
        assert_eq!(r.primary_change(AggKind::Sum), None);
        assert_eq!(r.primary_change(AggKind::Avg), None);
    }

    #[test]
    fn unknown_estimate() {
        let u = EstimateWithVar::unknown();
        assert!(!u.is_usable());
        assert!(EstimateWithVar::new(1.0, 0.5).is_usable());
    }
}
