//! RESTART-ESTIMATOR: the baseline that reruns the static drill-down
//! estimator of Dasgupta et al. \[13\] from scratch every round (§1, §3).
//!
//! Each round is treated as an independent static database: sample fresh
//! signatures, drill each from the root, average the HT samples. Nothing
//! is carried across rounds except the previous round's published
//! estimate (needed to report a trans-round change estimate, which for
//! RESTART is just the difference of two independent estimates — the
//! high-variance behaviour Figs 15–17 demonstrate).

use hidden_db::session::SearchBackend;
use query_tree::drill::drill_from_root;
use query_tree::signature::Signature;
use query_tree::tree::QueryTree;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::aggregate::{ht_sample, AggregateSpec};
use crate::estimator::{attach_report_cis, base_report, BootstrapSpec, Estimator, SampleMoments};
use crate::report::{EstimateWithVar, RoundReport};
use crate::transround::DegradationLog;

/// The repeated-execution baseline.
#[derive(Debug)]
pub struct RestartEstimator {
    spec: AggregateSpec,
    tree: QueryTree,
    rng: StdRng,
    round: u32,
    prev_count: Option<EstimateWithVar>,
    prev_sum: Option<EstimateWithVar>,
    degradation: DegradationLog,
    bootstrap: Option<BootstrapSpec>,
}

impl RestartEstimator {
    /// Creates the estimator over `tree`, tracking `spec`.
    pub fn new(spec: AggregateSpec, tree: QueryTree, seed: u64) -> Self {
        Self {
            spec,
            tree,
            rng: StdRng::seed_from_u64(seed),
            round: 0,
            prev_count: None,
            prev_sum: None,
            degradation: DegradationLog::new(),
            bootstrap: None,
        }
    }

    /// The query tree in use.
    pub fn tree(&self) -> &QueryTree {
        &self.tree
    }
}

impl Estimator for RestartEstimator {
    fn name(&self) -> &'static str {
        "RESTART"
    }

    fn spec(&self) -> &AggregateSpec {
        &self.spec
    }

    fn set_bootstrap(&mut self, spec: Option<BootstrapSpec>) {
        self.bootstrap = spec;
    }

    fn run_round(&mut self, backend: &mut dyn SearchBackend) -> RoundReport {
        self.round += 1;
        self.degradation.begin_round();
        let mut samples = if self.bootstrap.is_some() {
            SampleMoments::retaining_raw()
        } else {
            SampleMoments::default()
        };
        let mut initiated = 0;
        while backend.remaining() > 0 {
            let sig = Signature::sample(&self.tree, &mut self.rng);
            match drill_from_root(&self.tree, &sig, backend) {
                Ok(out) => {
                    samples.push(ht_sample(&self.spec, &self.tree, &out));
                    initiated += 1;
                }
                // Interrupted mid-drill (budget death or an unrecovered
                // fault): the partial drill-down cannot produce an
                // unbiased sample; its queries are simply lost (the
                // "wasted queries" §1 complains about).
                Err(e) => {
                    self.degradation.interrupted(backend.remaining(), !e.is_budget());
                    break;
                }
            }
        }
        let mut report =
            base_report(self.round, backend, 0, initiated, &samples, self.degradation.tag());
        if let Some(spec) = &self.bootstrap {
            attach_report_cis(&mut report, &samples, spec);
        }
        // Trans-round change: difference of independent estimates.
        if let (Some(pc), Some(ps)) = (self.prev_count, self.prev_sum) {
            if pc.is_usable() && report.count.is_usable() {
                report.change_count = Some(EstimateWithVar::new(
                    report.count.value - pc.value,
                    report.count.variance + pc.variance,
                ));
            }
            if ps.is_usable() && report.sum.is_usable() {
                report.change_sum = Some(EstimateWithVar::new(
                    report.sum.value - ps.value,
                    report.sum.variance + ps.variance,
                ));
            }
        }
        self.prev_count = Some(report.count);
        self.prev_sum = Some(report.sum);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{grow, hashed_db};
    use hidden_db::session::SearchSession;

    #[test]
    fn estimates_count_star_reasonably() {
        let mut db = hashed_db(120, 16, 0);
        let tree = QueryTree::full(&db.schema().clone());
        let mut est = RestartEstimator::new(AggregateSpec::count_star(), tree, 7);
        let mut session = SearchSession::new(&mut db, 400);
        let report = est.run_round(&mut session);
        assert!(report.initiated > 50);
        assert!(report.queries_spent <= 400);
        let err = (report.count.value - 120.0).abs() / 120.0;
        assert!(err < 0.35, "relative error {err}, est {}", report.count.value);
    }

    #[test]
    fn monte_carlo_mean_is_unbiased() {
        // Average many independent single-round estimates: the grand mean
        // must approach the truth (Theorem of [13] / §3.1).
        let mut db = hashed_db(60, 16, 1);
        let truth = db.len() as f64;
        let tree = QueryTree::full(&db.schema().clone());
        let mut grand = agg_stats::moments::RunningMoments::new();
        for seed in 0..60 {
            let mut est = RestartEstimator::new(AggregateSpec::count_star(), tree.clone(), seed);
            let mut session = SearchSession::new(&mut db, 100);
            let report = est.run_round(&mut session);
            grand.push(report.count.value);
        }
        let mean = grand.mean().unwrap();
        let se = grand.variance_of_mean().unwrap().sqrt();
        assert!(
            (mean - truth).abs() < 5.0 * se + 1.0,
            "grand mean {mean} vs truth {truth} (se {se})"
        );
    }

    #[test]
    fn reports_change_across_rounds() {
        let mut db = hashed_db(100, 16, 2);
        let tree = QueryTree::full(&db.schema().clone());
        let mut est = RestartEstimator::new(AggregateSpec::count_star(), tree, 3);
        {
            let mut s = SearchSession::new(&mut db, 300);
            let r1 = est.run_round(&mut s);
            assert!(r1.change_count.is_none(), "no change estimate in round 1");
        }
        grow(&mut db, 200, 30);
        let mut s = SearchSession::new(&mut db, 300);
        let r2 = est.run_round(&mut s);
        let ch = r2.change_count.expect("round 2 must report change");
        // Truth is +30; RESTART's change estimate is noisy but finite.
        assert!(ch.value.is_finite());
        assert!(ch.variance > 0.0);
    }

    #[test]
    fn unrecovered_fault_mid_round_degrades_instead_of_unwinding() {
        use hidden_db::fault::{FaultSchedule, FaultyBackend};

        let mut db = hashed_db(120, 16, 5);
        let tree = QueryTree::full(&db.schema().clone());
        let mut est = RestartEstimator::new(AggregateSpec::count_star(), tree, 21);
        // Seeded faults with no recovery layer: the round is interrupted
        // at the first injection but still reports partial estimates.
        let session = SearchSession::new(&mut db, 400);
        let mut faulty = FaultyBackend::new(
            session,
            FaultSchedule::seeded(3, 0.05).with_max_consecutive(u32::MAX),
        );
        let r = est.run_round(&mut faulty);
        let tag = r.degraded.expect("fault interruption must tag the report");
        assert_eq!(tag.rounds_affected, 1);
        assert!(tag.queries_lost > 0);
        // Partial but honest: the drills completed before the fault still
        // feed the estimate.
        assert!(r.initiated > 0);
        assert!(r.count.is_usable());
        // Budget exhaustion alone never tags: identical run, no faults.
        let mut db2 = hashed_db(120, 16, 5);
        let tree2 = QueryTree::full(&db2.schema().clone());
        let mut est2 = RestartEstimator::new(AggregateSpec::count_star(), tree2, 21);
        let mut s = SearchSession::new(&mut db2, 400);
        let clean = est2.run_round(&mut s);
        assert!(clean.degraded.is_none());
        assert!(clean.initiated >= r.initiated);
    }

    #[test]
    fn budget_zero_yields_unusable_estimate() {
        let mut db = hashed_db(50, 16, 3);
        let tree = QueryTree::full(&db.schema().clone());
        let mut est = RestartEstimator::new(AggregateSpec::count_star(), tree, 1);
        let mut s = SearchSession::new(&mut db, 0);
        let r = est.run_round(&mut s);
        assert_eq!(r.initiated, 0);
        assert!(!r.count.is_usable());
    }

    #[test]
    fn sum_and_avg_tracking() {
        let mut db = hashed_db(90, 16, 4);
        let truth_sum = db.exact_sum(None, |t| t.measure(hidden_db::value::MeasureId(0)));
        let tree = QueryTree::full(&db.schema().clone());
        let spec = AggregateSpec::avg_measure(
            hidden_db::value::MeasureId(0),
            hidden_db::query::ConjunctiveQuery::select_all(),
        );
        let mut est = RestartEstimator::new(spec, tree, 11);
        let mut s = SearchSession::new(&mut db, 500);
        let r = est.run_round(&mut s);
        let rel = (r.sum.value - truth_sum).abs() / truth_sum;
        assert!(rel < 0.4, "sum rel err {rel}");
        let avg = r.avg().unwrap();
        let truth_avg = truth_sum / 90.0;
        assert!((avg - truth_avg).abs() / truth_avg < 0.4, "avg {avg} vs {truth_avg}");
    }
}
