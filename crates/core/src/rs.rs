//! RS-ESTIMATOR (§4, Algorithm 2): reservoir-inspired adaptive tracking.
//!
//! Each round:
//!
//! 1. **Bootstrap** — run `ϖ` pilot drill-downs per *age group* (records
//!    grouped by the round they were last updated) plus `ϖ` fresh pilots,
//!    measuring per-group update cost `g_x` and change variance `α_x`.
//! 2. **Allocate** — distribute the remaining budget between updating old
//!    drill-downs and starting new ones by the water-filling solution of
//!    Corollaries 4.1/4.3 (`agg_stats::allocation`).
//! 3. **Execute** — draw the planned updates/fresh drills in random order
//!    until the budget is gone (randomness keeps partial execution
//!    unbiased).
//! 4. **Combine** — each group yields `Q̃_x + mean(Δ)` with variance
//!    `β_x + α_x/c_x`; groups are merged by inverse-variance weighting
//!    (Corollary 4.2) and the result is published as this round's
//!    estimate (becoming the `β` of future rounds).
//!
//! The estimator can optimise its budget split for either the current
//! value of the aggregate or its round-over-round change
//! ([`TrackingTarget`]); for change tracking the `x = j−1` group becomes
//! the zero-`β` "golden" group — paired differences need no base estimate.

use agg_stats::allocation::{allocate, GroupParams};
use agg_stats::moments::RunningMoments;
use agg_stats::weighted::{combine, Component};
use hidden_db::errors::IssueError;
use hidden_db::session::SearchBackend;
use query_tree::drill::{drill_from_root, resume_from, ReissuePolicy};
use query_tree::signature::Signature;
use query_tree::tree::QueryTree;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::aggregate::{ht_sample, AggKind, AggregateSpec, HtSample};
use crate::estimator::{Estimator, SampleMoments};
use crate::record::{group_by_age, DrillRecord};
use crate::report::{EstimateWithVar, RoundReport};
use crate::transround::DegradationLog;

/// What the allocator optimises for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrackingTarget {
    /// Minimise the variance of the current-round estimate `Q(D_j)`.
    #[default]
    Current,
    /// Minimise the variance of the change estimate `Q(D_j) − Q(D_{j−1})`
    /// (Figs 15–17's trans-round workload).
    Change,
}

/// RS-ESTIMATOR configuration.
#[derive(Debug, Clone, Copy)]
pub struct RsConfig {
    /// `ϖ`: pilot drill-downs per age group per round (paper default 10).
    pub pilot_per_group: usize,
    /// Reissue policy for updates (Strict = unbiased).
    pub policy: ReissuePolicy,
    /// Allocation target.
    pub target: TrackingTarget,
    /// Minimum weight given to the current round's *fresh* evidence in the
    /// final combination, in `[0, 1)`.
    ///
    /// Deviation from the paper (documented in DESIGN.md): with
    /// heavy-tailed HT samples the plug-in variance estimates correlate
    /// with the estimates themselves, so pure inverse-variance weighting
    /// can lock onto an unlucky early round (its low estimate ships with
    /// a low variance estimate and is trusted forever). Flooring the
    /// fresh-evidence weight makes any initial bias decay geometrically
    /// at `(1 − floor)` per round while leaving well-behaved workloads
    /// essentially untouched. Set to 0.0 for the paper's exact rule.
    pub fresh_weight_floor: f64,
    /// Per-round-of-staleness variance inflation (process noise), as a
    /// fraction `κ` of the fresh evidence's variance-of-mean.
    ///
    /// Deviation from the paper (documented in DESIGN.md): a group last
    /// updated at round `x` contributes `Q̃_x + mean(Δ)` whose claimed
    /// variance relies on `ϖ` pilot diffs. Change in a hidden database is
    /// heavy-tailed (a diff is usually 0, occasionally ±huge), so pilots
    /// routinely miss it and the plug-in variance understates reality —
    /// the classic Kalman-filter divergence mode under underestimated
    /// process noise. We therefore inflate each group's base variance by
    /// `(j − x) · κ · varF`, where `varF` is the most recent fresh
    /// variance-of-mean. Set to 0.0 for the paper's exact rule.
    pub process_noise: f64,
    /// Records not updated for more than this many rounds are evicted
    /// from the pool (reservoir spirit: the sample forgets the distant
    /// past). Without eviction the number of age groups grows with the
    /// round index and Algorithm 2's per-group pilots (`ϖ · j`) eventually
    /// consume the whole budget. Set high to approximate the paper's
    /// unbounded pool.
    pub max_staleness: u32,
    /// Cap on the fraction of the round budget spent on bootstrap pilots
    /// (the drills of Algorithm 2 lines 3–7), so piloting many groups
    /// cannot starve the allocation phase.
    pub pilot_budget_frac: f64,
}

impl Default for RsConfig {
    fn default() -> Self {
        Self {
            pilot_per_group: 10,
            policy: ReissuePolicy::Strict,
            target: TrackingTarget::Current,
            fresh_weight_floor: 0.2,
            process_noise: 0.1,
            max_staleness: 6,
            pilot_budget_frac: 0.25,
        }
    }
}

/// Published per-round estimates (the `Q̃_x` / `ε_x²` history).
#[derive(Debug, Clone, Copy)]
struct RoundEstimate {
    count: EstimateWithVar,
    sum: EstimateWithVar,
}

impl RoundEstimate {
    fn scalar(&self, kind: AggKind) -> EstimateWithVar {
        match kind {
            AggKind::Count => self.count,
            AggKind::Sum | AggKind::Avg => self.sum,
        }
    }
}

/// Per-group working state for one round.
#[derive(Debug, Default)]
struct GroupWork {
    /// Pool indices not yet updated this round (shuffled).
    remaining: Vec<usize>,
    /// Paired differences (new − old) of records updated this round.
    diffs: SampleMoments,
    /// Observed update costs.
    costs: RunningMoments,
}

/// The reservoir-style estimator.
#[derive(Debug)]
pub struct RsEstimator {
    spec: AggregateSpec,
    tree: QueryTree,
    config: RsConfig,
    rng: StdRng,
    pool: Vec<DrillRecord>,
    round: u32,
    /// `history[x−1]` = estimates published at round `x`.
    history: Vec<RoundEstimate>,
    /// Variance-of-mean of the latest round's fresh drill-downs
    /// (count, sum) — the scale for process-noise inflation.
    last_fresh_vom: Option<(f64, f64)>,
    degradation: DegradationLog,
}

impl RsEstimator {
    /// Creates the estimator with default configuration.
    pub fn new(spec: AggregateSpec, tree: QueryTree, seed: u64) -> Self {
        Self::with_config(spec, tree, seed, RsConfig::default())
    }

    /// Creates the estimator with explicit configuration.
    pub fn with_config(spec: AggregateSpec, tree: QueryTree, seed: u64, config: RsConfig) -> Self {
        Self {
            spec,
            tree,
            config,
            rng: StdRng::seed_from_u64(seed),
            pool: Vec::new(),
            round: 0,
            history: Vec::new(),
            last_fresh_vom: None,
            degradation: DegradationLog::new(),
        }
    }

    /// Process-noise inflation for a group last updated at `group_round`,
    /// per component: `(j − x) · κ · varF`.
    fn staleness_inflation(&self, group_round: u32, j: u32) -> (f64, f64) {
        let gap = (j - group_round) as f64;
        match self.last_fresh_vom {
            Some((c, s)) if self.config.process_noise > 0.0 => {
                let k = self.config.process_noise;
                (gap * k * c, gap * k * s)
            }
            _ => (0.0, 0.0),
        }
    }

    /// Number of drill-downs currently remembered.
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// Updates one record, returning the paired difference and cost.
    fn update_record(
        tree: &QueryTree,
        spec: &AggregateSpec,
        policy: ReissuePolicy,
        pool: &mut [DrillRecord],
        idx: usize,
        j: u32,
        backend: &mut dyn SearchBackend,
    ) -> Result<(HtSample, u64), IssueError> {
        let rec = &mut pool[idx];
        let out = resume_from(tree, &rec.sig, rec.depth, policy, backend)?;
        let sample = ht_sample(spec, tree, &out);
        let diff = sample.diff(rec.sample);
        rec.depth = out.depth;
        rec.sample = sample;
        rec.round = j;
        Ok((diff, out.cost))
    }

    /// Runs one fresh drill-down, returning its sample and cost, and
    /// appending the record.
    fn fresh_drill(
        tree: &QueryTree,
        spec: &AggregateSpec,
        pool: &mut Vec<DrillRecord>,
        rng: &mut StdRng,
        j: u32,
        backend: &mut dyn SearchBackend,
    ) -> Result<(HtSample, u64), IssueError> {
        let sig = Signature::sample(tree, rng);
        let out = drill_from_root(tree, &sig, backend)?;
        let sample = ht_sample(spec, tree, &out);
        pool.push(DrillRecord::new(sig, out.depth, j, sample));
        Ok((sample, out.cost))
    }

    /// The β of a group for the allocator, per tracking target, including
    /// process-noise inflation for stale groups.
    fn group_beta(&self, group_round: u32, j: u32) -> f64 {
        let kind = self.spec.kind;
        let hist_var = |x: u32| -> f64 {
            self.history
                .get(x as usize - 1)
                .map(|h| h.scalar(kind).variance)
                .filter(|v| v.is_finite())
                .unwrap_or(0.0)
        };
        let (inf_c, inf_s) = self.staleness_inflation(group_round, j);
        let inflation = match kind {
            AggKind::Count => inf_c,
            AggKind::Sum | AggKind::Avg => inf_s,
        };
        match self.config.target {
            TrackingTarget::Current => hist_var(group_round) + inflation,
            TrackingTarget::Change => {
                if group_round == j - 1 {
                    0.0
                } else {
                    hist_var(group_round) + hist_var(j - 1) + inflation
                }
            }
        }
    }
}

/// Builds a group's estimate component of `Q(D_j)`:
/// `Q̃_x + mean(Δ)` with variance `ε_x² + inflation + var(mean Δ)`.
fn group_component(
    base: EstimateWithVar,
    inflation: f64,
    diffs: &RunningMoments,
) -> Option<Component> {
    let mean = diffs.mean()?;
    let vom = diffs.variance_of_mean().unwrap_or(f64::INFINITY);
    if !base.is_usable() {
        return None;
    }
    Some(Component::new(base.value + mean, base.variance + inflation + vom))
}

impl Estimator for RsEstimator {
    fn name(&self) -> &'static str {
        "RS"
    }

    fn spec(&self) -> &AggregateSpec {
        &self.spec
    }

    fn run_round(&mut self, backend: &mut dyn SearchBackend) -> RoundReport {
        self.round += 1;
        let j = self.round;
        self.degradation.begin_round();
        let kind = self.spec.kind;
        let policy = self.config.policy;

        // ---- group setup -------------------------------------------------
        // Reservoir-style forgetting: drop records whose last update is
        // too far in the past (see RsConfig::max_staleness).
        self.pool.retain(|r| j.saturating_sub(r.round) <= self.config.max_staleness);
        let mut groups: Vec<(u32, GroupWork)> = group_by_age(&self.pool)
            .into_iter()
            .map(|(x, mut idxs)| {
                idxs.shuffle(&mut self.rng);
                (x, GroupWork { remaining: idxs, ..GroupWork::default() })
            })
            .collect();
        let mut fresh = SampleMoments::default();
        let mut fresh_costs = RunningMoments::new();
        let mut updated = 0usize;
        let mut initiated = 0usize;
        let mut exhausted = false;

        // ---- phase 1: bootstrap pilots (Algorithm 2, lines 3–7) ----------
        // Pilot *drills* are capped to a fraction of the budget (assuming
        // ≈2 queries per update) so many age groups cannot starve phase 3.
        let mut pilot_drills_left =
            (((self.config.pilot_budget_frac * backend.remaining() as f64) / 2.0).ceil() as usize)
                .max(self.config.pilot_per_group);
        'pilot: {
            for (_x, work) in groups.iter_mut() {
                let quota =
                    self.config.pilot_per_group.min(work.remaining.len()).min(pilot_drills_left);
                for _ in 0..quota {
                    let idx = work.remaining.pop().expect("quota bounds the loop");
                    pilot_drills_left = pilot_drills_left.saturating_sub(1);
                    match Self::update_record(
                        &self.tree,
                        &self.spec,
                        policy,
                        &mut self.pool,
                        idx,
                        j,
                        backend,
                    ) {
                        Ok((diff, cost)) => {
                            work.diffs.push(diff);
                            work.costs.push(cost as f64);
                            updated += 1;
                        }
                        Err(e) => {
                            self.degradation.interrupted(backend.remaining(), !e.is_budget());
                            exhausted = true;
                            break 'pilot;
                        }
                    }
                }
            }
            for _ in 0..self.config.pilot_per_group {
                match Self::fresh_drill(
                    &self.tree,
                    &self.spec,
                    &mut self.pool,
                    &mut self.rng,
                    j,
                    backend,
                ) {
                    Ok((sample, cost)) => {
                        fresh.push(sample);
                        fresh_costs.push(cost as f64);
                        initiated += 1;
                    }
                    Err(e) => {
                        self.degradation.interrupted(backend.remaining(), !e.is_budget());
                        exhausted = true;
                        break 'pilot;
                    }
                }
            }
        }

        // ---- phase 2: allocation (Corollary 4.3) -------------------------
        if !exhausted && backend.remaining() > 0 {
            let fresh_alpha = match kind {
                AggKind::Count => fresh.count.sample_variance(),
                _ => fresh.sum.sample_variance(),
            }
            .unwrap_or(1.0)
            .max(agg_stats::allocation::ALPHA_FLOOR);
            let mut params: Vec<GroupParams> = Vec::with_capacity(groups.len() + 1);
            for (x, work) in &groups {
                let scalar_diffs = match kind {
                    AggKind::Count => &work.diffs.count,
                    _ => &work.diffs.sum,
                };
                let alpha = scalar_diffs.sample_variance().unwrap_or(fresh_alpha);
                let beta = self.group_beta(*x, j);
                let cost = work.costs.mean().unwrap_or(3.0).max(1.0);
                params.push(GroupParams::new(alpha, beta, cost, work.remaining.len() as f64));
            }
            let fresh_beta = match self.config.target {
                TrackingTarget::Current => 0.0,
                // For change tracking a fresh drill-down estimates
                // Q(D_j) − Q̃_{j−1}, so it inherits var(Q̃_{j−1}).
                // No history exists in round 1.
                TrackingTarget::Change if j >= 2 => self
                    .history
                    .get(j as usize - 2)
                    .map(|h| h.scalar(kind).variance)
                    .filter(|v| v.is_finite())
                    .unwrap_or(0.0),
                TrackingTarget::Change => 0.0,
            };
            params.push(GroupParams::new(
                fresh_alpha,
                fresh_beta,
                fresh_costs.mean().unwrap_or(4.0).max(1.0),
                f64::INFINITY,
            ));
            let alloc = allocate(&params, backend.remaining() as f64);

            // ---- phase 3: pooled execution in random order (line 8) ------
            enum Plan {
                Update { group: usize, idx: usize },
                Fresh,
            }
            let mut plan: Vec<Plan> = Vec::new();
            for (gi, (_x, work)) in groups.iter_mut().enumerate() {
                let want = alloc[gi].round() as usize;
                for _ in 0..want.min(work.remaining.len()) {
                    let idx = work.remaining.pop().expect("min() bounds the loop");
                    plan.push(Plan::Update { group: gi, idx });
                }
            }
            // Fresh quota plus slack to soak leftover budget.
            let fresh_want = alloc[groups.len()].ceil() as usize + 4;
            for _ in 0..fresh_want {
                plan.push(Plan::Fresh);
            }
            plan.shuffle(&mut self.rng);
            for item in plan {
                if backend.remaining() == 0 {
                    break;
                }
                match item {
                    Plan::Update { group, idx } => {
                        match Self::update_record(
                            &self.tree,
                            &self.spec,
                            policy,
                            &mut self.pool,
                            idx,
                            j,
                            backend,
                        ) {
                            Ok((diff, cost)) => {
                                groups[group].1.diffs.push(diff);
                                groups[group].1.costs.push(cost as f64);
                                updated += 1;
                            }
                            Err(e) => {
                                self.degradation.interrupted(backend.remaining(), !e.is_budget());
                                break;
                            }
                        }
                    }
                    Plan::Fresh => {
                        match Self::fresh_drill(
                            &self.tree,
                            &self.spec,
                            &mut self.pool,
                            &mut self.rng,
                            j,
                            backend,
                        ) {
                            Ok((sample, cost)) => {
                                fresh.push(sample);
                                fresh_costs.push(cost as f64);
                                initiated += 1;
                            }
                            Err(e) => {
                                self.degradation.interrupted(backend.remaining(), !e.is_budget());
                                break;
                            }
                        }
                    }
                }
            }
            // Any remaining budget: keep drilling fresh.
            while backend.remaining() > 0 {
                match Self::fresh_drill(
                    &self.tree,
                    &self.spec,
                    &mut self.pool,
                    &mut self.rng,
                    j,
                    backend,
                ) {
                    Ok((sample, cost)) => {
                        fresh.push(sample);
                        fresh_costs.push(cost as f64);
                        initiated += 1;
                    }
                    Err(e) => {
                        self.degradation.interrupted(backend.remaining(), !e.is_budget());
                        break;
                    }
                }
            }
        }

        // ---- phase 4: combination (Corollary 4.2) ------------------------
        let mut count_components: Vec<Component> = Vec::new();
        let mut sum_components: Vec<Component> = Vec::new();
        for (x, work) in &groups {
            let Some(base) = self.history.get(*x as usize - 1) else { continue };
            let (inf_c, inf_s) = self.staleness_inflation(*x, j);
            if let Some(c) = group_component(base.count, inf_c, &work.diffs.count) {
                count_components.push(c);
            }
            if let Some(c) = group_component(base.sum, inf_s, &work.diffs.sum) {
                sum_components.push(c);
            }
        }
        // Direct evidence for the current round: the plain HT mean over
        // *every* drill-down whose sample is current (updated + fresh) —
        // the REISSUE-style estimate. It subsumes the fresh-only component
        // and anchors the combination when the chain misbehaves.
        let mut pooled = SampleMoments::default();
        for rec in &self.pool {
            if rec.round == j {
                pooled.push(rec.sample);
            }
        }
        let fresh_count = (pooled.n() > 0).then(|| pooled.count_estimate());
        let fresh_sum = (pooled.n() > 0).then(|| pooled.sum_estimate());
        let fallback = |prev: Option<&RoundEstimate>,
                        pick: fn(&RoundEstimate) -> EstimateWithVar| {
            // Nothing usable this round: carry the previous estimate with
            // inflated variance (better than reporting nothing).
            prev.map(|h| {
                let e = pick(h);
                EstimateWithVar::new(e.value, e.variance * 2.0)
            })
            .unwrap_or_else(EstimateWithVar::unknown)
        };
        let floor = self.config.fresh_weight_floor.clamp(0.0, 0.99);
        let merge = |hist_comps: &[Component], fresh_est: Option<EstimateWithVar>| {
            let hist = combine(hist_comps);
            let fresh_usable = fresh_est.filter(|e| e.is_usable() && e.variance.is_finite());
            match (hist, fresh_usable) {
                (Some(h), Some(f)) => {
                    // Optimal fresh weight, floored (see RsConfig docs).
                    let lambda = if h.variance + f.variance > 0.0 {
                        (h.variance / (h.variance + f.variance)).max(floor)
                    } else {
                        floor
                    };
                    Some(EstimateWithVar::new(
                        (1.0 - lambda) * h.estimate + lambda * f.value,
                        (1.0 - lambda).powi(2) * h.variance + lambda.powi(2) * f.variance,
                    ))
                }
                (Some(h), None) => Some(EstimateWithVar::new(h.estimate, h.variance)),
                (None, Some(f)) => Some(f),
                (None, None) => None,
            }
        };
        let count_est = merge(&count_components, fresh_count)
            .unwrap_or_else(|| fallback(self.history.last(), |h| h.count));
        let sum_est = merge(&sum_components, fresh_sum)
            .unwrap_or_else(|| fallback(self.history.last(), |h| h.sum));

        // ---- trans-round change (for Figs 15–17) --------------------------
        let mut change_count = None;
        let mut change_sum = None;
        if j >= 2 {
            if let Some(prev) = self.history.get(j as usize - 2) {
                let mk_change = |direct: Option<Component>,
                                 others: &[Component],
                                 prev: EstimateWithVar|
                 -> Option<EstimateWithVar> {
                    let mut comps: Vec<Component> = Vec::new();
                    if let Some(d) = direct {
                        comps.push(d);
                    }
                    // Indirect: (other-group estimate of Q_j) − Q̃_{j−1}.
                    if prev.is_usable() {
                        if let Some(o) = combine(others) {
                            comps.push(Component::new(
                                o.estimate - prev.value,
                                o.variance + prev.variance,
                            ));
                        }
                    }
                    combine(&comps).map(|c| EstimateWithVar::new(c.estimate, c.variance))
                };
                // Direct components: paired diffs of the (j−1) group.
                let direct_of = |pick: fn(&GroupWork) -> &RunningMoments| {
                    groups.iter().find(|(x, _)| *x == j - 1).and_then(|(_, w)| {
                        let m = pick(w);
                        let mean = m.mean()?;
                        let vom = m.variance_of_mean().unwrap_or(f64::INFINITY);
                        Some(Component::new(mean, vom))
                    })
                };
                // Indirect pool: fresh samples only (old groups' indirect
                // paths share Q̃ bases with the direct one — excluded to
                // avoid double-counting correlated information).
                let fresh_count_comp: Vec<Component> = if fresh.n() > 1 {
                    let e = fresh.count_estimate();
                    vec![Component::new(e.value, e.variance)]
                } else {
                    vec![]
                };
                let fresh_sum_comp: Vec<Component> = if fresh.n() > 1 {
                    let e = fresh.sum_estimate();
                    vec![Component::new(e.value, e.variance)]
                } else {
                    vec![]
                };
                change_count =
                    mk_change(direct_of(|w| &w.diffs.count), &fresh_count_comp, prev.count);
                change_sum = mk_change(direct_of(|w| &w.diffs.sum), &fresh_sum_comp, prev.sum);
            }
        }

        // Record this round's direct-evidence variance-of-mean as the
        // process-noise scale for future staleness inflation.
        if let (Some(c), Some(s)) = (pooled.count.variance_of_mean(), pooled.sum.variance_of_mean())
        {
            self.last_fresh_vom = Some((c, s));
        }

        self.history.push(RoundEstimate { count: count_est, sum: sum_est });
        RoundReport {
            round: j,
            queries_spent: backend.spent(),
            updated,
            initiated,
            count: count_est,
            sum: sum_est,
            change_count,
            change_sum,
            degraded: self.degradation.tag(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{grow, hashed_db, shrink};
    use hidden_db::session::SearchSession;

    #[test]
    fn round_one_is_fresh_only() {
        let mut db = hashed_db(100, 16, 0);
        let tree = QueryTree::full(&db.schema().clone());
        let mut est = RsEstimator::new(AggregateSpec::count_star(), tree, 5);
        let mut s = SearchSession::new(&mut db, 300);
        let r = est.run_round(&mut s);
        assert_eq!(r.updated, 0);
        assert!(r.initiated > 20);
        let rel = (r.count.value - 100.0).abs() / 100.0;
        assert!(rel < 0.4, "round-1 rel err {rel}");
    }

    #[test]
    fn no_change_shifts_budget_to_fresh_drills() {
        // With σc² ≈ 0, Corollary 4.1 ⇒ h1 ≈ 0: beyond pilots, almost all
        // budget must go to new drill-downs.
        let mut db = hashed_db(100, 16, 1);
        let tree = QueryTree::full(&db.schema().clone());
        let mut est = RsEstimator::new(AggregateSpec::count_star(), tree, 6);
        {
            let mut s = SearchSession::new(&mut db, 250);
            est.run_round(&mut s);
        }
        let mut s = SearchSession::new(&mut db, 250);
        let r = est.run_round(&mut s);
        assert!(
            r.updated <= est.config.pilot_per_group + 2,
            "unchanged db: only pilots should update, got {}",
            r.updated
        );
        assert!(r.initiated > 20, "fresh drills should dominate, got {}", r.initiated);
    }

    #[test]
    fn heavy_change_updates_more_than_pilots() {
        let mut db = hashed_db(150, 8, 2);
        let tree = QueryTree::full(&db.schema().clone());
        let mut est = RsEstimator::new(AggregateSpec::count_star(), tree, 7);
        {
            let mut s = SearchSession::new(&mut db, 400);
            est.run_round(&mut s);
        }
        // Drastic change: delete a third, add many.
        shrink(&mut db, 50);
        grow(&mut db, 5_000, 60);
        let mut s = SearchSession::new(&mut db, 400);
        let r = est.run_round(&mut s);
        assert!(
            r.updated > est.config.pilot_per_group,
            "drastic change must trigger extra updates beyond pilots, got {}",
            r.updated
        );
    }

    #[test]
    fn estimate_stays_accurate_over_rounds() {
        let mut db = hashed_db(120, 16, 3);
        let tree = QueryTree::full(&db.schema().clone());
        let mut est = RsEstimator::new(AggregateSpec::count_star(), tree, 8);
        let mut last_rel = f64::NAN;
        for round in 0..5 {
            grow(&mut db, 10_000 + round * 100, 5);
            let truth = db.len() as f64;
            let mut s = SearchSession::new(&mut db, 200);
            let r = est.run_round(&mut s);
            last_rel = (r.count.value - truth).abs() / truth;
        }
        assert!(last_rel < 0.25, "round-5 relative error {last_rel}");
    }

    #[test]
    fn variance_decreases_when_database_is_static() {
        let mut db = hashed_db(100, 16, 4);
        let tree = QueryTree::full(&db.schema().clone());
        let mut est = RsEstimator::new(AggregateSpec::count_star(), tree, 9);
        let mut variances = Vec::new();
        for _ in 0..4 {
            let mut s = SearchSession::new(&mut db, 250);
            let r = est.run_round(&mut s);
            variances.push(r.count.variance);
        }
        assert!(
            variances.last().unwrap() < variances.first().unwrap(),
            "published variance should fall on a static db: {variances:?}"
        );
    }

    #[test]
    fn change_estimate_present_from_round_two() {
        let mut db = hashed_db(100, 16, 5);
        let tree = QueryTree::full(&db.schema().clone());
        let mut est = RsEstimator::with_config(
            AggregateSpec::count_star(),
            tree,
            10,
            RsConfig { target: TrackingTarget::Change, ..RsConfig::default() },
        );
        {
            let mut s = SearchSession::new(&mut db, 250);
            let r = est.run_round(&mut s);
            assert!(r.change_count.is_none());
        }
        grow(&mut db, 9_000, 25);
        let mut s = SearchSession::new(&mut db, 250);
        let r = est.run_round(&mut s);
        let ch = r.change_count.expect("change estimate from round 2");
        assert!(ch.value.is_finite());
        // Direct diffs dominate: estimate should be in a sane band around
        // the truth (+25) — generous tolerance, it's one noisy round.
        assert!((ch.value - 25.0).abs() < 40.0, "change {}", ch.value);
    }

    #[test]
    fn tiny_budget_still_reports_without_panic() {
        let mut db = hashed_db(80, 8, 6);
        let tree = QueryTree::full(&db.schema().clone());
        let mut est = RsEstimator::new(AggregateSpec::count_star(), tree, 11);
        {
            let mut s = SearchSession::new(&mut db, 100);
            est.run_round(&mut s);
        }
        // Budget so small the pilots themselves die.
        let mut s = SearchSession::new(&mut db, 3);
        let r = est.run_round(&mut s);
        assert!(r.queries_spent <= 3);
        // Falls back to carried-forward estimate.
        assert!(r.count.value.is_finite());
    }

    #[test]
    fn fault_interruption_is_tagged_and_pool_stays_resumable() {
        use hidden_db::fault::{FaultKind, FaultSchedule, FaultyBackend};

        let mut db = hashed_db(100, 16, 8);
        let tree = QueryTree::full(&db.schema().clone());
        let mut est = RsEstimator::new(AggregateSpec::count_star(), tree, 14);
        {
            let mut s = SearchSession::new(&mut db, 200);
            let r = est.run_round(&mut s);
            assert!(r.degraded.is_none());
        }
        let pool = est.pool_size();
        let depths: Vec<usize> = est.pool.iter().map(|r| r.depth).collect();
        // Round 2 dies on its very first query (a pilot update) with no
        // recovery layer: the round must still report, tagged.
        let r = {
            let s = SearchSession::new(&mut db, 200);
            let schedule = FaultSchedule::always(FaultKind::Http5xx).with_max_consecutive(u32::MAX);
            let mut faulty = FaultyBackend::new(s, schedule);
            est.run_round(&mut faulty)
        };
        assert!(r.degraded.is_some());
        assert!(r.count.value.is_finite(), "carried-forward estimate expected");
        // Pool untouched (minus staleness eviction, inactive after 1 gap):
        // every record keeps its depth — resumable exactly as after
        // budget exhaustion.
        assert_eq!(est.pool_size(), pool);
        assert!(est.pool.iter().map(|r| r.depth).eq(depths.into_iter()));
        // A clean round resumes normally and keeps the cumulative tag.
        let mut s = SearchSession::new(&mut db, 200);
        let r3 = est.run_round(&mut s);
        assert!(r3.updated > 0);
        assert_eq!(r3.degraded, r.degraded);
    }

    #[test]
    fn pool_membership_moves_groups() {
        let mut db = hashed_db(100, 16, 7);
        let tree = QueryTree::full(&db.schema().clone());
        let mut est = RsEstimator::new(AggregateSpec::count_star(), tree, 12);
        for _ in 0..3 {
            let mut s = SearchSession::new(&mut db, 150);
            est.run_round(&mut s);
        }
        // Every record must be stamped with some round ≤ 3, and at least
        // one record must be current (round 3: the fresh pilots).
        assert!(est.pool.iter().all(|r| r.round >= 1 && r.round <= 3));
        assert!(est.pool.iter().any(|r| r.round == 3));
    }
}
