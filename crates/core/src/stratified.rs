//! Stratified drill-down sampling — an extension beyond the paper, in the
//! direction of its related work on variance reduction (Liu/Wang/Agrawal
//! [25, 31]: stratified sampling for deep-web aggregates).
//!
//! Plain drill-downs draw the level-1 branch uniformly, so the across-
//! branch variance of the aggregate (often the dominant term on skewed
//! data) lands in every sample. Stratifying on the first tree level
//! removes it: each level-1 value `v` becomes a stratum sampled by
//! drilling the §3.3 subtree rooted at `A_s = v`; the aggregate is the
//! *sum* of per-stratum estimates, whose variances add — across-stratum
//! variance is gone.
//!
//! The estimator covers strata in a randomly-rotated round-robin, so a
//! budget too small to reach every stratum still yields an unbiased
//! estimate (covered strata form a uniform random subset, inflated by
//! `#strata / #covered`).

use hidden_db::session::SearchBackend;
use hidden_db::value::{AttrId, ValueId};
use query_tree::drill::drill_from_root;
use query_tree::signature::Signature;
use query_tree::tree::QueryTree;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::aggregate::{ht_sample, AggregateSpec};
use crate::estimator::{Estimator, SampleMoments};
use crate::report::{EstimateWithVar, RoundReport};
use crate::transround::DegradationLog;

/// Restart-style estimator with first-level stratification.
#[derive(Debug)]
pub struct StratifiedEstimator {
    spec: AggregateSpec,
    /// One subtree per stratum value.
    subtrees: Vec<QueryTree>,
    rng: StdRng,
    round: u32,
    degradation: DegradationLog,
}

impl StratifiedEstimator {
    /// Creates the estimator, stratifying on `stratum_attr` (every value of
    /// that attribute becomes one stratum).
    ///
    /// # Panics
    /// If the aggregate's selection condition already constrains
    /// `stratum_attr` (use a plain estimator on the §3.3 subtree instead).
    pub fn new(
        spec: AggregateSpec,
        schema: &hidden_db::schema::Schema,
        stratum_attr: AttrId,
        seed: u64,
    ) -> Self {
        assert!(
            spec.condition.value_for(stratum_attr).is_none(),
            "stratum attribute already fixed by the selection condition"
        );
        let subtrees = (0..schema.domain_size(stratum_attr))
            .map(|v| {
                let fixed = spec.condition.with(stratum_attr, ValueId(v));
                QueryTree::subtree(schema, fixed)
            })
            .collect();
        Self {
            spec,
            subtrees,
            rng: StdRng::seed_from_u64(seed),
            round: 0,
            degradation: DegradationLog::new(),
        }
    }

    /// Number of strata.
    pub fn strata(&self) -> usize {
        self.subtrees.len()
    }
}

impl Estimator for StratifiedEstimator {
    fn name(&self) -> &'static str {
        "STRATIFIED"
    }

    fn spec(&self) -> &AggregateSpec {
        &self.spec
    }

    fn run_round(&mut self, backend: &mut dyn SearchBackend) -> RoundReport {
        self.round += 1;
        self.degradation.begin_round();
        let s = self.subtrees.len();
        // Random rotation so partially-covered strata are a uniform subset.
        let mut order: Vec<usize> = (0..s).collect();
        order.shuffle(&mut self.rng);
        let mut per_stratum: Vec<SampleMoments> =
            (0..s).map(|_| SampleMoments::default()).collect();
        let mut initiated = 0usize;
        'outer: loop {
            let mut progressed = false;
            for &v in &order {
                if backend.remaining() == 0 {
                    break 'outer;
                }
                let tree = &self.subtrees[v];
                let sig = Signature::sample(tree, &mut self.rng);
                match drill_from_root(tree, &sig, backend) {
                    Ok(out) => {
                        per_stratum[v].push(ht_sample(&self.spec, tree, &out));
                        initiated += 1;
                        progressed = true;
                    }
                    Err(e) => {
                        self.degradation.interrupted(backend.remaining(), !e.is_budget());
                        break 'outer;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        // Combine: sum of covered strata means, inflated for coverage.
        let covered: Vec<&SampleMoments> = per_stratum.iter().filter(|m| m.n() > 0).collect();
        let (count, sum) = if covered.is_empty() {
            (EstimateWithVar::unknown(), EstimateWithVar::unknown())
        } else {
            let inflate = s as f64 / covered.len() as f64;
            let mut count_total = 0.0;
            let mut count_var = 0.0;
            let mut sum_total = 0.0;
            let mut sum_var = 0.0;
            for m in &covered {
                let c = m.count_estimate();
                let q = m.sum_estimate();
                count_total += c.value;
                sum_total += q.value;
                // Single-sample strata have unknown variance; treat as 0
                // contribution to the (reported) variance rather than
                // poisoning the whole round with ∞.
                if c.variance.is_finite() {
                    count_var += c.variance;
                }
                if q.variance.is_finite() {
                    sum_var += q.variance;
                }
            }
            (
                EstimateWithVar::new(count_total * inflate, count_var * inflate * inflate),
                EstimateWithVar::new(sum_total * inflate, sum_var * inflate * inflate),
            )
        };
        RoundReport {
            round: self.round,
            queries_spent: backend.spent(),
            updated: 0,
            initiated,
            count,
            sum,
            change_count: None,
            change_sum: None,
            degraded: self.degradation.tag(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restart::RestartEstimator;
    use crate::testutil::hashed_db;
    use agg_stats::moments::RunningMoments;
    use hidden_db::session::SearchSession;

    #[test]
    fn stratified_estimate_is_unbiased() {
        let mut db = hashed_db(120, 16, 0);
        let truth = db.len() as f64;
        let schema = db.schema().clone();
        let mut grand = RunningMoments::new();
        for seed in 0..40 {
            let mut est = StratifiedEstimator::new(
                AggregateSpec::count_star(),
                &schema,
                AttrId(1), // domain 3 → 3 strata
                seed,
            );
            let mut s = SearchSession::new(&mut db, 120);
            let r = est.run_round(&mut s);
            grand.push(r.count.value);
        }
        let mean = grand.mean().unwrap();
        let se = grand.variance_of_mean().unwrap().sqrt();
        assert!(
            (mean - truth).abs() < 5.0 * se + 1.0,
            "stratified grand mean {mean} vs {truth} (se {se})"
        );
    }

    #[test]
    fn stratification_reduces_variance_on_skewed_data() {
        // Across many seeds, the stratified estimator's across-run spread
        // should not exceed plain RESTART's (same budget). The hashed db
        // is skewed on A1, so stratifying there removes real variance.
        let mut db = hashed_db(150, 16, 7);
        let schema = db.schema().clone();
        let mut plain = RunningMoments::new();
        let mut strat = RunningMoments::new();
        for seed in 0..40 {
            let tree = QueryTree::full(&schema);
            let mut a = RestartEstimator::new(AggregateSpec::count_star(), tree, seed);
            let mut s = SearchSession::new(&mut db, 120);
            plain.push(a.run_round(&mut s).count.value);
            let mut b = StratifiedEstimator::new(
                AggregateSpec::count_star(),
                &schema,
                AttrId(1),
                seed ^ 0x77,
            );
            let mut s = SearchSession::new(&mut db, 120);
            strat.push(b.run_round(&mut s).count.value);
        }
        let vp = plain.sample_variance().unwrap();
        let vs = strat.sample_variance().unwrap();
        assert!(vs < vp * 1.2, "stratified variance {vs} should not exceed plain {vp} materially");
    }

    #[test]
    fn tiny_budget_still_unbiased_via_coverage_inflation() {
        let mut db = hashed_db(100, 16, 3);
        let truth = db.len() as f64;
        let schema = db.schema().clone();
        let mut grand = RunningMoments::new();
        for seed in 0..60 {
            let mut est =
                StratifiedEstimator::new(AggregateSpec::count_star(), &schema, AttrId(1), seed);
            // Budget for roughly one stratum only.
            let mut s = SearchSession::new(&mut db, 4);
            let r = est.run_round(&mut s);
            if r.count.is_usable() {
                grand.push(r.count.value);
            }
        }
        let mean = grand.mean().unwrap();
        let se = grand.variance_of_mean().unwrap().sqrt();
        assert!(
            (mean - truth).abs() < 5.0 * se + 2.0,
            "partial-coverage mean {mean} vs {truth} (se {se})"
        );
    }

    #[test]
    #[should_panic(expected = "already fixed")]
    fn conditioned_stratum_attr_rejected() {
        let db = hashed_db(10, 16, 4);
        let schema = db.schema().clone();
        let cond = hidden_db::query::ConjunctiveQuery::from_predicates([
            hidden_db::query::Predicate::new(AttrId(1), ValueId(0)),
        ]);
        let _ = StratifiedEstimator::new(AggregateSpec::count_where(cond), &schema, AttrId(1), 0);
    }
}
