//! Shared fixtures for the estimator unit tests.

use hidden_db::database::HiddenDatabase;
use hidden_db::ranking::ScoringPolicy;
use hidden_db::schema::Schema;
use hidden_db::tuple::Tuple;
use hidden_db::value::{TupleKey, ValueId};

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A 4-attribute ([2, 3, 2, 4]) database with one `price` measure,
/// populated with `n` hash-scattered (skewed-ish) tuples. Keys are `0..n`.
///
/// The most likely leaf has probability 0.75·0.5·0.5·0.25 ≈ 4.7 %, so with
/// `k ≥ 16` and `n ≤ 200` leaves essentially never overflow and the HT
/// estimates are exactly unbiased.
pub fn hashed_db(n: u64, k: usize, seed: u64) -> HiddenDatabase {
    let schema = Schema::with_domain_sizes(&[2, 3, 2, 4], &["price"]).unwrap();
    let mut db = HiddenDatabase::new(schema, k, ScoringPolicy::default());
    for t in 0..n {
        let h = mix(t ^ seed.wrapping_mul(0x1234_5678_9ABC_DEF1));
        // Skew: value 0 twice as likely on A0 and A1.
        let a0 = if h % 4 < 3 { 0 } else { 1 };
        let a1 = match (h >> 8) % 6 {
            0..=2 => 0,
            3..=4 => 1,
            _ => 2,
        };
        let a2 = ((h >> 16) % 2) as u32;
        let a3 = ((h >> 32) % 4) as u32;
        let price = 10.0 + ((h >> 24) % 90) as f64;
        db.insert(Tuple::new(
            TupleKey(t),
            vec![ValueId(a0 as u32), ValueId(a1 as u32), ValueId(a2), ValueId(a3)],
            vec![price],
        ))
        .unwrap();
    }
    db
}

/// Inserts `count` extra tuples with hash-scattered values and price 50,
/// keys starting at `start_key`. Scattering keeps individual leaves below
/// the interface's `k`, preserving HT unbiasedness.
pub fn grow(db: &mut HiddenDatabase, start_key: u64, count: u64) {
    for t in start_key..start_key + count {
        let h = mix(t);
        db.insert(Tuple::new(
            TupleKey(t),
            vec![
                ValueId((h % 2) as u32),
                ValueId(((h >> 8) % 3) as u32),
                ValueId(((h >> 16) % 2) as u32),
                ValueId(((h >> 32) % 4) as u32),
            ],
            vec![50.0],
        ))
        .unwrap();
    }
}

/// Deletes the `count` lowest-keyed alive tuples.
pub fn shrink(db: &mut HiddenDatabase, count: usize) {
    let keys = db.alive_keys_sorted();
    for k in keys.into_iter().take(count) {
        db.delete(k).unwrap();
    }
}
