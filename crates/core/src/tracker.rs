//! The stream query model of §5.1, generalised to aggregate *workloads*:
//! many pre-defined aggregates tracked from **one** shared pool of
//! drill-downs.
//!
//! The paper's future work asks: "given a workload of aggregate queries,
//! how to minimize the total query cost for estimating all of them". The
//! structural answer this module implements: a drill-down's terminal page
//! is a sample of tuples, so the *same* search queries can feed every
//! aggregate's Horvitz–Thompson sample simultaneously — the marginal cost
//! of one more tracked aggregate is zero queries.
//!
//! [`MultiTracker`] maintains a REISSUE-style pool (updates each round,
//! grows with leftover budget) and reports one [`EstimateWithVar`] per
//! registered aggregate per round.

use hidden_db::errors::IssueError;
use hidden_db::session::SearchBackend;
use query_tree::drill::{drill_from_root, resume_from, DrillOutcome, ReissuePolicy};
use query_tree::signature::Signature;
use query_tree::tree::QueryTree;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::aggregate::{ht_sample, AggregateSpec, HtSample};
use crate::estimator::SampleMoments;
use crate::report::{Degraded, EstimateWithVar};
use crate::transround::DegradationLog;

/// One remembered drill-down with per-aggregate samples.
#[derive(Debug, Clone)]
struct MultiRecord {
    sig: Signature,
    depth: usize,
    round: u32,
    /// `samples[i]` = HT sample for registered aggregate `i`.
    samples: Vec<HtSample>,
}

/// Per-round output for the whole workload.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Round index (1-based).
    pub round: u32,
    /// Queries spent this round.
    pub queries_spent: u64,
    /// Drill-downs updated this round.
    pub updated: usize,
    /// Fresh drill-downs initiated this round.
    pub initiated: usize,
    /// One `(count, sum)` estimate pair per registered aggregate, in
    /// registration order.
    pub estimates: Vec<(EstimateWithVar, EstimateWithVar)>,
    /// Present iff unrecoverable interface faults cost the tracker
    /// queries (see [`Degraded`]).
    pub degraded: Option<Degraded>,
}

impl WorkloadReport {
    /// The primary estimate of aggregate `i` (per its kind).
    pub fn primary(&self, i: usize, specs: &[AggregateSpec]) -> f64 {
        let (count, sum) = self.estimates[i];
        match specs[i].kind {
            crate::aggregate::AggKind::Count => count.value,
            crate::aggregate::AggKind::Sum => sum.value,
            crate::aggregate::AggKind::Avg => {
                if count.value > 0.0 {
                    sum.value / count.value
                } else {
                    f64::NAN
                }
            }
        }
    }
}

/// Tracks a workload of aggregates from one shared drill-down pool.
///
/// All aggregates must share one query tree (the full tree, unless every
/// aggregate shares a common conjunctive prefix — then a §3.3 subtree can
/// be used and each spec's residual condition is applied as a filter).
#[derive(Debug)]
pub struct MultiTracker {
    specs: Vec<AggregateSpec>,
    tree: QueryTree,
    policy: ReissuePolicy,
    rng: StdRng,
    pool: Vec<MultiRecord>,
    round: u32,
    degradation: DegradationLog,
}

impl MultiTracker {
    /// Creates a tracker for `specs` over `tree`.
    ///
    /// # Panics
    /// If `specs` is empty.
    pub fn new(specs: Vec<AggregateSpec>, tree: QueryTree, seed: u64) -> Self {
        assert!(!specs.is_empty(), "workload must contain at least one aggregate");
        Self {
            specs,
            tree,
            policy: ReissuePolicy::Strict,
            rng: StdRng::seed_from_u64(seed),
            pool: Vec::new(),
            round: 0,
            degradation: DegradationLog::new(),
        }
    }

    /// The registered aggregates.
    pub fn specs(&self) -> &[AggregateSpec] {
        &self.specs
    }

    /// Number of drill-downs currently remembered.
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    fn samples_of(&self, out: &DrillOutcome) -> Vec<HtSample> {
        self.specs.iter().map(|spec| ht_sample(spec, &self.tree, out)).collect()
    }

    /// Runs one round: update pass over the pool, then fresh drill-downs,
    /// then per-aggregate estimation — Algorithm 1 amortised over the
    /// whole workload.
    pub fn run_round(&mut self, backend: &mut dyn SearchBackend) -> WorkloadReport {
        self.round += 1;
        let j = self.round;
        self.degradation.begin_round();
        let mut order: Vec<usize> = (0..self.pool.len()).collect();
        order.shuffle(&mut self.rng);
        let mut updated = 0;
        for idx in order {
            if backend.remaining() == 0 {
                break;
            }
            let rec = &mut self.pool[idx];
            let result: Result<DrillOutcome, IssueError> =
                resume_from(&self.tree, &rec.sig, rec.depth, self.policy, backend);
            match result {
                Ok(out) => {
                    rec.depth = out.depth;
                    rec.round = j;
                    rec.samples =
                        self.specs.iter().map(|spec| ht_sample(spec, &self.tree, &out)).collect();
                    updated += 1;
                }
                // Interrupted (exhaustion or unrecovered fault): the record
                // keeps its previous depth and stays resumable next round.
                Err(e) => {
                    self.degradation.interrupted(backend.remaining(), !e.is_budget());
                    break;
                }
            }
        }
        let mut initiated = 0;
        while backend.remaining() > 0 {
            let sig = Signature::sample(&self.tree, &mut self.rng);
            match drill_from_root(&self.tree, &sig, backend) {
                Ok(out) => {
                    let samples = self.samples_of(&out);
                    self.pool.push(MultiRecord { sig, depth: out.depth, round: j, samples });
                    initiated += 1;
                }
                Err(e) => {
                    self.degradation.interrupted(backend.remaining(), !e.is_budget());
                    break;
                }
            }
        }
        // Estimation: per aggregate, the mean over records current at j.
        let mut moments: Vec<SampleMoments> =
            (0..self.specs.len()).map(|_| SampleMoments::default()).collect();
        for rec in &self.pool {
            if rec.round == j {
                for (m, &s) in moments.iter_mut().zip(&rec.samples) {
                    m.push(s);
                }
            }
        }
        WorkloadReport {
            round: j,
            queries_spent: backend.spent(),
            updated,
            initiated,
            estimates: moments.iter().map(|m| (m.count_estimate(), m.sum_estimate())).collect(),
            degraded: self.degradation.tag(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateSpec;
    use crate::testutil::hashed_db;
    use hidden_db::query::{ConjunctiveQuery, Predicate};
    use hidden_db::session::SearchSession;
    use hidden_db::value::{AttrId, MeasureId, ValueId};

    fn workload() -> Vec<AggregateSpec> {
        vec![
            AggregateSpec::count_star(),
            AggregateSpec::count_where(ConjunctiveQuery::from_predicates([Predicate::new(
                AttrId(0),
                ValueId(0),
            )])),
            AggregateSpec::sum_measure(MeasureId(0), ConjunctiveQuery::select_all()),
            AggregateSpec::avg_measure(MeasureId(0), ConjunctiveQuery::select_all()),
        ]
    }

    #[test]
    fn tracks_whole_workload_from_shared_queries() {
        let mut db = hashed_db(150, 16, 0);
        let tree = QueryTree::full(&db.schema().clone());
        let specs = workload();
        let cond = specs[1].condition.clone();
        let mut tracker = MultiTracker::new(specs.clone(), tree, 7);
        let mut last = None;
        for _ in 0..3 {
            let mut s = SearchSession::new(&mut db, 250);
            last = Some(tracker.run_round(&mut s));
        }
        let report = last.unwrap();
        assert_eq!(report.estimates.len(), 4);
        // Every aggregate lands in a sane band around its truth.
        let truth_all = db.exact_count(None) as f64;
        let truth_cond = db.exact_count(Some(&cond)) as f64;
        let truth_sum = db.exact_sum(None, |t| t.measure(MeasureId(0)));
        let p0 = report.primary(0, &specs);
        let p1 = report.primary(1, &specs);
        let p2 = report.primary(2, &specs);
        let p3 = report.primary(3, &specs);
        assert!((p0 - truth_all).abs() / truth_all < 0.4, "count {p0} vs {truth_all}");
        assert!((p1 - truth_cond).abs() / truth_cond < 0.6, "cond count {p1} vs {truth_cond}");
        assert!((p2 - truth_sum).abs() / truth_sum < 0.4, "sum {p2} vs {truth_sum}");
        let truth_avg = truth_sum / truth_all;
        assert!((p3 - truth_avg).abs() / truth_avg < 0.4, "avg {p3} vs {truth_avg}");
    }

    #[test]
    fn marginal_aggregate_costs_no_queries() {
        // Same seed and budget: tracking 1 aggregate vs 4 must issue the
        // same number of queries and the shared aggregate must get the
        // identical estimate (drill-downs are identical).
        let mut db1 = hashed_db(120, 16, 1);
        let mut db4 = db1.clone();
        let tree = QueryTree::full(&db1.schema().clone());
        let mut t1 = MultiTracker::new(vec![AggregateSpec::count_star()], tree.clone(), 9);
        let mut t4 = MultiTracker::new(workload(), tree, 9);
        let (r1, r4) = {
            let mut s1 = SearchSession::new(&mut db1, 200);
            let r1 = t1.run_round(&mut s1);
            let mut s4 = SearchSession::new(&mut db4, 200);
            let r4 = t4.run_round(&mut s4);
            (r1, r4)
        };
        assert_eq!(r1.queries_spent, r4.queries_spent);
        assert_eq!(r1.initiated, r4.initiated);
        assert_eq!(r1.estimates[0].0.value, r4.estimates[0].0.value);
    }

    #[test]
    fn pool_is_reused_across_rounds() {
        let mut db = hashed_db(100, 16, 2);
        let tree = QueryTree::full(&db.schema().clone());
        let mut tracker = MultiTracker::new(workload(), tree, 3);
        {
            let mut s = SearchSession::new(&mut db, 150);
            let r = tracker.run_round(&mut s);
            assert_eq!(r.updated, 0);
            assert!(r.initiated > 0);
        }
        let pool = tracker.pool_size();
        let mut s = SearchSession::new(&mut db, 150);
        let r = tracker.run_round(&mut s);
        assert!(r.updated > 0);
        assert!(tracker.pool_size() >= pool);
    }

    #[test]
    #[should_panic(expected = "at least one aggregate")]
    fn empty_workload_rejected() {
        let db = hashed_db(10, 16, 3);
        let tree = QueryTree::full(&db.schema().clone());
        let _ = MultiTracker::new(vec![], tree, 0);
    }
}
