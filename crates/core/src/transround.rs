//! Trans-round aggregate helpers (§2.2): aggregates over data from several
//! rounds, computed on top of per-round estimator reports.
//!
//! Two families are covered:
//!
//! * window aggregates over per-round values (Fig 14's running average of
//!   COUNT) — [`RunningAverage`];
//! * round-over-round changes (Figs 15–17's `|D_i| − |D_{i−1}|`) — these
//!   come directly from [`crate::report::RoundReport::change_count`], which
//!   each estimator populates natively (REISSUE/RS via paired differences,
//!   RESTART by differencing independent estimates).

use std::collections::VecDeque;

/// Tracks `AVG(v_i, v_{i−1}, …, v_{i−w+1})` over a stream of per-round
/// values (estimates or ground truths alike).
#[derive(Debug, Clone)]
pub struct RunningAverage {
    window: usize,
    values: VecDeque<f64>,
}

impl RunningAverage {
    /// A running average over the last `window` rounds (`window ≥ 1`).
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "window must be at least 1");
        Self { window, values: VecDeque::with_capacity(window + 1) }
    }

    /// Push this round's value; returns the average over the last
    /// `min(window, rounds so far)` values.
    pub fn push(&mut self, value: f64) -> f64 {
        self.values.push_back(value);
        if self.values.len() > self.window {
            self.values.pop_front();
        }
        self.current().expect("just pushed")
    }

    /// The current running average, if any value has been pushed.
    pub fn current(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Whether the window is fully populated.
    pub fn is_saturated(&self) -> bool {
        self.values.len() == self.window
    }
}

/// Accumulates a round-over-round change series into a cumulative drift
/// (useful for sanity-checking change estimates against level estimates).
#[derive(Debug, Clone, Default)]
pub struct ChangeAccumulator {
    total: f64,
    rounds: u32,
}

impl ChangeAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one round's change estimate; returns the cumulative total.
    pub fn push(&mut self, change: f64) -> f64 {
        self.total += change;
        self.rounds += 1;
        self.total
    }

    /// Total drift accumulated.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of change estimates accumulated.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_average_window() {
        let mut ra = RunningAverage::new(3);
        assert_eq!(ra.current(), None);
        assert_eq!(ra.push(3.0), 3.0);
        assert!(!ra.is_saturated());
        assert_eq!(ra.push(5.0), 4.0);
        assert_eq!(ra.push(7.0), 5.0);
        assert!(ra.is_saturated());
        // Window slides: (5+7+9)/3.
        assert_eq!(ra.push(9.0), 7.0);
    }

    #[test]
    fn window_of_one_is_identity() {
        let mut ra = RunningAverage::new(1);
        assert_eq!(ra.push(4.0), 4.0);
        assert_eq!(ra.push(8.0), 8.0);
    }

    #[test]
    #[should_panic(expected = "window must be at least 1")]
    fn zero_window_panics() {
        let _ = RunningAverage::new(0);
    }

    #[test]
    fn change_accumulator_sums() {
        let mut acc = ChangeAccumulator::new();
        assert_eq!(acc.push(5.0), 5.0);
        assert_eq!(acc.push(-2.0), 3.0);
        assert_eq!(acc.total(), 3.0);
        assert_eq!(acc.rounds(), 2);
    }
}
