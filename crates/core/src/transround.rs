//! Trans-round aggregate helpers (§2.2): aggregates over data from several
//! rounds, computed on top of per-round estimator reports.
//!
//! Two families are covered:
//!
//! * window aggregates over per-round values (Fig 14's running average of
//!   COUNT) — [`RunningAverage`];
//! * round-over-round changes (Figs 15–17's `|D_i| − |D_{i−1}|`) — these
//!   come directly from [`crate::report::RoundReport::change_count`], which
//!   each estimator populates natively (REISSUE/RS via paired differences,
//!   RESTART by differencing independent estimates).
//!
//! Trans-round series are what makes graceful degradation (PR 6) matter:
//! one round dying mid-drill must not poison the series, so every
//! estimator routes interruptions through a [`DegradationLog`] — the
//! round still reports (partial but honest) estimates, tagged
//! [`Degraded`] when the cause was an unrecovered fault rather than
//! ordinary budget exhaustion.

use std::collections::VecDeque;

use crate::report::Degraded;

/// Shared interruption bookkeeping for all estimators: distinguishes
/// ordinary budget exhaustion (the normal §2.1 regime, untagged) from
/// unrecoverable interface faults (tagged [`Degraded`] in the round
/// report), cumulatively over the estimator's lifetime.
#[derive(Debug, Clone, Copy, Default)]
pub struct DegradationLog {
    queries_lost: u64,
    rounds_affected: u32,
    fault_this_round: bool,
}

impl DegradationLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the start of a round.
    pub fn begin_round(&mut self) {
        self.fault_this_round = false;
    }

    /// Records an interrupted drill-down. `queries_lost` is the budget
    /// the interruption left unusable this round; `is_fault` is whether
    /// the cause was an unrecovered interface fault (as opposed to
    /// budget exhaustion, which is not degradation).
    pub fn interrupted(&mut self, queries_lost: u64, is_fault: bool) {
        if is_fault {
            if !self.fault_this_round {
                self.fault_this_round = true;
                self.rounds_affected += 1;
            }
            self.queries_lost = self.queries_lost.saturating_add(queries_lost);
        }
    }

    /// The report tag: `Some` iff any fault interruption ever occurred.
    pub fn tag(&self) -> Option<Degraded> {
        (self.rounds_affected > 0).then_some(Degraded {
            queries_lost: self.queries_lost,
            rounds_affected: self.rounds_affected,
        })
    }
}

/// Tracks `AVG(v_i, v_{i−1}, …, v_{i−w+1})` over a stream of per-round
/// values (estimates or ground truths alike).
#[derive(Debug, Clone)]
pub struct RunningAverage {
    window: usize,
    values: VecDeque<f64>,
}

impl RunningAverage {
    /// A running average over the last `window` rounds (`window ≥ 1`).
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "window must be at least 1");
        Self { window, values: VecDeque::with_capacity(window + 1) }
    }

    /// Push this round's value; returns the average over the last
    /// `min(window, rounds so far)` values.
    pub fn push(&mut self, value: f64) -> f64 {
        self.values.push_back(value);
        if self.values.len() > self.window {
            self.values.pop_front();
        }
        self.current().expect("just pushed")
    }

    /// The current running average, if any value has been pushed.
    pub fn current(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Whether the window is fully populated.
    pub fn is_saturated(&self) -> bool {
        self.values.len() == self.window
    }
}

/// Accumulates a round-over-round change series into a cumulative drift
/// (useful for sanity-checking change estimates against level estimates).
#[derive(Debug, Clone, Default)]
pub struct ChangeAccumulator {
    total: f64,
    rounds: u32,
}

impl ChangeAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one round's change estimate; returns the cumulative total.
    pub fn push(&mut self, change: f64) -> f64 {
        self.total += change;
        self.rounds += 1;
        self.total
    }

    /// Total drift accumulated.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of change estimates accumulated.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_average_window() {
        let mut ra = RunningAverage::new(3);
        assert_eq!(ra.current(), None);
        assert_eq!(ra.push(3.0), 3.0);
        assert!(!ra.is_saturated());
        assert_eq!(ra.push(5.0), 4.0);
        assert_eq!(ra.push(7.0), 5.0);
        assert!(ra.is_saturated());
        // Window slides: (5+7+9)/3.
        assert_eq!(ra.push(9.0), 7.0);
    }

    #[test]
    fn window_of_one_is_identity() {
        let mut ra = RunningAverage::new(1);
        assert_eq!(ra.push(4.0), 4.0);
        assert_eq!(ra.push(8.0), 8.0);
    }

    #[test]
    #[should_panic(expected = "window must be at least 1")]
    fn zero_window_panics() {
        let _ = RunningAverage::new(0);
    }

    #[test]
    fn change_accumulator_sums() {
        let mut acc = ChangeAccumulator::new();
        assert_eq!(acc.push(5.0), 5.0);
        assert_eq!(acc.push(-2.0), 3.0);
        assert_eq!(acc.total(), 3.0);
        assert_eq!(acc.rounds(), 2);
    }

    #[test]
    fn degradation_log_ignores_budget_but_tags_faults() {
        let mut log = DegradationLog::new();
        log.begin_round();
        log.interrupted(5, false); // plain exhaustion: not degradation
        assert_eq!(log.tag(), None);
        log.begin_round();
        log.interrupted(3, true);
        log.interrupted(2, true); // same round: counted once
        let tag = log.tag().unwrap();
        assert_eq!(tag.queries_lost, 5);
        assert_eq!(tag.rounds_affected, 1);
        log.begin_round();
        log.interrupted(1, true);
        let tag = log.tag().unwrap();
        assert_eq!(tag.queries_lost, 6);
        assert_eq!(tag.rounds_affected, 2);
        // The tag is sticky: a clean round still reports the history.
        log.begin_round();
        assert!(log.tag().is_some());
    }
}
