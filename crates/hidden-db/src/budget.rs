//! Per-round query budget accounting (§2.1: the database-imposed limit `G`).

use crate::errors::BudgetExhausted;

/// Tracks queries spent against a per-round limit `G`.
///
/// Budgets are deliberately cheap to copy so a session can snapshot them
/// for cost accounting (`spent_since`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryBudget {
    limit: u64,
    spent: u64,
}

impl QueryBudget {
    /// A budget of `limit` queries.
    pub fn new(limit: u64) -> Self {
        Self { limit, spent: 0 }
    }

    /// An effectively unlimited budget (used by ground-truth tooling and
    /// tests; real experiments always set a finite `G`).
    pub fn unlimited() -> Self {
        Self::new(u64::MAX)
    }

    /// The limit `G`.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Queries spent so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Queries spent since `earlier` was snapshotted (budgets are `Copy`,
    /// so `let before = budget; …; budget.spent_since(&before)` is the
    /// whole protocol). Used by the retry layer to report how many
    /// queries a recovery burned. Saturates at zero if `earlier` is not
    /// actually an earlier snapshot of this budget.
    pub fn spent_since(&self, earlier: &QueryBudget) -> u64 {
        self.spent.saturating_sub(earlier.spent)
    }

    /// Queries still available.
    pub fn remaining(&self) -> u64 {
        self.limit - self.spent
    }

    /// Whether at least `n` queries remain.
    pub fn can_afford(&self, n: u64) -> bool {
        self.remaining() >= n
    }

    /// Consumes one query, erroring if the budget is exhausted.
    pub fn charge(&mut self) -> Result<(), BudgetExhausted> {
        if self.spent >= self.limit {
            return Err(BudgetExhausted { limit: self.limit });
        }
        self.spent += 1;
        Ok(())
    }

    /// Resets the spent counter (a new round began).
    pub fn reset(&mut self) {
        self.spent = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_until_exhausted() {
        let mut b = QueryBudget::new(2);
        assert_eq!(b.remaining(), 2);
        b.charge().unwrap();
        b.charge().unwrap();
        assert_eq!(b.remaining(), 0);
        assert_eq!(b.charge(), Err(BudgetExhausted { limit: 2 }));
        assert_eq!(b.spent(), 2, "failed charge must not count");
    }

    #[test]
    fn reset_restores_full_budget() {
        let mut b = QueryBudget::new(1);
        b.charge().unwrap();
        assert!(b.charge().is_err());
        b.reset();
        assert!(b.charge().is_ok());
    }

    #[test]
    fn affordability() {
        let mut b = QueryBudget::new(3);
        assert!(b.can_afford(3));
        assert!(!b.can_afford(4));
        b.charge().unwrap();
        assert!(b.can_afford(2));
        assert!(!b.can_afford(3));
    }

    #[test]
    fn zero_budget_rejects_immediately() {
        let mut b = QueryBudget::new(0);
        assert!(b.charge().is_err());
    }

    #[test]
    fn spent_since_diffs_snapshots() {
        let mut b = QueryBudget::new(10);
        b.charge().unwrap();
        let snapshot = b;
        assert_eq!(b.spent_since(&snapshot), 0);
        b.charge().unwrap();
        b.charge().unwrap();
        assert_eq!(b.spent_since(&snapshot), 2);
        // A later snapshot against an earlier state saturates to zero.
        assert_eq!(snapshot.spent_since(&b), 0);
    }
}
