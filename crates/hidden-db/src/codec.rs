//! Snapshot serialisation: save/load a whole database to a compact,
//! self-describing binary format.
//!
//! Generating the larger synthetic populations (Fig 12 runs up to 10⁷
//! tuples) dominates some harness runtimes; snapshots let experiments
//! cache them — and, since format v2, they are the durability unit of
//! the persistence tier ([`crate::persist`]): the journal's checkpoint
//! records are v2 snapshots.
//!
//! **Format v2** captures the *warm* state verbatim, not just the
//! logical tuple set: segment data in slot layout (so slot identity
//! survives a restart), per-segment/per-block max-score bounds and
//! staleness counters (so load skips the full bound recompute), the
//! free list in order (so future slot reuse replays identically), and
//! every posting list byte-for-byte (tombstones, sort flags, segment
//! runs, block-max directories). A restored database doesn't just
//! answer identically — it *evolves* identically under any further
//! mutation stream.
//!
//! Layout (all integers little-endian):
//! `magic "HDBS" | format u32 | k u64 | policy | schema | store | free
//! list | posting lists` — see [`write_snapshot`] for the field-level
//! walk. **v1 snapshots still load** (tuple-level format, scores and
//! bounds recomputed on insert); reading rejects bad magic, unknown
//! versions, truncation, and implausible counts with
//! [`io::ErrorKind::InvalidData`] instead of panicking.

use std::io::{self, Read, Write};

use crate::database::HiddenDatabase;
use crate::index::{InvertedIndex, PostingList};
use crate::ranking::ScoringPolicy;
use crate::schema::{AttributeDef, MeasureDef, Schema};
use crate::store::{SegmentData, SegmentMeta, Store, BLOCKS_PER_SEGMENT, SEGMENT_SLOTS};
use crate::tuple::Tuple;
use crate::value::{MeasureId, TupleKey, ValueId};

const MAGIC: &[u8; 4] = b"HDBS";
const FORMAT_VERSION: u32 = 2;

/// Posting lists longer than this are rejected as corrupt (a real list
/// is bounded by total inserts; this caps hostile allocation).
const MAX_LIST_LEN: usize = 1 << 28;

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    write_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn read_str(r: &mut impl Read) -> io::Result<String> {
    let len = read_u32(r)? as usize;
    if len > 1 << 20 {
        return Err(bad("string length implausible"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| bad("invalid utf-8 in snapshot"))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn write_policy(w: &mut impl Write, p: ScoringPolicy) -> io::Result<()> {
    match p {
        ScoringPolicy::HashedRandom { salt } => {
            write_u32(w, 0)?;
            write_u64(w, salt)
        }
        ScoringPolicy::ByMeasureDesc(m) => {
            write_u32(w, 1)?;
            write_u32(w, u32::from(m.0))
        }
        ScoringPolicy::ByMeasureAsc(m) => {
            write_u32(w, 2)?;
            write_u32(w, u32::from(m.0))
        }
        ScoringPolicy::NewestFirst => write_u32(w, 3),
    }
}

fn read_policy(r: &mut impl Read) -> io::Result<ScoringPolicy> {
    Ok(match read_u32(r)? {
        0 => ScoringPolicy::HashedRandom { salt: read_u64(r)? },
        1 => ScoringPolicy::ByMeasureDesc(MeasureId(read_u32(r)? as u16)),
        2 => ScoringPolicy::ByMeasureAsc(MeasureId(read_u32(r)? as u16)),
        3 => ScoringPolicy::NewestFirst,
        _ => return Err(bad("unknown scoring policy tag")),
    })
}

fn write_schema(w: &mut impl Write, schema: &Schema) -> io::Result<()> {
    write_u32(w, schema.attr_count() as u32)?;
    for a in schema.attr_ids() {
        let def = schema.attribute(a);
        write_str(w, def.name())?;
        write_u32(w, def.domain_size())?;
    }
    write_u32(w, schema.measure_count() as u32)?;
    for m in 0..schema.measure_count() {
        write_str(w, schema.measure(MeasureId(m as u16)).name())?;
    }
    Ok(())
}

fn read_schema(r: &mut impl Read) -> io::Result<Schema> {
    let attr_count = read_u32(r)? as usize;
    if attr_count > u16::MAX as usize {
        return Err(bad("attribute count implausible"));
    }
    let mut attrs = Vec::with_capacity(attr_count);
    for _ in 0..attr_count {
        let name = read_str(r)?;
        let domain = read_u32(r)?;
        attrs.push(AttributeDef::new(name, domain));
    }
    let measure_count = read_u32(r)? as usize;
    if measure_count > u16::MAX as usize {
        return Err(bad("measure count implausible"));
    }
    let mut measures = Vec::with_capacity(measure_count);
    for _ in 0..measure_count {
        measures.push(MeasureDef::new(read_str(r)?));
    }
    Schema::new(attrs, measures).map_err(|e| bad(&e.to_string()))
}

/// Serialises a full database snapshot into `w` (format v2).
///
/// After the common `magic | format | k | policy | schema` prefix:
/// `alive u64 | allocated u64 | segment count u32`, then per segment
/// `rows u32 | keys | scores | alive bitmap (u64 words) | columns |
/// measures | meta (alive u32, max_score u64, stale_ops u32, block_max)`,
/// then the free list (`count u32 | slots`), then every non-empty
/// posting list (`attr u32 | value u32 | slots | dead u64 | sorted u8 |
/// runs | blocks`).
///
/// `&HiddenDatabase` on purpose: segment data is read through the paged
/// view (an out-of-core database checkpoints without pulling its pool
/// into RAM) and index lists are serialised verbatim, dirty or not.
pub fn write_snapshot(db: &HiddenDatabase, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(w, FORMAT_VERSION)?;
    write_u64(w, db.k() as u64)?;
    write_policy(w, db.scoring_policy())?;
    write_schema(w, db.schema())?;
    // Store: segment data in slot layout, plus the summaries.
    let store = db.store_ref();
    write_u64(w, store.len() as u64)?;
    write_u64(w, u64::from(store.slot_bound()))?;
    let seg_count = store.segment_count();
    write_u32(w, seg_count as u32)?;
    for seg in 0..seg_count {
        let data = store.seg_view(seg);
        let rows = data.keys.len();
        write_u32(w, rows as u32)?;
        for &k in &data.keys {
            write_u64(w, k)?;
        }
        for &s in &data.scores {
            write_u64(w, s)?;
        }
        let mut bits = vec![0u64; rows.div_ceil(64)];
        for (i, &a) in data.alive.iter().enumerate() {
            if a {
                bits[i / 64] |= 1 << (i % 64);
            }
        }
        for word in bits {
            write_u64(w, word)?;
        }
        for col in &data.columns {
            for &v in col {
                write_u32(w, v)?;
            }
        }
        for col in &data.measures {
            for &m in col {
                write_f64(w, m)?;
            }
        }
        let meta = &store.metas()[seg];
        write_u32(w, meta.alive)?;
        write_u64(w, meta.max_score)?;
        write_u32(w, meta.stale_ops)?;
        for &b in &meta.block_max {
            write_u64(w, b)?;
        }
    }
    // Free list, order preserved: slot reuse after restore pops the
    // same slots in the same order.
    let free = store.free_slots();
    write_u32(w, free.len() as u32)?;
    for &s in free {
        write_u32(w, s)?;
    }
    // Posting lists, verbatim.
    let lists: Vec<_> = db.index_ref().lists_for_snapshot().collect();
    write_u32(w, lists.len() as u32)?;
    for (a, v, list) in lists {
        write_u32(w, a as u32)?;
        write_u32(w, v as u32)?;
        write_u32(w, list.slots.len() as u32)?;
        for &s in &list.slots {
            write_u32(w, s)?;
        }
        write_u64(w, list.dead as u64)?;
        w.write_all(&[u8::from(list.sorted)])?;
        write_u32(w, list.runs.len() as u32)?;
        for &(seg, off) in &list.runs {
            write_u32(w, seg)?;
            write_u32(w, off)?;
        }
        write_u32(w, list.blocks.len() as u32)?;
        for &(blk, bound) in &list.blocks {
            write_u32(w, blk)?;
            write_u64(w, bound)?;
        }
    }
    Ok(())
}

/// Deserialises a snapshot produced by [`write_snapshot`] — or by the
/// v1 writer of earlier releases (tuple-level back-compat path).
pub fn read_snapshot(r: &mut impl Read) -> io::Result<HiddenDatabase> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a hidden-db snapshot (bad magic)"));
    }
    match read_u32(r)? {
        1 => read_snapshot_v1(r),
        2 => read_snapshot_v2(r),
        _ => Err(bad("unsupported snapshot format version")),
    }
}

/// v1 body: logical tuples only; scores, bounds, and the index rebuild
/// through the ordinary insert path.
fn read_snapshot_v1(r: &mut impl Read) -> io::Result<HiddenDatabase> {
    let k = read_u64(r)? as usize;
    let policy = read_policy(r)?;
    let schema = read_schema(r)?;
    let (attr_count, measure_count) = (schema.attr_count(), schema.measure_count());
    let mut db = HiddenDatabase::new(schema, k, policy);
    let n = read_u64(r)?;
    for _ in 0..n {
        let key = TupleKey(read_u64(r)?);
        let values: Vec<ValueId> =
            (0..attr_count).map(|_| read_u32(r).map(ValueId)).collect::<io::Result<_>>()?;
        let ms: Vec<f64> = (0..measure_count).map(|_| read_f64(r)).collect::<io::Result<_>>()?;
        db.insert(Tuple::new(key, values, ms)).map_err(|e| bad(&e.to_string()))?;
    }
    Ok(db)
}

/// v2 body: warm state verbatim. Every count is validated against the
/// allocation geometry before use, so corrupt or hostile input errors
/// out instead of panicking or over-allocating.
fn read_snapshot_v2(r: &mut impl Read) -> io::Result<HiddenDatabase> {
    let k = read_u64(r)? as usize;
    let policy = read_policy(r)?;
    let schema = read_schema(r)?;
    let (attr_count, measure_count) = (schema.attr_count(), schema.measure_count());
    let alive_total = read_u64(r)?;
    let allocated = read_u64(r)?;
    if allocated > u64::from(u32::MAX) {
        return Err(bad("allocated slot count implausible"));
    }
    let allocated = allocated as usize;
    if alive_total as usize > allocated {
        return Err(bad("alive count exceeds allocation"));
    }
    let seg_count = read_u32(r)? as usize;
    if seg_count != allocated.div_ceil(SEGMENT_SLOTS) {
        return Err(bad("segment count does not match allocation"));
    }
    let mut segs = Vec::with_capacity(seg_count);
    let mut metas = Vec::with_capacity(seg_count);
    let mut alive_sum = 0u64;
    for seg in 0..seg_count {
        let expected_rows = (allocated - seg * SEGMENT_SLOTS).min(SEGMENT_SLOTS);
        let rows = read_u32(r)? as usize;
        if rows != expected_rows {
            return Err(bad("segment row count does not match allocation"));
        }
        let mut data = SegmentData::empty(attr_count, measure_count);
        data.keys = (0..rows).map(|_| read_u64(r)).collect::<io::Result<_>>()?;
        data.scores = (0..rows).map(|_| read_u64(r)).collect::<io::Result<_>>()?;
        let mut alive = Vec::with_capacity(rows);
        for _ in 0..rows.div_ceil(64) {
            let word = read_u64(r)?;
            for b in 0..64 {
                if alive.len() < rows {
                    alive.push(word & (1 << b) != 0);
                }
            }
        }
        data.alive = alive;
        for col in &mut data.columns {
            *col = (0..rows).map(|_| read_u32(r)).collect::<io::Result<_>>()?;
        }
        for col in &mut data.measures {
            *col = (0..rows).map(|_| read_f64(r)).collect::<io::Result<_>>()?;
        }
        let meta_alive = read_u32(r)?;
        let max_score = read_u64(r)?;
        let stale_ops = read_u32(r)?;
        let mut block_max = [0u64; BLOCKS_PER_SEGMENT];
        for b in &mut block_max {
            *b = read_u64(r)?;
        }
        if meta_alive as usize != data.alive.iter().filter(|&&a| a).count() {
            return Err(bad("segment alive count does not match bitmap"));
        }
        alive_sum += u64::from(meta_alive);
        metas.push(SegmentMeta {
            alive: meta_alive,
            max_score,
            stale_ops,
            block_max,
            ref_bit: false,
        });
        segs.push(data);
    }
    if alive_sum != alive_total {
        return Err(bad("alive total does not match segments"));
    }
    let free_len = read_u32(r)? as usize;
    // Every allocated slot is either alive or on the free list.
    if alive_total as usize + free_len != allocated {
        return Err(bad("free list does not account for dead slots"));
    }
    let mut free = Vec::with_capacity(free_len);
    for _ in 0..free_len {
        let s = read_u32(r)?;
        if s as usize >= allocated {
            return Err(bad("free slot out of range"));
        }
        free.push(s);
    }
    let store = Store::from_restored(
        attr_count,
        measure_count,
        segs,
        metas,
        allocated,
        alive_total as usize,
        free,
    )
    .ok_or_else(|| bad("duplicate alive key in snapshot"))?;
    // Posting lists.
    let domains: Vec<usize> = schema.attr_ids().map(|a| schema.domain_size(a) as usize).collect();
    let list_count = read_u32(r)? as usize;
    if list_count > domains.iter().sum::<usize>() {
        return Err(bad("posting list count implausible"));
    }
    let mut lists = Vec::with_capacity(list_count);
    for _ in 0..list_count {
        let a = read_u32(r)? as usize;
        let v = read_u32(r)? as usize;
        if a >= attr_count || v >= domains[a] {
            return Err(bad("posting list out of schema range"));
        }
        let slot_count = read_u32(r)? as usize;
        if slot_count > MAX_LIST_LEN {
            return Err(bad("posting list length implausible"));
        }
        let mut slots = Vec::with_capacity(slot_count.min(1 << 16));
        for _ in 0..slot_count {
            let s = read_u32(r)?;
            if s as usize >= allocated {
                return Err(bad("posting out of slot range"));
            }
            slots.push(s);
        }
        let dead = read_u64(r)? as usize;
        if dead > slot_count {
            return Err(bad("tombstone count exceeds list length"));
        }
        let mut sorted_byte = [0u8; 1];
        r.read_exact(&mut sorted_byte)?;
        let sorted = match sorted_byte[0] {
            0 => false,
            1 => true,
            _ => return Err(bad("invalid sorted flag")),
        };
        let run_count = read_u32(r)? as usize;
        if run_count > seg_count {
            return Err(bad("run directory larger than the store"));
        }
        let mut runs = Vec::with_capacity(run_count);
        for _ in 0..run_count {
            let seg = read_u32(r)?;
            let off = read_u32(r)?;
            if seg as usize >= seg_count || off as usize > slot_count {
                return Err(bad("run entry out of range"));
            }
            runs.push((seg, off));
        }
        let block_count = read_u32(r)? as usize;
        if block_count > seg_count * BLOCKS_PER_SEGMENT {
            return Err(bad("block directory larger than the store"));
        }
        let mut blocks = Vec::with_capacity(block_count);
        for _ in 0..block_count {
            let blk = read_u32(r)?;
            let bound = read_u64(r)?;
            if blk as usize >= seg_count * BLOCKS_PER_SEGMENT {
                return Err(bad("block entry out of range"));
            }
            blocks.push((blk, bound));
        }
        lists.push((a, v, PostingList { slots, dead, sorted, runs, blocks }));
    }
    let index = InvertedIndex::from_restored(&schema, lists);
    Ok(HiddenDatabase::from_restored(schema, k, policy, store, index))
}

/// The v1 writer, kept so the back-compat read path stays covered by
/// tests against real v1 bytes (not hand-forged ones).
#[cfg(test)]
fn write_snapshot_v1(db: &HiddenDatabase, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(w, 1)?;
    write_u64(w, db.k() as u64)?;
    write_policy(w, db.scoring_policy())?;
    write_schema(w, db.schema())?;
    let schema = db.schema();
    let keys = db.alive_keys_sorted();
    write_u64(w, keys.len() as u64)?;
    for key in keys {
        let t = db.get(key).expect("alive key");
        write_u64(w, key.0)?;
        for a in schema.attr_ids() {
            write_u32(w, t.value(a).0)?;
        }
        for m in 0..schema.measure_count() {
            write_f64(w, t.measure(MeasureId(m as u16)))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{ConjunctiveQuery, Predicate};
    use crate::updates::UpdateBatch;
    use crate::value::AttrId;
    use rand::{Rng, SeedableRng};

    fn sample_db(n: u64) -> HiddenDatabase {
        let schema = Schema::with_domain_sizes(&[3, 4], &["price", "qty"]).unwrap();
        let mut db = HiddenDatabase::new(schema, 7, ScoringPolicy::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for t in 0..n {
            db.insert(Tuple::new(
                TupleKey(t * 3), // non-contiguous keys
                vec![ValueId(rng.random_range(0..3)), ValueId(rng.random_range(0..4))],
                vec![rng.random_range(0..500) as f64, rng.random_range(0..9) as f64],
            ))
            .unwrap();
        }
        db
    }

    /// A database with real churn: deletes, slot reuse, measure updates
    /// — so the snapshot has a non-empty free list, tombstoned lists,
    /// and stale bounds to preserve.
    fn churned_db() -> HiddenDatabase {
        let mut db = sample_db(200);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for t in 0..60u64 {
            db.delete(TupleKey(t * 9)).unwrap();
        }
        for t in 0..30u64 {
            db.insert(Tuple::new(
                TupleKey(10_000 + t),
                vec![ValueId(rng.random_range(0..3)), ValueId(rng.random_range(0..4))],
                vec![rng.random_range(0..500) as f64, 1.0],
            ))
            .unwrap();
        }
        db
    }

    fn queries() -> Vec<ConjunctiveQuery> {
        vec![
            ConjunctiveQuery::select_all(),
            ConjunctiveQuery::from_predicates([Predicate::new(AttrId(0), ValueId(1))]),
            ConjunctiveQuery::from_predicates([
                Predicate::new(AttrId(0), ValueId(2)),
                Predicate::new(AttrId(1), ValueId(3)),
            ]),
        ]
    }

    #[test]
    fn roundtrip_preserves_everything_observable() {
        let mut original = sample_db(200);
        let mut buf = Vec::new();
        write_snapshot(&original, &mut buf).unwrap();
        let mut restored = read_snapshot(&mut buf.as_slice()).unwrap();

        assert_eq!(restored.len(), original.len());
        assert_eq!(restored.k(), original.k());
        assert_eq!(restored.alive_keys_sorted(), original.alive_keys_sorted());
        assert_eq!(restored.schema().attr_count(), original.schema().attr_count());
        // Interface answers (incl. hidden ranking) must be identical.
        for q in queries() {
            assert_eq!(original.answer(&q), restored.answer(&q), "query {q}");
        }
        // Ground truth agrees too.
        let sum_orig = original.exact_sum(None, |t| t.measure(MeasureId(0)));
        let sum_rest = restored.exact_sum(None, |t| t.measure(MeasureId(0)));
        assert_eq!(sum_orig, sum_rest);
    }

    /// The v2 warm-state promise: a restored churned database doesn't
    /// just answer like the original — it *evolves* identically, because
    /// slot layout, the free list (in order), and every posting list
    /// survived verbatim.
    #[test]
    fn roundtrip_preserves_future_evolution() {
        let mut original = churned_db();
        let mut buf = Vec::new();
        write_snapshot(&original, &mut buf).unwrap();
        let mut restored = read_snapshot(&mut buf.as_slice()).unwrap();

        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let mut batch = UpdateBatch::empty();
        for t in 0..40u64 {
            batch = batch.insert(Tuple::new(
                TupleKey(50_000 + t),
                vec![ValueId(rng.random_range(0..3)), ValueId(rng.random_range(0..4))],
                vec![rng.random_range(0..500) as f64, 2.0],
            ));
        }
        for key in original.alive_keys_sorted().into_iter().step_by(7).take(25) {
            batch = batch.delete(key);
        }
        assert_eq!(original.apply(batch.clone()), restored.apply(batch));
        for q in queries() {
            assert_eq!(original.answer(&q), restored.answer(&q), "post-mutation query {q}");
        }
        // Identical slot assignment is the strongest evolution witness.
        for key in original.alive_keys_sorted() {
            assert_eq!(
                original.store_ref().slot_of(key),
                restored.store_ref().slot_of(key),
                "key {key:?} landed on a different slot after restore"
            );
        }
    }

    /// v2 snapshots restore bounds and directories without recomputing:
    /// staleness counters (which only churn can create) survive.
    #[test]
    fn roundtrip_preserves_warm_bounds() {
        let original = churned_db();
        assert!(original.stale_segment_count() > 0, "churn must leave stale bounds");
        let mut buf = Vec::new();
        write_snapshot(&original, &mut buf).unwrap();
        let restored = read_snapshot(&mut buf.as_slice()).unwrap();
        assert_eq!(restored.stale_segment_count(), original.stale_segment_count());
        assert_eq!(restored.max_segment_pressure(), original.max_segment_pressure());
    }

    #[test]
    fn roundtrip_empty_database() {
        let original = sample_db(0);
        let mut buf = Vec::new();
        write_snapshot(&original, &mut buf).unwrap();
        let restored = read_snapshot(&mut buf.as_slice()).unwrap();
        assert_eq!(restored.len(), 0);
        assert_eq!(restored.k(), 7);
    }

    #[test]
    fn v1_snapshots_still_load() {
        let mut original = sample_db(120);
        let mut buf = Vec::new();
        write_snapshot_v1(&original, &mut buf).unwrap();
        assert_eq!(buf[4], 1, "v1 writer must stamp version 1");
        let mut restored = read_snapshot(&mut buf.as_slice()).unwrap();
        assert_eq!(restored.len(), original.len());
        for q in queries() {
            assert_eq!(original.answer(&q), restored.answer(&q), "v1 query {q}");
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_snapshot(&sample_db(3), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(read_snapshot(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let mut buf = Vec::new();
        write_snapshot(&sample_db(50), &mut buf).unwrap();
        // No panic at any truncation point — errors all the way down.
        for cut in [5, 9, 17, buf.len() / 4, buf.len() / 2, buf.len() - 1] {
            assert!(read_snapshot(&mut buf[..cut].as_ref()).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn unknown_version_rejected() {
        let mut buf = Vec::new();
        write_snapshot(&sample_db(1), &mut buf).unwrap();
        buf[4] = 99;
        assert!(read_snapshot(&mut buf.as_slice()).is_err());
    }

    /// Corrupted counts must produce [`io::ErrorKind::InvalidData`], not
    /// panics or huge allocations.
    #[test]
    fn oversized_counts_rejected() {
        let good = {
            let mut buf = Vec::new();
            write_snapshot(&churned_db(), &mut buf).unwrap();
            buf
        };
        // Find the offsets of the three leading store counts: they sit
        // right after magic(4) + version(4) + k(8) + policy(4+8) +
        // schema. Rather than hand-computing the schema length, corrupt
        // a sweep of single bytes across the whole buffer — every
        // mutation must either still parse or error cleanly.
        let mut rejected = 0usize;
        for i in (0..good.len()).step_by(13) {
            let mut buf = good.clone();
            buf[i] ^= 0xFF;
            match read_snapshot(&mut buf.as_slice()) {
                Ok(_) => {}
                Err(e) => {
                    rejected += 1;
                    assert!(
                        matches!(
                            e.kind(),
                            io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
                        ),
                        "byte {i}: unexpected error kind {:?}",
                        e.kind()
                    );
                }
            }
        }
        assert!(rejected > 0, "corruption sweep never hit a validated field");
    }

    #[test]
    fn snapshot_is_deterministic() {
        let db = sample_db(100);
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_snapshot(&db, &mut a).unwrap();
        write_snapshot(&db, &mut b).unwrap();
        assert_eq!(a, b);
    }
}
