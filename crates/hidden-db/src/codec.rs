//! Snapshot serialisation: save/load a whole database to a compact,
//! self-describing binary format.
//!
//! Generating the larger synthetic populations (Fig 12 runs up to 10⁷
//! tuples) dominates some harness runtimes; snapshots let experiments
//! cache them. The format is hand-rolled (no serialisation backend is
//! vendored) and versioned; scores are *not* stored — they are
//! recomputed from the scoring policy on load, which keeps snapshots
//! independent of ranking internals.
//!
//! Layout (all integers little-endian):
//! `magic "HDBS" | format u32 | k u64 | policy | schema | tuples`.

use std::io::{self, Read, Write};

use crate::database::HiddenDatabase;
use crate::ranking::ScoringPolicy;
use crate::schema::{AttributeDef, MeasureDef, Schema};
use crate::tuple::Tuple;
use crate::value::{MeasureId, TupleKey, ValueId};

const MAGIC: &[u8; 4] = b"HDBS";
const FORMAT_VERSION: u32 = 1;

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    write_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn read_str(r: &mut impl Read) -> io::Result<String> {
    let len = read_u32(r)? as usize;
    if len > 1 << 20 {
        return Err(bad("string length implausible"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| bad("invalid utf-8 in snapshot"))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn write_policy(w: &mut impl Write, p: ScoringPolicy) -> io::Result<()> {
    match p {
        ScoringPolicy::HashedRandom { salt } => {
            write_u32(w, 0)?;
            write_u64(w, salt)
        }
        ScoringPolicy::ByMeasureDesc(m) => {
            write_u32(w, 1)?;
            write_u32(w, u32::from(m.0))
        }
        ScoringPolicy::ByMeasureAsc(m) => {
            write_u32(w, 2)?;
            write_u32(w, u32::from(m.0))
        }
        ScoringPolicy::NewestFirst => write_u32(w, 3),
    }
}

fn read_policy(r: &mut impl Read) -> io::Result<ScoringPolicy> {
    Ok(match read_u32(r)? {
        0 => ScoringPolicy::HashedRandom { salt: read_u64(r)? },
        1 => ScoringPolicy::ByMeasureDesc(MeasureId(read_u32(r)? as u16)),
        2 => ScoringPolicy::ByMeasureAsc(MeasureId(read_u32(r)? as u16)),
        3 => ScoringPolicy::NewestFirst,
        _ => return Err(bad("unknown scoring policy tag")),
    })
}

/// Serialises a database snapshot (schema, `k`, scoring policy, all alive
/// tuples) into `w`.
pub fn write_snapshot(db: &HiddenDatabase, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(w, FORMAT_VERSION)?;
    write_u64(w, db.k() as u64)?;
    write_policy(w, db.scoring_policy())?;
    // Schema.
    let schema = db.schema();
    write_u32(w, schema.attr_count() as u32)?;
    for a in schema.attr_ids() {
        let def = schema.attribute(a);
        write_str(w, def.name())?;
        write_u32(w, def.domain_size())?;
    }
    write_u32(w, schema.measure_count() as u32)?;
    for m in 0..schema.measure_count() {
        write_str(w, schema.measure(MeasureId(m as u16)).name())?;
    }
    // Tuples, sorted by key for deterministic output.
    let keys = db.alive_keys_sorted();
    write_u64(w, keys.len() as u64)?;
    for key in keys {
        let t = db.get(key).expect("alive key");
        write_u64(w, key.0)?;
        for a in schema.attr_ids() {
            write_u32(w, t.value(a).0)?;
        }
        for m in 0..schema.measure_count() {
            write_f64(w, t.measure(MeasureId(m as u16)))?;
        }
    }
    Ok(())
}

/// Deserialises a snapshot produced by [`write_snapshot`].
pub fn read_snapshot(r: &mut impl Read) -> io::Result<HiddenDatabase> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a hidden-db snapshot (bad magic)"));
    }
    let version = read_u32(r)?;
    if version != FORMAT_VERSION {
        return Err(bad("unsupported snapshot format version"));
    }
    let k = read_u64(r)? as usize;
    let policy = read_policy(r)?;
    let attr_count = read_u32(r)? as usize;
    if attr_count > u16::MAX as usize {
        return Err(bad("attribute count implausible"));
    }
    let mut attrs = Vec::with_capacity(attr_count);
    for _ in 0..attr_count {
        let name = read_str(r)?;
        let domain = read_u32(r)?;
        attrs.push(AttributeDef::new(name, domain));
    }
    let measure_count = read_u32(r)? as usize;
    if measure_count > u16::MAX as usize {
        return Err(bad("measure count implausible"));
    }
    let mut measures = Vec::with_capacity(measure_count);
    for _ in 0..measure_count {
        measures.push(MeasureDef::new(read_str(r)?));
    }
    let schema = Schema::new(attrs, measures).map_err(|e| bad(&e.to_string()))?;
    let mut db = HiddenDatabase::new(schema, k, policy);
    let n = read_u64(r)?;
    for _ in 0..n {
        let key = TupleKey(read_u64(r)?);
        let values: Vec<ValueId> =
            (0..attr_count).map(|_| read_u32(r).map(ValueId)).collect::<io::Result<_>>()?;
        let ms: Vec<f64> = (0..measure_count).map(|_| read_f64(r)).collect::<io::Result<_>>()?;
        db.insert(Tuple::new(key, values, ms)).map_err(|e| bad(&e.to_string()))?;
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{ConjunctiveQuery, Predicate};
    use crate::value::AttrId;
    use rand::{Rng, SeedableRng};

    fn sample_db(n: u64) -> HiddenDatabase {
        let schema = Schema::with_domain_sizes(&[3, 4], &["price", "qty"]).unwrap();
        let mut db = HiddenDatabase::new(schema, 7, ScoringPolicy::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for t in 0..n {
            db.insert(Tuple::new(
                TupleKey(t * 3), // non-contiguous keys
                vec![ValueId(rng.random_range(0..3)), ValueId(rng.random_range(0..4))],
                vec![rng.random_range(0..500) as f64, rng.random_range(0..9) as f64],
            ))
            .unwrap();
        }
        db
    }

    #[test]
    fn roundtrip_preserves_everything_observable() {
        let mut original = sample_db(200);
        let mut buf = Vec::new();
        write_snapshot(&original, &mut buf).unwrap();
        let mut restored = read_snapshot(&mut buf.as_slice()).unwrap();

        assert_eq!(restored.len(), original.len());
        assert_eq!(restored.k(), original.k());
        assert_eq!(restored.alive_keys_sorted(), original.alive_keys_sorted());
        assert_eq!(restored.schema().attr_count(), original.schema().attr_count());
        // Interface answers (incl. hidden ranking) must be identical.
        for q in [
            ConjunctiveQuery::select_all(),
            ConjunctiveQuery::from_predicates([Predicate::new(AttrId(0), ValueId(1))]),
            ConjunctiveQuery::from_predicates([
                Predicate::new(AttrId(0), ValueId(2)),
                Predicate::new(AttrId(1), ValueId(3)),
            ]),
        ] {
            assert_eq!(original.answer(&q), restored.answer(&q), "query {q}");
        }
        // Ground truth agrees too.
        let sum_orig = original.exact_sum(None, |t| t.measure(MeasureId(0)));
        let sum_rest = restored.exact_sum(None, |t| t.measure(MeasureId(0)));
        assert_eq!(sum_orig, sum_rest);
    }

    #[test]
    fn roundtrip_empty_database() {
        let original = sample_db(0);
        let mut buf = Vec::new();
        write_snapshot(&original, &mut buf).unwrap();
        let restored = read_snapshot(&mut buf.as_slice()).unwrap();
        assert_eq!(restored.len(), 0);
        assert_eq!(restored.k(), 7);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_snapshot(&sample_db(3), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(read_snapshot(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let mut buf = Vec::new();
        write_snapshot(&sample_db(50), &mut buf).unwrap();
        let cut = buf.len() / 2;
        assert!(read_snapshot(&mut buf[..cut].as_ref()).is_err());
    }

    #[test]
    fn unknown_version_rejected() {
        let mut buf = Vec::new();
        write_snapshot(&sample_db(1), &mut buf).unwrap();
        buf[4] = 99;
        assert!(read_snapshot(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn snapshot_is_deterministic() {
        let db = sample_db(100);
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_snapshot(&db, &mut a).unwrap();
        write_snapshot(&db, &mut b).unwrap();
        assert_eq!(a, b);
    }
}
