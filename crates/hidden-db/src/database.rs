//! The dynamic hidden database: schema + storage + index + top-`k`
//! interface + versioning.
//!
//! Two disjoint API surfaces live here:
//!
//! * the **search interface** ([`HiddenDatabase::answer`]) — what a
//!   third-party estimator can reach, always through a budgeted
//!   [`crate::session::SearchSession`];
//! * the **owner/ground-truth API** (insert/delete/apply, `exact_*`,
//!   slot sampling) — what workload drivers and experiment harnesses use.
//!   Estimators must never call it; the crate layout enforces this by
//!   having estimators depend only on the [`crate::session::SearchBackend`]
//!   trait.

use aggtrack_parallel::{par_map_indexed, Threads};

use crate::errors::DbError;
use crate::index::{gallop_to, InvertedIndex, SortedPostings};
use crate::interface::{slot_matches, CachedEval, QueryOutcome, TopK};
use crate::memo::{InvalidationPolicy, QueryMemo};
use crate::persist::{Pager, PersistConfig};
use crate::query::{ConjunctiveQuery, Predicate};
use crate::ranking::ScoringPolicy;
use crate::schema::Schema;
use crate::stats::{EvalStats, InterfaceStats, MaintenanceStats, MemoStats, PersistStats};
use crate::store::{segment_of, Slot, Store, StoreCore, BLOCK_SLOTS, SEGMENT_SLOTS};
use crate::tuple::Tuple;
use crate::updates::{UpdateBatch, UpdateFootprint, UpdateSummary};
use crate::value::{AttrId, MeasureId, TupleKey, ValueId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io;

/// How multi-predicate queries pick their intersection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntersectPolicy {
    /// Three or more predicates whose *rarest* list is still dense
    /// (`>= BLOCKMAX_MIN_RAREST` live postings): the k-way block-max
    /// engine ([`IntersectPolicy::BlockMax`]). Everything else: gallop
    /// when the two rarest lists are lopsided
    /// (`large >= GALLOP_RATIO * small`), per-segment bitsets otherwise.
    #[default]
    Auto,
    /// Always gallop the two rarest lists.
    Gallop,
    /// Always intersect per segment through a bitset.
    Bitset,
    /// k-way block-max (WAND-style) intersection: every predicate list
    /// participates, 256-slot blocks are visited best-bound-first, and a
    /// block whose combined bound (min over the lists' block maxes,
    /// capped by the store's) cannot beat the top-`k` floor is skipped
    /// whole once overflow is pinned.
    BlockMax,
    /// The legacy path: drive the rarest list alone and re-check every
    /// other predicate per candidate. Kept as the baseline benches and
    /// the oracle proptest compare against.
    Recheck,
}

/// Evaluation-engine tuning. Every setting is **outcome-invariant**:
/// query answers are bit-identical across all combinations (pinned by
/// `tests/eval_oracle_proptest.rs`); only wall-clock and
/// [`EvalStats`] counters move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalConfig {
    /// Stop top-`k` scans once `matched > k` and the heap floor provably
    /// beats every remaining segment's score bound.
    pub early_exit: bool,
    /// Intersection strategy for multi-predicate queries.
    pub intersect: IntersectPolicy,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self { early_exit: true, intersect: IntersectPolicy::Auto }
    }
}

/// Density cut-over for [`IntersectPolicy::Auto`]: gallop when the larger
/// list is at least this many times the smaller, per-segment bitsets
/// below. Pinned by the `intersect` criterion bench
/// (`crates/bench/benches/intersect.rs`): the strategies run within noise
/// of each other up to ratio ≈ 8, galloping pulls ahead from ≈ 16 and is
/// ~1.7× the bitset at 256, so 8 keeps the word-parallel bitset exactly
/// where it is never a regression and hands lopsided pairs to the gallop.
/// The k-way block-max engine reuses the same ratio for its per-block
/// sparse/dense cut (longest run ≥ 8× the shortest → gallop the block,
/// else word-AND it); the bench's `kway` group re-pins it at block
/// granularity, where the two in-block paths likewise cross between
/// ratio 4 and 16.
const GALLOP_RATIO: usize = 8;

/// 64-bit words per segment bitset.
const SEGMENT_WORDS: usize = SEGMENT_SLOTS / 64;

/// 64-bit words per block bitset (the dense-path unit of the k-way
/// block-max engine).
const BLOCK_WORDS: usize = BLOCK_SLOTS / 64;

/// Density floor for [`IntersectPolicy::Auto`]'s 3+-predicate routing:
/// the k-way block-max engine only pays off when even the *rarest*
/// participating list has at least this many live postings. Below it the
/// two-rarest pipeline touches only the rare list's few candidates,
/// while block-max pays a directory probe in every list for every block
/// of the driver — on the selective deep-query pool in `perf_baseline`
/// that overhead made unguarded routing ~4× slower than the pair
/// engines, whereas on half-density lists (the `intersection_kway`
/// section) block-max wins by skipping whole 256-slot blocks. Forcing
/// `BlockMax` explicitly bypasses the gate.
const BLOCKMAX_MIN_RAREST: usize = 2 * SEGMENT_SLOTS;

/// How much work one [`HiddenDatabase::maintain`] call may do, in slots/
/// postings scanned. Maintenance is incremental by design: a small
/// per-round budget amortises compaction across rounds instead of
/// stalling one round with a full sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaintenanceBudget {
    /// Slots (store sweeps) plus postings (index sweeps) the call may
    /// scan before stopping.
    pub slot_scans: usize,
}

impl MaintenanceBudget {
    /// No cap: finish all outstanding maintenance
    /// ([`HiddenDatabase::compact`]).
    pub fn unlimited() -> Self {
        Self { slot_scans: usize::MAX }
    }

    /// A cap of `n` scanned slots/postings.
    pub fn slots(n: usize) -> Self {
        Self { slot_scans: n }
    }
}

/// What one [`HiddenDatabase::maintain`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Store segments whose score bound was recomputed exactly.
    pub segments_recomputed: usize,
    /// Recomputes that actually tightened a bound.
    pub bounds_tightened: usize,
    /// Posting lists compacted (tombstones purged, runs rebuilt).
    pub lists_compacted: usize,
    /// Tombstoned/duplicate postings removed.
    pub postings_purged: usize,
    /// Slots + postings scanned (budget spent).
    pub slots_scanned: usize,
    /// Whether the budget ran out with work left over.
    pub exhausted: bool,
}

/// A lightweight, allocation-free view of one stored tuple, used by the
/// owner-side ground-truth API.
#[derive(Clone, Copy)]
pub struct TupleRef<'a> {
    store: &'a StoreCore,
    slot: Slot,
}

impl<'a> TupleRef<'a> {
    /// External key.
    pub fn key(&self) -> TupleKey {
        self.store.key_at(self.slot)
    }

    /// Value of attribute `attr`.
    pub fn value(&self, attr: AttrId) -> ValueId {
        ValueId(self.store.value_at(attr.index(), self.slot))
    }

    /// Value of measure `m`.
    pub fn measure(&self, m: MeasureId) -> f64 {
        self.store.measure_at(m.index(), self.slot)
    }

    /// Whether this tuple satisfies `query`.
    pub fn matches(&self, query: &ConjunctiveQuery) -> bool {
        query
            .predicates()
            .iter()
            .all(|p| self.store.value_at(p.attr.index(), self.slot) == p.value.0)
    }
}

/// The dynamic hidden web database.
#[derive(Debug, Clone)]
pub struct HiddenDatabase {
    schema: Schema,
    store: Store,
    index: InvertedIndex,
    scoring: ScoringPolicy,
    k: usize,
    version: u64,
    cache: QueryMemo,
    policy: InvalidationPolicy,
    stats: InterfaceStats,
    eval_config: EvalConfig,
    eval_stats: EvalStats,
    maintenance_stats: MaintenanceStats,
    /// Reusable footprint buffers: single-op mutations would otherwise
    /// allocate (and drop) two vectors each.
    scratch_footprint: UpdateFootprint,
}

impl HiddenDatabase {
    /// Creates an empty database with top-`k` interface and the given
    /// scoring policy.
    pub fn new(schema: Schema, k: usize, scoring: ScoringPolicy) -> Self {
        let index = InvertedIndex::new(&schema);
        let store = Store::new(schema.attr_count(), schema.measure_count());
        Self {
            schema,
            store,
            index,
            scoring,
            k,
            version: 0,
            cache: QueryMemo::default(),
            policy: InvalidationPolicy::default(),
            stats: InterfaceStats::default(),
            eval_config: EvalConfig::default(),
            eval_stats: EvalStats::default(),
            maintenance_stats: MaintenanceStats::default(),
            scratch_footprint: UpdateFootprint::default(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The interface's `k` (page size).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Changes `k` (used by the Fig 8 parameter sweep). `k` affects every
    /// cached classification, so this is the one mutation that still
    /// clears the memo wholesale.
    pub fn set_k(&mut self, k: usize) {
        self.k = k;
        self.bump_version();
    }

    /// Monotonic data version; bumps on every *effective* mutation (an
    /// empty batch, which changes nothing, leaves it — and the memo —
    /// untouched).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// How the query memo reacts to mutations (default:
    /// [`InvalidationPolicy::Incremental`]).
    pub fn invalidation_policy(&self) -> InvalidationPolicy {
        self.policy
    }

    /// Switches the memo policy. Conservatively clears the memo (cheap,
    /// and policies differ in what they guarantee about existing entries).
    pub fn set_invalidation_policy(&mut self, policy: InvalidationPolicy) {
        self.policy = policy;
        self.bump_version();
    }

    /// Caps the number of memoised queries (admission/eviction bound;
    /// default [`crate::DEFAULT_MEMO_CAPACITY`]). `0` disables admission
    /// entirely.
    pub fn set_memo_capacity(&mut self, capacity: usize) {
        self.cache.set_capacity(capacity);
    }

    /// Number of queries currently memoised.
    pub fn memo_len(&self) -> usize {
        self.cache.len()
    }

    /// The memo's entry cap.
    pub fn memo_capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Memo lifecycle counters (invalidations, evictions, clears,
    /// demotions/resurrections).
    pub fn memo_stats(&self) -> MemoStats {
        self.cache.stats()
    }

    /// Number of memoised queries currently demoted to `Stale` (kept for
    /// the lookup-time revalidation re-check).
    pub fn memo_stale_len(&self) -> usize {
        self.cache.stale_len()
    }

    /// Toggles cross-round memo revalidation (default: on). When on, an
    /// invalidated overflow entry whose cached page the mutation
    /// provably spared is demoted to `Stale` instead of dropped, and the
    /// next lookup re-checks it against live scores/segment bounds —
    /// resurrecting the shared page when the top-`k` provably did not
    /// change. Outcome-invariant (pinned by the memo and compaction
    /// oracle proptests); only hit rates and wall-clock move.
    pub fn set_revalidation(&mut self, on: bool) {
        self.cache.set_revalidate(on);
    }

    /// Whether cross-round memo revalidation is active.
    pub fn revalidation_enabled(&self) -> bool {
        self.cache.revalidate_enabled()
    }

    // ----- maintenance ----------------------------------------------------

    /// Incremental segment maintenance: spends up to `budget` scanned
    /// slots/postings recomputing exact per-segment score bounds (the
    /// stalest segments first) and compacting tombstoned posting lists
    /// (rebuilding their segment-run skip metadata). Restores early-exit
    /// effectiveness — and segment-level revalidation precision — under
    /// delete-heavy / score-drop churn.
    ///
    /// **Outcome-invariant and slot-stable**: no tuple moves, the free
    /// list is untouched, no version bump, the memo is not invalidated.
    /// Every query answer, tie-break, and owner-side RNG draw is
    /// bit-identical whether or when maintenance runs (pinned by
    /// `compaction_oracle_proptest` and the bench determinism suite).
    pub fn maintain(&mut self, budget: MaintenanceBudget) -> MaintenanceReport {
        let mut remaining = budget.slot_scans;
        let mut report = MaintenanceReport::default();
        for seg in self.store.stale_segments() {
            let span = self.store.segment_range(seg);
            let cost = (span.end - span.start) as usize;
            if cost > remaining {
                // Skip, don't abort: a later (e.g. the trailing partial)
                // segment may still fit, and the leftover budget flows
                // to the index sweep either way.
                report.exhausted = true;
                continue;
            }
            remaining -= cost;
            report.slots_scanned += cost;
            report.segments_recomputed += 1;
            if self.store.recompute_segment_bound(seg) {
                report.bounds_tightened += 1;
            }
            self.store.debug_assert_bound_exact(seg);
        }
        let index_report = self.index.maintain(&self.store, &mut remaining);
        report.lists_compacted += index_report.lists_compacted;
        report.postings_purged += index_report.postings_purged;
        report.slots_scanned += index_report.postings_scanned;
        report.exhausted |= index_report.exhausted;
        let stats = &mut self.maintenance_stats;
        stats.maintain_calls += 1;
        stats.segments_recomputed += report.segments_recomputed as u64;
        stats.bounds_tightened += report.bounds_tightened as u64;
        stats.lists_compacted += report.lists_compacted as u64;
        stats.postings_purged += report.postings_purged as u64;
        stats.slots_scanned += report.slots_scanned as u64;
        report
    }

    /// Unbudgeted [`HiddenDatabase::maintain`]: finishes every
    /// outstanding bound recompute and list compaction.
    pub fn compact(&mut self) -> MaintenanceReport {
        self.maintain(MaintenanceBudget::unlimited())
    }

    /// Counters accumulated across maintenance calls.
    pub fn maintenance_stats(&self) -> MaintenanceStats {
        self.maintenance_stats
    }

    /// Store segments whose score bound may currently be loose — the
    /// outstanding bound-maintenance work.
    pub fn stale_segment_count(&self) -> usize {
        self.store.stale_segment_count()
    }

    /// The worst per-segment maintenance pressure:
    /// `max(stale_ops + dead slots)` over all store segments. The
    /// service's automatic maintenance trigger
    /// ([`crate::service::AutoMaintain::Pressure`]) fires `compact` when
    /// this crosses its threshold.
    pub fn max_segment_pressure(&self) -> u32 {
        self.store.max_segment_pressure()
    }

    /// The pieces of an immutable epoch snapshot: pays every pending
    /// posting-list sort, then hands out cheap clones of the shared
    /// read-side state. Consumed by [`crate::service::DbSnapshot`].
    pub(crate) fn snapshot_parts(
        &mut self,
    ) -> (Schema, StoreCore, InvertedIndex, usize, u64, EvalConfig) {
        self.index.ensure_all_sorted();
        (
            self.schema.clone(),
            self.store.core().clone(),
            self.index.clone(),
            self.k,
            self.version,
            self.eval_config,
        )
    }

    /// `|D|`: number of alive tuples.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Interface traffic counters.
    pub fn stats(&self) -> InterfaceStats {
        self.stats
    }

    /// Evaluation-engine path counters.
    pub fn eval_stats(&self) -> EvalStats {
        self.eval_stats
    }

    /// The evaluation-engine tuning in force.
    pub fn eval_config(&self) -> EvalConfig {
        self.eval_config
    }

    /// Retunes the evaluation engine. Outcome-invariant — answers are
    /// bit-identical under every configuration, so the memo survives the
    /// switch.
    pub fn set_eval_config(&mut self, config: EvalConfig) {
        self.eval_config = config;
    }

    /// The scoring policy in force (owner API; a real site would never
    /// disclose it).
    pub fn scoring_policy(&self) -> ScoringPolicy {
        self.scoring
    }

    // ----- persistence tier -----------------------------------------------

    /// Attaches the out-of-core persistence tier: segment data pages
    /// between memory and `cfg.dir/segments.dat` under a
    /// `cfg.resident_segments` budget (see [`crate::persist`]), spilling
    /// the cold majority immediately. **Outcome-invariant**: every
    /// answer, page, and tie-break is bit-identical to the all-RAM
    /// database (pinned by the out-of-core oracle proptest); only
    /// wall-clock and resident memory move.
    ///
    /// Errors if a tier is already attached or the region file cannot be
    /// created.
    pub fn enable_persist(&mut self, cfg: &PersistConfig) -> io::Result<()> {
        if self.persist_enabled() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "persistence tier already enabled",
            ));
        }
        let pager = Pager::open(
            &cfg.dir,
            self.schema.attr_count(),
            self.schema.measure_count(),
            cfg.resident_segments,
        )?;
        self.store.attach_pager(pager);
        Ok(())
    }

    /// Whether the persistence tier is attached.
    pub fn persist_enabled(&self) -> bool {
        self.store.pager().is_some()
    }

    /// Paging counters (spills, faults, cache evictions, on-disk bytes,
    /// residency high-water mark). All zeros without the tier.
    pub fn persist_stats(&self) -> PersistStats {
        self.store.pager().map(|p| p.stats()).unwrap_or_default()
    }

    /// Appends a durable full-state snapshot (codec v2: segment data
    /// plus all warm state — segment/block score bounds, posting-list
    /// block directories, the free list) to the journal in the persist
    /// directory and fsyncs. `&self` on purpose: checkpointing reads
    /// through the paged view and serialises index lists verbatim, so it
    /// can run between any two mutations without touching warm state.
    ///
    /// Errors if the tier is not enabled.
    pub fn checkpoint(&self) -> io::Result<()> {
        let pager = self.store.pager().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "checkpoint requires --persist")
        })?;
        let mut payload = Vec::new();
        crate::codec::write_snapshot(self, &mut payload)?;
        crate::persist::append_journal_record(
            &pager.dir().join(crate::persist::JOURNAL_FILE),
            &payload,
        )
    }

    /// Warm restart: recovers the last durable [`checkpoint`] from
    /// `cfg.dir`'s journal (ignoring any torn tail from a crash
    /// mid-append) and re-attaches the persistence tier. The restored
    /// database carries every bound, block directory, and free-list
    /// entry of the checkpointed one, so it evolves bit-identically from
    /// here — no cold-start recompute.
    ///
    /// Errors with [`io::ErrorKind::NotFound`] when the journal holds no
    /// valid record.
    ///
    /// [`checkpoint`]: HiddenDatabase::checkpoint
    pub fn open_persistent(cfg: &PersistConfig) -> io::Result<Self> {
        let journal = cfg.dir.join(crate::persist::JOURNAL_FILE);
        let payload = crate::persist::read_last_journal_record(&journal)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "no durable snapshot in the journal")
        })?;
        let mut db = crate::codec::read_snapshot(&mut &payload[..])?;
        db.enable_persist(cfg)?;
        Ok(db)
    }

    /// The store, for the codec's verbatim snapshot walk.
    pub(crate) fn store_ref(&self) -> &Store {
        &self.store
    }

    /// The index, for the codec's verbatim snapshot walk.
    pub(crate) fn index_ref(&self) -> &InvertedIndex {
        &self.index
    }

    /// Rebuilds a database from restored snapshot state (codec v2):
    /// store and index verbatim, fresh version/memo/stats (the memo is
    /// an epoch cache — a restarted process starts a new epoch; answers
    /// are unaffected).
    pub(crate) fn from_restored(
        schema: Schema,
        k: usize,
        scoring: ScoringPolicy,
        store: Store,
        index: InvertedIndex,
    ) -> Self {
        let mut db = Self::new(schema, k, scoring);
        db.store = store;
        db.index = index;
        db
    }

    /// Version bump with a wholesale memo clear — for mutations that can
    /// affect *every* cached entry (`set_k`, policy switches).
    fn bump_version(&mut self) {
        self.version += 1;
        self.cache.clear();
    }

    /// Hands out the reusable footprint buffer (cleared). Single-op
    /// mutations are hot in the interface microbench; reusing the two
    /// vectors instead of allocating per op is part of the batched
    /// footprint construction work.
    fn take_footprint(&mut self) -> UpdateFootprint {
        let mut footprint = std::mem::take(&mut self.scratch_footprint);
        footprint.clear();
        footprint
    }

    /// Commits a mutation's footprint: bumps the version and invalidates
    /// the memo according to the active policy. A no-op for an empty
    /// footprint — a mutation that changed nothing invalidates nothing.
    /// The footprint buffer returns to the scratch slot for reuse.
    ///
    /// This runs on the error path of [`HiddenDatabase::apply`] too:
    /// a batch that fails mid-way leaves its applied prefix in place, and
    /// the memo must see that prefix's footprint or it would keep serving
    /// pages containing the prefix's deleted tuples.
    fn finish_mutation(&mut self, mut footprint: UpdateFootprint) {
        if !footprint.is_empty() {
            self.version += 1;
            match self.policy {
                InvalidationPolicy::Incremental => {
                    self.cache.invalidate(&mut footprint, self.version)
                }
                InvalidationPolicy::Wholesale => self.cache.clear(),
                // Disabled: the memo never holds entries; nothing to drop.
                InvalidationPolicy::Disabled => {}
            }
        }
        self.scratch_footprint = footprint;
    }

    fn validate_tuple(&self, t: &Tuple) -> Result<(), DbError> {
        if t.values().len() != self.schema.attr_count() {
            return Err(DbError::TupleMismatch(format!(
                "expected {} values, got {}",
                self.schema.attr_count(),
                t.values().len()
            )));
        }
        if t.measures().len() != self.schema.measure_count() {
            return Err(DbError::TupleMismatch(format!(
                "expected {} measures, got {}",
                self.schema.measure_count(),
                t.measures().len()
            )));
        }
        for (i, &v) in t.values().iter().enumerate() {
            if !self.schema.value_in_domain(AttrId(i as u16), v) {
                return Err(DbError::TupleMismatch(format!("value {v} outside domain of A{i}")));
            }
        }
        Ok(())
    }

    // ----- owner API ------------------------------------------------------

    /// Inserts one tuple.
    pub fn insert(&mut self, tuple: Tuple) -> Result<(), DbError> {
        let mut footprint = self.take_footprint();
        let result = self.insert_inner(tuple, &mut footprint);
        self.finish_mutation(footprint);
        result
    }

    /// Deletes one tuple by key.
    pub fn delete(&mut self, key: TupleKey) -> Result<(), DbError> {
        let mut footprint = self.take_footprint();
        let result = self.delete_inner(key, &mut footprint);
        self.finish_mutation(footprint);
        result
    }

    /// Overwrites the measures of an alive tuple (its position in the query
    /// tree is unchanged; its rank may change under measure-based scoring).
    pub fn update_measures(&mut self, key: TupleKey, measures: Vec<f64>) -> Result<(), DbError> {
        let mut footprint = self.take_footprint();
        let result = self.update_measures_inner(key, &measures, &mut footprint);
        self.finish_mutation(footprint);
        result
    }

    /// Applies a batch: deletes, then measure updates, then inserts; bumps
    /// the version once. Fails atomically per element (earlier elements
    /// stay applied — batches from schedules are pre-validated), and the
    /// memo is invalidated for whatever prefix applied, **even on the
    /// error path** — a failed batch must not leave cached pages serving
    /// its already-deleted tuples.
    ///
    /// An empty batch is a true no-op: no version bump, memo retained —
    /// a round in which nothing changes costs nothing.
    pub fn apply(&mut self, batch: UpdateBatch) -> Result<UpdateSummary, DbError> {
        if batch.is_empty() {
            return Ok(UpdateSummary::default());
        }
        // The footprint accumulates across the whole batch and is sealed
        // (sorted + deduped) exactly once by the single invalidation pass
        // in `finish_mutation` — per-op work is plain vector appends.
        let mut footprint = self.take_footprint();
        let result = self.apply_batch(batch, &mut footprint);
        self.finish_mutation(footprint);
        result
    }

    fn apply_batch(
        &mut self,
        batch: UpdateBatch,
        footprint: &mut UpdateFootprint,
    ) -> Result<UpdateSummary, DbError> {
        let mut summary = UpdateSummary::default();
        for key in &batch.deletes {
            self.delete_inner(*key, footprint)?;
            summary.deleted += 1;
        }
        for (key, measures) in &batch.measure_updates {
            self.update_measures_inner(*key, measures, footprint)?;
            summary.measures_updated += 1;
        }
        for tuple in batch.inserts {
            self.insert_inner(tuple, footprint)?;
            summary.inserted += 1;
        }
        Ok(summary)
    }

    fn insert_inner(
        &mut self,
        tuple: Tuple,
        footprint: &mut UpdateFootprint,
    ) -> Result<(), DbError> {
        self.validate_tuple(&tuple)?;
        let score = self.scoring.score(tuple.key(), tuple.measures());
        let values: Vec<ValueId> = tuple.values().to_vec();
        let slot = self.store.insert(tuple, score)?;
        self.index.insert(slot, &values, score);
        footprint.record(slot, &values);
        Ok(())
    }

    /// The full value row of the (alive) tuple at `slot`, in schema order.
    fn row_of(&self, slot: Slot) -> Vec<ValueId> {
        (0..self.schema.attr_count()).map(|a| ValueId(self.store.value_at(a, slot))).collect()
    }

    fn delete_inner(
        &mut self,
        key: TupleKey,
        footprint: &mut UpdateFootprint,
    ) -> Result<(), DbError> {
        let slot = self.store.slot_of(key).ok_or(DbError::UnknownKey(key))?;
        let values = self.row_of(slot);
        self.store.delete(key)?;
        self.index.delete(slot, &values, &self.store);
        footprint.record(slot, &values);
        Ok(())
    }

    fn update_measures_inner(
        &mut self,
        key: TupleKey,
        measures: &[f64],
        footprint: &mut UpdateFootprint,
    ) -> Result<(), DbError> {
        if measures.len() != self.schema.measure_count() {
            return Err(DbError::TupleMismatch(format!(
                "expected {} measures, got {}",
                self.schema.measure_count(),
                measures.len()
            )));
        }
        let slot = self.store.update_measures(key, measures)?;
        // Rank score may depend on measures; recompute.
        let key_at = self.store.key_at(slot);
        let old_score = self.store.score_at(slot);
        let score = self.scoring.score(key_at, measures);
        self.store.set_score(slot, score);
        // The tuple's measures (served in cached pages) and rank (cached
        // page order) changed: its full row enters the footprint.
        let values = self.row_of(slot);
        if score > old_score {
            // A rank promotion must reach the per-list block-max bounds
            // eagerly — the store's set_score handles its own block
            // bounds, but the posting lists track theirs. A drop needs
            // nothing (standing bounds stay sound).
            self.index.note_score_raise(slot, &values, score);
        }
        footprint.record(slot, &values);
        Ok(())
    }

    // ----- search interface ----------------------------------------------

    /// Answers a search query through the top-`k` interface. **Unbudgeted**:
    /// sessions wrap this and charge the per-round budget.
    ///
    /// # Panics
    /// If the query references attributes/values outside the schema — that
    /// is a caller bug, not a runtime condition.
    pub fn answer(&mut self, query: &ConjunctiveQuery) -> QueryOutcome {
        query.validate(&self.schema).expect("search query must be valid for the schema");
        self.stats.answered += 1;
        if matches!(self.policy, InvalidationPolicy::Disabled) {
            // The memo-free oracle path: every answer re-evaluates.
            let mut eval = self.evaluate_uncached(query);
            let out = eval.outcome(&self.store);
            self.count_outcome(&out);
            return out;
        }
        // One fast fingerprint per answer; the memo never re-hashes the
        // query and only clones it on a confirmed miss. A `Stale` entry
        // runs the revalidation re-check against the store here and is
        // either served (resurrected) or dropped into the miss path.
        let hash = QueryMemo::hash_of(query);
        if let Some(cached) = self.cache.get_or_revalidate(hash, query, self.version, &self.store) {
            self.stats.cache_hits += 1;
            let out = cached.outcome(&self.store);
            self.count_outcome(&out);
            return out;
        }
        let mut eval = self.evaluate_uncached(query);
        let out = eval.outcome(&self.store);
        self.cache.insert(hash, query, eval, self.version);
        self.count_outcome(&out);
        out
    }

    fn count_outcome(&mut self, out: &QueryOutcome) {
        match out {
            QueryOutcome::Underflow => self.stats.underflows += 1,
            QueryOutcome::Valid(_) => self.stats.valids += 1,
            QueryOutcome::Overflow(_) => self.stats.overflows += 1,
        }
    }

    /// The uncached evaluation path: pays any pending lazy sorts for the
    /// query's posting lists, then runs the shared read-only engine
    /// ([`evaluate_query`]) over disjoint borrows of store/index/stats.
    fn evaluate_uncached(&mut self, query: &ConjunctiveQuery) -> CachedEval {
        // Sorting up front (rather than inside the engine) is what lets
        // snapshot readers share the engine with `&self` access: by the
        // time a snapshot is published, `ensure_all_sorted` has paid
        // every pending sort. Sorting *all* of the query's lists (not
        // just the eventual drivers) is outcome-invariant — the top-`k`
        // page is independent of driver choice (oracle-pinned) — and
        // keeps the owner path's driver ranking on the same post-dedup
        // estimates a snapshot reader sees.
        for p in query.predicates() {
            self.index.ensure_sorted(p.attr, p.value);
        }
        evaluate_query(
            query,
            &self.store,
            &self.index,
            self.k,
            self.eval_config,
            &mut self.eval_stats,
        )
    }

    // ----- ground truth (experiments/tests only) --------------------------

    /// Exact number of alive tuples matching `query` (root if `None`).
    /// Bypasses the interface; for experiments and tests. Sequential —
    /// see [`HiddenDatabase::exact_count_threads`] for the segment
    /// fan-out.
    pub fn exact_count(&self, query: Option<&ConjunctiveQuery>) -> u64 {
        self.exact_count_threads(query, Threads::sequential())
    }

    /// [`HiddenDatabase::exact_count`] fanned out over store segments on
    /// the given thread pool. Counts merge in segment order, so the
    /// result is identical for every thread count.
    pub fn exact_count_threads(&self, query: Option<&ConjunctiveQuery>, threads: Threads) -> u64 {
        match query {
            None => self.store.len() as u64,
            Some(q) => {
                let segs: Vec<usize> = self.store.live_segments().collect();
                par_map_indexed(segs.len(), threads, |i| {
                    self.store
                        .alive_slots_in(segs[i])
                        .filter(|&slot| slot_matches(q, &self.store, slot))
                        .count() as u64
                })
                .into_iter()
                .sum()
            }
        }
    }

    /// Exact sum of `f` over alive tuples matching `query`. Sequential —
    /// see [`HiddenDatabase::exact_sum_threads`] for the segment fan-out.
    pub fn exact_sum(
        &self,
        query: Option<&ConjunctiveQuery>,
        mut f: impl FnMut(TupleRef<'_>) -> f64,
    ) -> f64 {
        let mut acc = 0.0;
        self.for_each_alive(|t| {
            let matches = query.is_none_or(|q| t.matches(q));
            if matches {
                acc += f(t);
            }
        });
        acc
    }

    /// [`HiddenDatabase::exact_sum`] fanned out over store segments.
    ///
    /// **Bit-identical to the sequential sweep for every thread count**
    /// (the trial-runner merge contract): workers return the raw matched
    /// values of their segment in slot order; the main thread replays
    /// them in segment order, so the floating-point additions happen in
    /// exactly the sequence the sequential full-store sweep performs.
    pub fn exact_sum_threads(
        &self,
        query: Option<&ConjunctiveQuery>,
        f: impl Fn(TupleRef<'_>) -> f64 + Sync,
        threads: Threads,
    ) -> f64 {
        let segs: Vec<usize> = self.store.live_segments().collect();
        let parts: Vec<Vec<f64>> = par_map_indexed(segs.len(), threads, |i| {
            let mut vals = Vec::new();
            for slot in self.store.alive_slots_in(segs[i]) {
                let t = TupleRef { store: &self.store, slot };
                if query.is_none_or(|q| t.matches(q)) {
                    vals.push(f(t));
                }
            }
            vals
        });
        let mut acc = 0.0;
        for part in &parts {
            for &v in part {
                acc += v;
            }
        }
        acc
    }

    /// Visits every alive tuple (owner API).
    pub fn for_each_alive(&self, mut f: impl FnMut(TupleRef<'_>)) {
        for slot in self.store.alive_slots() {
            f(TupleRef { store: &self.store, slot });
        }
    }

    /// Borrowing accessor for an alive tuple by key (owner API).
    pub fn get(&self, key: TupleKey) -> Option<TupleRef<'_>> {
        self.store.slot_of(key).map(|slot| TupleRef { store: &self.store, slot })
    }

    /// Samples `count` distinct alive tuple keys uniformly at random,
    /// deterministically under the caller's RNG (owner API; schedules use
    /// this to pick deletion victims).
    ///
    /// Returns fewer than `count` keys only if the database holds fewer
    /// alive tuples.
    pub fn sample_alive_keys<R: rand::Rng + ?Sized>(
        &self,
        rng: &mut R,
        count: usize,
    ) -> Vec<TupleKey> {
        let alive = self.store.len();
        let want = count.min(alive);
        let mut picked = std::collections::HashSet::with_capacity(want);
        let mut out = Vec::with_capacity(want);
        let bound = self.store.slot_bound();
        if bound == 0 {
            return out;
        }
        // Rejection sampling over slots: the store keeps fill rate high, so
        // the expected number of draws is O(want / fill_rate).
        while out.len() < want {
            let slot: Slot = rng.random_range(0..bound);
            if self.store.is_alive(slot) && picked.insert(slot) {
                out.push(self.store.key_at(slot));
            }
        }
        out
    }

    /// All alive keys, sorted (deterministic; owner API, O(n log n)).
    pub fn alive_keys_sorted(&self) -> Vec<TupleKey> {
        let mut keys: Vec<TupleKey> = self.store.alive_keys().map(|(k, _)| k).collect();
        keys.sort_unstable();
        keys
    }
}

/// The uncached evaluation engine, shared verbatim by the owner path
/// ([`HiddenDatabase::answer`]) and snapshot readers
/// ([`crate::service::DbSnapshot`]). Requires the posting list of every
/// query predicate to be sorted already (the owner path sorts on demand;
/// snapshots are published fully sorted). Dispatch:
///
/// * **root** — segment-ordered alive scan (descending max-score
///   order so early exits fire as soon as the page stabilises);
/// * **one predicate** — the posting list's segment runs, visited in
///   descending max-score order, with the same early exit;
/// * **two or more** — intersection of the two rarest lists
///   (galloping when lopsided, per-segment bitsets when dense),
///   residual predicates checked columnar per candidate.
///
/// Every path produces the same `CachedEval` bit-for-bit (pinned by
/// the oracle proptest): the top-`k` page under the total
/// `(score, slot)` order is independent of candidate visit order, and
/// early exits only skip candidates that provably cannot enter it.
pub(crate) fn evaluate_query(
    query: &ConjunctiveQuery,
    store: &StoreCore,
    index: &InvertedIndex,
    k: usize,
    config: EvalConfig,
    stats: &mut EvalStats,
) -> CachedEval {
    match *query.predicates() {
        [] => eval_root(store, k, config, stats),
        [driver] => eval_single(query, driver, store, index, k, config, stats),
        _ => eval_multi(query, store, index, k, config, stats),
    }
}

/// Root (`SELECT *`): every alive tuple matches; scan segments in
/// descending max-score order and stop once the page is proven.
fn eval_root(store: &StoreCore, k: usize, config: EvalConfig, stats: &mut EvalStats) -> CachedEval {
    stats.root_scans += 1;
    let mut topk = TopK::new(k);
    let order = store.segments_by_score_desc();
    for (i, &(seg, bound)) in order.iter().enumerate() {
        // `order` is bound-descending, so this segment's bound caps
        // every remaining candidate.
        if config.early_exit && topk.can_stop(bound) {
            stats.early_exits += 1;
            stats.segments_skipped += (order.len() - i) as u64;
            break;
        }
        // One paged view per segment: with the persistence tier attached
        // this is a single fault instead of two per slot.
        let data = store.seg_view(seg);
        let base = (seg * SEGMENT_SLOTS) as Slot;
        for (off, (&a, &score)) in data.alive.iter().zip(data.scores.iter()).enumerate() {
            if a {
                topk.offer(score, base + off as Slot);
            }
        }
    }
    topk.finish(store)
}

/// One predicate: walk the posting list's segment runs best-first.
fn eval_single(
    query: &ConjunctiveQuery,
    driver: Predicate,
    store: &StoreCore,
    index: &InvertedIndex,
    k: usize,
    config: EvalConfig,
    stats: &mut EvalStats,
) -> CachedEval {
    stats.single_scans += 1;
    let postings = index.sorted_postings(driver.attr, driver.value);
    let mut runs: Vec<(u64, usize, &[Slot])> =
        postings.runs().map(|(seg, run)| (store.segment_max_score(seg), seg, run)).collect();
    runs.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut topk = TopK::new(k);
    for (i, &(bound, _, run)) in runs.iter().enumerate() {
        if config.early_exit && topk.can_stop(bound) {
            stats.early_exits += 1;
            stats.segments_skipped += (runs.len() - i) as u64;
            break;
        }
        offer_run(query, store, run, &mut topk);
    }
    topk.finish(store)
}

/// The two rarest predicates of a multi-predicate query, by
/// `(estimated live postings, attr, value)`. The explicit tie-break
/// replaces the old order-dependent `min_by_key` (which silently
/// kept whichever tied predicate it met first), so the driver pair —
/// and with it the whole evaluation order — is stable no matter how
/// the query was assembled or how lists drift through mutations.
fn driver_pair(index: &InvertedIndex, query: &ConjunctiveQuery) -> (Predicate, Predicate) {
    let mut ranked: Vec<Predicate> = query.predicates().to_vec();
    ranked.sort_unstable_by_key(|p| (index.estimated_len(p.attr, p.value), p.attr, p.value));
    (ranked[0], ranked[1])
}

/// Two or more predicates: k-way block-max when asked for (or chosen by
/// `Auto` for 3+ predicates over dense lists), otherwise intersect the
/// two rarest lists.
fn eval_multi(
    query: &ConjunctiveQuery,
    store: &StoreCore,
    index: &InvertedIndex,
    k: usize,
    config: EvalConfig,
    stats: &mut EvalStats,
) -> CachedEval {
    // `Auto` hands 3+-predicate queries to the block-max engine when
    // every list is dense: with two lists the pair strategies already
    // see every list, but from three up the two-rarest pipeline pays a
    // columnar residual check per extra predicate while block-max
    // prunes with *all* lists' bounds at sub-segment granularity. The
    // `BLOCKMAX_MIN_RAREST` gate keeps selective queries — where the
    // rare list alone is cheaper to drive than any block directory —
    // on the pair engines.
    if config.intersect == IntersectPolicy::BlockMax
        || (config.intersect == IntersectPolicy::Auto
            && query.predicates().len() >= 3
            && query
                .predicates()
                .iter()
                .map(|p| index.estimated_len(p.attr, p.value))
                .min()
                .is_some_and(|rarest| rarest >= BLOCKMAX_MIN_RAREST))
    {
        return eval_blockmax(query, store, index, k, config.early_exit, stats);
    }
    let (a, b) = driver_pair(index, query);
    let pa = index.sorted_postings(a.attr, a.value);
    let pb = index.sorted_postings(b.attr, b.value);
    // Empty lists need no special case: every strategy degenerates to
    // an empty candidate stream (underflow), and routing through the
    // strategy keeps the EvalStats counters summing to the number of
    // evaluations performed.
    let mode = match config.intersect {
        IntersectPolicy::Auto => {
            if pb.len() >= GALLOP_RATIO * pa.len() {
                IntersectPolicy::Gallop
            } else {
                IntersectPolicy::Bitset
            }
        }
        forced => forced,
    };
    match mode {
        IntersectPolicy::Gallop => eval_gallop(query, store, pa, pb, k, config.early_exit, stats),
        IntersectPolicy::Bitset => eval_bitset(query, store, pa, pb, k, config.early_exit, stats),
        IntersectPolicy::Recheck => eval_recheck(query, store, pa, k, stats),
        IntersectPolicy::Auto | IntersectPolicy::BlockMax => {
            unreachable!("Auto resolves to a concrete strategy above; BlockMax returned early")
        }
    }
}

/// Feeds one posting run into the heap: adjacent-duplicate skip (sorted
/// lists keep duplicates adjacent), then the columnar residual check.
#[inline]
fn offer_run(query: &ConjunctiveQuery, store: &StoreCore, run: &[Slot], topk: &mut TopK) {
    let mut prev = None;
    for &slot in run {
        if prev == Some(slot) {
            continue;
        }
        prev = Some(slot);
        if slot_matches(query, store, slot) {
            topk.offer(store.score_at(slot), slot);
        }
    }
}

/// Galloping (exponential-search) intersection of the two rarest lists:
/// every distinct slot of the small list looks itself up in the large one
/// in O(log distance), so a lopsided intersection costs
/// `O(small · log large)` instead of `O(small + large)`. Candidates come
/// out slot-ascending, so the early exit uses the store's suffix-max
/// bound at each segment boundary.
fn eval_gallop(
    query: &ConjunctiveQuery,
    store: &StoreCore,
    small: SortedPostings<'_>,
    large: SortedPostings<'_>,
    k: usize,
    early_exit: bool,
    stats: &mut EvalStats,
) -> CachedEval {
    stats.gallop_intersections += 1;
    let mut topk = TopK::new(k);
    // The O(#store segments) suffix-max bound is computed lazily, only
    // once the query has provably overflowed at a segment boundary — the
    // common small∩large query never overflows and must not pay a
    // store-wide sweep for an exit that cannot fire.
    let mut suffix: Option<Vec<u64>> = None;
    let (small, large) = (small.slots(), large.slots());
    let mut j = 0usize;
    let mut prev = None;
    let mut cur_seg = usize::MAX;
    for &slot in small {
        if prev == Some(slot) {
            continue;
        }
        prev = Some(slot);
        if early_exit {
            let seg = segment_of(slot);
            if seg != cur_seg {
                cur_seg = seg;
                if topk.overflowed() {
                    let bounds = suffix.get_or_insert_with(|| store.segment_suffix_max());
                    // Remaining candidates all live in segments >= seg.
                    if topk.can_stop(bounds[seg]) {
                        stats.early_exits += 1;
                        stats.segments_skipped += (bounds.len() - 1 - seg) as u64;
                        break;
                    }
                }
            }
        }
        j = gallop_to(large, j, slot);
        if j >= large.len() {
            break;
        }
        if large[j] == slot && slot_matches(query, store, slot) {
            topk.offer(store.score_at(slot), slot);
        }
    }
    topk.finish(store)
}

/// Per-segment bitset intersection for dense list pairs: for each segment
/// both lists touch, mark the smaller run in a 4096-bit map and probe the
/// larger run against it — O(|runs|) with word-level constants, visiting
/// segments best-score-first so the early exit can skip whole segments.
fn eval_bitset(
    query: &ConjunctiveQuery,
    store: &StoreCore,
    pa: SortedPostings<'_>,
    pb: SortedPostings<'_>,
    k: usize,
    early_exit: bool,
    stats: &mut EvalStats,
) -> CachedEval {
    stats.bitset_intersections += 1;
    let mut topk = TopK::new(k);
    // Segments present in both lists, ordered by descending score bound
    // (segment id breaks ties) — the posting runs are the skip metadata.
    let mut common: Vec<(u64, usize, &[Slot], &[Slot])> = pa
        .runs()
        .filter_map(|(seg, run_a)| {
            let run_b = pb.run_in(seg);
            (!run_b.is_empty()).then(|| (store.segment_max_score(seg), seg, run_a, run_b))
        })
        .collect();
    common.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut words = [0u64; SEGMENT_WORDS];
    for (i, &(bound, seg, run_a, run_b)) in common.iter().enumerate() {
        if early_exit && topk.can_stop(bound) {
            stats.early_exits += 1;
            stats.segments_skipped += (common.len() - i) as u64;
            break;
        }
        let (mark, probe) =
            if run_a.len() <= run_b.len() { (run_a, run_b) } else { (run_b, run_a) };
        let base = (seg * SEGMENT_SLOTS) as Slot;
        words.fill(0);
        for &slot in mark {
            let off = (slot - base) as usize;
            words[off >> 6] |= 1u64 << (off & 63);
        }
        let mut prev = None;
        for &slot in probe {
            if prev == Some(slot) {
                continue;
            }
            prev = Some(slot);
            let off = (slot - base) as usize;
            if words[off >> 6] & (1u64 << (off & 63)) != 0 && slot_matches(query, store, slot) {
                topk.offer(store.score_at(slot), slot);
            }
        }
    }
    topk.finish(store)
}

/// The pre-segmentation baseline: drive the rarest list alone, re-check
/// every predicate per candidate, scan to exhaustion. Kept for the
/// bench/oracle comparison ([`IntersectPolicy::Recheck`]).
fn eval_recheck(
    query: &ConjunctiveQuery,
    store: &StoreCore,
    driver: SortedPostings<'_>,
    k: usize,
    stats: &mut EvalStats,
) -> CachedEval {
    stats.recheck_scans += 1;
    let mut topk = TopK::new(k);
    offer_run(query, store, driver.slots(), &mut topk);
    topk.finish(store)
}

/// k-way block-max (WAND-style) intersection: *every* predicate list
/// participates. Candidate blocks come from the rarest list's block-max
/// directory, filtered to blocks every other list also posts to (a block
/// absent from any list cannot hold a full match — an alive matching
/// tuple posts to all of its value lists, stale postings are only ever
/// extra). Each surviving block carries the bound
/// `min(lists' block maxes, store's block max)`, blocks are visited
/// best-bound-first, and once the query has provably overflowed
/// ([`TopK::can_stop`]) every remaining block whose bound cannot beat
/// the heap floor is skipped whole. Within a block the lists intersect
/// through a galloping pivot walk when lopsided and a u64-word bitset
/// AND across all runs when dense (`GALLOP_RATIO` is the cut, re-pinned
/// at block granularity by the `kway` bench group).
///
/// Outcome-invariant like every other strategy: a skipped block only
/// elides candidates that provably cannot enter the top-`k` page, and
/// the overflow classification is pinned before the first skip.
fn eval_blockmax(
    query: &ConjunctiveQuery,
    store: &StoreCore,
    index: &InvertedIndex,
    k: usize,
    early_exit: bool,
    stats: &mut EvalStats,
) -> CachedEval {
    stats.blockmax_intersections += 1;
    // Rarest-first with the same explicit tie-break as `driver_pair`,
    // so the candidate enumeration (and with it every counter) is
    // stable no matter how the query was assembled.
    let mut ranked: Vec<Predicate> = query.predicates().to_vec();
    ranked.sort_unstable_by_key(|p| (index.estimated_len(p.attr, p.value), p.attr, p.value));
    let lists: Vec<SortedPostings<'_>> =
        ranked.iter().map(|p| index.sorted_postings(p.attr, p.value)).collect();
    let mut topk = TopK::new(k);
    // Directory join: one monotone cursor per non-driver list turns the
    // per-block bound lookup into a linear merge over the (sorted)
    // directories — O(total directory length) instead of a binary
    // search per list per driver block, which dominated the whole
    // evaluation on dense multi-predicate pools.
    let mut cursors = vec![0usize; lists.len() - 1];
    let mut blocks: Vec<(u64, Reverse<u32>)> = Vec::with_capacity(lists[0].blocks().len());
    'blk: for &(blk, list_bound) in lists[0].blocks() {
        let mut bound = list_bound.min(store.block_max_score(blk as usize));
        for (cursor, rest) in cursors.iter_mut().zip(&lists[1..]) {
            let dir = rest.blocks();
            while *cursor < dir.len() && dir[*cursor].0 < blk {
                *cursor += 1;
            }
            match dir.get(*cursor) {
                Some(&(b, rest_bound)) if b == blk => bound = bound.min(rest_bound),
                _ => continue 'blk,
            }
        }
        blocks.push((bound, Reverse(blk)));
    }
    // Best-bound-first, block id as the deterministic tie-break
    // (`Reverse` makes equal bounds pop lowest-id-first). A lazy heap
    // instead of a full sort: the early exit usually fires after a
    // handful of blocks, so O(B) heapify + O(log B) per visited block
    // beats O(B log B) sorting of a directory that mostly gets skipped.
    let mut heap = BinaryHeap::from(blocks);
    while let Some((bound, Reverse(blk))) = heap.pop() {
        // The heap is popped bound-descending, so this bound caps every
        // candidate in every remaining block.
        if early_exit && topk.can_stop(bound) {
            stats.early_exits += 1;
            stats.blocks_skipped += heap.len() as u64 + 1;
            break;
        }
        stats.blocks_scanned += 1;
        intersect_block(query, store, &lists, blk, &mut topk, stats);
    }
    topk.finish(store)
}

/// Intersects one block across all predicate runs, feeding full matches
/// (after the columnar `slot_matches` revalidation) into the heap.
fn intersect_block(
    query: &ConjunctiveQuery,
    store: &StoreCore,
    lists: &[SortedPostings<'_>],
    blk: u32,
    topk: &mut TopK,
    stats: &mut EvalStats,
) {
    let runs: Vec<&[Slot]> = lists.iter().map(|l| l.block_run(blk)).collect();
    // Pivot list = shortest run; rarest-first rank breaks ties.
    let driver_idx = (0..runs.len()).min_by_key(|&i| (runs[i].len(), i)).unwrap();
    let driver = runs[driver_idx];
    if driver.is_empty() {
        // A list's directory can promise a block its tombstoned slots
        // vacated; nothing to do.
        return;
    }
    let longest = runs.iter().map(|r| r.len()).max().unwrap();
    if longest >= GALLOP_RATIO * driver.len() {
        block_gallop(query, store, &runs, driver_idx, topk, stats);
    } else {
        block_bitset(query, store, &runs, driver_idx, blk, topk);
    }
}

/// Sparse in-block path: walk the pivot (shortest) run and gallop every
/// other run forward to each pivot slot; the first miss rejects the
/// pivot, an exhausted run ends the block (runs ascend — nothing later
/// can match).
fn block_gallop(
    query: &ConjunctiveQuery,
    store: &StoreCore,
    runs: &[&[Slot]],
    driver_idx: usize,
    topk: &mut TopK,
    stats: &mut EvalStats,
) {
    let mut cursors = vec![0usize; runs.len()];
    let mut prev = None;
    'pivot: for &slot in runs[driver_idx].iter() {
        if prev == Some(slot) {
            continue;
        }
        prev = Some(slot);
        for (i, run) in runs.iter().enumerate() {
            if i == driver_idx {
                continue;
            }
            let j = gallop_to(run, cursors[i], slot);
            stats.pivot_advances += 1;
            cursors[i] = j;
            if j >= run.len() {
                break 'pivot;
            }
            if run[j] != slot {
                continue 'pivot;
            }
        }
        if slot_matches(query, store, slot) {
            topk.offer(store.score_at(slot), slot);
        }
    }
}

/// Dense in-block path: the multi-list word-level AND. Marks the pivot
/// run in a [`BLOCK_WORDS`]-word bitset, ANDs every other run's bitset
/// into it word by word (bailing the moment the accumulator goes empty),
/// then emits surviving slots ascending. Duplicate postings collapse in
/// the bitset for free.
fn block_bitset(
    query: &ConjunctiveQuery,
    store: &StoreCore,
    runs: &[&[Slot]],
    driver_idx: usize,
    blk: u32,
    topk: &mut TopK,
) {
    let base = (blk as usize * BLOCK_SLOTS) as Slot;
    let mut acc = [0u64; BLOCK_WORDS];
    for &slot in runs[driver_idx] {
        let off = (slot - base) as usize;
        acc[off >> 6] |= 1u64 << (off & 63);
    }
    for (i, run) in runs.iter().enumerate() {
        if i == driver_idx {
            continue;
        }
        let mut cur = [0u64; BLOCK_WORDS];
        for &slot in run.iter() {
            let off = (slot - base) as usize;
            cur[off >> 6] |= 1u64 << (off & 63);
        }
        let mut any = 0u64;
        for w in 0..BLOCK_WORDS {
            acc[w] &= cur[w];
            any |= acc[w];
        }
        if any == 0 {
            return;
        }
    }
    for (w, &word) in acc.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let off = (w << 6) | bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let slot = base + off as Slot;
            if slot_matches(query, store, slot) {
                topk.offer(store.score_at(slot), slot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Predicate;

    fn db() -> HiddenDatabase {
        let schema = Schema::with_domain_sizes(&[2, 3], &["price"]).unwrap();
        HiddenDatabase::new(schema, 2, ScoringPolicy::NewestFirst)
    }

    fn t(key: u64, a0: u32, a1: u32, price: f64) -> Tuple {
        Tuple::new(TupleKey(key), vec![ValueId(a0), ValueId(a1)], vec![price])
    }

    fn q(pairs: &[(u16, u32)]) -> ConjunctiveQuery {
        ConjunctiveQuery::from_predicates(
            pairs.iter().map(|&(a, v)| Predicate::new(AttrId(a), ValueId(v))),
        )
    }

    #[test]
    fn end_to_end_insert_query() {
        let mut d = db();
        d.insert(t(1, 0, 0, 10.0)).unwrap();
        d.insert(t(2, 0, 1, 20.0)).unwrap();
        d.insert(t(3, 1, 2, 30.0)).unwrap();
        // Root: 3 tuples > k=2 → overflow with the 2 newest.
        let out = d.answer(&ConjunctiveQuery::select_all());
        assert!(out.is_overflow());
        let keys: Vec<u64> = out.tuples().iter().map(|v| v.key().0).collect();
        assert_eq!(keys, vec![3, 2]);
        // A0=0: exactly 2 → valid.
        let out = d.answer(&q(&[(0, 0)]));
        assert!(out.is_valid());
        assert_eq!(out.returned_count(), 2);
        // A0=1 AND A1=0: none → underflow.
        assert!(d.answer(&q(&[(0, 1), (1, 0)])).is_underflow());
    }

    #[test]
    fn schema_validation_on_insert() {
        let mut d = db();
        // Wrong arity.
        let bad = Tuple::new(TupleKey(1), vec![ValueId(0)], vec![1.0]);
        assert!(d.insert(bad).is_err());
        // Out-of-domain value.
        let bad = Tuple::new(TupleKey(1), vec![ValueId(0), ValueId(3)], vec![1.0]);
        assert!(d.insert(bad).is_err());
        // Wrong measure arity.
        let bad = Tuple::new(TupleKey(1), vec![ValueId(0), ValueId(0)], vec![]);
        assert!(d.insert(bad).is_err());
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn version_bumps_and_cache_invalidates() {
        let mut d = db();
        d.insert(t(1, 0, 0, 1.0)).unwrap();
        let v1 = d.version();
        let root = ConjunctiveQuery::select_all();
        assert_eq!(d.answer(&root).returned_count(), 1);
        assert_eq!(d.answer(&root).returned_count(), 1);
        assert_eq!(d.stats().cache_hits, 1, "second identical query cached");
        d.insert(t(2, 0, 0, 1.0)).unwrap();
        assert!(d.version() > v1);
        assert_eq!(d.answer(&root).returned_count(), 2, "cache must not serve stale data");
    }

    #[test]
    fn memo_never_serves_stale_results_across_apply_batches() {
        // Regression guard for the pre-hashed memo + shared-view cache:
        // every `apply` must invalidate the affected memo entries, so
        // answers after each batch reflect the new state exactly
        // (classification, keys, measures).
        let mut d = db();
        let root = ConjunctiveQuery::select_all();
        let probe = q(&[(0, 0)]);
        for batch_no in 0..10u64 {
            let key = TupleKey(batch_no);
            let batch = UpdateBatch::empty().insert(t(batch_no, 0, 0, batch_no as f64));
            let batch = if batch_no >= 3 {
                batch
                    .delete(TupleKey(batch_no - 3))
                    .update_measures(TupleKey(batch_no - 1), vec![batch_no as f64 * 10.0])
            } else {
                batch
            };
            d.apply(batch).unwrap();
            // Warm the memo…
            let first = d.answer(&root);
            let probed = d.answer(&probe);
            // …and check the warm answers against ground truth.
            assert_eq!(first.returned_count().min(d.k()), d.len().min(d.k()));
            assert_eq!(probed.tuples().len() as u64, d.exact_count(Some(&probe)).min(d.k() as u64));
            assert!(probed.keys().any(|k2| k2 == key), "new tuple visible");
            if batch_no >= 3 {
                assert!(
                    probed.keys().all(|k2| k2 != TupleKey(batch_no - 3)),
                    "deleted tuple must not be served from the memo"
                );
                let updated = d.get(TupleKey(batch_no - 1)).unwrap();
                let served = probed
                    .tuples()
                    .iter()
                    .find(|t| t.key() == TupleKey(batch_no - 1))
                    .expect("updated tuple in page");
                assert_eq!(
                    served.measure(MeasureId(0)),
                    updated.measure(MeasureId(0)),
                    "measure update must invalidate cached views"
                );
            }
            // A second identical ask is a cache hit and must be identical.
            assert_eq!(d.answer(&probe), probed);
            assert!(d.stats().cache_hits > 0);
        }
    }

    #[test]
    fn batch_apply_order_allows_delete_then_reinsert() {
        let mut d = db();
        d.insert(t(1, 0, 0, 1.0)).unwrap();
        let batch = UpdateBatch::empty().delete(TupleKey(1)).insert(t(1, 1, 1, 2.0));
        let s = d.apply(batch).unwrap();
        assert_eq!(s.deleted, 1);
        assert_eq!(s.inserted, 1);
        assert_eq!(d.len(), 1);
        assert_eq!(d.get(TupleKey(1)).unwrap().value(AttrId(0)), ValueId(1));
    }

    #[test]
    fn measure_update_changes_ground_truth_not_membership() {
        let mut d = db();
        d.insert(t(1, 0, 0, 10.0)).unwrap();
        d.update_measures(TupleKey(1), vec![99.0]).unwrap();
        assert_eq!(d.len(), 1);
        let sum = d.exact_sum(None, |t| t.measure(MeasureId(0)));
        assert_eq!(sum, 99.0);
    }

    #[test]
    fn exact_aggregates() {
        let mut d = db();
        d.insert(t(1, 0, 0, 10.0)).unwrap();
        d.insert(t(2, 0, 1, 20.0)).unwrap();
        d.insert(t(3, 1, 1, 40.0)).unwrap();
        assert_eq!(d.exact_count(None), 3);
        assert_eq!(d.exact_count(Some(&q(&[(0, 0)]))), 2);
        let s = d.exact_sum(Some(&q(&[(1, 1)])), |t| t.measure(MeasureId(0)));
        assert_eq!(s, 60.0);
    }

    #[test]
    fn sampling_alive_keys_is_uniformish_and_exact_count() {
        use rand::SeedableRng;
        let mut d = db();
        for key in 0..50 {
            d.insert(t(key, (key % 2) as u32, (key % 3) as u32, key as f64)).unwrap();
        }
        for key in 0..25 {
            d.delete(TupleKey(key)).unwrap();
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let sample = d.sample_alive_keys(&mut rng, 10);
        assert_eq!(sample.len(), 10);
        for k in &sample {
            assert!(k.0 >= 25, "sampled deleted tuple {k}");
        }
        let mut uniq = sample.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 10, "sample must be distinct");
        // Ask for more than alive: get exactly the alive count.
        let all = d.sample_alive_keys(&mut rng, 1000);
        assert_eq!(all.len(), 25);
    }

    #[test]
    #[should_panic(expected = "valid for the schema")]
    fn invalid_query_panics() {
        let mut d = db();
        d.insert(t(1, 0, 0, 1.0)).unwrap();
        d.answer(&q(&[(0, 5)]));
    }

    #[test]
    fn failed_partial_batch_still_invalidates_memo() {
        // Regression (PR 2 satellite): `apply` used to return `Err`
        // mid-batch *without* invalidating, even though earlier elements
        // stayed applied — the memo then served pages containing deleted
        // tuples.
        let mut d = db();
        d.insert(t(1, 0, 0, 10.0)).unwrap();
        d.insert(t(2, 0, 1, 20.0)).unwrap();
        let probe = q(&[(0, 0)]);
        let before = d.answer(&probe);
        assert!(before.keys().any(|k| k == TupleKey(1)), "tuple 1 visible before the batch");
        let v_before = d.version();

        // Delete key 1 (applies), then fail on an unknown key.
        let batch = UpdateBatch::empty().delete(TupleKey(1)).delete(TupleKey(999));
        assert!(d.apply(batch).is_err());
        assert!(d.version() > v_before, "partial batch must bump the version");
        assert!(d.get(TupleKey(1)).is_none(), "prefix stayed applied");

        let after = d.answer(&probe);
        assert!(
            after.keys().all(|k| k != TupleKey(1)),
            "deleted tuple must not be served from the memo after a failed batch"
        );
        assert_eq!(d.exact_count(Some(&probe)), 1);
    }

    #[test]
    fn failed_batch_with_no_applied_prefix_is_a_no_op() {
        let mut d = db();
        d.insert(t(1, 0, 0, 10.0)).unwrap();
        let root = ConjunctiveQuery::select_all();
        d.answer(&root);
        let v = d.version();
        // First element already fails: nothing applied, nothing to
        // invalidate.
        assert!(d.apply(UpdateBatch::empty().delete(TupleKey(999))).is_err());
        assert_eq!(d.version(), v, "no change applied, no version bump");
        let hits = d.stats().cache_hits;
        d.answer(&root);
        assert_eq!(d.stats().cache_hits, hits + 1, "memo retained");
    }

    #[test]
    fn empty_batch_is_a_true_no_op() {
        // Regression (PR 2 satellite): an empty batch used to bump the
        // version and drop the whole memo, making no-change rounds pay
        // full cold-cache cost.
        let mut d = db();
        d.insert(t(1, 0, 0, 10.0)).unwrap();
        let root = ConjunctiveQuery::select_all();
        d.answer(&root);
        let v = d.version();
        let s = d.apply(UpdateBatch::empty()).unwrap();
        assert_eq!(s, UpdateSummary::default());
        assert_eq!(d.version(), v, "empty batch must not bump the version");
        let hits = d.stats().cache_hits;
        d.answer(&root);
        assert_eq!(d.stats().cache_hits, hits + 1, "memo survives a no-change round");
    }

    #[test]
    fn incremental_invalidation_retains_unaffected_entries() {
        let mut d = db();
        d.insert(t(1, 0, 0, 1.0)).unwrap();
        d.insert(t(2, 1, 1, 2.0)).unwrap();
        let untouched = q(&[(0, 1)]); // matches tuple 2 only
        let touched = q(&[(0, 0)]); // matches tuple 1 and the new tuple
        let root = ConjunctiveQuery::select_all();
        d.answer(&untouched);
        d.answer(&touched);
        d.answer(&root);
        assert_eq!(d.memo_len(), 3);

        // Insert a tuple with A0=0: `touched` and the root change;
        // `untouched` must survive and hit.
        d.insert(t(3, 0, 2, 3.0)).unwrap();
        assert_eq!(d.memo_len(), 1, "only the unaffected entry survives");
        let hits = d.stats().cache_hits;
        let out = d.answer(&untouched);
        assert_eq!(d.stats().cache_hits, hits + 1, "unaffected entry served warm");
        assert_eq!(out.returned_count(), 1);
        // The dropped entries re-evaluate correctly.
        assert_eq!(d.answer(&touched).returned_count(), 2);
        // Root overflows at k=2 with 3 alive tuples.
        assert!(d.answer(&root).is_overflow());
        let ms = d.memo_stats();
        assert_eq!(ms.invalidated, 2);
        assert!(ms.retained >= 1);
    }

    #[test]
    fn wholesale_policy_still_clears_everything() {
        let mut d = db();
        d.set_invalidation_policy(InvalidationPolicy::Wholesale);
        d.insert(t(1, 0, 0, 1.0)).unwrap();
        d.insert(t(2, 1, 1, 2.0)).unwrap();
        let untouched = q(&[(0, 1)]);
        d.answer(&untouched);
        assert_eq!(d.memo_len(), 1);
        d.insert(t(3, 0, 2, 3.0)).unwrap();
        assert_eq!(d.memo_len(), 0, "wholesale drops unaffected entries too");
        let hits = d.stats().cache_hits;
        d.answer(&untouched);
        assert_eq!(d.stats().cache_hits, hits, "cold after wholesale clear");
    }

    #[test]
    fn disabled_policy_never_caches_and_stays_correct() {
        let mut d = db();
        d.set_invalidation_policy(InvalidationPolicy::Disabled);
        d.insert(t(1, 0, 0, 1.0)).unwrap();
        let root = ConjunctiveQuery::select_all();
        assert_eq!(d.answer(&root).returned_count(), 1);
        assert_eq!(d.answer(&root).returned_count(), 1);
        assert_eq!(d.memo_len(), 0);
        assert_eq!(d.stats().cache_hits, 0);
    }

    #[test]
    fn memo_capacity_bounds_adversarial_distinct_queries() {
        let schema = Schema::with_domain_sizes(&[64, 3], &[]).unwrap();
        let mut d = HiddenDatabase::new(schema, 2, ScoringPolicy::NewestFirst);
        d.set_memo_capacity(8);
        for v in 0..64u32 {
            d.answer(&q(&[(0, v)]));
            assert!(d.memo_len() <= 8, "memo exceeded its cap at v={v}");
        }
        let ms = d.memo_stats();
        assert!(ms.evicted >= 56, "distinct stream must evict, got {}", ms.evicted);
        assert_eq!(ms.insertions, 64);
    }

    #[test]
    fn measure_update_invalidates_queries_matching_the_tuple() {
        let mut d = db();
        d.insert(t(1, 0, 0, 10.0)).unwrap();
        d.insert(t(2, 1, 1, 20.0)).unwrap();
        let probe = q(&[(0, 0)]);
        let other = q(&[(0, 1)]);
        d.answer(&probe);
        d.answer(&other);
        d.update_measures(TupleKey(1), vec![99.0]).unwrap();
        // `probe` matches tuple 1: its cached page held the old measure.
        let served = d.answer(&probe);
        assert_eq!(served.tuples()[0].measure(MeasureId(0)), 99.0);
        // `other` did not match tuple 1 and survived warm.
        let hits = d.stats().cache_hits;
        d.answer(&other);
        assert_eq!(d.stats().cache_hits, hits + 1);
    }

    #[test]
    fn set_k_affects_classification() {
        let mut d = db();
        for key in 0..3 {
            d.insert(t(key, 0, 0, 0.0)).unwrap();
        }
        assert!(d.answer(&ConjunctiveQuery::select_all()).is_overflow());
        d.set_k(3);
        assert!(d.answer(&ConjunctiveQuery::select_all()).is_valid());
    }

    /// Regression (PR 3 satellite): driver selection used `min_by_key` on
    /// the live-length estimate, which keeps whichever tied predicate
    /// iteration order happens to present first. Ties must break by
    /// `(attr, value)`.
    #[test]
    fn driver_selection_breaks_ties_deterministically() {
        let schema = Schema::with_domain_sizes(&[3, 3, 3], &[]).unwrap();
        let mut d = HiddenDatabase::new(schema, 2, ScoringPolicy::NewestFirst);
        // A0=1, A1=2, A2=1 all get exactly two postings; A0=0 gets four.
        for (key, (a0, a1, a2)) in
            [(1, 2, 1), (1, 2, 1), (0, 0, 0), (0, 0, 2)].into_iter().enumerate()
        {
            d.insert(Tuple::new(
                TupleKey(key as u64),
                vec![ValueId(a0), ValueId(a1), ValueId(a2)],
                vec![],
            ))
            .unwrap();
        }
        let query = ConjunctiveQuery::from_predicates([
            Predicate::new(AttrId(2), ValueId(1)),
            Predicate::new(AttrId(0), ValueId(1)),
            Predicate::new(AttrId(1), ValueId(2)),
        ]);
        let (a, b) = driver_pair(&d.index, &query);
        // All three tie at 2 live postings: (attr, value) order wins.
        assert_eq!((a.attr, a.value), (AttrId(0), ValueId(1)));
        assert_eq!((b.attr, b.value), (AttrId(1), ValueId(2)));
        // And the pair is invariant under predicate permutation.
        let permuted = ConjunctiveQuery::from_predicates([
            Predicate::new(AttrId(1), ValueId(2)),
            Predicate::new(AttrId(0), ValueId(1)),
            Predicate::new(AttrId(2), ValueId(1)),
        ]);
        assert_eq!(driver_pair(&d.index, &permuted), (a, b));
        assert_eq!(d.answer(&query), d.answer(&permuted));
    }

    /// Every intersection strategy and the early-exit toggle must agree
    /// bit-for-bit with each other and with ground truth.
    #[test]
    fn intersection_strategies_are_outcome_invariant() {
        let mut reference = None;
        for intersect in [
            IntersectPolicy::Auto,
            IntersectPolicy::Gallop,
            IntersectPolicy::Bitset,
            IntersectPolicy::BlockMax,
            IntersectPolicy::Recheck,
        ] {
            for early_exit in [true, false] {
                let schema = Schema::with_domain_sizes(&[2, 3, 4], &["m"]).unwrap();
                let mut d = HiddenDatabase::new(schema, 3, ScoringPolicy::NewestFirst);
                d.set_invalidation_policy(InvalidationPolicy::Disabled);
                d.set_eval_config(EvalConfig { early_exit, intersect });
                for key in 0..200u64 {
                    d.insert(Tuple::new(
                        TupleKey(key),
                        vec![
                            ValueId((key % 2) as u32),
                            ValueId((key % 3) as u32),
                            ValueId((key % 4) as u32),
                        ],
                        vec![key as f64],
                    ))
                    .unwrap();
                }
                for key in (0..200u64).step_by(5) {
                    d.delete(TupleKey(key)).unwrap();
                }
                let mut answers = Vec::new();
                for (v0, v1, v2) in
                    [(0, 0, 0), (1, 1, 1), (0, 2, 3), (1, 0, 2), (0, 1, 0), (1, 2, 1)]
                {
                    let q = q(&[(0, v0), (1, v1), (2, v2)]);
                    let out = d.answer(&q);
                    let truth = d.exact_count(Some(&q));
                    match truth {
                        0 => assert!(out.is_underflow()),
                        n if n <= 3 => {
                            assert!(out.is_valid());
                            assert_eq!(out.returned_count() as u64, n);
                        }
                        _ => assert!(out.is_overflow()),
                    }
                    answers.push(out);
                }
                match &reference {
                    None => reference = Some(answers),
                    Some(want) => {
                        assert_eq!(want, &answers, "{intersect:?} early_exit={early_exit} diverged")
                    }
                }
            }
        }
    }

    /// On a multi-segment `NewestFirst` store the best tuples live in the
    /// newest segment, so an overflowing scan must stop after it.
    #[test]
    fn early_exit_fires_on_multi_segment_newest_first() {
        let schema = Schema::with_domain_sizes(&[2], &[]).unwrap();
        let mut d = HiddenDatabase::new(schema, 5, ScoringPolicy::NewestFirst);
        d.set_invalidation_policy(InvalidationPolicy::Disabled);
        let n = (2 * crate::store::SEGMENT_SLOTS + 100) as u64;
        for key in 0..n {
            d.insert(t_a0(key, (key % 2) as u32)).unwrap();
        }
        let root = ConjunctiveQuery::select_all();
        let out = d.answer(&root);
        assert!(out.is_overflow());
        let keys: Vec<u64> = out.keys().map(|k| k.0).collect();
        assert_eq!(keys, vec![n - 1, n - 2, n - 3, n - 4, n - 5]);
        let stats = d.eval_stats();
        assert!(stats.early_exits >= 1, "root scan should exit early: {stats:?}");
        assert!(stats.segments_skipped >= 1);
        // Single-predicate scans exit early too.
        let before = d.eval_stats().early_exits;
        let probe = q(&[(0, 0)]);
        let out = d.answer(&probe);
        assert!(out.is_overflow());
        assert!(d.eval_stats().early_exits > before);
        // …and disabling the exit changes nothing but the counters.
        let mut exhaustive = d.clone();
        exhaustive.set_eval_config(EvalConfig { early_exit: false, ..EvalConfig::default() });
        assert_eq!(exhaustive.answer(&root), d.answer(&root));
        assert_eq!(exhaustive.answer(&probe), d.answer(&probe));
    }

    fn t_a0(key: u64, v: u32) -> Tuple {
        Tuple::new(TupleKey(key), vec![ValueId(v)], vec![])
    }

    /// The satellite regression pinning the ROADMAP claim: under
    /// `ByMeasureDesc` ranking, heavy deletes of the top scorers leave
    /// every segment bound stale-high, so the early exit stops firing —
    /// and a maintenance pass (exact bound recompute) re-arms it, with
    /// bit-identical answers throughout.
    #[test]
    fn compaction_rearms_early_exit_under_measure_ranked_deletes() {
        let schema = Schema::with_domain_sizes(&[2], &["m"]).unwrap();
        let mut d = HiddenDatabase::new(schema, 10, ScoringPolicy::ByMeasureDesc(MeasureId(0)));
        d.set_invalidation_policy(InvalidationPolicy::Disabled);
        let segs = 3usize;
        let n = (segs * crate::store::SEGMENT_SLOTS) as u64;
        // Every segment gets the same measure distribution, so every
        // segment's bound starts near the global maximum.
        let measure = |key: u64| (key.wrapping_mul(2654435761) % 1000) as f64;
        for key in 0..n {
            d.insert(Tuple::new(
                TupleKey(key),
                vec![ValueId((key % 2) as u32)],
                vec![measure(key)],
            ))
            .unwrap();
        }
        // Purge the high scorers everywhere except the last segment:
        // the alive maxima of the early segments collapse, their bounds
        // do not.
        let last_seg_start = ((segs - 1) * crate::store::SEGMENT_SLOTS) as u64;
        for key in 0..last_seg_start {
            if measure(key) >= 500.0 {
                d.delete(TupleKey(key)).unwrap();
            }
        }
        assert!(d.stale_segment_count() >= segs - 1, "deletes left bounds stale");

        let root = ConjunctiveQuery::select_all();
        let probe = q_a0(0);
        let before = d.eval_stats();
        let page_root = d.answer(&root);
        let page_probe = d.answer(&probe);
        assert!(page_root.is_overflow() && page_probe.is_overflow());
        let after = d.eval_stats();
        assert_eq!(after.early_exits, before.early_exits, "stale bounds disarm the exit");
        assert_eq!(after.segments_skipped, before.segments_skipped);

        let report = d.compact();
        assert!(report.bounds_tightened >= segs - 1, "{report:?}");
        assert!(report.postings_purged > 0, "tombstones purged: {report:?}");
        assert_eq!(d.stale_segment_count(), 0);
        let before = d.eval_stats();
        assert_eq!(d.answer(&root), page_root, "maintenance must not change answers");
        assert_eq!(d.answer(&probe), page_probe);
        let after = d.eval_stats();
        assert!(after.early_exits > before.early_exits, "compaction re-arms the exit");
        assert!(after.segments_skipped >= before.segments_skipped + 2, "{after:?}");
    }

    fn q_a0(v: u32) -> ConjunctiveQuery {
        ConjunctiveQuery::from_predicates([Predicate::new(AttrId(0), ValueId(v))])
    }

    /// `Auto` hands 3+-predicate queries to the k-way block-max engine
    /// when even the rarest list clears the `BLOCKMAX_MIN_RAREST` density
    /// gate, and keeps the pair strategies for 2 predicates and for
    /// selective conjunctions (where driving the rare list is cheaper
    /// than probing every list's block directory).
    #[test]
    fn auto_routes_dense_three_predicates_to_blockmax() {
        let schema = Schema::with_domain_sizes(&[2, 3, 4], &[]).unwrap();
        let mut d = HiddenDatabase::new(schema, 3, ScoringPolicy::NewestFirst);
        d.set_invalidation_policy(InvalidationPolicy::Disabled);
        // Dense population: value 0 on every attribute, exactly at the
        // density gate. A sparse (1, 1, 1) tail rides along.
        let dense = BLOCKMAX_MIN_RAREST as u64;
        for key in 0..dense + 60 {
            let v = u32::from(key >= dense);
            d.insert(Tuple::new(TupleKey(key), vec![ValueId(v), ValueId(v), ValueId(v)], vec![]))
                .unwrap();
        }
        d.answer(&q(&[(0, 0), (1, 0)]));
        let s = d.eval_stats();
        assert_eq!(s.blockmax_intersections, 0, "2 predicates stay on the pair engines");
        assert_eq!(s.gallop_intersections + s.bitset_intersections, 1);
        d.answer(&q(&[(0, 1), (1, 1), (2, 1)]));
        let s = d.eval_stats();
        assert_eq!(s.blockmax_intersections, 0, "sparse rarest list stays on the pair engines");
        assert_eq!(s.gallop_intersections + s.bitset_intersections, 2);
        d.answer(&q(&[(0, 0), (1, 0), (2, 0)]));
        let s = d.eval_stats();
        assert_eq!(s.blockmax_intersections, 1, "dense 3 predicates route to block-max");
        assert!(s.blocks_scanned >= 1);
        // Forcing BlockMax engages it even for two sparse lists.
        d.set_eval_config(EvalConfig {
            intersect: IntersectPolicy::BlockMax,
            ..Default::default()
        });
        d.answer(&q(&[(0, 1), (1, 1)]));
        assert_eq!(d.eval_stats().blockmax_intersections, 2);
    }

    /// Block-granularity sibling of
    /// `compaction_rearms_early_exit_under_measure_ranked_deletes`:
    /// deletes of the top scorers leave every block bound stale-high and
    /// the block-max skip stops firing; maintenance (exact store + list
    /// bound rebuilds) re-arms it — answers bit-identical throughout.
    #[test]
    fn compaction_rearms_blockmax_skips_under_measure_ranked_deletes() {
        let schema = Schema::with_domain_sizes(&[2, 2, 2], &["m"]).unwrap();
        let mut d = HiddenDatabase::new(schema, 10, ScoringPolicy::ByMeasureDesc(MeasureId(0)));
        d.set_invalidation_policy(InvalidationPolicy::Disabled);
        d.set_eval_config(EvalConfig {
            intersect: IntersectPolicy::BlockMax,
            ..Default::default()
        });
        let blocks = 8usize;
        let n = (blocks * BLOCK_SLOTS) as u64;
        // Every block gets the same measure staircase 0..BLOCK_SLOTS, so
        // every block bound starts at the same (exact) maximum.
        let measure = |key: u64| (key % BLOCK_SLOTS as u64) as f64;
        for key in 0..n {
            d.insert(Tuple::new(
                TupleKey(key),
                vec![ValueId(0), ValueId(0), ValueId(0)],
                vec![measure(key)],
            ))
            .unwrap();
        }
        // Purge the top half everywhere except the last two blocks: the
        // alive maxima of the early blocks collapse, their bounds do
        // not. (Sparing two blocks keeps the lists' tombstone fraction
        // at 37.5 %, under the reactive COMPACT_DEAD_FRACTION — the
        // point is that *only* the maintenance pass rebuilds bounds.)
        let spared_start = ((blocks - 2) * BLOCK_SLOTS) as u64;
        for key in 0..spared_start {
            if measure(key) >= (BLOCK_SLOTS / 2) as f64 {
                d.delete(TupleKey(key)).unwrap();
            }
        }
        let probe = q(&[(0, 0), (1, 0), (2, 0)]);
        let before = d.eval_stats();
        let page = d.answer(&probe);
        assert!(page.is_overflow());
        let after = d.eval_stats();
        assert_eq!(after.blockmax_intersections, before.blockmax_intersections + 1);
        assert_eq!(after.blocks_skipped, before.blocks_skipped, "stale bounds disarm the skip");
        assert_eq!(after.blocks_scanned, before.blocks_scanned + blocks as u64);

        let report = d.compact();
        // Note the *segment* bound does not tighten — the spared blocks
        // still hold the segment maximum. Everything this test pins
        // happens strictly below segment granularity.
        assert_eq!(report.bounds_tightened, 0, "{report:?}");
        assert!(report.segments_recomputed >= 1, "{report:?}");
        assert!(report.postings_purged > 0, "{report:?}");
        let before = d.eval_stats();
        assert_eq!(d.answer(&probe), page, "maintenance must not change answers");
        let after = d.eval_stats();
        // The two spared blocks (exact bound BLOCK_SLOTS-1) are visited
        // first and overflow the page; every purged block's rebuilt
        // bound (BLOCK_SLOTS/2 - 1) now provably misses the floor.
        assert_eq!(after.blocks_scanned, before.blocks_scanned + 2, "two blocks suffice");
        assert_eq!(after.blocks_skipped, before.blocks_skipped + (blocks as u64 - 2));
        assert!(after.early_exits > before.early_exits);
    }

    /// Regression: an in-place measure update that *raises* a tuple's
    /// rank must propagate to the per-list block-max bounds immediately.
    /// Without `note_score_raise` the tuple's block keeps its old low
    /// bound, the skip wrongly elides it, and the page misses the new
    /// leader.
    #[test]
    fn score_raise_propagates_to_blockmax_bounds() {
        let schema = Schema::with_domain_sizes(&[2, 2, 2], &["m"]).unwrap();
        let mut d = HiddenDatabase::new(schema, 2, ScoringPolicy::ByMeasureDesc(MeasureId(0)));
        d.set_invalidation_policy(InvalidationPolicy::Disabled);
        d.set_eval_config(EvalConfig {
            intersect: IntersectPolicy::BlockMax,
            ..Default::default()
        });
        // Block 0: uniformly low. Block 1: uniformly high — so block 0's
        // bound sits far under the floor and is the natural skip victim.
        let n = (2 * BLOCK_SLOTS) as u64;
        for key in 0..n {
            let m = if (key as usize) < BLOCK_SLOTS { 1.0 } else { 100.0 };
            d.insert(Tuple::new(TupleKey(key), vec![ValueId(0), ValueId(0), ValueId(0)], vec![m]))
                .unwrap();
        }
        let probe = q(&[(0, 0), (1, 0), (2, 0)]);
        let page = d.answer(&probe);
        assert!(page.is_overflow());
        assert!(page.keys().all(|k| k.0 >= BLOCK_SLOTS as u64), "page comes from block 1");
        // Promote a block-0 tuple over everything.
        d.update_measures(TupleKey(5), vec![999.0]).unwrap();
        let page = d.answer(&probe);
        assert_eq!(page.keys().next(), Some(TupleKey(5)), "raised tuple must lead the page");
        // And the raised page matches the exhaustive reference bit for bit.
        let mut reference = d.clone();
        reference
            .set_eval_config(EvalConfig { early_exit: false, intersect: IntersectPolicy::Recheck });
        assert_eq!(reference.answer(&probe), page);
    }

    /// Maintenance is slot-stable: future inserts land in the same slots
    /// and every answer (including tie-breaks) is unchanged whether or
    /// when `maintain` runs.
    #[test]
    fn maintenance_is_outcome_and_slot_invariant() {
        let build = |maintain_every: Option<usize>| {
            let schema = Schema::with_domain_sizes(&[2, 3], &["price"]).unwrap();
            let mut d = HiddenDatabase::new(schema, 3, ScoringPolicy::ByMeasureDesc(MeasureId(0)));
            let mut outs = Vec::new();
            for round in 0..30u64 {
                // Ties everywhere: measures from a tiny domain, so slot
                // tie-breaks decide pages.
                let batch = UpdateBatch::empty()
                    .insert(t(round * 2 + 1000, (round % 2) as u32, (round % 3) as u32, 5.0))
                    .insert(t(round * 2 + 1001, (round % 2) as u32, 0, 5.0));
                let batch =
                    if round >= 4 { batch.delete(TupleKey((round - 4) * 2 + 1000)) } else { batch };
                d.apply(batch).unwrap();
                if let Some(every) = maintain_every {
                    if (round as usize).is_multiple_of(every) {
                        d.maintain(MaintenanceBudget::slots(crate::store::SEGMENT_SLOTS));
                    }
                }
                outs.push(d.answer(&ConjunctiveQuery::select_all()));
                outs.push(d.answer(&q(&[(0, 0)])));
                outs.push(d.answer(&q(&[(0, 1), (1, 0)])));
            }
            (outs, d.alive_keys_sorted())
        };
        let (plain, keys_plain) = build(None);
        let (maintained, keys_maintained) = build(Some(3));
        assert_eq!(plain, maintained, "maintenance changed an answer");
        assert_eq!(keys_plain, keys_maintained);
    }

    /// Cross-round revalidation end to end: an overflow page survives
    /// below-the-floor churn as a resurrection (same shared page), and a
    /// page hit still drops it.
    #[test]
    fn revalidation_resurrects_overflow_pages_across_rounds() {
        let schema = Schema::with_domain_sizes(&[2], &["m"]).unwrap();
        let mut d = HiddenDatabase::new(schema, 2, ScoringPolicy::ByMeasureDesc(MeasureId(0)));
        assert!(d.revalidation_enabled(), "revalidation is the default");
        for key in 0..6u64 {
            d.insert(Tuple::new(TupleKey(key), vec![ValueId(0)], vec![100.0 + key as f64]))
                .unwrap();
        }
        let probe = ConjunctiveQuery::from_predicates([Predicate::new(AttrId(0), ValueId(0))]);
        let page = d.answer(&probe);
        assert!(page.is_overflow());
        assert_eq!(page.keys().collect::<Vec<_>>(), vec![TupleKey(5), TupleKey(4)]);

        // Below-the-floor churn: a matching insert scoring under the
        // page floor demotes the entry, then the next ask resurrects it.
        d.insert(Tuple::new(TupleKey(100), vec![ValueId(0)], vec![1.0])).unwrap();
        assert_eq!(d.memo_stale_len(), 1);
        let hits = d.stats().cache_hits;
        let again = d.answer(&probe);
        assert_eq!(again, page);
        assert_eq!(d.stats().cache_hits, hits + 1, "resurrection is a cache hit");
        assert_eq!(d.memo_stats().resurrected, 1);
        assert_eq!(d.memo_stale_len(), 0);

        // Above-the-floor churn: the re-check refutes the entry and the
        // fresh page shows the new leader.
        d.insert(Tuple::new(TupleKey(101), vec![ValueId(0)], vec![999.0])).unwrap();
        let fresh = d.answer(&probe);
        assert_eq!(fresh.keys().next(), Some(TupleKey(101)));
        assert_eq!(d.memo_stats().revalidation_failed, 1);

        // A page hit (deleting a served tuple) drops hard — no stale
        // entry left behind.
        d.delete(TupleKey(101)).unwrap();
        assert_eq!(d.memo_stale_len(), 0);
        let after_delete = d.answer(&probe);
        assert!(after_delete.keys().all(|k| k != TupleKey(101)));

        // Turning revalidation off restores PR 2 drop semantics.
        d.set_revalidation(false);
        d.answer(&probe);
        let demoted_before = d.memo_stats().demoted;
        d.insert(Tuple::new(TupleKey(102), vec![ValueId(0)], vec![2.0])).unwrap();
        assert_eq!(d.memo_stats().demoted, demoted_before);
        assert_eq!(d.memo_stale_len(), 0);
    }

    /// Ground-truth fan-out must match the sequential sweep bit-for-bit
    /// at every thread count.
    #[test]
    fn ground_truth_fanout_matches_sequential_bitwise() {
        use aggtrack_parallel::Threads;
        let schema = Schema::with_domain_sizes(&[2, 3], &["price"]).unwrap();
        let mut d = HiddenDatabase::new(schema, 4, ScoringPolicy::default());
        let n = (crate::store::SEGMENT_SLOTS + 777) as u64;
        for key in 0..n {
            d.insert(t(key, (key % 2) as u32, (key % 3) as u32, (key as f64).sqrt() * 0.1))
                .unwrap();
        }
        for key in (0..n).step_by(7) {
            d.delete(TupleKey(key)).unwrap();
        }
        let probe = q(&[(0, 1), (1, 2)]);
        let count = d.exact_count(Some(&probe));
        let sum = d.exact_sum(Some(&probe), |t| t.measure(MeasureId(0)));
        let root_sum = d.exact_sum(None, |t| t.measure(MeasureId(0)));
        for workers in [1, 2, 4, 7] {
            let threads = Threads::fixed(workers);
            assert_eq!(d.exact_count_threads(Some(&probe), threads), count);
            assert_eq!(
                d.exact_sum_threads(Some(&probe), |t| t.measure(MeasureId(0)), threads).to_bits(),
                sum.to_bits(),
                "{workers}-thread conditional sum drifted"
            );
            assert_eq!(
                d.exact_sum_threads(None, |t| t.measure(MeasureId(0)), threads).to_bits(),
                root_sum.to_bits(),
                "{workers}-thread root sum drifted"
            );
        }
    }

    fn persist_cfg(name: &str, resident: usize) -> crate::persist::PersistConfig {
        let dir =
            std::env::temp_dir().join(format!("hidden-db-database-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        crate::persist::PersistConfig::new(dir, resident)
    }

    /// The warm-restart promise end to end: checkpoint, drop the
    /// database, `open_persistent` — and the reopened database answers
    /// and evolves identically, out-of-core the whole way.
    #[test]
    fn checkpoint_and_open_persistent_roundtrip() {
        let cfg = persist_cfg("roundtrip", 2);
        let n = (crate::store::SEGMENT_SLOTS * 2 + 333) as u64;
        let mut d = db();
        d.enable_persist(&cfg).unwrap();
        assert!(d.persist_enabled());
        for key in 0..n {
            d.insert(t(key, (key % 2) as u32, (key % 3) as u32, key as f64)).unwrap();
        }
        for key in (0..n).step_by(11) {
            d.delete(TupleKey(key)).unwrap();
        }
        let probe = q(&[(0, 1), (1, 2)]);
        let before = d.answer(&probe);
        d.checkpoint().unwrap();

        drop(d);
        let mut re = HiddenDatabase::open_persistent(&cfg).unwrap();
        assert!(re.persist_enabled());
        assert_eq!(re.answer(&probe), before);
        assert!(
            re.persist_stats().peak_resident_segments <= 2,
            "reopen must stay inside the resident budget"
        );
        // Post-restart evolution still matches an in-RAM twin of the
        // same history (slot reuse included).
        re.insert(t(n + 1, 1, 2, -5.0)).unwrap();
        let out = re.answer(&probe);
        assert!(out.tuples().iter().any(|v| v.key() == TupleKey(n + 1)));
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    /// Checkpoints are cumulative journal records: reopening always
    /// resumes from the *last* durable one.
    #[test]
    fn reopen_resumes_from_latest_checkpoint() {
        let cfg = persist_cfg("latest", 4);
        let mut d = db();
        d.enable_persist(&cfg).unwrap();
        d.insert(t(1, 0, 0, 1.0)).unwrap();
        d.checkpoint().unwrap();
        d.insert(t(2, 1, 1, 2.0)).unwrap();
        d.checkpoint().unwrap();
        drop(d);
        let re = HiddenDatabase::open_persistent(&cfg).unwrap();
        assert_eq!(re.len(), 2);
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn persist_misuse_is_rejected() {
        let cfg = persist_cfg("misuse", 2);
        let mut d = db();
        assert!(d.checkpoint().is_err(), "checkpoint without a tier must fail");
        assert_eq!(d.persist_stats(), crate::stats::PersistStats::default());
        d.enable_persist(&cfg).unwrap();
        assert!(d.enable_persist(&cfg).is_err(), "double enable must fail");
        // A fresh dir with no journal has nothing to open.
        let empty = persist_cfg("misuse-empty", 2);
        assert!(HiddenDatabase::open_persistent(&empty).is_err());
        let _ = std::fs::remove_dir_all(&cfg.dir);
        let _ = std::fs::remove_dir_all(&empty.dir);
    }
}
