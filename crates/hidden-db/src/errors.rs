//! Error types for the hidden database substrate.

use crate::value::{AttrId, TupleKey};
use std::fmt;

/// Errors raised while constructing a [`crate::schema::Schema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// A schema must contain at least one categorical attribute.
    NoAttributes,
    /// More attributes than the `u16` id space allows.
    TooManyAttributes(usize),
    /// More measures than the `u16` id space allows.
    TooManyMeasures(usize),
    /// Attribute declared with an empty domain.
    EmptyDomain {
        /// The offending attribute.
        attr: AttrId,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoAttributes => write!(f, "schema has no attributes"),
            Self::TooManyAttributes(n) => write!(f, "too many attributes: {n}"),
            Self::TooManyMeasures(n) => write!(f, "too many measures: {n}"),
            Self::EmptyDomain { attr } => write!(f, "attribute {attr} has an empty domain"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// Errors raised while mutating or querying the database.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// Tuple shape (value or measure count) does not match the schema, or a
    /// value is outside its attribute's domain.
    TupleMismatch(String),
    /// Query references an attribute or value outside the schema.
    InvalidQuery(String),
    /// Insert of a tuple key that already exists and is alive.
    DuplicateKey(TupleKey),
    /// Delete/update of a key that does not exist (or is already deleted).
    UnknownKey(TupleKey),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TupleMismatch(msg) => write!(f, "tuple does not match schema: {msg}"),
            Self::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            Self::DuplicateKey(k) => write!(f, "duplicate tuple key {k}"),
            Self::UnknownKey(k) => write!(f, "unknown tuple key {k}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Raised by a [`crate::session::SearchSession`] when the per-round query
/// budget `G` is exhausted (§2.1: "Let G be the number of queries one can
/// issue to the database per round").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExhausted {
    /// The budget that was in force.
    pub limit: u64,
}

impl fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "per-round query budget of {} exhausted", self.limit)
    }
}

impl std::error::Error for BudgetExhausted {}

/// The kind of a transient, retryable interface failure — the taxonomy a
/// real remote search form exposes (cf. §2.1's Amazon/eBay-style
/// interfaces, which time out, throttle, and drop pages).
///
/// Every kind is an **error**, never a corrupted answer: a truncated or
/// empty page is reported as a failure the caller can detect and retry,
/// so faults may consume budget but can never silently change an
/// estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransientFault {
    /// Server-side 5xx-style error; the query was charged but no answer
    /// returned.
    Http5xx,
    /// The result page came back truncated (detectable by the client:
    /// fewer rows than the interface promised for this outcome class).
    TruncatedPage,
    /// The result page came back empty despite the query being charged.
    EmptyPage,
    /// The interface charged the query (possibly repeatedly) without
    /// ever delivering the answer.
    ChargedNoAnswer,
}

impl fmt::Display for TransientFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Http5xx => write!(f, "server error (5xx)"),
            Self::TruncatedPage => write!(f, "truncated result page"),
            Self::EmptyPage => write!(f, "empty result page"),
            Self::ChargedNoAnswer => write!(f, "query charged without an answer"),
        }
    }
}

/// Everything [`crate::session::SearchBackend::issue`] can fail with.
///
/// Until PR 6 the only error an estimator could see was budget
/// exhaustion; this is the full taxonomy of a real remote interface.
/// [`IssueError::BudgetExhausted`] is terminal for the round; every other
/// variant is transient and worth retrying
/// ([`IssueError::is_recoverable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueError {
    /// The per-round budget `G` is spent — terminal for this round.
    BudgetExhausted(BudgetExhausted),
    /// A transient failure; the query may or may not have been charged
    /// (see [`TransientFault`]).
    Transient(TransientFault),
    /// The interface throttled the client; retry no sooner than
    /// `retry_after` ticks.
    RateLimited {
        /// Minimum wait, in the backend's simulated time units.
        retry_after: u32,
    },
    /// The query timed out (charged, no answer within the deadline).
    Timeout,
}

impl IssueError {
    /// Whether this is the terminal budget-exhaustion error.
    pub fn is_budget(&self) -> bool {
        matches!(self, Self::BudgetExhausted(_))
    }

    /// Whether a retry can possibly succeed (everything except budget
    /// exhaustion, which only a new round cures).
    pub fn is_recoverable(&self) -> bool {
        !self.is_budget()
    }
}

impl From<BudgetExhausted> for IssueError {
    fn from(e: BudgetExhausted) -> Self {
        Self::BudgetExhausted(e)
    }
}

impl fmt::Display for IssueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BudgetExhausted(e) => e.fmt(f),
            Self::Transient(fault) => write!(f, "transient interface fault: {fault}"),
            Self::RateLimited { retry_after } => {
                write!(f, "rate limited; retry after {retry_after} ticks")
            }
            Self::Timeout => write!(f, "query timed out"),
        }
    }
}

impl std::error::Error for IssueError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_informative() {
        let e = SchemaError::EmptyDomain { attr: AttrId(4) };
        assert!(e.to_string().contains("A4"));
        let e = DbError::DuplicateKey(TupleKey(9));
        assert!(e.to_string().contains("t9"));
        let e = BudgetExhausted { limit: 100 };
        assert!(e.to_string().contains("100"));
        let e = IssueError::RateLimited { retry_after: 7 };
        assert!(e.to_string().contains('7'));
        let e = IssueError::Transient(TransientFault::TruncatedPage);
        assert!(e.to_string().contains("truncated"));
    }

    #[test]
    fn budget_is_the_only_unrecoverable_variant() {
        let budget = IssueError::from(BudgetExhausted { limit: 3 });
        assert!(budget.is_budget());
        assert!(!budget.is_recoverable());
        for e in [
            IssueError::Transient(TransientFault::Http5xx),
            IssueError::Transient(TransientFault::TruncatedPage),
            IssueError::Transient(TransientFault::EmptyPage),
            IssueError::Transient(TransientFault::ChargedNoAnswer),
            IssueError::RateLimited { retry_after: 2 },
            IssueError::Timeout,
        ] {
            assert!(!e.is_budget());
            assert!(e.is_recoverable(), "{e} must be retryable");
        }
    }
}
