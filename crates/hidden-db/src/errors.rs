//! Error types for the hidden database substrate.

use crate::value::{AttrId, TupleKey};
use std::fmt;

/// Errors raised while constructing a [`crate::schema::Schema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// A schema must contain at least one categorical attribute.
    NoAttributes,
    /// More attributes than the `u16` id space allows.
    TooManyAttributes(usize),
    /// More measures than the `u16` id space allows.
    TooManyMeasures(usize),
    /// Attribute declared with an empty domain.
    EmptyDomain {
        /// The offending attribute.
        attr: AttrId,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoAttributes => write!(f, "schema has no attributes"),
            Self::TooManyAttributes(n) => write!(f, "too many attributes: {n}"),
            Self::TooManyMeasures(n) => write!(f, "too many measures: {n}"),
            Self::EmptyDomain { attr } => write!(f, "attribute {attr} has an empty domain"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// Errors raised while mutating or querying the database.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// Tuple shape (value or measure count) does not match the schema, or a
    /// value is outside its attribute's domain.
    TupleMismatch(String),
    /// Query references an attribute or value outside the schema.
    InvalidQuery(String),
    /// Insert of a tuple key that already exists and is alive.
    DuplicateKey(TupleKey),
    /// Delete/update of a key that does not exist (or is already deleted).
    UnknownKey(TupleKey),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TupleMismatch(msg) => write!(f, "tuple does not match schema: {msg}"),
            Self::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            Self::DuplicateKey(k) => write!(f, "duplicate tuple key {k}"),
            Self::UnknownKey(k) => write!(f, "unknown tuple key {k}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Raised by a [`crate::session::SearchSession`] when the per-round query
/// budget `G` is exhausted (§2.1: "Let G be the number of queries one can
/// issue to the database per round").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExhausted {
    /// The budget that was in force.
    pub limit: u64,
}

impl fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "per-round query budget of {} exhausted", self.limit)
    }
}

impl std::error::Error for BudgetExhausted {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_informative() {
        let e = SchemaError::EmptyDomain { attr: AttrId(4) };
        assert!(e.to_string().contains("A4"));
        let e = DbError::DuplicateKey(TupleKey(9));
        assert!(e.to_string().contains("t9"));
        let e = BudgetExhausted { limit: 100 };
        assert!(e.to_string().contains("100"));
    }
}
