//! Fault injection and recovery across the interface boundary.
//!
//! The paper's setting is a *remote* restrictive interface (§2.1) — a
//! real crawler of hidden databases sees timeouts, throttling, dropped
//! pages, and transient server errors, not the perfect in-process oracle
//! the rest of this crate provides. This module makes those failure
//! modes injectable and survivable:
//!
//! * [`FaultSchedule`] — a seeded, fully deterministic per-query fault
//!   plan: whether attempt `i` faults, and how, is a pure function of
//!   `(seed, i)`. A burst cap (`max_consecutive`) guarantees that a
//!   schedule is *recoverable*: after at most `max_consecutive` faults
//!   in a row the next attempt is forced through, so any retry layer
//!   willing to retry that many times always eventually succeeds.
//! * [`FaultyBackend`] — wraps any [`SearchBackend`] and injects the
//!   scheduled faults. Every fault kind surfaces as an **error**
//!   ([`IssueError`]), never as a corrupted answer: a truncated or empty
//!   page is detectable and retryable, so faults may consume budget but
//!   can never silently change an estimate. Charging semantics mirror a
//!   real interface: server errors, timeouts, and dropped pages charge
//!   the query (the server did the work); a rate-limit rejection does
//!   not; a [`TransientFault::ChargedNoAnswer`] fault charges **twice**
//!   (the "repeated charge without an answer" failure mode).
//! * [`ResilientBackend`] — the recovery layer: bounded retries with
//!   deterministic exponential backoff + jitter (from its own seeded RNG
//!   stream), rate-limit honoring (`retry_after`), and a per-query
//!   deadline in simulated ticks. Budget accounting stays honest: every
//!   retry that reaches the interface charges `G` exactly as a first
//!   attempt would, and [`RecoveryStats`] reports the queries burned.
//!
//! Determinism: both layers are pure functions of their seeds and the
//! call sequence. Two runs over the same inner backend with the same
//! schedule and policy produce bit-identical outcomes, and a *recovered*
//! run's successful answers are exactly the answers the fault-free run
//! would have produced (the inner backend is consulted for every real
//! answer; injection only wraps it).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::errors::{IssueError, TransientFault};
use crate::interface::QueryOutcome;
use crate::query::ConjunctiveQuery;
use crate::schema::Schema;
use crate::session::SearchBackend;

/// The injectable failure modes. Each maps onto one [`IssueError`]
/// variant (see [`FaultKind::to_error`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Server-side 5xx: charged, no answer.
    Http5xx,
    /// Query timed out: charged, no answer.
    Timeout,
    /// Throttled: rejected without charging, with a retry-after hint.
    RateLimit,
    /// Result page truncated in transit: charged, detectable, retryable.
    TruncatedPage,
    /// Result page lost entirely: charged, detectable, retryable.
    EmptyPage,
    /// Charged twice without ever delivering the answer.
    ChargedNoAnswer,
}

impl FaultKind {
    const ALL: [FaultKind; 6] = [
        FaultKind::Http5xx,
        FaultKind::Timeout,
        FaultKind::RateLimit,
        FaultKind::TruncatedPage,
        FaultKind::EmptyPage,
        FaultKind::ChargedNoAnswer,
    ];

    /// How many times this fault charges the inner budget.
    fn charges(self) -> u32 {
        match self {
            FaultKind::RateLimit => 0,
            FaultKind::ChargedNoAnswer => 2,
            _ => 1,
        }
    }

    /// The error an interface raising this fault reports, given the
    /// schedule's `retry_after` hint.
    pub fn to_error(self, retry_after: u32) -> IssueError {
        match self {
            FaultKind::Http5xx => IssueError::Transient(TransientFault::Http5xx),
            FaultKind::Timeout => IssueError::Timeout,
            FaultKind::RateLimit => IssueError::RateLimited { retry_after },
            FaultKind::TruncatedPage => IssueError::Transient(TransientFault::TruncatedPage),
            FaultKind::EmptyPage => IssueError::Transient(TransientFault::EmptyPage),
            FaultKind::ChargedNoAnswer => IssueError::Transient(TransientFault::ChargedNoAnswer),
        }
    }
}

/// A seeded, fully deterministic fault plan.
///
/// Whether (and how) attempt `i` faults is a pure function of the seed
/// and `i` — no hidden state, so any two backends driven by equal
/// schedules inject identical faults, and a run can be replayed exactly
/// from its seed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    seed: u64,
    rate: f64,
    /// Force success once this many faults landed in a row — the
    /// recoverability guarantee.
    max_consecutive: u32,
    /// The `retry_after` hint attached to rate-limit faults.
    retry_after: u32,
    /// Test/bench hook: always inject this kind (rate still applies).
    fixed: Option<FaultKind>,
}

impl FaultSchedule {
    /// No faults, ever. [`FaultSchedule::decide`] short-circuits without
    /// touching an RNG, so a fault-off wrapper adds ~zero overhead.
    pub fn off() -> Self {
        Self { seed: 0, rate: 0.0, max_consecutive: 0, retry_after: 0, fixed: None }
    }

    /// Faults each attempt independently with probability `rate`
    /// (clamped to `[0, 1]`), kind drawn uniformly, at most 4 in a row.
    pub fn seeded(seed: u64, rate: f64) -> Self {
        Self { seed, rate: rate.clamp(0.0, 1.0), max_consecutive: 4, retry_after: 3, fixed: None }
    }

    /// Always injects `kind` (until the burst cap) — deterministic
    /// single-mode schedules for tests and benches.
    pub fn always(kind: FaultKind) -> Self {
        Self { seed: 0, rate: 1.0, max_consecutive: 4, retry_after: 3, fixed: Some(kind) }
    }

    /// Overrides the burst cap. `u32::MAX` makes the schedule
    /// *unrecoverable* at rate 1.0 — the degraded-path tests use that.
    pub fn with_max_consecutive(mut self, cap: u32) -> Self {
        self.max_consecutive = cap;
        self
    }

    /// Overrides the rate-limit `retry_after` hint.
    pub fn with_retry_after(mut self, ticks: u32) -> Self {
        self.retry_after = ticks;
        self
    }

    /// The per-attempt fault probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The burst cap after which success is forced.
    pub fn max_consecutive(&self) -> u32 {
        self.max_consecutive
    }

    /// The fault (if any) for attempt number `attempt`, given that
    /// `consecutive` faults landed immediately before it. Pure: equal
    /// arguments always yield equal answers.
    pub fn decide(&self, attempt: u64, consecutive: u32) -> Option<FaultKind> {
        if self.rate <= 0.0 {
            return None;
        }
        if consecutive >= self.max_consecutive {
            return None; // burst cap: force the attempt through
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ attempt.wrapping_mul(0x9E37_79B9));
        if !rng.random_bool(self.rate) {
            return None;
        }
        Some(match self.fixed {
            Some(kind) => kind,
            None => FaultKind::ALL[rng.random_range(0..FaultKind::ALL.len())],
        })
    }
}

/// Counters of what a [`FaultyBackend`] actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Attempts that went through to the inner backend and succeeded.
    pub served: u64,
    /// Faults injected, total.
    pub injected: u64,
    /// 5xx-style server errors.
    pub http_5xx: u64,
    /// Timeouts.
    pub timeouts: u64,
    /// Rate-limit rejections (not charged).
    pub rate_limits: u64,
    /// Truncated pages.
    pub truncated_pages: u64,
    /// Empty pages.
    pub empty_pages: u64,
    /// Repeated-charge-without-answer faults.
    pub charged_no_answer: u64,
    /// Budget units burned by faults (charges without an answer).
    pub queries_burned: u64,
}

/// A [`SearchBackend`] wrapper that injects the faults its
/// [`FaultSchedule`] dictates.
///
/// Budget errors from the inner backend always pass through unwrapped —
/// injection never masks exhaustion, and an exhausted budget preempts a
/// scheduled fault (the interface can't charge what isn't there).
#[derive(Debug)]
pub struct FaultyBackend<B> {
    inner: B,
    schedule: FaultSchedule,
    /// Total `issue` calls seen (the schedule's attempt counter).
    attempt: u64,
    /// Faults injected immediately in a row (the burst counter).
    consecutive: u32,
    stats: FaultStats,
}

impl<B: SearchBackend> FaultyBackend<B> {
    /// Wraps `inner` under `schedule`.
    pub fn new(inner: B, schedule: FaultSchedule) -> Self {
        Self { inner, schedule, attempt: 0, consecutive: 0, stats: FaultStats::default() }
    }

    /// Injection counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The schedule driving this backend.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// Unwraps the inner backend (e.g. to read a session's final budget).
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// Charges the inner budget without using the answer — the
    /// "interface did the work, client got nothing" half of a fault.
    /// An inner budget error preempts the fault.
    fn charge_inner(&mut self, query: &ConjunctiveQuery, times: u32) -> Result<(), IssueError> {
        for _ in 0..times {
            match self.inner.issue(query) {
                Ok(_) => {
                    self.stats.queries_burned += 1;
                }
                Err(e) => {
                    debug_assert!(e.is_budget(), "inner backend raised a non-budget error");
                    return Err(e);
                }
            }
        }
        Ok(())
    }
}

impl<B: SearchBackend> SearchBackend for FaultyBackend<B> {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn k(&self) -> usize {
        self.inner.k()
    }

    fn issue(&mut self, query: &ConjunctiveQuery) -> Result<QueryOutcome, IssueError> {
        let decision = self.schedule.decide(self.attempt, self.consecutive);
        self.attempt += 1;
        let Some(kind) = decision else {
            let out = self.inner.issue(query)?;
            self.consecutive = 0;
            self.stats.served += 1;
            return Ok(out);
        };
        self.consecutive += 1;
        self.stats.injected += 1;
        match kind {
            FaultKind::Http5xx => self.stats.http_5xx += 1,
            FaultKind::Timeout => self.stats.timeouts += 1,
            FaultKind::RateLimit => self.stats.rate_limits += 1,
            FaultKind::TruncatedPage => self.stats.truncated_pages += 1,
            FaultKind::EmptyPage => self.stats.empty_pages += 1,
            FaultKind::ChargedNoAnswer => self.stats.charged_no_answer += 1,
        }
        self.charge_inner(query, kind.charges())?;
        Err(kind.to_error(self.schedule.retry_after))
    }

    fn remaining(&self) -> u64 {
        self.inner.remaining()
    }

    fn spent(&self) -> u64 {
        self.inner.spent()
    }
}

/// Retry/backoff configuration for [`ResilientBackend`], in the
/// backend's simulated time units ("ticks").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries per query before giving up (attempts = retries + 1).
    pub max_retries: u32,
    /// First backoff wait; doubles per retry.
    pub base_backoff: u32,
    /// Backoff ceiling.
    pub max_backoff: u32,
    /// Per-query cap on total simulated wait; exceeding it gives up.
    pub deadline: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // max_retries comfortably above FaultSchedule::seeded's burst cap
        // of 4, so default-on-default recovery always succeeds.
        Self { max_retries: 8, base_backoff: 1, max_backoff: 64, deadline: 512 }
    }
}

/// Counters of what a [`ResilientBackend`] did to keep queries alive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Logical queries asked of this layer.
    pub queries: u64,
    /// Retries performed (attempts beyond the first).
    pub retries: u64,
    /// Queries that failed at least once but ultimately succeeded.
    pub recovered: u64,
    /// Queries abandoned after exhausting retries or the deadline.
    pub gave_up: u64,
    /// Total simulated ticks spent waiting (backoff + retry-after).
    pub ticks_waited: u64,
    /// Budget units consumed by failed attempts (diff of the inner
    /// backend's `spent` across the recovery, minus the one successful
    /// charge).
    pub queries_burned: u64,
}

/// The recovery layer: retries transient failures with deterministic
/// exponential backoff + jitter, honors rate-limit `retry_after` hints,
/// and enforces a per-query deadline.
///
/// Budget errors are terminal and returned immediately — only a new
/// round restores budget, no amount of waiting does. All waiting is
/// *simulated* (tick counters), keeping runs deterministic and fast.
#[derive(Debug)]
pub struct ResilientBackend<B> {
    inner: B,
    policy: RetryPolicy,
    /// Jitter stream — deterministic per seed, independent of the fault
    /// schedule's stream.
    jitter: StdRng,
    stats: RecoveryStats,
}

impl<B: SearchBackend> ResilientBackend<B> {
    /// Wraps `inner` with `policy`, drawing jitter from `jitter_seed`.
    pub fn new(inner: B, policy: RetryPolicy, jitter_seed: u64) -> Self {
        Self {
            inner,
            policy,
            jitter: StdRng::seed_from_u64(jitter_seed),
            stats: RecoveryStats::default(),
        }
    }

    /// Recovery counters so far.
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// Unwraps the inner backend.
    pub fn into_inner(self) -> B {
        self.inner
    }
}

impl<B: SearchBackend> SearchBackend for ResilientBackend<B> {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn k(&self) -> usize {
        self.inner.k()
    }

    fn issue(&mut self, query: &ConjunctiveQuery) -> Result<QueryOutcome, IssueError> {
        self.stats.queries += 1;
        let spent_before = self.inner.spent();
        let mut waited: u64 = 0;
        let mut attempt: u32 = 0;
        loop {
            match self.inner.issue(query) {
                Ok(out) => {
                    if attempt > 0 {
                        self.stats.recovered += 1;
                        self.stats.queries_burned +=
                            (self.inner.spent() - spent_before).saturating_sub(1);
                    }
                    return Ok(out);
                }
                Err(e) if !e.is_recoverable() => {
                    // Budget exhaustion: terminal, waiting can't help.
                    self.stats.queries_burned += self.inner.spent() - spent_before;
                    return Err(e);
                }
                Err(e) => {
                    if attempt >= self.policy.max_retries {
                        self.stats.gave_up += 1;
                        self.stats.queries_burned += self.inner.spent() - spent_before;
                        return Err(e);
                    }
                    let backoff = self
                        .policy
                        .base_backoff
                        .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
                        .min(self.policy.max_backoff);
                    let floor = match e {
                        IssueError::RateLimited { retry_after } => backoff.max(retry_after),
                        _ => backoff,
                    };
                    let jitter =
                        if floor > 0 { self.jitter.random_range(0..=floor / 2) } else { 0 };
                    let wait = u64::from(floor) + u64::from(jitter);
                    if waited + wait > u64::from(self.policy.deadline) {
                        self.stats.gave_up += 1;
                        self.stats.queries_burned += self.inner.spent() - spent_before;
                        return Err(e);
                    }
                    waited += wait;
                    self.stats.ticks_waited += wait;
                    self.stats.retries += 1;
                    attempt += 1;
                }
            }
        }
    }

    fn remaining(&self) -> u64 {
        self.inner.remaining()
    }

    fn spent(&self) -> u64 {
        self.inner.spent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::HiddenDatabase;
    use crate::ranking::ScoringPolicy;
    use crate::schema::Schema;
    use crate::session::SearchSession;
    use crate::tuple::Tuple;
    use crate::value::{TupleKey, ValueId};

    fn db(n: u64) -> HiddenDatabase {
        let schema = Schema::with_domain_sizes(&[2], &[]).unwrap();
        let mut d = HiddenDatabase::new(schema, 5, ScoringPolicy::default());
        for key in 0..n {
            d.insert(Tuple::new(TupleKey(key), vec![ValueId((key % 2) as u32)], vec![])).unwrap();
        }
        d
    }

    #[test]
    fn off_schedule_never_faults() {
        let s = FaultSchedule::off();
        for attempt in 0..10_000 {
            assert_eq!(s.decide(attempt, 0), None);
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_seed_and_attempt() {
        let a = FaultSchedule::seeded(42, 0.3);
        let b = FaultSchedule::seeded(42, 0.3);
        for attempt in 0..2_000 {
            assert_eq!(a.decide(attempt, 0), b.decide(attempt, 0));
        }
        let c = FaultSchedule::seeded(43, 0.3);
        let differs = (0..2_000).any(|attempt| a.decide(attempt, 0) != c.decide(attempt, 0));
        assert!(differs, "different seeds must give different schedules");
    }

    #[test]
    fn burst_cap_forces_success() {
        let s = FaultSchedule::seeded(7, 1.0);
        for attempt in 0..100 {
            assert!(s.decide(attempt, 0).is_some(), "rate 1.0 faults below the cap");
            assert_eq!(s.decide(attempt, s.max_consecutive()), None, "cap forces success");
        }
    }

    #[test]
    fn schedule_rate_distribution_is_roughly_honest() {
        let s = FaultSchedule::seeded(11, 0.25);
        let faults = (0..10_000).filter(|&a| s.decide(a, 0).is_some()).count();
        assert!((2_000..3_000).contains(&faults), "≈25% expected, got {faults}");
    }

    #[test]
    fn faulty_backend_charges_match_the_taxonomy() {
        // RateLimit: no charge. Http5xx: one charge. ChargedNoAnswer: two.
        for (kind, charges) in [
            (FaultKind::RateLimit, 0u64),
            (FaultKind::Http5xx, 1),
            (FaultKind::Timeout, 1),
            (FaultKind::TruncatedPage, 1),
            (FaultKind::EmptyPage, 1),
            (FaultKind::ChargedNoAnswer, 2),
        ] {
            let mut d = db(3);
            let session = SearchSession::new(&mut d, 100);
            let mut faulty = FaultyBackend::new(session, FaultSchedule::always(kind));
            let err = faulty.issue(&ConjunctiveQuery::select_all()).unwrap_err();
            assert!(err.is_recoverable());
            assert_eq!(err, kind.to_error(3));
            assert_eq!(faulty.spent(), charges, "{kind:?} must charge {charges}");
            assert_eq!(faulty.stats().injected, 1);
            assert_eq!(faulty.stats().queries_burned, charges);
        }
    }

    #[test]
    fn budget_errors_pass_through_and_preempt_faults() {
        let mut d = db(3);
        let session = SearchSession::new(&mut d, 0);
        let mut faulty = FaultyBackend::new(session, FaultSchedule::always(FaultKind::Http5xx));
        let err = faulty.issue(&ConjunctiveQuery::select_all()).unwrap_err();
        assert!(err.is_budget(), "exhausted budget preempts the scheduled fault: {err}");
    }

    #[test]
    fn faulty_answers_when_served_are_the_true_answers() {
        // Whatever the schedule injects, an Ok is always the inner
        // backend's own answer — faults never corrupt, only deny.
        let mut plain_db = db(12);
        let mut fault_db = plain_db.clone();
        let root = ConjunctiveQuery::select_all();
        let mut plain = SearchSession::unlimited(&mut plain_db);
        let expected = plain.issue(&root).unwrap();
        let session = SearchSession::unlimited(&mut fault_db);
        let mut faulty = FaultyBackend::new(session, FaultSchedule::seeded(3, 0.6));
        let mut served = 0;
        for _ in 0..50 {
            if let Ok(out) = faulty.issue(&root) {
                assert_eq!(out.is_overflow(), expected.is_overflow());
                assert_eq!(out.returned_count(), expected.returned_count());
                served += 1;
            }
        }
        assert!(served > 0, "burst cap guarantees some attempts go through");
        assert!(faulty.stats().injected > 0, "rate 0.6 must inject something in 50 tries");
    }

    #[test]
    fn resilient_recovery_always_succeeds_on_recoverable_schedules() {
        let mut d = db(10);
        let root = ConjunctiveQuery::select_all();
        let session = SearchSession::unlimited(&mut d);
        let faulty = FaultyBackend::new(session, FaultSchedule::seeded(99, 0.7));
        let mut resilient = ResilientBackend::new(faulty, RetryPolicy::default(), 0xA11CE);
        for _ in 0..200 {
            assert!(resilient.issue(&root).is_ok(), "burst cap 4 < max_retries 8");
        }
        let stats = resilient.stats();
        assert_eq!(stats.queries, 200);
        assert_eq!(stats.gave_up, 0);
        assert!(stats.recovered > 0);
        assert!(stats.retries >= stats.recovered);
        assert!(stats.ticks_waited > 0);
    }

    #[test]
    fn recovery_charges_every_attempt_to_the_budget() {
        let mut d = db(10);
        let root = ConjunctiveQuery::select_all();
        let session = SearchSession::unlimited(&mut d);
        let faulty = FaultyBackend::new(session, FaultSchedule::seeded(5, 0.5));
        let mut resilient = ResilientBackend::new(faulty, RetryPolicy::default(), 1);
        for _ in 0..100 {
            resilient.issue(&root).unwrap();
        }
        let burned = resilient.stats().queries_burned;
        let spent = resilient.spent();
        // Every unit of inner spend is either one of the 100 logical
        // answers or accounted as burned by recovery.
        assert_eq!(spent, 100 + burned, "spent must account for every issued attempt");
        assert!(burned > 0, "rate 0.5 must burn something in 100 queries");
    }

    #[test]
    fn unrecoverable_schedule_gives_up_cleanly() {
        let mut d = db(5);
        let root = ConjunctiveQuery::select_all();
        let session = SearchSession::unlimited(&mut d);
        let schedule = FaultSchedule::seeded(1, 1.0).with_max_consecutive(u32::MAX);
        let faulty = FaultyBackend::new(session, schedule);
        let policy = RetryPolicy { max_retries: 3, ..RetryPolicy::default() };
        let mut resilient = ResilientBackend::new(faulty, policy, 2);
        let err = resilient.issue(&root).unwrap_err();
        assert!(err.is_recoverable(), "gave up on a transient error, not budget");
        assert_eq!(resilient.stats().gave_up, 1);
        assert_eq!(resilient.stats().retries, 3);
    }

    #[test]
    fn rate_limit_hint_is_honored() {
        let mut d = db(5);
        let root = ConjunctiveQuery::select_all();
        let session = SearchSession::unlimited(&mut d);
        let schedule = FaultSchedule::always(FaultKind::RateLimit)
            .with_retry_after(40)
            .with_max_consecutive(1);
        let faulty = FaultyBackend::new(session, schedule);
        let mut resilient = ResilientBackend::new(faulty, RetryPolicy::default(), 3);
        resilient.issue(&root).unwrap();
        assert!(
            resilient.stats().ticks_waited >= 40,
            "must wait at least retry_after: {}",
            resilient.stats().ticks_waited
        );
    }

    #[test]
    fn deadline_bounds_total_wait() {
        let mut d = db(5);
        let root = ConjunctiveQuery::select_all();
        let session = SearchSession::unlimited(&mut d);
        let schedule = FaultSchedule::seeded(2, 1.0).with_max_consecutive(u32::MAX);
        let faulty = FaultyBackend::new(session, schedule);
        let policy = RetryPolicy { max_retries: u32::MAX, deadline: 20, ..RetryPolicy::default() };
        let mut resilient = ResilientBackend::new(faulty, policy, 4);
        assert!(resilient.issue(&root).is_err());
        assert!(resilient.stats().ticks_waited <= 20);
        assert_eq!(resilient.stats().gave_up, 1);
    }

    #[test]
    fn resilient_runs_are_deterministic() {
        let run = || {
            let mut d = db(20);
            let root = ConjunctiveQuery::select_all();
            let session = SearchSession::unlimited(&mut d);
            let faulty = FaultyBackend::new(session, FaultSchedule::seeded(77, 0.4));
            let mut resilient = ResilientBackend::new(faulty, RetryPolicy::default(), 88);
            for _ in 0..150 {
                resilient.issue(&root).unwrap();
            }
            (resilient.stats(), resilient.spent())
        };
        assert_eq!(run(), run());
    }
}
