//! Inverted index: for every (attribute, value) pair, the posting list of
//! slots whose tuple carries that value.
//!
//! Deletions are *lazy*: a deleted slot stays in its posting lists as a
//! tombstone (queries filter through the store's alive bitset anyway, and
//! slot reuse overwrites columns, so stale entries are detected by
//! re-checking the column value). Each list compacts itself when tombstones
//! exceed `COMPACT_DEAD_FRACTION` of its length, keeping amortised update
//! cost O(1) while bounding scan waste.
//!
//! ## Sorted lists and segment runs
//!
//! Posting lists are kept **slot-sorted** lazily: appends that arrive in
//! ascending slot order (the common case — fresh slots grow monotonically)
//! keep the list sorted for free; an out-of-order append (slot reuse) just
//! marks the list dirty, and the next caller that needs sorted access pays
//! one `sort + dedup` ([`InvertedIndex::ensure_sorted`]). A sorted list
//! carries *segment run* metadata — for every store segment with at least
//! one posting, the offset where its run begins — which is what the
//! evaluation engine uses to (a) skip segments wholesale, (b) drive
//! per-segment bitset intersection, and (c) visit a list's segments in
//! descending max-score order for early-exit top-`k` scans. Sorted order
//! also guarantees duplicate postings (a slot freed and re-filled with the
//! same value while its stale posting survived) are **adjacent**, so
//! exactly-once candidate emission is a one-comparison skip instead of a
//! hash set.
//!
//! ## Snapshot sharing
//!
//! Each posting list lives behind an [`Arc`], so cloning the whole index
//! into an epoch snapshot is one reference-count bump per list; mutation
//! goes through [`Arc::make_mut`] (copy-on-write at list granularity).
//! Before a snapshot is published, [`InvertedIndex::ensure_all_sorted`]
//! pays any pending lazy sorts so snapshot readers never need `&mut`
//! access — a published list's run metadata is immutable.

use std::sync::Arc;

use crate::schema::Schema;
use crate::store::{block_of, segment_of, Slot, StoreCore, BLOCKS_PER_SEGMENT, BLOCK_SLOTS};
use crate::value::{AttrId, ValueId};

/// A posting list compacts when dead entries exceed this fraction.
const COMPACT_DEAD_FRACTION: f64 = 0.4;

/// Minimum length before compaction is considered (avoids thrashing tiny
/// lists).
const COMPACT_MIN_LEN: usize = 64;

/// Above this many candidate postings, duplicate suppression switches
/// from a linear probe to a `HashSet` (a linear probe on a handful of
/// elements beats hashing; beyond that the O(n²) worst case bites).
#[cfg(test)]
const DEDUP_LINEAR_MAX: usize = 24;

/// Adaptive seen-set for duplicate suppression in
/// [`InvertedIndex::for_each_live`]. (Test-only since the sorted-list
/// engine took over the production scans: sorted order makes duplicates
/// adjacent, so exactly-once emission no longer needs a seen-set.)
#[cfg(test)]
enum SeenSlots {
    Small(Vec<Slot>),
    Large(std::collections::HashSet<Slot>),
}

#[cfg(test)]
impl SeenSlots {
    fn with_expected(candidates: usize) -> Self {
        if candidates <= DEDUP_LINEAR_MAX {
            Self::Small(Vec::with_capacity(candidates))
        } else {
            Self::Large(std::collections::HashSet::with_capacity(candidates))
        }
    }

    /// Records `slot`; returns whether it was new.
    #[inline]
    fn insert(&mut self, slot: Slot) -> bool {
        match self {
            Self::Small(v) => {
                if v.contains(&slot) {
                    false
                } else {
                    v.push(slot);
                    true
                }
            }
            Self::Large(set) => set.insert(slot),
        }
    }
}

#[derive(Debug, Clone, Default)]
pub(crate) struct PostingList {
    /// Slots that at some point carried the value. May contain tombstones.
    pub(crate) slots: Vec<Slot>,
    /// Upper bound on tombstones in `slots`.
    pub(crate) dead: usize,
    /// Whether `slots` is sorted ascending (duplicates adjacent). Appends
    /// in ascending order preserve it; slot-reuse appends clear it.
    pub(crate) sorted: bool,
    /// Segment runs over `slots`, valid only while `sorted`: one
    /// `(segment, start offset)` per store segment with ≥ 1 posting; the
    /// run ends where the next one starts (or at `slots.len()`).
    pub(crate) runs: Vec<(u32, u32)>,
    /// Block-max directory: one `(global block, score upper bound)` per
    /// store block with ≥ 1 posting, ascending by block id. Unlike
    /// `runs` this stays valid even while the list is dirty — bounds
    /// only ever *raise* on append, and sort/dedup/tombstoning can only
    /// remove members (a bound over a superset still bounds the
    /// subset). [`PostingList::compact`] rebuilds the bounds exactly
    /// from the surviving (revalidated) postings.
    pub(crate) blocks: Vec<(u32, u64)>,
}

impl PostingList {
    #[inline]
    fn live_len_estimate(&self) -> usize {
        self.slots.len().saturating_sub(self.dead)
    }

    /// Raises the block-max bound covering `slot` to at least `score`,
    /// inserting the directory entry if the block is new. The common
    /// case (ascending appends) touches only the last entry; slot-reuse
    /// appends pay one binary search.
    #[inline]
    fn raise_block_bound(&mut self, slot: Slot, score: u64) {
        let blk = block_of(slot) as u32;
        match self.blocks.last().copied() {
            Some((b, bound)) if b == blk => {
                if score > bound {
                    self.blocks.last_mut().unwrap().1 = score;
                }
            }
            Some((b, _)) if b < blk => self.blocks.push((blk, score)),
            None => self.blocks.push((blk, score)),
            _ => match self.blocks.binary_search_by_key(&blk, |&(b, _)| b) {
                Ok(i) => self.blocks[i].1 = self.blocks[i].1.max(score),
                Err(i) => self.blocks.insert(i, (blk, score)),
            },
        }
    }

    /// Appends a posting, keeping `sorted`/`runs`/`blocks` coherent.
    #[inline]
    fn push(&mut self, slot: Slot, score: u64) {
        if self.sorted || self.slots.is_empty() {
            match self.slots.last() {
                Some(&last) if slot < last => {
                    self.sorted = false;
                    self.runs.clear();
                }
                _ => {
                    let seg = segment_of(slot) as u32;
                    if self.runs.last().map(|&(s, _)| s) != Some(seg) {
                        self.runs.push((seg, self.slots.len() as u32));
                    }
                    self.sorted = true;
                }
            }
        }
        self.raise_block_bound(slot, score);
        self.slots.push(slot);
    }

    /// Sorts + dedupes and rebuilds the run metadata (no-op when sorted).
    /// Block bounds are deliberately left alone: dedup only removes
    /// postings, so the recorded bounds stay valid upper bounds.
    fn ensure_sorted(&mut self) {
        if self.sorted {
            return;
        }
        self.slots.sort_unstable();
        self.slots.dedup();
        self.dead = self.dead.min(self.slots.len());
        self.rebuild_runs();
        self.sorted = true;
    }

    fn rebuild_runs(&mut self) {
        self.runs.clear();
        let mut prev = u32::MAX;
        for (i, &s) in self.slots.iter().enumerate() {
            let seg = segment_of(s) as u32;
            if seg != prev {
                self.runs.push((seg, i as u32));
                prev = seg;
            }
        }
    }

    /// Rebuilds the block-max directory exactly from the current
    /// postings' store scores. Only sound right after the list has been
    /// revalidated (tombstones purged), i.e. from
    /// [`InvertedIndex::compact`] — a tombstoned slot's score belongs to
    /// whatever tuple reused the slot.
    fn rebuild_blocks(&mut self, store: &StoreCore) {
        let mut blocks = std::mem::take(&mut self.blocks);
        blocks.clear();
        // Slots are sorted here (compaction sorts first), so this only
        // ever takes `raise_block_bound`'s append fast path.
        for &s in &self.slots {
            let blk = block_of(s) as u32;
            let score = store.score_at(s);
            match blocks.last_mut() {
                Some(last) if last.0 == blk => last.1 = last.1.max(score),
                _ => blocks.push((blk, score)),
            }
        }
        self.blocks = blocks;
    }
}

/// Read-only view of one slot-sorted posting list: the slots plus their
/// per-segment skip metadata. Handed out by
/// [`InvertedIndex::sorted_postings`] after an
/// [`InvertedIndex::ensure_sorted`] pass.
#[derive(Debug, Clone, Copy)]
pub struct SortedPostings<'a> {
    slots: &'a [Slot],
    runs: &'a [(u32, u32)],
    blocks: &'a [(u32, u64)],
}

impl<'a> SortedPostings<'a> {
    /// All postings, ascending by slot (duplicates, if any, adjacent).
    pub fn slots(&self) -> &'a [Slot] {
        self.slots
    }

    /// Number of postings (including tombstones and duplicates).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the list has no postings at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates `(segment, run)` pairs in ascending segment order, where
    /// `run` is the sub-slice of postings falling in that segment.
    pub fn runs(&self) -> impl Iterator<Item = (usize, &'a [Slot])> + '_ {
        self.runs.iter().enumerate().map(move |(i, &(seg, start))| {
            let end = self.runs.get(i + 1).map_or(self.slots.len(), |&(_, s)| s as usize);
            (seg as usize, &self.slots[start as usize..end])
        })
    }

    /// The run of postings in `seg`, empty if the list has none there.
    pub fn run_in(&self, seg: usize) -> &'a [Slot] {
        match self.runs.binary_search_by_key(&(seg as u32), |&(s, _)| s) {
            Ok(i) => {
                let start = self.runs[i].1 as usize;
                let end = self.runs.get(i + 1).map_or(self.slots.len(), |&(_, s)| s as usize);
                &self.slots[start..end]
            }
            Err(_) => &[],
        }
    }

    /// The block-max directory: one `(global block, score upper bound)`
    /// per store block with ≥ 1 posting, ascending by block id. Bounds
    /// never understate the best alive matching score in the block (they
    /// may overstate after deletes/score-drops until the list compacts).
    pub fn blocks(&self) -> &'a [(u32, u64)] {
        self.blocks
    }

    /// Score upper bound for global block `blk`, or `None` if the list
    /// has no postings there (in which case no tuple in the block can
    /// match this predicate — stale postings are only ever *extra*).
    #[inline]
    pub fn block_bound(&self, blk: u32) -> Option<u64> {
        self.blocks.binary_search_by_key(&blk, |&(b, _)| b).ok().map(|i| self.blocks[i].1)
    }

    /// The run of postings falling in global block `blk`, empty if none.
    /// Two binary searches: the owning segment's run, then the block's
    /// slot range within it.
    pub fn block_run(&self, blk: u32) -> &'a [Slot] {
        let run = self.run_in(blk as usize / BLOCKS_PER_SEGMENT);
        let lo = (blk as usize * BLOCK_SLOTS) as Slot;
        let hi = lo + BLOCK_SLOTS as Slot;
        let start = run.partition_point(|&s| s < lo);
        let end = start + run[start..].partition_point(|&s| s < hi);
        &run[start..end]
    }
}

/// Exponential ("galloping") search: the smallest index `>= from` whose
/// slot is `>= target`. O(log d) in the distance `d` advanced, which is
/// what makes small∩large intersections cost `O(small · log large)`.
pub fn gallop_to(slots: &[Slot], from: usize, target: Slot) -> usize {
    if from >= slots.len() || slots[from] >= target {
        return from;
    }
    // Invariant: slots[lo] < target. Gallop hi outward until it crosses.
    let mut lo = from;
    let mut step = 1usize;
    let hi = loop {
        let hi = lo + step;
        if hi >= slots.len() {
            break slots.len();
        }
        if slots[hi] >= target {
            break hi;
        }
        lo = hi;
        step <<= 1;
    };
    // First index in (lo, hi] with slots[idx] >= target.
    lo + 1 + slots[lo + 1..hi].partition_point(|&s| s < target)
}

/// What one budgeted [`InvertedIndex::maintain`] sweep did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexMaintenance {
    /// Posting lists rewritten (tombstones purged, runs rebuilt).
    pub lists_compacted: usize,
    /// Postings examined across all compacted lists.
    pub postings_scanned: usize,
    /// Tombstoned/duplicate postings removed.
    pub postings_purged: usize,
    /// Whether the sweep stopped because the budget ran out.
    pub exhausted: bool,
}

/// Inverted index over all (attribute, value) pairs of a schema.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    /// `lists[a]` has one `Arc`-shared posting list per value of
    /// attribute `a`; snapshots clone the `Arc`s, mutation copies on
    /// write.
    lists: Vec<Vec<Arc<PostingList>>>,
}

impl InvertedIndex {
    /// Creates an empty index shaped after `schema`.
    pub fn new(schema: &Schema) -> Self {
        // All empty lists share one allocation until first written.
        let empty = Arc::new(PostingList::default());
        let lists = schema
            .attr_ids()
            .map(|a| vec![Arc::clone(&empty); schema.domain_size(a) as usize])
            .collect();
        Self { lists }
    }

    /// Registers a freshly inserted tuple (with its hidden score, which
    /// feeds the per-list block-max bounds).
    ///
    /// `values` are the tuple's value codes in schema order. If the slot was
    /// reused, old postings pointing at it become self-healing tombstones:
    /// they are filtered out on scan because the column no longer matches.
    pub fn insert(&mut self, slot: Slot, values: &[ValueId], score: u64) {
        for (a, &v) in values.iter().enumerate() {
            Arc::make_mut(&mut self.lists[a][v.index()]).push(slot, score);
        }
    }

    /// Propagates an in-place score *raise* at `slot` (a measure update
    /// promoting the tuple's rank) to the block-max bounds of every list
    /// the tuple posts to. Raises must be eager — the tuple may now
    /// out-score its blocks' recorded bounds, and a block-max skip
    /// consulting an understated bound would wrongly elide it. Drops
    /// need nothing: a standing bound stays a valid upper bound, exactly
    /// like the store's segment bounds.
    pub fn note_score_raise(&mut self, slot: Slot, values: &[ValueId], score: u64) {
        for (a, &v) in values.iter().enumerate() {
            Arc::make_mut(&mut self.lists[a][v.index()]).raise_block_bound(slot, score);
        }
    }

    /// Notes the deletion of `slot` (which carried `values`), updating
    /// tombstone counters and compacting lists that crossed the threshold.
    pub fn delete(&mut self, slot: Slot, values: &[ValueId], store: &StoreCore) {
        for (a, &v) in values.iter().enumerate() {
            let list = Arc::make_mut(&mut self.lists[a][v.index()]);
            list.dead += 1;
            let len = list.slots.len();
            if len >= COMPACT_MIN_LEN && (list.dead as f64) > COMPACT_DEAD_FRACTION * len as f64 {
                Self::compact(list, a, v, store);
            }
        }
        let _ = slot; // identity not needed: compaction revalidates by value.
    }

    fn compact(list: &mut PostingList, attr_idx: usize, value: ValueId, store: &StoreCore) {
        list.slots.retain(|&s| store.is_alive(s) && store.value_at(attr_idx, s) == value.0);
        list.slots.sort_unstable();
        list.slots.dedup();
        list.dead = 0;
        list.rebuild_runs();
        // Every survivor just revalidated, so its store score is its own:
        // the block-max directory rebuilds exactly (loose bounds from
        // deletes and score-drops drop out here, mirroring the store's
        // `recompute_segment_bound`).
        list.rebuild_blocks(store);
        list.sorted = true;
    }

    /// Budgeted maintenance sweep: compacts every posting list that
    /// carries tombstones or slot-reuse dirt — purging dead entries and
    /// rebuilding the segment-run skip metadata — in deterministic
    /// `(attr, value)` order until `budget` postings have been scanned.
    /// Lists below the reactive [`COMPACT_DEAD_FRACTION`] threshold get
    /// cleaned here too: under sustained churn no single list may ever
    /// cross the threshold while the *sum* of tombstones keeps every
    /// scan paying rent.
    ///
    /// Purely an index rewrite — scans already filter tombstones through
    /// the store, so query answers are bit-identical before and after
    /// (pinned by `compaction_oracle_proptest`).
    pub fn maintain(&mut self, store: &StoreCore, budget: &mut usize) -> IndexMaintenance {
        let mut report = IndexMaintenance::default();
        for (a, attr_lists) in self.lists.iter_mut().enumerate() {
            for (v, list) in attr_lists.iter_mut().enumerate() {
                if list.dead == 0 && (list.sorted || list.slots.is_empty()) {
                    continue;
                }
                let cost = list.slots.len();
                if cost > *budget {
                    // Skip (don't abort): one oversized list must not
                    // starve every smaller dirty list after it — those
                    // would otherwise pay tombstone-scan rent forever
                    // while the budget went unspent.
                    report.exhausted = true;
                    continue;
                }
                *budget -= cost;
                let list = Arc::make_mut(list);
                let before = list.slots.len();
                Self::compact(list, a, ValueId(v as u32), store);
                report.lists_compacted += 1;
                report.postings_scanned += before;
                report.postings_purged += before - list.slots.len();
            }
        }
        report
    }

    /// Estimated number of live postings for `(attr, value)` — an upper
    /// bound used to pick the cheapest list to drive an intersection.
    pub fn estimated_len(&self, attr: AttrId, value: ValueId) -> usize {
        self.lists[attr.index()][value.index()].live_len_estimate()
    }

    /// Sorts the posting list for `(attr, value)` if an out-of-order
    /// append (slot reuse) left it dirty. Amortised cost: appends are
    /// ascending in the common case, so this is usually a flag check.
    pub fn ensure_sorted(&mut self, attr: AttrId, value: ValueId) {
        let list = &mut self.lists[attr.index()][value.index()];
        // Guard before `make_mut`: a clean list must not be copied just
        // to discover there is nothing to do.
        if !list.sorted && !list.slots.is_empty() {
            Arc::make_mut(list).ensure_sorted();
        }
    }

    /// Pays every pending lazy sort in the index, in deterministic
    /// `(attr, value)` order. Called right before an epoch snapshot is
    /// published so snapshot readers can use [`sorted_postings`]
    /// (`&self`) without ever needing a mutable sort pass.
    ///
    /// [`sorted_postings`]: InvertedIndex::sorted_postings
    pub fn ensure_all_sorted(&mut self) {
        for attr_lists in &mut self.lists {
            for list in attr_lists.iter_mut() {
                if !list.sorted && !list.slots.is_empty() {
                    Arc::make_mut(list).ensure_sorted();
                }
            }
        }
    }

    /// Sorted view of the posting list for `(attr, value)` with its
    /// segment-run skip metadata. Call [`InvertedIndex::ensure_sorted`]
    /// first; panics (debug) if the list is dirty.
    pub fn sorted_postings(&self, attr: AttrId, value: ValueId) -> SortedPostings<'_> {
        let list = &self.lists[attr.index()][value.index()];
        debug_assert!(
            list.sorted || list.slots.is_empty(),
            "sorted_postings on a dirty list — call ensure_sorted first"
        );
        SortedPostings { slots: &list.slots, runs: &list.runs, blocks: &list.blocks }
    }

    /// Scans the posting list for `(attr, value)`, invoking `f` for every
    /// slot that is alive *and still carries the value* (tombstone-safe),
    /// each exactly once.
    ///
    /// Duplicates can only arise when a slot appears twice in one list:
    /// that happens iff the slot was freed and re-inserted with the same
    /// value while the stale posting was still present (both postings then
    /// pass re-validation). A list with no recorded tombstones cannot hold
    /// duplicates, so the common case pays nothing. When duplicates are
    /// possible, suppression is a linear probe for short lists and a
    /// `HashSet` beyond [`DEDUP_LINEAR_MAX`] — the previous
    /// `Vec::contains` scheme degraded to O(n²) on long tombstoned lists.
    ///
    /// (Test-only since the segment engine took over the production
    /// scans; the tests keep it as an order-insensitive reference for
    /// the sorted-run paths.)
    #[cfg(test)]
    pub fn for_each_live(
        &self,
        attr: AttrId,
        value: ValueId,
        store: &StoreCore,
        mut f: impl FnMut(Slot),
    ) {
        let list = &self.lists[attr.index()][value.index()];
        if list.dead == 0 {
            for &s in &list.slots {
                if store.is_alive(s) && store.value_at(attr.index(), s) == value.0 {
                    f(s);
                }
            }
            return;
        }
        // Size the seen-set by the *live* estimate, not the raw list
        // length: on a heavily tombstoned list (dead ≈ 40 % right before
        // compaction) sizing by `slots.len()` over-allocated the `HashSet`
        // by almost half, and could pick the hash path when the live
        // candidate count actually fits the cheaper linear probe.
        let mut seen = SeenSlots::with_expected(list.live_len_estimate());
        for &s in &list.slots {
            if store.is_alive(s) && store.value_at(attr.index(), s) == value.0 && seen.insert(s) {
                f(s);
            }
        }
    }

    /// Every posting list that differs from the default empty state, as
    /// `(attr index, value index, list)` in deterministic `(attr, value)`
    /// order — the codec's snapshot walk. Lists are persisted *verbatim*
    /// (tombstones, dirty flags, directories and all) so a restored
    /// index is byte-equivalent to the snapshotted one and evolves
    /// identically from there.
    pub(crate) fn lists_for_snapshot(
        &self,
    ) -> impl Iterator<Item = (usize, usize, &PostingList)> + '_ {
        self.lists.iter().enumerate().flat_map(|(a, attr_lists)| {
            attr_lists.iter().enumerate().filter_map(move |(v, list)| {
                let nontrivial = !list.slots.is_empty()
                    || list.dead > 0
                    || !list.runs.is_empty()
                    || !list.blocks.is_empty();
                nontrivial.then_some((a, v, &**list))
            })
        })
    }

    /// Rebuilds an index from restored snapshot lists (codec v2). Lists
    /// not named keep the shared default-empty state, exactly as
    /// [`InvertedIndex::new`] makes them.
    pub(crate) fn from_restored(schema: &Schema, lists: Vec<(usize, usize, PostingList)>) -> Self {
        let mut idx = Self::new(schema);
        for (a, v, list) in lists {
            idx.lists[a][v] = Arc::new(list);
        }
        idx
    }

    /// Fully rebuilds the index from the store (used by tests and after
    /// bulk loads).
    pub fn rebuild(&mut self, store: &StoreCore) {
        for attr_lists in &mut self.lists {
            for list in attr_lists.iter_mut() {
                if list.slots.is_empty()
                    && list.runs.is_empty()
                    && list.blocks.is_empty()
                    && list.dead == 0
                {
                    continue;
                }
                let list = Arc::make_mut(list);
                list.slots.clear();
                list.runs.clear();
                list.blocks.clear();
                list.dead = 0;
                list.sorted = false;
            }
        }
        for slot in store.alive_slots() {
            let score = store.score_at(slot);
            for (a, attr_lists) in self.lists.iter_mut().enumerate() {
                let v = store.value_at(a, slot);
                Arc::make_mut(&mut attr_lists[v as usize]).push(slot, score);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Store;
    use crate::tuple::Tuple;
    use crate::value::TupleKey;

    fn setup() -> (Schema, Store, InvertedIndex) {
        let schema = Schema::with_domain_sizes(&[2, 3], &[]).unwrap();
        let store = Store::new(2, 0);
        let index = InvertedIndex::new(&schema);
        (schema, store, index)
    }

    fn ins(store: &mut Store, index: &mut InvertedIndex, key: u64, vals: &[u32]) -> Slot {
        let values: Vec<ValueId> = vals.iter().map(|&v| ValueId(v)).collect();
        let slot = store.insert(Tuple::new(TupleKey(key), values.clone(), vec![]), key).unwrap();
        index.insert(slot, &values, key);
        slot
    }

    fn collect(index: &InvertedIndex, store: &Store, a: u16, v: u32) -> Vec<Slot> {
        let mut out = Vec::new();
        index.for_each_live(AttrId(a), ValueId(v), store, |s| out.push(s));
        out.sort_unstable();
        out
    }

    #[test]
    fn insert_then_scan() {
        let (_s, mut store, mut index) = setup();
        let s0 = ins(&mut store, &mut index, 1, &[0, 2]);
        let s1 = ins(&mut store, &mut index, 2, &[0, 1]);
        let _ = ins(&mut store, &mut index, 3, &[1, 2]);
        assert_eq!(collect(&index, &store, 0, 0), vec![s0, s1]);
        assert_eq!(collect(&index, &store, 1, 2).len(), 2);
        assert_eq!(collect(&index, &store, 1, 0), Vec::<Slot>::new());
    }

    #[test]
    fn delete_hides_tuple_without_compaction() {
        let (_s, mut store, mut index) = setup();
        let values = vec![ValueId(0), ValueId(1)];
        let slot = store.insert(Tuple::new(TupleKey(1), values.clone(), vec![]), 1).unwrap();
        index.insert(slot, &values, 1);
        store.delete(TupleKey(1)).unwrap();
        index.delete(slot, &values, &store);
        assert!(collect(&index, &store, 0, 0).is_empty());
    }

    #[test]
    fn slot_reuse_with_different_value_is_filtered() {
        let (_s, mut store, mut index) = setup();
        let v_old = vec![ValueId(0), ValueId(0)];
        let slot = store.insert(Tuple::new(TupleKey(1), v_old.clone(), vec![]), 1).unwrap();
        index.insert(slot, &v_old, 1);
        store.delete(TupleKey(1)).unwrap();
        index.delete(slot, &v_old, &store);
        // Reuse the same slot with a different A0 value.
        let v_new = vec![ValueId(1), ValueId(0)];
        let slot2 = store.insert(Tuple::new(TupleKey(2), v_new.clone(), vec![]), 2).unwrap();
        assert_eq!(slot, slot2);
        index.insert(slot2, &v_new, 2);
        // Old posting for (A0,u0) must not resurrect the new occupant.
        assert!(collect(&index, &store, 0, 0).is_empty());
        assert_eq!(collect(&index, &store, 0, 1), vec![slot2]);
    }

    #[test]
    fn slot_reuse_with_same_value_does_not_duplicate() {
        let (_s, mut store, mut index) = setup();
        let vals = vec![ValueId(1), ValueId(2)];
        let slot = store.insert(Tuple::new(TupleKey(1), vals.clone(), vec![]), 1).unwrap();
        index.insert(slot, &vals, 1);
        store.delete(TupleKey(1)).unwrap();
        index.delete(slot, &vals, &store);
        let slot2 = store.insert(Tuple::new(TupleKey(2), vals.clone(), vec![]), 2).unwrap();
        assert_eq!(slot, slot2);
        index.insert(slot2, &vals, 2);
        // The stale and fresh postings both point at the same alive slot
        // carrying the same value; the scan must yield it exactly once.
        assert_eq!(collect(&index, &store, 0, 1), vec![slot2]);
    }

    #[test]
    fn heavily_tombstoned_list_dedups_through_the_small_probe() {
        // A list with many tombstones but few live entries must stay
        // exact now that the seen-set is sized by `live_len_estimate()`
        // (≤ DEDUP_LINEAR_MAX → the linear Vec probe) — including a
        // reused slot that appears twice and must surface once.
        let (_s, mut store, mut index) = setup();
        // 30 tuples in (A0,u1); delete 25 — under COMPACT_MIN_LEN, so no
        // compaction: 30 postings, 25 tombstones, live estimate 5.
        for key in 0..30u64 {
            ins(&mut store, &mut index, key, &[1, 0]);
        }
        for key in 0..25u64 {
            let slot = store.slot_of(TupleKey(key)).unwrap();
            store.delete(TupleKey(key)).unwrap();
            index.delete(slot, &[ValueId(1), ValueId(0)], &store);
        }
        // Reuse a freed slot with the same value: its stale and fresh
        // postings both revalidate.
        let reused = ins(&mut store, &mut index, 100, &[1, 0]);
        let live = collect(&index, &store, 0, 1);
        assert_eq!(live.len(), 6);
        assert_eq!(live.iter().filter(|&&s| s == reused).count(), 1, "reused slot deduped");
    }

    #[test]
    fn compaction_keeps_results_correct() {
        let (_s, mut store, mut index) = setup();
        // Insert enough tuples into one list to trigger compaction.
        for key in 0..200u64 {
            ins(&mut store, &mut index, key, &[0, (key % 3) as u32]);
        }
        // Delete most of them.
        for key in 0..150u64 {
            let vals = vec![ValueId(0), ValueId((key % 3) as u32)];
            let slot = store.slot_of(TupleKey(key)).unwrap();
            store.delete(TupleKey(key)).unwrap();
            index.delete(slot, &vals, &store);
        }
        let live = collect(&index, &store, 0, 0);
        assert_eq!(live.len(), 50);
        for s in live {
            assert!(store.is_alive(s));
            assert!(store.key_at(s).0 >= 150);
        }
    }

    #[test]
    fn gallop_to_finds_lower_bounds() {
        let slots: Vec<Slot> = vec![2, 5, 5, 9, 14, 20, 33, 34, 90];
        for target in 0..100u32 {
            for from in 0..=slots.len() {
                let want = from + slots[from..].partition_point(|&s| s < target);
                assert_eq!(gallop_to(&slots, from, target), want, "target {target} from {from}");
            }
        }
        assert_eq!(gallop_to(&[], 0, 5), 0);
    }

    #[test]
    fn appends_keep_lists_sorted_and_runs_coherent() {
        let (_s, mut store, mut index) = setup();
        for key in 0..40u64 {
            ins(&mut store, &mut index, key, &[0, (key % 3) as u32]);
        }
        // Ascending appends: already sorted, no work needed.
        index.ensure_sorted(AttrId(0), ValueId(0));
        let view = index.sorted_postings(AttrId(0), ValueId(0));
        assert_eq!(view.len(), 40);
        assert!(view.slots().windows(2).all(|w| w[0] <= w[1]));
        let runs: Vec<(usize, usize)> = view.runs().map(|(seg, run)| (seg, run.len())).collect();
        assert_eq!(runs, vec![(0, 40)], "one segment at this size");
        assert_eq!(view.run_in(0).len(), 40);
        assert!(view.run_in(7).is_empty());
    }

    #[test]
    fn slot_reuse_dirties_then_resorts_with_adjacent_duplicates() {
        let (_s, mut store, mut index) = setup();
        for key in 0..10u64 {
            ins(&mut store, &mut index, key, &[1, 0]);
        }
        // Free slot 3 and re-insert with the same value: the stale and
        // fresh postings must end up adjacent after the lazy sort.
        let slot = store.slot_of(TupleKey(3)).unwrap();
        store.delete(TupleKey(3)).unwrap();
        index.delete(slot, &[ValueId(1), ValueId(0)], &store);
        let reused = ins(&mut store, &mut index, 99, &[1, 0]);
        assert_eq!(reused, slot);
        index.ensure_sorted(AttrId(0), ValueId(1));
        let view = index.sorted_postings(AttrId(0), ValueId(1));
        assert!(view.slots().windows(2).all(|w| w[0] <= w[1]));
        // dedup collapses the double posting entirely.
        assert_eq!(view.slots().iter().filter(|&&s| s == reused).count(), 1);
    }

    #[test]
    fn maintain_purges_tombstones_below_the_reactive_threshold() {
        let (_s, mut store, mut index) = setup();
        // 30 postings, 10 tombstones: under COMPACT_MIN_LEN and under the
        // dead fraction, so the reactive path never compacts this list.
        for key in 0..30u64 {
            ins(&mut store, &mut index, key, &[1, 0]);
        }
        for key in 0..10u64 {
            let slot = store.slot_of(TupleKey(key)).unwrap();
            store.delete(TupleKey(key)).unwrap();
            index.delete(slot, &[ValueId(1), ValueId(0)], &store);
        }
        let live_before = collect(&index, &store, 0, 1);
        let mut budget = usize::MAX;
        let report = index.maintain(&store, &mut budget);
        assert!(report.lists_compacted >= 1);
        assert_eq!(report.postings_purged, 20, "10 from (A0,u1) and 10 from (A1,u0)");
        assert!(!report.exhausted);
        assert_eq!(collect(&index, &store, 0, 1), live_before, "scan results unchanged");
        // Everything clean: a second sweep finds no work.
        let report = index.maintain(&store, &mut budget);
        assert_eq!(report, IndexMaintenance::default());
        // A zero budget does nothing but report exhaustion when dirty.
        for key in 30..32u64 {
            ins(&mut store, &mut index, key, &[1, 0]);
        }
        let slot = store.slot_of(TupleKey(30)).unwrap();
        store.delete(TupleKey(30)).unwrap();
        index.delete(slot, &[ValueId(1), ValueId(0)], &store);
        let mut none = 0usize;
        let report = index.maintain(&store, &mut none);
        assert!(report.exhausted);
        assert_eq!(report.lists_compacted, 0);
    }

    /// Exact truth for one list's block-max directory: for every block,
    /// the max store score over postings that are alive and still carry
    /// the value (the same revalidation `compact` applies).
    fn exact_blocks(index: &InvertedIndex, store: &Store, a: u16, v: u32) -> Vec<(u32, u64)> {
        let mut by_block: Vec<(u32, u64)> = Vec::new();
        index.for_each_live(AttrId(a), ValueId(v), store, |s| {
            let blk = block_of(s) as u32;
            let score = store.score_at(s);
            match by_block.binary_search_by_key(&blk, |&(b, _)| b) {
                Ok(i) => by_block[i].1 = by_block[i].1.max(score),
                Err(i) => by_block.insert(i, (blk, score)),
            }
        });
        by_block
    }

    /// Index sibling of the store's exact-after-recompute test: per-list
    /// block bounds never understate under churn, and a maintenance
    /// compaction rebuilds them exactly from revalidated postings.
    #[test]
    fn list_block_bounds_never_understate_and_compact_exactly() {
        let (schema, mut store, mut index) = setup();
        // Three blocks' worth of postings in (A0,u1), score == key.
        let n = (3 * BLOCK_SLOTS) as u64;
        for key in 0..n {
            ins(&mut store, &mut index, key, &[1, (key % 3) as u32]);
        }
        index.ensure_sorted(AttrId(0), ValueId(1));
        let view = index.sorted_postings(AttrId(0), ValueId(1));
        assert_eq!(view.blocks().len(), 3);
        assert_eq!(view.block_bound(0), Some(BLOCK_SLOTS as u64 - 1));
        assert_eq!(view.block_bound(2), Some(n - 1));
        assert_eq!(view.block_bound(3), None, "no postings past block 2");
        assert_eq!(view.block_run(1).len(), BLOCK_SLOTS);
        assert!(view.block_run(1).iter().all(|&s| block_of(s) == 1));
        // Delete block 2's top scorers: bounds go loose but must keep
        // covering every surviving posting's score.
        for key in (n - 8)..n {
            let slot = store.slot_of(TupleKey(key)).unwrap();
            store.delete(TupleKey(key)).unwrap();
            index.delete(slot, &[ValueId(1), ValueId((key % 3) as u32)], &store);
        }
        let view = index.sorted_postings(AttrId(0), ValueId(1));
        assert_eq!(view.block_bound(2), Some(n - 1), "lazy bound left standing");
        for (blk, exact) in exact_blocks(&index, &store, 0, 1) {
            assert!(
                view.block_bound(blk).unwrap() >= exact,
                "block {blk}: bound understates {exact}"
            );
        }
        // An unbudgeted maintenance sweep rebuilds every directory
        // exactly — loose bounds drop out, empty blocks disappear.
        let mut budget = usize::MAX;
        index.maintain(&store, &mut budget);
        for a in 0..2u16 {
            for v in 0..schema.domain_size(AttrId(a)) {
                index.ensure_sorted(AttrId(a), ValueId(v));
                let view = index.sorted_postings(AttrId(a), ValueId(v));
                assert_eq!(
                    view.blocks().to_vec(),
                    exact_blocks(&index, &store, a, v),
                    "A{a}=u{v}: blocks not exact after maintain"
                );
            }
        }
        let view = index.sorted_postings(AttrId(0), ValueId(1));
        assert_eq!(view.block_bound(2), Some(n - 9), "rebuilt exactly");
    }

    #[test]
    fn rebuild_matches_incremental() {
        let (schema, mut store, mut index) = setup();
        for key in 0..60u64 {
            ins(&mut store, &mut index, key, &[(key % 2) as u32, (key % 3) as u32]);
        }
        for key in (0..60u64).step_by(3) {
            let slot = store.slot_of(TupleKey(key)).unwrap();
            let vals = vec![ValueId((key % 2) as u32), ValueId((key % 3) as u32)];
            store.delete(TupleKey(key)).unwrap();
            index.delete(slot, &vals, &store);
        }
        let mut rebuilt = InvertedIndex::new(&schema);
        rebuilt.rebuild(&store);
        for a in 0..2u16 {
            for v in 0..schema.domain_size(AttrId(a)) {
                assert_eq!(
                    collect(&index, &store, a, v),
                    collect(&rebuilt, &store, a, v),
                    "mismatch at A{a}=u{v}"
                );
            }
        }
    }
}
