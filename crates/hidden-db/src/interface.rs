//! The restrictive search interface: outcome classification and the
//! evaluation engine behind it.
//!
//! Per §2.1, a query returns at most `k` tuples. We classify:
//! * **underflow** — no tuple matches (empty result page);
//! * **valid** — between 1 and `k` tuples match; all are returned;
//! * **overflow** — more than `k` match; only the top-`k` by the hidden
//!   scoring function are returned, with a "more results" indicator.
//!
//! Crucially the interface does **not** disclose the matching count — the
//! whole point of the paper is estimating aggregates without it.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::query::ConjunctiveQuery;
use crate::store::{Slot, Store};
use crate::tuple::TupleView;

/// The interface's answer to one search query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// No tuple matched.
    Underflow,
    /// All matching tuples (1..=k of them), ranked best-first.
    Valid(Vec<TupleView>),
    /// More than `k` tuples matched; the top-`k` by hidden score,
    /// best-first.
    Overflow(Vec<TupleView>),
}

impl QueryOutcome {
    /// Whether the query overflowed (returned a truncated page).
    pub fn is_overflow(&self) -> bool {
        matches!(self, Self::Overflow(_))
    }

    /// Whether the query underflowed (empty page).
    pub fn is_underflow(&self) -> bool {
        matches!(self, Self::Underflow)
    }

    /// Whether the query is valid (complete, non-empty page).
    pub fn is_valid(&self) -> bool {
        matches!(self, Self::Valid(_))
    }

    /// The returned tuples (empty for underflow).
    pub fn tuples(&self) -> &[TupleView] {
        match self {
            Self::Underflow => &[],
            Self::Valid(ts) | Self::Overflow(ts) => ts,
        }
    }

    /// Number of returned tuples (NOT the matching count for overflows).
    pub fn returned_count(&self) -> usize {
        self.tuples().len()
    }
}

/// Raw evaluation result kept in the per-version memo cache: whether the
/// query overflowed and which slots to materialise.
#[derive(Debug, Clone)]
pub(crate) struct CachedEval {
    pub(crate) overflow: bool,
    /// Result slots, best-first. For overflow: exactly `k`. For valid: all
    /// matches. For underflow: empty.
    pub(crate) slots: Vec<Slot>,
}

impl CachedEval {
    pub(crate) fn to_outcome(&self, store: &Store) -> QueryOutcome {
        if self.slots.is_empty() {
            QueryOutcome::Underflow
        } else {
            let views = self.slots.iter().map(|&s| store.view(s)).collect();
            if self.overflow {
                QueryOutcome::Overflow(views)
            } else {
                QueryOutcome::Valid(views)
            }
        }
    }
}

/// Evaluates `query` against the store, returning the cacheable result.
///
/// `candidates` drives iteration: the caller passes the cheapest stream of
/// candidate slots (a posting list, or all alive slots for the root query);
/// every candidate is re-checked against all predicates, so supersets are
/// safe.
pub(crate) fn evaluate<I>(
    query: &ConjunctiveQuery,
    store: &Store,
    k: usize,
    candidates: I,
) -> CachedEval
where
    I: IntoIterator<Item = Slot>,
{
    // Min-heap of (score, slot) keeping the k best seen so far. With
    // capacity k+0: if total matches ≤ k the heap simply holds them all.
    let mut heap: BinaryHeap<Reverse<(u64, Slot)>> = BinaryHeap::with_capacity(k + 1);
    let mut matched: usize = 0;
    for slot in candidates {
        if !slot_matches(query, store, slot) {
            continue;
        }
        matched += 1;
        heap.push(Reverse((store.score_at(slot), slot)));
        if heap.len() > k {
            heap.pop();
        }
    }
    let mut slots: Vec<Slot> = heap.into_iter().map(|Reverse((_, s))| s).collect();
    // Best-first: sort by score descending (ties by slot for determinism).
    slots.sort_unstable_by_key(|&s| Reverse((store.score_at(s), s)));
    CachedEval { overflow: matched > k, slots }
}

#[inline]
fn slot_matches(query: &ConjunctiveQuery, store: &Store, slot: Slot) -> bool {
    if !store.is_alive(slot) {
        return false;
    }
    query
        .predicates()
        .iter()
        .all(|p| store.value_at(p.attr.index(), slot) == p.value.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Predicate;
    use crate::tuple::Tuple;
    use crate::value::{AttrId, TupleKey, ValueId};

    fn store_with(n: u64) -> Store {
        let mut s = Store::new(1, 0);
        for key in 0..n {
            s.insert(
                Tuple::new(TupleKey(key), vec![ValueId((key % 2) as u32)], vec![]),
                // score = key so ranking is transparent in tests
                key,
            )
            .unwrap();
        }
        s
    }

    fn eval_all(q: &ConjunctiveQuery, store: &Store, k: usize) -> CachedEval {
        evaluate(q, store, k, store.alive_slots().collect::<Vec<_>>())
    }

    #[test]
    fn underflow_valid_overflow_classification() {
        let store = store_with(5); // A0 values: 0,1,0,1,0
        let root = ConjunctiveQuery::select_all();
        let r = eval_all(&root, &store, 10);
        assert!(!r.overflow);
        assert_eq!(r.slots.len(), 5);

        let r = eval_all(&root, &store, 3);
        assert!(r.overflow);
        assert_eq!(r.slots.len(), 3);

        let none = ConjunctiveQuery::from_predicates([Predicate::new(AttrId(0), ValueId(1))]);
        let empty = Store::new(1, 0);
        let r = evaluate(&none, &empty, 3, std::iter::empty());
        assert!(!r.overflow);
        assert!(r.slots.is_empty());
    }

    #[test]
    fn overflow_returns_top_k_by_score() {
        let store = store_with(10);
        let root = ConjunctiveQuery::select_all();
        let r = eval_all(&root, &store, 4);
        assert!(r.overflow);
        // Scores are the keys; best-first means keys 9,8,7,6.
        let keys: Vec<u64> = r.slots.iter().map(|&s| store.key_at(s).0).collect();
        assert_eq!(keys, vec![9, 8, 7, 6]);
    }

    #[test]
    fn valid_results_are_ranked_best_first_too() {
        let store = store_with(6);
        let q = ConjunctiveQuery::from_predicates([Predicate::new(AttrId(0), ValueId(0))]);
        let r = eval_all(&q, &store, 10);
        assert!(!r.overflow);
        let keys: Vec<u64> = r.slots.iter().map(|&s| store.key_at(s).0).collect();
        assert_eq!(keys, vec![4, 2, 0]);
    }

    #[test]
    fn boundary_exactly_k_matches_is_valid() {
        let store = store_with(4);
        let root = ConjunctiveQuery::select_all();
        let r = eval_all(&root, &store, 4);
        assert!(!r.overflow, "count == k must be valid, not overflow");
        assert_eq!(r.slots.len(), 4);
        let r = eval_all(&root, &store, 3);
        assert!(r.overflow, "count == k+1 must overflow");
    }

    #[test]
    fn dead_slots_are_ignored() {
        let mut store = store_with(4);
        store.delete(TupleKey(3)).unwrap();
        let all: Vec<Slot> = (0..store.slot_bound()).collect();
        let r = evaluate(&ConjunctiveQuery::select_all(), &store, 10, all);
        assert_eq!(r.slots.len(), 3);
    }

    #[test]
    fn outcome_materialisation() {
        let store = store_with(2);
        let r = eval_all(&ConjunctiveQuery::select_all(), &store, 10);
        let out = r.to_outcome(&store);
        assert!(out.is_valid());
        assert_eq!(out.returned_count(), 2);
        assert_eq!(out.tuples()[0].key(), TupleKey(1));

        let r = CachedEval { overflow: false, slots: vec![] };
        assert!(r.to_outcome(&store).is_underflow());
    }
}
