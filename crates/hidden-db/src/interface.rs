//! The restrictive search interface: outcome classification and the
//! evaluation engine behind it.
//!
//! Per §2.1, a query returns at most `k` tuples. We classify:
//! * **underflow** — no tuple matches (empty result page);
//! * **valid** — between 1 and `k` tuples match; all are returned;
//! * **overflow** — more than `k` match; only the top-`k` by the hidden
//!   scoring function are returned, with a "more results" indicator.
//!
//! Crucially the interface does **not** disclose the matching count — the
//! whole point of the paper is estimating aggregates without it.
//!
//! ## Evaluation is streaming and allocation-lean
//!
//! [`evaluate_streaming`] consumes candidates by internal iteration (the
//! producer pushes slots into the ranking heap), so callers never
//! materialise an intermediate `Vec<Slot>` — the root query streams the
//! alive-slot scan and predicate queries stream a posting list directly.
//! Result pages are materialised into [`TupleView`]s **once** per cache
//! entry and shared behind an `Arc`, so repeated (memoised) answers to the
//! same query cost one atomic increment instead of `k` fresh allocations.
//! Since PR 2 cache entries can *outlive mutations*: the memo's
//! postings-aware invalidation (see [`crate::memo`]'s module docs) drops
//! exactly the entries whose result set a mutation can have changed, so a
//! shared page is only ever served while every slot it references is
//! untouched.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use crate::query::ConjunctiveQuery;
use crate::store::{Slot, StoreCore};
use crate::tuple::TupleView;
use crate::value::TupleKey;

/// The classification of an answer, without its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutcomeClass {
    /// No tuple matched.
    Underflow,
    /// 1..=k tuples matched; the page is complete.
    Valid,
    /// More than `k` matched; the page is truncated.
    Overflow,
}

/// The interface's answer to one search query.
///
/// Result pages are shared (`Arc`) with the database's memo cache:
/// cloning an outcome, and re-asking a memoised query, are O(1).
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// No tuple matched.
    Underflow,
    /// All matching tuples (1..=k of them), ranked best-first.
    Valid(Arc<[TupleView]>),
    /// More than `k` tuples matched; the top-`k` by hidden score,
    /// best-first.
    Overflow(Arc<[TupleView]>),
}

impl QueryOutcome {
    /// Whether the query overflowed (returned a truncated page).
    pub fn is_overflow(&self) -> bool {
        matches!(self, Self::Overflow(_))
    }

    /// Whether the query underflowed (empty page).
    pub fn is_underflow(&self) -> bool {
        matches!(self, Self::Underflow)
    }

    /// Whether the query is valid (complete, non-empty page).
    pub fn is_valid(&self) -> bool {
        matches!(self, Self::Valid(_))
    }

    /// The outcome's classification, without the payload.
    pub fn class(&self) -> OutcomeClass {
        match self {
            Self::Underflow => OutcomeClass::Underflow,
            Self::Valid(_) => OutcomeClass::Valid,
            Self::Overflow(_) => OutcomeClass::Overflow,
        }
    }

    /// The returned tuples (empty for underflow).
    pub fn tuples(&self) -> &[TupleView] {
        match self {
            Self::Underflow => &[],
            Self::Valid(ts) | Self::Overflow(ts) => ts,
        }
    }

    /// Keys of the returned tuples, best-first — for callers that only
    /// need identity (drill bookkeeping), not values or measures.
    pub fn keys(&self) -> impl Iterator<Item = TupleKey> + '_ {
        self.tuples().iter().map(|t| t.key())
    }

    /// Number of returned tuples (NOT the matching count for overflows).
    pub fn returned_count(&self) -> usize {
        self.tuples().len()
    }
}

/// Raw evaluation result kept in the memo cache: whether the query
/// overflowed, which slots form the page, and (lazily) the materialised
/// page shared with every outcome handed out for this entry.
#[derive(Debug, Clone)]
pub(crate) struct CachedEval {
    pub(crate) overflow: bool,
    /// Result slots, best-first. For overflow: exactly `k`. For valid: all
    /// matches. For underflow: empty. The memo's invalidation also probes
    /// these against a mutation's touched-slot set (belt-and-braces page
    /// check).
    pub(crate) slots: Vec<Slot>,
    /// Matching-tuple count observed at evaluation time (`> k` iff
    /// `overflow`). Internal only — the search interface never discloses
    /// it; the memo's revalidation uses it as the classification margin:
    /// as long as `matched` minus the churn seen since stays above `k`,
    /// the entry provably still overflows.
    pub(crate) matched: usize,
    /// Score of the worst page slot at evaluation time (the page
    /// "floor"); `u64::MAX` for an empty page (`k == 0`), where nothing
    /// can enter. A churned tuple whose score stays *strictly* below the
    /// floor cannot displace any page slot under the total
    /// `(score, slot)` order.
    pub(crate) floor: u64,
    /// Materialised page, filled on first demand. Safe to cache because
    /// the memo drops (or demotes and re-checks) this entry before any
    /// mutation that could touch one of `slots` becomes visible —
    /// wholesale on version bumps under the legacy policy,
    /// footprint-targeted under incremental invalidation.
    views: Option<Arc<[TupleView]>>,
}

impl CachedEval {
    pub(crate) fn new(overflow: bool, slots: Vec<Slot>) -> Self {
        let matched = slots.len() + usize::from(overflow);
        Self { overflow, slots, matched, floor: 0, views: None }
    }

    /// The outcome, materialising tuple views on first use and sharing
    /// them on every subsequent cache hit.
    pub(crate) fn outcome(&mut self, store: &StoreCore) -> QueryOutcome {
        if self.slots.is_empty() {
            return QueryOutcome::Underflow;
        }
        let views = self
            .views
            .get_or_insert_with(|| self.slots.iter().map(|&s| store.view(s)).collect())
            .clone();
        if self.overflow {
            QueryOutcome::Overflow(views)
        } else {
            QueryOutcome::Valid(views)
        }
    }
}

/// Streaming top-`k` accumulator: the heart of query evaluation.
///
/// Candidates are [`TopK::offer`]ed one at a time (already verified to
/// match the query and be alive); the accumulator tracks the match count
/// and the best `k` by `(score, slot)`. Between batches of candidates the
/// driver may consult [`TopK::can_stop`] with an upper bound on every
/// remaining candidate's score — once the query has provably overflowed
/// *and* the heap floor beats that bound, the rest of the scan cannot
/// change the returned page, so evaluation stops early. The resulting
/// [`CachedEval`] is **bit-identical** to an exhaustive scan: the top-`k`
/// set under the total `(score, slot)` order does not depend on candidate
/// arrival order, and the overflow classification is already decided when
/// an early exit fires.
pub(crate) struct TopK {
    heap: BinaryHeap<Reverse<(u64, Slot)>>,
    k: usize,
    matched: usize,
}

impl TopK {
    pub(crate) fn new(k: usize) -> Self {
        // Capacity k+1: if total matches ≤ k the heap simply holds them
        // all; the transient k+1-th lives in the spare slot.
        Self { heap: BinaryHeap::with_capacity(k + 1), k, matched: 0 }
    }

    /// Accounts one matching candidate.
    #[inline]
    pub(crate) fn offer(&mut self, score: u64, slot: Slot) {
        self.matched += 1;
        self.heap.push(Reverse((score, slot)));
        if self.heap.len() > self.k {
            self.heap.pop();
        }
    }

    /// Whether the query has already provably overflowed — the cheap
    /// pre-condition of [`TopK::can_stop`], split out so drivers can
    /// defer computing their remaining-score bound until it can matter.
    #[inline]
    pub(crate) fn overflowed(&self) -> bool {
        self.matched > self.k
    }

    /// Whether the scan may stop: the query has overflowed (`matched > k`
    /// pins the classification) and no remaining candidate can enter the
    /// page. `remaining_bound` must be `>=` the score of every candidate
    /// not yet offered; the comparison is strict because a remaining
    /// candidate whose score *equals* the floor could still displace it
    /// on the slot tie-break.
    #[inline]
    pub(crate) fn can_stop(&self, remaining_bound: u64) -> bool {
        self.overflowed()
            && match self.heap.peek() {
                Some(&Reverse((floor, _))) => remaining_bound < floor,
                // k == 0: the page is empty no matter what remains.
                None => true,
            }
    }

    /// Materialises the evaluation: page slots best-first, plus the
    /// match count and page floor the memo's revalidation anchors on.
    pub(crate) fn finish(self, store: &StoreCore) -> CachedEval {
        let mut slots: Vec<Slot> = self.heap.into_iter().map(|Reverse((_, s))| s).collect();
        // Best-first: sort by score descending (ties by slot for
        // determinism).
        slots.sort_unstable_by_key(|&s| Reverse((store.score_at(s), s)));
        let floor = slots.last().map_or(u64::MAX, |&s| store.score_at(s));
        let mut eval = CachedEval::new(self.matched > self.k, slots);
        eval.matched = self.matched;
        eval.floor = floor;
        eval
    }
}

/// Evaluates `query` against the store with candidates delivered by
/// internal iteration: `feed` is called once with a sink and pushes every
/// candidate slot into it. Each candidate is re-checked against all
/// predicates, so superset producers are safe. No intermediate candidate
/// collection is allocated. (Test-only since the segment engine took
/// over the production paths; kept as the reference harness here.)
#[cfg(test)]
pub(crate) fn evaluate_streaming(
    query: &ConjunctiveQuery,
    store: &StoreCore,
    k: usize,
    feed: impl FnOnce(&mut dyn FnMut(Slot)),
) -> CachedEval {
    let mut topk = TopK::new(k);
    feed(&mut |slot| {
        if slot_matches(query, store, slot) {
            topk.offer(store.score_at(slot), slot);
        }
    });
    topk.finish(store)
}

/// External-iteration convenience over [`evaluate_streaming`] for callers
/// that already hold a candidate collection (tests, ad-hoc tools).
#[cfg(test)]
pub(crate) fn evaluate<I>(
    query: &ConjunctiveQuery,
    store: &StoreCore,
    k: usize,
    candidates: I,
) -> CachedEval
where
    I: IntoIterator<Item = Slot>,
{
    evaluate_streaming(query, store, k, |sink| {
        for slot in candidates {
            sink(slot);
        }
    })
}

/// Whether the (possibly stale) candidate at `slot` is alive and satisfies
/// every predicate — the columnar residual check behind every driver:
/// per predicate, two array loads.
#[inline]
pub(crate) fn slot_matches(query: &ConjunctiveQuery, store: &StoreCore, slot: Slot) -> bool {
    if !store.is_alive(slot) {
        return false;
    }
    query.predicates().iter().all(|p| store.value_at(p.attr.index(), slot) == p.value.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Predicate;
    use crate::store::Store;
    use crate::tuple::Tuple;
    use crate::value::{AttrId, TupleKey, ValueId};

    fn store_with(n: u64) -> Store {
        let mut s = Store::new(1, 0);
        for key in 0..n {
            s.insert(
                Tuple::new(TupleKey(key), vec![ValueId((key % 2) as u32)], vec![]),
                // score = key so ranking is transparent in tests
                key,
            )
            .unwrap();
        }
        s
    }

    fn eval_all(q: &ConjunctiveQuery, store: &Store, k: usize) -> CachedEval {
        evaluate_streaming(q, store, k, |sink| {
            for slot in store.alive_slots() {
                sink(slot);
            }
        })
    }

    #[test]
    fn underflow_valid_overflow_classification() {
        let store = store_with(5); // A0 values: 0,1,0,1,0
        let root = ConjunctiveQuery::select_all();
        let r = eval_all(&root, &store, 10);
        assert!(!r.overflow);
        assert_eq!(r.slots.len(), 5);

        let r = eval_all(&root, &store, 3);
        assert!(r.overflow);
        assert_eq!(r.slots.len(), 3);

        let none = ConjunctiveQuery::from_predicates([Predicate::new(AttrId(0), ValueId(1))]);
        let empty = Store::new(1, 0);
        let r = evaluate(&none, &empty, 3, std::iter::empty());
        assert!(!r.overflow);
        assert!(r.slots.is_empty());
    }

    #[test]
    fn overflow_returns_top_k_by_score() {
        let store = store_with(10);
        let root = ConjunctiveQuery::select_all();
        let r = eval_all(&root, &store, 4);
        assert!(r.overflow);
        // Scores are the keys; best-first means keys 9,8,7,6.
        let keys: Vec<u64> = r.slots.iter().map(|&s| store.key_at(s).0).collect();
        assert_eq!(keys, vec![9, 8, 7, 6]);
    }

    #[test]
    fn valid_results_are_ranked_best_first_too() {
        let store = store_with(6);
        let q = ConjunctiveQuery::from_predicates([Predicate::new(AttrId(0), ValueId(0))]);
        let r = eval_all(&q, &store, 10);
        assert!(!r.overflow);
        let keys: Vec<u64> = r.slots.iter().map(|&s| store.key_at(s).0).collect();
        assert_eq!(keys, vec![4, 2, 0]);
    }

    #[test]
    fn boundary_exactly_k_matches_is_valid() {
        let store = store_with(4);
        let root = ConjunctiveQuery::select_all();
        let r = eval_all(&root, &store, 4);
        assert!(!r.overflow, "count == k must be valid, not overflow");
        assert_eq!(r.slots.len(), 4);
        let r = eval_all(&root, &store, 3);
        assert!(r.overflow, "count == k+1 must overflow");
    }

    #[test]
    fn dead_slots_are_ignored() {
        let mut store = store_with(4);
        store.delete(TupleKey(3)).unwrap();
        let all: Vec<Slot> = (0..store.slot_bound()).collect();
        let r = evaluate(&ConjunctiveQuery::select_all(), &store, 10, all);
        assert_eq!(r.slots.len(), 3);
    }

    #[test]
    fn can_stop_requires_overflow_and_a_strict_floor() {
        let store = store_with(6); // scores = keys 0..=5
        let mut topk = TopK::new(3);
        for slot in 0..4u32 {
            topk.offer(store.score_at(slot), slot);
        }
        // matched (4) > k (3); floor is score 1 (slots 1,2,3 kept).
        assert!(topk.can_stop(0), "bound below the floor stops");
        assert!(!topk.can_stop(1), "bound equal to the floor must not stop (slot tie-break)");
        assert!(!topk.can_stop(5), "bound above the floor must not stop");
        // Not yet overflowed: never stop.
        let mut fresh = TopK::new(3);
        fresh.offer(9, 0);
        assert!(!fresh.can_stop(0));
        // k == 0: a single match pins the (empty) overflow page.
        let mut zero = TopK::new(0);
        zero.offer(1, 0);
        assert!(zero.can_stop(u64::MAX));
    }

    #[test]
    fn outcome_materialisation() {
        let store = store_with(2);
        let mut r = eval_all(&ConjunctiveQuery::select_all(), &store, 10);
        let out = r.outcome(&store);
        assert!(out.is_valid());
        assert_eq!(out.class(), OutcomeClass::Valid);
        assert_eq!(out.returned_count(), 2);
        assert_eq!(out.tuples()[0].key(), TupleKey(1));
        assert_eq!(out.keys().collect::<Vec<_>>(), vec![TupleKey(1), TupleKey(0)]);

        let mut r = CachedEval::new(false, vec![]);
        let o = r.outcome(&store);
        assert!(o.is_underflow());
        assert_eq!(o.class(), OutcomeClass::Underflow);
    }

    #[test]
    fn repeated_outcomes_share_one_materialisation() {
        let store = store_with(3);
        let mut r = eval_all(&ConjunctiveQuery::select_all(), &store, 10);
        let a = r.outcome(&store);
        let b = r.outcome(&store);
        let (QueryOutcome::Valid(va), QueryOutcome::Valid(vb)) = (&a, &b) else {
            panic!("expected valid outcomes");
        };
        assert!(Arc::ptr_eq(va, vb), "cache hits must share the page");
    }
}
