//! # hidden-db — a dynamic hidden web database simulator
//!
//! This crate is the substrate for reproducing *Aggregate Estimation Over
//! Dynamic Hidden Web Databases* (Liu, Thirumuruganathan, Zhang, Das —
//! VLDB 2014). It models a web database that is:
//!
//! * **hidden** — reachable only through a form-like interface that accepts
//!   conjunctive point-predicate queries and returns at most `k` tuples,
//!   ranked by a proprietary scoring function, without disclosing the true
//!   matching count ([`interface::QueryOutcome`]);
//! * **rate-limited** — every round enforces a query budget `G`
//!   ([`budget::QueryBudget`], [`session::SearchSession`]);
//! * **dynamic** — the owner inserts/deletes/updates tuples between (or
//!   during) rounds ([`updates::UpdateBatch`]).
//!
//! The crate deliberately separates two personas:
//!
//! * a third-party **estimator** sees only the [`session::SearchBackend`]
//!   trait — schema, `k`, and budgeted query issuance;
//! * the experiment **owner** also gets ground-truth aggregation and update
//!   application on [`database::HiddenDatabase`], used to drive workloads
//!   and score estimator accuracy.
//!
//! ## Example
//!
//! ```
//! use hidden_db::{
//!     database::HiddenDatabase,
//!     query::ConjunctiveQuery,
//!     ranking::ScoringPolicy,
//!     schema::Schema,
//!     session::{SearchBackend, SearchSession},
//!     tuple::Tuple,
//!     value::{TupleKey, ValueId},
//! };
//!
//! let schema = Schema::with_domain_sizes(&[2, 3], &["price"]).unwrap();
//! let mut db = HiddenDatabase::new(schema, 2, ScoringPolicy::default());
//! for key in 0..5u64 {
//!     db.insert(Tuple::new(
//!         TupleKey(key),
//!         vec![ValueId((key % 2) as u32), ValueId((key % 3) as u32)],
//!         vec![10.0 * key as f64],
//!     ))
//!     .unwrap();
//! }
//!
//! let mut session = SearchSession::new(&mut db, 10);
//! let outcome = session.issue(&ConjunctiveQuery::select_all()).unwrap();
//! assert!(outcome.is_overflow()); // 5 tuples > k = 2
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod budget;
pub mod codec;
pub mod database;
pub mod errors;
pub mod fault;
pub mod index;
pub mod interface;
mod memo;
pub mod persist;
pub mod query;
pub mod ranking;
pub mod schema;
pub mod service;
pub mod session;
pub mod stats;
pub mod store;
pub mod tuple;
pub mod updates;
pub mod value;

pub use budget::QueryBudget;
pub use codec::{read_snapshot, write_snapshot};
pub use database::{
    EvalConfig, HiddenDatabase, IntersectPolicy, MaintenanceBudget, MaintenanceReport, TupleRef,
};
pub use errors::{BudgetExhausted, DbError, IssueError, SchemaError, TransientFault};
pub use fault::{
    FaultKind, FaultSchedule, FaultStats, FaultyBackend, RecoveryStats, ResilientBackend,
    RetryPolicy,
};
pub use index::IndexMaintenance;
pub use interface::{OutcomeClass, QueryOutcome};
pub use memo::{InvalidationPolicy, DEFAULT_MEMO_CAPACITY};
pub use persist::PersistConfig;
pub use query::{ConjunctiveQuery, Predicate};
pub use ranking::ScoringPolicy;
pub use schema::{AttributeDef, MeasureDef, Schema};
pub use service::{AutoMaintain, DbService, DbSnapshot, ServiceSession, ServiceStats};
pub use session::{SearchBackend, SearchSession};
pub use stats::{
    EvalStats, InterfaceStats, MaintenanceStats, MemoStats, PersistStats, SharedMemoStats,
};
pub use store::{block_of, segment_of, BLOCKS_PER_SEGMENT, BLOCK_SLOTS, SEGMENT_SLOTS};
pub use tuple::{Tuple, TupleView};
pub use updates::{UpdateBatch, UpdateFootprint, UpdateSummary};
pub use value::{AttrId, MeasureId, TupleKey, ValueId};
