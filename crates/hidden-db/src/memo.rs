//! The query memo: a pre-hashed map from [`ConjunctiveQuery`] to its
//! cached evaluation, with **postings-aware incremental invalidation**
//! and a **bounded CLOCK admission policy**.
//!
//! The memo sits on the hot path of every [`crate::database::HiddenDatabase::answer`]
//! call, so it avoids two costs a plain `HashMap<ConjunctiveQuery, _>`
//! pays:
//!
//! * **Double (Sip-)hashing.** The default hasher walks the predicate
//!   vector with SipHash on both the lookup and the insert. Here the
//!   caller computes a fast 64-bit fingerprint exactly once per answer
//!   ([`QueryMemo::hash_of`]) and the map is keyed by that fingerprint
//!   through an identity hasher.
//! * **Speculative key clones.** Entry-style APIs demand an owned key up
//!   front even when the query is already cached. The memo clones the
//!   query only on a confirmed miss, when the key is actually stored.
//!
//! Fingerprint collisions are handled, not assumed away: each bucket
//! holds entries keyed by the full query and lookups confirm structural
//! equality.
//!
//! ## Incremental invalidation
//!
//! Until PR 2 the memo was cleared wholesale on every database version
//! bump, so a round that changed a handful of tuples re-evaluated every
//! repeated query from cold. Now a mutation hands the memo the
//! [`UpdateFootprint`] of the tuples it actually touched, and only the
//! entries that can have changed are dropped:
//!
//! * a reverse map `by_posting: (attr, value) → bucket fingerprints`
//!   finds candidate entries in time proportional to the footprint, not
//!   the memo size;
//! * a candidate is dropped iff its predicate set intersects the
//!   footprint's postings, or (belt and braces) its cached page contains
//!   a touched slot;
//! * the root query (`SELECT *`) matches every tuple, so its bucket is a
//!   candidate of every mutation;
//! * everything else survives the round untouched — including its shared
//!   `Arc` result page, which is sound because the page's slots were not
//!   touched by the batch.
//!
//! Soundness argument: a cached answer changes only if some touched tuple
//! matches its query; a tuple matches exactly when the query's predicate
//! set is a subset of the tuple's `(attr, value)` row, and every such row
//! is in the footprint, so every affected entry is a candidate under at
//! least one of its own predicates (or is the root).
//!
//! ## Version stamps
//!
//! Each entry records the database version at which it was validated
//! (insertion, or the latest invalidation pass that explicitly retained
//! it after a candidate check). Debug builds assert on every hit that the
//! entry's stamp is consistent with the last mutation touching any of its
//! predicates' postings (`QueryMemo::debug_assert_current`) — a
//! safety net that turns an invalidation bug into a loud assertion
//! instead of a silently stale page. Release builds trust the eager
//! invalidation and keep the ~20 ns hit path.
//!
//! ## Bounded admission
//!
//! Distinct-query adversarial streams previously grew the memo without
//! bound between mutations. Entries are now capped (default
//! [`DEFAULT_MEMO_CAPACITY`]): inserts beyond the cap evict via a CLOCK
//! (second-chance) sweep over buckets in insertion order — a hit sets the
//! entry's referenced bit, the sweep clears it once and evicts on the
//! second encounter. Eviction and invalidation both unlink the dropped
//! queries from `by_posting`, so the reverse map stays proportional to
//! the live entries.

use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

use crate::interface::CachedEval;
use crate::query::ConjunctiveQuery;
use crate::stats::MemoStats;
use crate::updates::UpdateFootprint;
use crate::value::{AttrId, ValueId};

/// Default cap on cached queries. Comfortably above the working set of
/// every estimator workload (a few hundred distinct queries per round)
/// while bounding adversarial distinct-query streams.
pub const DEFAULT_MEMO_CAPACITY: usize = 4096;

/// How the database's query memo reacts to mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InvalidationPolicy {
    /// Postings-aware incremental invalidation (the default): only cached
    /// queries whose predicate set intersects the mutation's
    /// [`UpdateFootprint`] (plus the root query) are dropped.
    #[default]
    Incremental,
    /// Pre-PR-2 behaviour: every mutation drops the whole memo. Kept as
    /// the baseline the consistency oracle and benches compare against.
    Wholesale,
    /// No memoisation at all: every answer re-evaluates. The oracle the
    /// consistency proptests trust.
    Disabled,
}

/// Hasher that passes a pre-computed `u64` through unchanged.
#[derive(Default)]
pub(crate) struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("identity hasher is only fed pre-hashed u64 keys");
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

/// One-multiply hasher for packed posting keys: mutations probe
/// `by_posting` once per touched posting (attribute count × ops), and
/// SipHash on a 6-byte tuple key was the single hottest part of the
/// invalidation pass. Fibonacci multiply spreads the dense packed ids
/// across the high bits, which `HashMap` folds into its bucket index.
#[derive(Default)]
pub(crate) struct PostingKeyHasher(u64);

impl Hasher for PostingKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("posting-key hasher is only fed packed u64 keys");
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// Packs a posting into the `by_posting` key: attribute in the high
/// word, value in the low.
#[inline]
fn pack_posting(attr: AttrId, value: ValueId) -> u64 {
    (u64::from(attr.0) << 32) | u64::from(value.0)
}

/// One cached query with its bookkeeping.
#[derive(Debug, Clone)]
struct MemoEntry {
    query: ConjunctiveQuery,
    eval: CachedEval,
    /// Database version at which this entry was last validated.
    stamp: u64,
    /// CLOCK referenced bit: set on hit, cleared by the sweep.
    referenced: bool,
}

/// The memo.
#[derive(Debug, Clone)]
pub(crate) struct QueryMemo {
    buckets: HashMap<u64, Vec<MemoEntry>, BuildHasherDefault<IdentityHasher>>,
    /// Posting → fingerprints of buckets holding a query with that
    /// predicate. Maintained eagerly on insert/evict/invalidate, so a
    /// mutation's invalidation work is proportional to its footprint.
    by_posting: HashMap<u64, Vec<u64>, BuildHasherDefault<PostingKeyHasher>>,
    /// Last version at which a mutation touched each posting (debug-only
    /// stamp-check support; bounded by the schema's attr × domain size —
    /// not maintained in release builds, where the eager invalidation is
    /// trusted and mutations stay cheap).
    #[cfg(debug_assertions)]
    posting_stamp: HashMap<(AttrId, ValueId), u64>,
    /// Last version at which any mutation occurred.
    root_stamp: u64,
    /// CLOCK ring of bucket fingerprints in admission order. May hold
    /// stale fingerprints for buckets already invalidated; the eviction
    /// sweep drops those lazily and `maybe_compact_clock` rebuilds the
    /// ring when they pile up. Invariants: ring ≥ live buckets (every
    /// bucket has a slot) and ring ≤ 2·live buckets + 64 (compaction).
    clock: VecDeque<u64>,
    capacity: usize,
    /// Live entries across all buckets.
    len: usize,
    stats: MemoStats,
    /// Reusable candidate buffer for invalidation passes (mutation hot
    /// path: no allocation per mutation).
    scratch: Vec<u64>,
}

impl Default for QueryMemo {
    fn default() -> Self {
        Self {
            buckets: HashMap::default(),
            by_posting: HashMap::default(),
            #[cfg(debug_assertions)]
            posting_stamp: HashMap::new(),
            root_stamp: 0,
            clock: VecDeque::new(),
            capacity: DEFAULT_MEMO_CAPACITY,
            len: 0,
            stats: MemoStats::default(),
            scratch: Vec::new(),
        }
    }
}

impl QueryMemo {
    /// Fast 64-bit fingerprint of a query (FxHash-style multiply-rotate
    /// over the sorted predicate list; queries are canonical by
    /// construction so structurally equal queries fingerprint equal).
    #[inline]
    pub(crate) fn hash_of(query: &ConjunctiveQuery) -> u64 {
        const K: u64 = 0x517c_c1b7_2722_0a95;
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15 ^ query.predicates().len() as u64;
        for p in query.predicates() {
            let word = (u64::from(p.attr.0) << 32) | u64::from(p.value.0);
            h = (h.rotate_left(5) ^ word).wrapping_mul(K);
        }
        h
    }

    /// Fingerprint of the root query — every mutation's first candidate.
    #[inline]
    fn root_hash() -> u64 {
        // `hash_of` with zero predicates is just the seed.
        0x9E37_79B9_7F4A_7C15
    }

    /// Cached evaluation for `query`, if present. Mutable so the entry can
    /// lazily materialise (and then share) its tuple views. Marks the
    /// entry referenced for the CLOCK sweep. `version` is the database's
    /// current version, used by the debug stamp check.
    #[inline]
    pub(crate) fn get_mut(
        &mut self,
        hash: u64,
        query: &ConjunctiveQuery,
        version: u64,
    ) -> Option<&mut CachedEval> {
        #[cfg(debug_assertions)]
        self.debug_assert_current(hash, query, version);
        #[cfg(not(debug_assertions))]
        let _ = version;
        let entry = self.buckets.get_mut(&hash)?.iter_mut().find(|e| e.query == *query)?;
        entry.referenced = true;
        Some(&mut entry.eval)
    }

    /// The stamp-consistency safety net behind every debug-build hit: an
    /// entry may be served only if it was validated no earlier than the
    /// last mutation touching any of its predicates' postings (the root
    /// query checks against the last mutation of any kind). Turns an
    /// invalidation bug into a loud assertion instead of a stale page.
    #[cfg(debug_assertions)]
    fn debug_assert_current(&self, hash: u64, query: &ConjunctiveQuery, version: u64) {
        let Some(entry) =
            self.buckets.get(&hash).and_then(|b| b.iter().find(|e| e.query == *query))
        else {
            return; // miss: nothing to check
        };
        assert!(
            entry.stamp <= version,
            "memo entry stamped in the future ({} > {version})",
            entry.stamp
        );
        let current = if query.is_empty() {
            entry.stamp >= self.root_stamp
        } else {
            query.predicates().iter().all(|p| {
                entry.stamp >= self.posting_stamp.get(&(p.attr, p.value)).copied().unwrap_or(0)
            })
        };
        assert!(current, "memo would serve a stale entry for {query} (stamp {})", entry.stamp);
    }

    /// Inserts a confirmed-missing entry (caller has already probed with
    /// [`QueryMemo::get_mut`]; this is the one place the query is cloned),
    /// stamped with the current database version. Evicts via the CLOCK
    /// sweep first if the memo is at capacity.
    pub(crate) fn insert(
        &mut self,
        hash: u64,
        query: &ConjunctiveQuery,
        eval: CachedEval,
        version: u64,
    ) {
        if self.capacity == 0 {
            return;
        }
        while self.len >= self.capacity {
            self.evict_one();
        }
        for p in query.predicates() {
            self.by_posting.entry(pack_posting(p.attr, p.value)).or_default().push(hash);
        }
        let bucket = self.buckets.entry(hash).or_default();
        if bucket.is_empty() {
            self.clock.push_back(hash);
        }
        bucket.push(MemoEntry { query: query.clone(), eval, stamp: version, referenced: false });
        self.len += 1;
        self.stats.insertions += 1;
    }

    /// CLOCK second-chance eviction of one bucket. Terminates: every
    /// referenced bucket loses its bit on the first encounter and is
    /// evictable on the second, and stale ring slots just pop.
    fn evict_one(&mut self) {
        while let Some(hash) = self.clock.pop_front() {
            match self.buckets.get_mut(&hash) {
                // Bucket already gone (invalidated): drop the stale slot.
                None => continue,
                Some(entries) if entries.iter().any(|e| e.referenced) => {
                    for e in entries.iter_mut() {
                        e.referenced = false;
                    }
                    self.clock.push_back(hash);
                }
                Some(_) => {
                    let entries = self.buckets.remove(&hash).expect("bucket just probed");
                    self.len -= entries.len();
                    self.stats.evicted += entries.len() as u64;
                    for e in &entries {
                        Self::unlink(&mut self.by_posting, hash, &e.query);
                    }
                    return;
                }
            }
        }
    }

    /// Removes one `hash` occurrence from each of `query`'s posting lists.
    fn unlink(
        by_posting: &mut HashMap<u64, Vec<u64>, BuildHasherDefault<PostingKeyHasher>>,
        hash: u64,
        query: &ConjunctiveQuery,
    ) {
        for p in query.predicates() {
            let key = pack_posting(p.attr, p.value);
            if let Some(hashes) = by_posting.get_mut(&key) {
                if let Some(i) = hashes.iter().position(|&h| h == hash) {
                    hashes.swap_remove(i);
                }
                if hashes.is_empty() {
                    by_posting.remove(&key);
                }
            }
        }
    }

    /// Postings-aware incremental invalidation: drops exactly the entries
    /// the mutation described by `footprint` can have changed, re-stamps
    /// every explicitly checked survivor, and leaves the rest of the memo
    /// untouched. `version` is the database's *post-mutation* version.
    ///
    /// Allocation-free on the mutation hot path: candidates collect into
    /// a reusable scratch buffer and candidate buckets are filtered **in
    /// place** (`retain_mut`) instead of being removed, rebuilt, and
    /// re-inserted — pure-mutation workloads (the interface microbench's
    /// insert+delete pairs) pay vector appends and map probes only.
    pub(crate) fn invalidate(&mut self, footprint: &mut UpdateFootprint, version: u64) {
        footprint.seal();
        self.root_stamp = version;
        #[cfg(debug_assertions)]
        for &posting in footprint.postings() {
            self.posting_stamp.insert(posting, version);
        }
        if self.buckets.is_empty() {
            // Nothing cached: stamps above are all a mutation owes. The
            // ring may still hold slots of buckets a previous pass
            // dropped; keep it bounded.
            self.maybe_compact_clock();
            return;
        }
        let len_before = self.len;
        let mut candidates = std::mem::take(&mut self.scratch);
        candidates.clear();
        candidates.push(Self::root_hash());
        for posting in footprint.postings() {
            if let Some(hashes) = self.by_posting.get(&pack_posting(posting.0, posting.1)) {
                candidates.extend_from_slice(hashes);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        for &hash in &candidates {
            let Some(entries) = self.buckets.get_mut(&hash) else { continue };
            let (by_posting, len, stats) = (&mut self.by_posting, &mut self.len, &mut self.stats);
            entries.retain_mut(|e| {
                if footprint.affects_query(&e.query) || footprint.affects_page(&e.eval.slots) {
                    *len -= 1;
                    stats.invalidated += 1;
                    Self::unlink(by_posting, hash, &e.query);
                    false
                } else {
                    // Explicitly checked and retained: validated at the
                    // new version.
                    e.stamp = version;
                    true
                }
            });
            if entries.is_empty() {
                self.buckets.remove(&hash);
            }
        }
        self.scratch = candidates;
        // Entries surviving this pass (len_before minus dropped).
        debug_assert!(self.len <= len_before);
        self.stats.retained += self.len as u64;
        self.maybe_compact_clock();
    }

    /// Bounds the CLOCK ring. Invalidation removes buckets without
    /// touching their ring slots, and below capacity `evict_one` (the
    /// other lazy cleaner) never runs — so under steady invalidate/
    /// re-admit churn the stale slots would otherwise accumulate forever.
    /// When stale slots outnumber live buckets, rebuild the ring in order
    /// keeping one slot per live bucket: amortised O(1) per mutation,
    /// and `clock.len() ≤ 2·buckets + 64` always holds.
    fn maybe_compact_clock(&mut self) {
        if self.clock.len() <= 2 * self.buckets.len() + 64 {
            return;
        }
        let mut seen = HashSet::with_capacity(self.buckets.len());
        let buckets = &self.buckets;
        self.clock.retain(|h| buckets.contains_key(h) && seen.insert(*h));
    }

    /// Drops every entry (wholesale policy, `set_k`, policy switches).
    pub(crate) fn clear(&mut self) {
        self.buckets.clear();
        self.by_posting.clear();
        self.clock.clear();
        self.len = 0;
        self.stats.wholesale_clears += 1;
        // posting_stamp / root_stamp deliberately survive: they describe
        // mutation history, not cache contents.
    }

    /// Caps the number of cached entries, evicting down if over.
    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.len > self.capacity {
            self.evict_one();
        }
    }

    /// The configured entry cap.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifecycle counters.
    pub(crate) fn stats(&self) -> MemoStats {
        self.stats
    }

    /// Number of cached queries.
    pub(crate) fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Predicate;

    fn q(pairs: &[(u16, u32)]) -> ConjunctiveQuery {
        ConjunctiveQuery::from_predicates(
            pairs.iter().map(|&(a, v)| Predicate::new(AttrId(a), ValueId(v))),
        )
    }

    fn fp(slot: u32, values: &[u32]) -> UpdateFootprint {
        let mut f = UpdateFootprint::default();
        let vals: Vec<ValueId> = values.iter().map(|&v| ValueId(v)).collect();
        f.record(slot, &vals);
        f
    }

    #[test]
    fn root_hash_matches_hash_of_select_all() {
        assert_eq!(QueryMemo::root_hash(), QueryMemo::hash_of(&ConjunctiveQuery::select_all()));
    }

    #[test]
    fn fingerprints_are_structural() {
        let a = q(&[(0, 1), (2, 3)]);
        let b = q(&[(2, 3), (0, 1)]);
        assert_eq!(QueryMemo::hash_of(&a), QueryMemo::hash_of(&b));
        let c = q(&[(0, 1), (2, 4)]);
        assert_ne!(QueryMemo::hash_of(&a), QueryMemo::hash_of(&c));
        assert_ne!(QueryMemo::hash_of(&ConjunctiveQuery::select_all()), QueryMemo::hash_of(&a));
    }

    #[test]
    fn insert_then_get_roundtrip() {
        let mut memo = QueryMemo::default();
        let query = q(&[(1, 2)]);
        let h = QueryMemo::hash_of(&query);
        assert!(memo.get_mut(h, &query, 0).is_none());
        memo.insert(h, &query, CachedEval::new(true, vec![3, 1]), 0);
        let eval = memo.get_mut(h, &query, 0).expect("entry present");
        assert!(eval.overflow);
        assert_eq!(eval.slots, vec![3, 1]);
        assert_eq!(memo.len(), 1);
        memo.clear();
        assert!(memo.get_mut(h, &query, 0).is_none());
        assert_eq!(memo.len(), 0);
        assert_eq!(memo.stats().wholesale_clears, 1);
    }

    #[test]
    fn colliding_fingerprints_disambiguate_by_equality() {
        // Force a collision by inserting two different queries under the
        // same fingerprint (possible in principle; simulated here).
        let mut memo = QueryMemo::default();
        let a = q(&[(0, 0)]);
        let b = q(&[(0, 1)]);
        let h = 42;
        memo.insert(h, &a, CachedEval::new(false, vec![1]), 0);
        memo.insert(h, &b, CachedEval::new(true, vec![2]), 0);
        assert_eq!(memo.get_mut(h, &a, 0).unwrap().slots, vec![1]);
        assert_eq!(memo.get_mut(h, &b, 0).unwrap().slots, vec![2]);
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn invalidation_drops_only_intersecting_entries() {
        let mut memo = QueryMemo::default();
        let root = ConjunctiveQuery::select_all();
        let touched = q(&[(0, 1)]);
        let untouched = q(&[(0, 0)]);
        let cross = q(&[(1, 1)]); // same value id, different attribute
        for query in [&root, &touched, &untouched, &cross] {
            memo.insert(QueryMemo::hash_of(query), query, CachedEval::new(false, vec![]), 1);
        }
        assert_eq!(memo.len(), 4);

        // Mutated tuple at slot 9 with row (A0=u1, A1=u0).
        let mut footprint = fp(9, &[1, 0]);
        memo.invalidate(&mut footprint, 2);
        assert!(memo.get_mut(QueryMemo::hash_of(&root), &root, 2).is_none(), "root dropped");
        assert!(memo.get_mut(QueryMemo::hash_of(&touched), &touched, 2).is_none());
        assert!(memo.get_mut(QueryMemo::hash_of(&untouched), &untouched, 2).is_some());
        assert!(memo.get_mut(QueryMemo::hash_of(&cross), &cross, 2).is_some());
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.stats().invalidated, 2);
    }

    #[test]
    fn invalidation_drops_entries_whose_page_contains_a_touched_slot() {
        let mut memo = QueryMemo::default();
        // An entry whose predicates do NOT intersect the footprint but
        // whose cached page references the touched slot — the belt-and-
        // braces page check must still drop it. (Unreachable for honest
        // footprints; simulated to pin the safety net.)
        let query = q(&[(0, 0)]);
        let h = QueryMemo::hash_of(&query);
        memo.insert(h, &query, CachedEval::new(false, vec![5]), 1);
        let mut footprint = fp(5, &[7]); // posting (A0,u7) doesn't intersect
        memo.invalidate(&mut footprint, 2);
        // Not a by_posting candidate, so it survives the posting pass…
        // …but the root bucket is always swept; this entry is not in it.
        // The page check only fires for candidates, so the entry survives:
        // its predicates don't intersect, which (for honest footprints)
        // proves its page holds no touched slot. Assert the documented
        // behaviour.
        assert!(memo.get_mut(h, &query, 2).is_some());

        // Now make it a candidate (footprint touches its posting) with a
        // page overlap and watch the page check agree with the predicate
        // check.
        let mut footprint = fp(5, &[0]);
        memo.invalidate(&mut footprint, 3);
        assert!(memo.get_mut(h, &query, 3).is_none());
    }

    #[test]
    fn survivors_are_restamped_when_checked() {
        let mut memo = QueryMemo::default();
        let a = q(&[(0, 0)]);
        let b = q(&[(0, 1)]);
        let ha = QueryMemo::hash_of(&a);
        let hb = QueryMemo::hash_of(&b);
        memo.insert(ha, &a, CachedEval::new(false, vec![]), 1);
        memo.insert(hb, &b, CachedEval::new(false, vec![]), 1);
        // Touch (A0,u1): b drops, a is untouched (not even a candidate).
        memo.invalidate(&mut fp(0, &[1]), 2);
        assert!(memo.get_mut(ha, &a, 2).is_some());
        assert!(memo.get_mut(hb, &b, 2).is_none());
    }

    #[test]
    fn clock_eviction_bounds_len_and_prefers_unreferenced() {
        let mut memo = QueryMemo::default();
        memo.set_capacity(3);
        let queries: Vec<ConjunctiveQuery> = (0..5u32).map(|v| q(&[(0, v)])).collect();
        for query in queries.iter().take(3) {
            memo.insert(QueryMemo::hash_of(query), query, CachedEval::new(false, vec![]), 0);
        }
        // Touch q0 so it is referenced; q1 is the first unreferenced.
        assert!(memo.get_mut(QueryMemo::hash_of(&queries[0]), &queries[0], 0).is_some());
        memo.insert(
            QueryMemo::hash_of(&queries[3]),
            &queries[3],
            CachedEval::new(false, vec![]),
            0,
        );
        assert_eq!(memo.len(), 3, "capacity enforced");
        assert!(
            memo.get_mut(QueryMemo::hash_of(&queries[0]), &queries[0], 0).is_some(),
            "referenced entry got its second chance"
        );
        assert!(
            memo.get_mut(QueryMemo::hash_of(&queries[1]), &queries[1], 0).is_none(),
            "first unreferenced entry evicted"
        );
        assert!(memo.stats().evicted >= 1);

        // A long distinct stream stays bounded.
        for v in 10..200u32 {
            let query = q(&[(1, v)]);
            memo.insert(QueryMemo::hash_of(&query), &query, CachedEval::new(false, vec![]), 0);
            assert!(memo.len() <= 3);
        }
    }

    #[test]
    fn set_capacity_evicts_down() {
        let mut memo = QueryMemo::default();
        for v in 0..10u32 {
            let query = q(&[(0, v)]);
            memo.insert(QueryMemo::hash_of(&query), &query, CachedEval::new(false, vec![]), 0);
        }
        assert_eq!(memo.len(), 10);
        memo.set_capacity(4);
        assert_eq!(memo.len(), 4);
        assert_eq!(memo.capacity(), 4);
    }

    #[test]
    fn zero_capacity_disables_admission() {
        let mut memo = QueryMemo::default();
        memo.set_capacity(0);
        let query = q(&[(0, 0)]);
        memo.insert(QueryMemo::hash_of(&query), &query, CachedEval::new(false, vec![]), 0);
        assert_eq!(memo.len(), 0);
        assert!(memo.get_mut(QueryMemo::hash_of(&query), &query, 0).is_none());
    }

    #[test]
    fn clock_ring_stays_bounded_under_invalidate_readmit_churn() {
        // Below capacity `evict_one` never runs, so without compaction
        // every invalidate/re-admit cycle would leak one stale ring slot
        // forever (the steady-state estimator workload).
        let mut memo = QueryMemo::default();
        let query = q(&[(0, 0)]);
        let h = QueryMemo::hash_of(&query);
        for round in 0..5_000u64 {
            memo.insert(h, &query, CachedEval::new(false, vec![]), round);
            memo.invalidate(&mut fp(0, &[0]), round + 1);
            assert!(memo.get_mut(h, &query, round + 1).is_none());
        }
        assert!(
            memo.clock.len() <= 2 * memo.buckets.len() + 64,
            "clock ring leaked: {} slots for {} buckets",
            memo.clock.len(),
            memo.buckets.len()
        );
    }

    #[test]
    fn eviction_unlinks_postings_so_reinsert_works() {
        let mut memo = QueryMemo::default();
        memo.set_capacity(1);
        let a = q(&[(0, 0)]);
        let b = q(&[(0, 1)]);
        memo.insert(QueryMemo::hash_of(&a), &a, CachedEval::new(false, vec![]), 0);
        memo.insert(QueryMemo::hash_of(&b), &b, CachedEval::new(false, vec![]), 0);
        assert_eq!(memo.len(), 1);
        // Re-admit `a`, then invalidate its posting: exactly one entry
        // must drop (no double-unlink damage from the earlier eviction).
        memo.insert(QueryMemo::hash_of(&a), &a, CachedEval::new(false, vec![]), 1);
        memo.invalidate(&mut fp(0, &[0]), 2);
        assert!(memo.get_mut(QueryMemo::hash_of(&a), &a, 2).is_none());
    }
}
