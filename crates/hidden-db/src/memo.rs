//! The per-version query memo: a pre-hashed map from
//! [`ConjunctiveQuery`] to its cached evaluation.
//!
//! The memo sits on the hot path of every [`crate::database::HiddenDatabase::answer`]
//! call, so it avoids two costs a plain `HashMap<ConjunctiveQuery, _>`
//! pays:
//!
//! * **Double (Sip-)hashing.** The default hasher walks the predicate
//!   vector with SipHash on both the lookup and the insert. Here the
//!   caller computes a fast 64-bit fingerprint exactly once per answer
//!   ([`QueryMemo::hash_of`]) and the map is keyed by that fingerprint
//!   through an identity hasher.
//! * **Speculative key clones.** Entry-style APIs demand an owned key up
//!   front even when the query is already cached. The memo clones the
//!   query only on a confirmed miss, when the key is actually stored.
//!
//! Fingerprint collisions are handled, not assumed away: each bucket
//! holds `(query, eval)` pairs and lookups confirm structural equality.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::interface::CachedEval;
use crate::query::ConjunctiveQuery;

/// Hasher that passes a pre-computed `u64` through unchanged.
#[derive(Default)]
pub(crate) struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("identity hasher is only fed pre-hashed u64 keys");
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

/// The memo. Cleared wholesale on every database version bump.
#[derive(Debug, Clone, Default)]
pub(crate) struct QueryMemo {
    buckets: HashMap<u64, Vec<(ConjunctiveQuery, CachedEval)>, BuildHasherDefault<IdentityHasher>>,
}

impl QueryMemo {
    /// Fast 64-bit fingerprint of a query (FxHash-style multiply-rotate
    /// over the sorted predicate list; queries are canonical by
    /// construction so structurally equal queries fingerprint equal).
    #[inline]
    pub(crate) fn hash_of(query: &ConjunctiveQuery) -> u64 {
        const K: u64 = 0x517c_c1b7_2722_0a95;
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15 ^ query.predicates().len() as u64;
        for p in query.predicates() {
            let word = (u64::from(p.attr.0) << 32) | u64::from(p.value.0);
            h = (h.rotate_left(5) ^ word).wrapping_mul(K);
        }
        h
    }

    /// Cached evaluation for `query`, if present. Mutable so the entry can
    /// lazily materialise (and then share) its tuple views.
    #[inline]
    pub(crate) fn get_mut(
        &mut self,
        hash: u64,
        query: &ConjunctiveQuery,
    ) -> Option<&mut CachedEval> {
        self.buckets.get_mut(&hash)?.iter_mut().find(|(q, _)| q == query).map(|(_, eval)| eval)
    }

    /// Inserts a confirmed-missing entry (caller has already probed with
    /// [`QueryMemo::get_mut`]; this is the one place the query is cloned).
    pub(crate) fn insert(&mut self, hash: u64, query: &ConjunctiveQuery, eval: CachedEval) {
        self.buckets.entry(hash).or_default().push((query.clone(), eval));
    }

    /// Drops every entry (version bump).
    pub(crate) fn clear(&mut self) {
        self.buckets.clear();
    }

    /// Number of cached queries (test/diagnostic use).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Predicate;
    use crate::value::{AttrId, ValueId};

    fn q(pairs: &[(u16, u32)]) -> ConjunctiveQuery {
        ConjunctiveQuery::from_predicates(
            pairs.iter().map(|&(a, v)| Predicate::new(AttrId(a), ValueId(v))),
        )
    }

    #[test]
    fn fingerprints_are_structural() {
        let a = q(&[(0, 1), (2, 3)]);
        let b = q(&[(2, 3), (0, 1)]);
        assert_eq!(QueryMemo::hash_of(&a), QueryMemo::hash_of(&b));
        let c = q(&[(0, 1), (2, 4)]);
        assert_ne!(QueryMemo::hash_of(&a), QueryMemo::hash_of(&c));
        assert_ne!(QueryMemo::hash_of(&ConjunctiveQuery::select_all()), QueryMemo::hash_of(&a));
    }

    #[test]
    fn insert_then_get_roundtrip() {
        let mut memo = QueryMemo::default();
        let query = q(&[(1, 2)]);
        let h = QueryMemo::hash_of(&query);
        assert!(memo.get_mut(h, &query).is_none());
        memo.insert(h, &query, CachedEval::new(true, vec![3, 1]));
        let eval = memo.get_mut(h, &query).expect("entry present");
        assert!(eval.overflow);
        assert_eq!(eval.slots, vec![3, 1]);
        assert_eq!(memo.len(), 1);
        memo.clear();
        assert!(memo.get_mut(h, &query).is_none());
        assert_eq!(memo.len(), 0);
    }

    #[test]
    fn colliding_fingerprints_disambiguate_by_equality() {
        // Force a collision by inserting two different queries under the
        // same fingerprint (possible in principle; simulated here).
        let mut memo = QueryMemo::default();
        let a = q(&[(0, 0)]);
        let b = q(&[(0, 1)]);
        let h = 42;
        memo.insert(h, &a, CachedEval::new(false, vec![1]));
        memo.insert(h, &b, CachedEval::new(true, vec![2]));
        assert_eq!(memo.get_mut(h, &a).unwrap().slots, vec![1]);
        assert_eq!(memo.get_mut(h, &b).unwrap().slots, vec![2]);
        assert_eq!(memo.len(), 2);
    }
}
