//! The query memo: a pre-hashed map from [`ConjunctiveQuery`] to its
//! cached evaluation, with **postings-aware incremental invalidation**
//! and a **bounded CLOCK admission policy**.
//!
//! The memo sits on the hot path of every [`crate::database::HiddenDatabase::answer`]
//! call, so it avoids two costs a plain `HashMap<ConjunctiveQuery, _>`
//! pays:
//!
//! * **Double (Sip-)hashing.** The default hasher walks the predicate
//!   vector with SipHash on both the lookup and the insert. Here the
//!   caller computes a fast 64-bit fingerprint exactly once per answer
//!   ([`QueryMemo::hash_of`]) and the map is keyed by that fingerprint
//!   through an identity hasher.
//! * **Speculative key clones.** Entry-style APIs demand an owned key up
//!   front even when the query is already cached. The memo clones the
//!   query only on a confirmed miss, when the key is actually stored.
//!
//! Fingerprint collisions are handled, not assumed away: each bucket
//! holds entries keyed by the full query and lookups confirm structural
//! equality.
//!
//! ## Incremental invalidation
//!
//! Until PR 2 the memo was cleared wholesale on every database version
//! bump, so a round that changed a handful of tuples re-evaluated every
//! repeated query from cold. Now a mutation hands the memo the
//! [`UpdateFootprint`] of the tuples it actually touched, and only the
//! entries that can have changed are dropped:
//!
//! * a reverse map `by_posting: (attr, value) → bucket fingerprints`
//!   finds candidate entries in time proportional to the footprint, not
//!   the memo size;
//! * a candidate is dropped iff its predicate set intersects the
//!   footprint's postings, or (belt and braces) its cached page contains
//!   a touched slot;
//! * the root query (`SELECT *`) matches every tuple, so its bucket is a
//!   candidate of every mutation;
//! * everything else survives the round untouched — including its shared
//!   `Arc` result page, which is sound because the page's slots were not
//!   touched by the batch.
//!
//! Soundness argument: a cached answer changes only if some touched tuple
//! matches its query; a tuple matches exactly when the query's predicate
//! set is a subset of the tuple's `(attr, value)` row, and every such row
//! is in the footprint, so every affected entry is a candidate under at
//! least one of its own predicates (or is the root).
//!
//! ## Cross-round revalidation
//!
//! Dropping every affected entry is still wasteful for the common churn
//! shape: an *overflow* page whose top-`k` provably did not change. Since
//! PR 5 an affected overflow entry whose cached page the footprint did
//! **not** touch is demoted to `Stale` instead of dropped, carrying a
//! bounded record of where the churn landed ([`TouchedSet`]) and a
//! conservative churn count. The next lookup runs a cheap re-check
//! against the store:
//!
//! * **classification margin** — `matched - churn > k` proves the query
//!   still overflows even if every churned row deleted a matching tuple;
//! * **page integrity** — every page slot is still alive (guaranteed by
//!   the demotion rules, re-checked as a belt-and-braces sweep);
//! * **floor check** — every churned location is harmless: a tracked
//!   touched *slot* either no longer matches the query or scores
//!   strictly below the page floor; a tracked touched *segment* (the
//!   spill level) has a max-score bound strictly below the floor — the
//!   PR 3 segment bounds, kept tight by the PR 5 compaction pass.
//!
//! All three pass → the entry (and its shared `Arc` page) is resurrected
//! and served; any fails → the entry is dropped and the query re-scans
//! from cold, exactly as before. Soundness leans on the demotion
//! invariant that a stale entry's page slots are untouched since
//! validation. Only the state *at lookup* matters — a stale entry is
//! never served between demotion and resurrection, so transient churn
//! needs no tracking beyond the counters above.
//!
//! ### Deferred reconciliation (PR 6)
//!
//! Stale entries used to stay in `by_posting` and absorb every matching
//! mutation's footprint eagerly, which put ~30 bucket probes back on the
//! pure-mutation hot path and collapsed insert+delete throughput by
//! ~10× (the PR 5 regression). Demotion now **unlinks** the entry from
//! the posting index, and the memo keeps a bounded, version-ordered
//! **churn journal** of sealed footprints recorded while any stale entry
//! exists. The entry's next lookup replays the journal suffix newer than
//! its demotion stamp: a journalled page touch drops it hard (the same
//! verdict the eager path produced, just deferred — the entry was never
//! served in between), a predicate match folds churn and touched slots
//! in, and only then does the re-check above run. A stale entry whose
//! demotion stamp has been evicted off the journal's front cannot prove
//! coverage and drops — bounded memory wins over maximal resurrection,
//! exactly like the [`TouchedSet`] spill ladder. Mutations therefore pay
//! one journal append (plus the fresh-entry candidate walk) no matter
//! how many demoted entries are parked.
//!
//! ## Version stamps
//!
//! Each entry records the database version at which it was validated
//! (insertion, or the latest invalidation pass that explicitly retained
//! it after a candidate check). Debug builds assert on every hit that the
//! entry's stamp is consistent with the last mutation touching any of its
//! predicates' postings (`QueryMemo::debug_assert_current`) — a
//! safety net that turns an invalidation bug into a loud assertion
//! instead of a silently stale page. Release builds trust the eager
//! invalidation and keep the ~20 ns hit path.
//!
//! ## Bounded admission
//!
//! Distinct-query adversarial streams previously grew the memo without
//! bound between mutations. Entries are now capped (default
//! [`DEFAULT_MEMO_CAPACITY`]): inserts beyond the cap evict via a CLOCK
//! (second-chance) sweep over buckets in insertion order — a hit sets the
//! entry's referenced bit, the sweep clears it once and evicts on the
//! second encounter. Eviction and invalidation both unlink the dropped
//! queries from `by_posting`, so the reverse map stays proportional to
//! the live entries.

use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::interface::{slot_matches, CachedEval, QueryOutcome};
use crate::query::ConjunctiveQuery;
use crate::stats::{MemoStats, SharedMemoStats};
use crate::store::{segment_of, Slot, Store};
use crate::updates::UpdateFootprint;
use crate::value::{AttrId, ValueId};

/// Default cap on cached queries. Comfortably above the working set of
/// every estimator workload (a few hundred distinct queries per round)
/// while bounding adversarial distinct-query streams.
pub const DEFAULT_MEMO_CAPACITY: usize = 4096;

/// How the database's query memo reacts to mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InvalidationPolicy {
    /// Postings-aware incremental invalidation (the default): only cached
    /// queries whose predicate set intersects the mutation's
    /// [`UpdateFootprint`] (plus the root query) are dropped.
    #[default]
    Incremental,
    /// Pre-PR-2 behaviour: every mutation drops the whole memo. Kept as
    /// the baseline the consistency oracle and benches compare against.
    Wholesale,
    /// No memoisation at all: every answer re-evaluates. The oracle the
    /// consistency proptests trust.
    Disabled,
}

/// Hasher that passes a pre-computed `u64` through unchanged.
#[derive(Default)]
pub(crate) struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("identity hasher is only fed pre-hashed u64 keys");
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

/// One-multiply hasher for packed posting keys: mutations probe
/// `by_posting` once per touched posting (attribute count × ops), and
/// SipHash on a 6-byte tuple key was the single hottest part of the
/// invalidation pass. Fibonacci multiply spreads the dense packed ids
/// across the high bits, which `HashMap` folds into its bucket index.
#[derive(Default)]
pub(crate) struct PostingKeyHasher(u64);

impl Hasher for PostingKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("posting-key hasher is only fed packed u64 keys");
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// Packs a posting into the `by_posting` key: attribute in the high
/// word, value in the low.
#[inline]
fn pack_posting(attr: AttrId, value: ValueId) -> u64 {
    (u64::from(attr.0) << 32) | u64::from(value.0)
}

/// Exact touched-slot tracking caps out here (unique slots) and spills
/// to segments.
const TRACK_SLOTS_MAX: usize = 64;

/// Touched-segment tracking caps out here (unique segments) and gives up
/// (`Unbounded`).
const TRACK_SEGS_MAX: usize = 16;

/// Raw (unsorted, duplicates allowed) buffers compact when they exceed
/// 4× their level's unique-count cap. PR 6 regression fix: `absorb` used
/// to sort+dedup per demoted entry per mutation, which collapsed
/// pure-mutation throughput by ~10×; now a mutation pays a plain append
/// and the sort/dedup amortises over many absorptions.
const RAW_SLOTS_MAX: usize = TRACK_SLOTS_MAX * 4;

/// Raw cap of the segment level (see [`RAW_SLOTS_MAX`]).
const RAW_SEGS_MAX: usize = TRACK_SEGS_MAX * 4;

/// Where churn landed since an entry went stale, at decreasing precision
/// as it accumulates. Bounded: a stale entry costs O(1) memory no matter
/// how many rounds of churn pass before its next lookup — the raw
/// buffers never exceed their cap plus one footprint.
#[derive(Debug, Clone, Default, PartialEq)]
enum TouchedSet {
    /// Fresh entry (or just resurrected): nothing tracked.
    #[default]
    Empty,
    /// Touched slots (raw between compactions) — the precise
    /// occupant-score re-check.
    Slots(Vec<Slot>),
    /// Spilled to touched segments (raw between compactions) — the
    /// coarser max-score-bound re-check (which segment compaction keeps
    /// tight).
    Segments(Vec<u32>),
    /// Too much churn to track: the next lookup re-scans.
    Unbounded,
}

impl TouchedSet {
    /// Folds a (sealed) footprint's touched slots in with a raw append;
    /// classification (dedup + spill to the next precision level) is
    /// deferred to [`TouchedSet::compact`], which runs only when the raw
    /// buffer overflows its cap. The floor check tolerates unsorted,
    /// duplicated lists, so compaction timing never affects a
    /// revalidation verdict — only memory and mutation throughput.
    fn absorb(&mut self, footprint: &UpdateFootprint) {
        self.absorb_slots(footprint.slots());
    }

    /// [`TouchedSet::absorb`] from a raw slot list (sorted + deduped, as
    /// a sealed footprint's is) — the journal replay path folds stored
    /// footprints in through here.
    fn absorb_slots(&mut self, new: &[Slot]) {
        match self {
            Self::Unbounded => {}
            Self::Empty => {
                // Sealed footprints are sorted and deduped already.
                *self = Self::Slots(new.to_vec());
                self.compact();
            }
            Self::Slots(slots) => {
                slots.extend_from_slice(new);
                if slots.len() > RAW_SLOTS_MAX {
                    self.compact();
                }
            }
            Self::Segments(segs) => {
                segs.extend(new.iter().map(|&s| segment_of(s) as u32));
                if segs.len() > RAW_SEGS_MAX {
                    self.compact();
                }
            }
        }
    }

    /// Dedups the current level and spills to the next when the unique
    /// count exceeds the level's cap.
    fn compact(&mut self) {
        if let Self::Slots(slots) = self {
            slots.sort_unstable();
            slots.dedup();
            if slots.len() > TRACK_SLOTS_MAX {
                let segs: Vec<u32> = slots.iter().map(|&s| segment_of(s) as u32).collect();
                *self = Self::Segments(segs);
            }
        }
        if let Self::Segments(segs) = self {
            segs.sort_unstable();
            segs.dedup();
            if segs.len() > TRACK_SEGS_MAX {
                *self = Self::Unbounded;
            }
        }
    }
}

/// Caps on the churn journal: entry count, total stored slots, total
/// stored postings. Comfortably above what accrues between two lookups
/// of any estimator workload; an adversarial stale-and-never-look-up
/// stream just evicts from the front and forfeits resurrection.
const JOURNAL_ENTRIES_MAX: usize = 1024;

/// Total touched-slot cap across the journal (see [`JOURNAL_ENTRIES_MAX`]).
const JOURNAL_SLOTS_MAX: usize = 8192;

/// Total touched-posting cap across the journal (see
/// [`JOURNAL_ENTRIES_MAX`]).
const JOURNAL_POSTINGS_MAX: usize = 16384;

/// One mutation's sealed footprint, retained so stale entries reconcile
/// churn at their next lookup instead of being walked on the mutation
/// hot path (see "Deferred reconciliation" in the module docs).
#[derive(Debug, Clone)]
struct JournalEntry {
    /// Post-mutation database version (unique per mutation).
    version: u64,
    /// Elementary changes in the mutation (not deduped) — the margin
    /// charge for every stale entry the mutation can have affected.
    rows: u64,
    /// Touched postings, sorted + deduped (copied from the sealed
    /// footprint).
    postings: Vec<(AttrId, ValueId)>,
    /// Touched slots, sorted + deduped.
    slots: Vec<Slot>,
}

impl JournalEntry {
    /// [`UpdateFootprint::affects_query`] over the stored footprint.
    fn affects_query(&self, query: &ConjunctiveQuery) -> bool {
        if query.is_empty() {
            return !(self.postings.is_empty() && self.slots.is_empty());
        }
        query.predicates().iter().any(|p| self.postings.binary_search(&(p.attr, p.value)).is_ok())
    }

    /// [`UpdateFootprint::affects_page`] over the stored footprint.
    fn affects_page(&self, page_slots: &[Slot]) -> bool {
        page_slots.iter().any(|s| self.slots.binary_search(s).is_ok())
    }
}

/// One cached query with its bookkeeping.
#[derive(Debug, Clone)]
struct MemoEntry {
    query: ConjunctiveQuery,
    eval: CachedEval,
    /// Database version at which this entry was last validated — or, for
    /// a stale entry, the version whose churn it has folded in so far
    /// (set at demotion, advanced by journal replay): the journal-replay
    /// low-water mark.
    stamp: u64,
    /// CLOCK referenced bit: set on hit, cleared by the sweep.
    referenced: bool,
    /// Demoted by an invalidation pass; must pass the lookup-time
    /// re-check before it may be served again. A stale entry is unlinked
    /// from `by_posting` (stale ⟺ unlinked), so mutations never walk it.
    stale: bool,
    /// Rows churned since demotion (upper bound on matching tuples
    /// lost) — the classification margin.
    churn: u64,
    /// Where the churn landed, for the floor check.
    touched: TouchedSet,
}

/// The memo.
#[derive(Debug, Clone)]
pub(crate) struct QueryMemo {
    buckets: HashMap<u64, Vec<MemoEntry>, BuildHasherDefault<IdentityHasher>>,
    /// Posting → fingerprints of buckets holding a query with that
    /// predicate. Maintained eagerly on insert/evict/invalidate, so a
    /// mutation's invalidation work is proportional to its footprint.
    by_posting: HashMap<u64, Vec<u64>, BuildHasherDefault<PostingKeyHasher>>,
    /// Last version at which a mutation touched each posting (debug-only
    /// stamp-check support; bounded by the schema's attr × domain size —
    /// not maintained in release builds, where the eager invalidation is
    /// trusted and mutations stay cheap).
    #[cfg(debug_assertions)]
    posting_stamp: HashMap<(AttrId, ValueId), u64>,
    /// Last version at which any mutation occurred.
    root_stamp: u64,
    /// CLOCK ring of bucket fingerprints in admission order. May hold
    /// stale fingerprints for buckets already invalidated; the eviction
    /// sweep drops those lazily and `maybe_compact_clock` rebuilds the
    /// ring when they pile up. Invariants: ring ≥ live buckets (every
    /// bucket has a slot) and ring ≤ 2·live buckets + 64 (compaction).
    clock: VecDeque<u64>,
    capacity: usize,
    /// Live entries across all buckets (fresh + stale).
    len: usize,
    /// Entries currently demoted to `Stale`.
    stale_len: usize,
    /// Whether invalidation demotes eligible overflow entries to `Stale`
    /// for the lookup-time re-check instead of dropping them.
    revalidate: bool,
    stats: MemoStats,
    /// Reusable candidate buffer for invalidation passes (mutation hot
    /// path: no allocation per mutation).
    scratch: Vec<u64>,
    /// Churn journal: sealed footprints of mutations that ran while any
    /// entry was stale, in version order. Replayed by
    /// [`QueryMemo::get_or_revalidate`] to reconcile a stale entry
    /// before its re-check; bounded by the `JOURNAL_*_MAX` caps.
    journal: VecDeque<JournalEntry>,
    /// Running total of slots stored across `journal`.
    journal_slots: usize,
    /// Running total of postings stored across `journal`.
    journal_postings: usize,
    /// Highest version dropped off the journal's front (or skipped while
    /// revalidation was toggled off). A stale entry demoted at or before
    /// this version cannot prove coverage and fails its re-check.
    journal_evicted_through: u64,
}

impl Default for QueryMemo {
    fn default() -> Self {
        Self {
            buckets: HashMap::default(),
            by_posting: HashMap::default(),
            #[cfg(debug_assertions)]
            posting_stamp: HashMap::new(),
            root_stamp: 0,
            clock: VecDeque::new(),
            capacity: DEFAULT_MEMO_CAPACITY,
            len: 0,
            stale_len: 0,
            revalidate: true,
            stats: MemoStats::default(),
            scratch: Vec::new(),
            journal: VecDeque::new(),
            journal_slots: 0,
            journal_postings: 0,
            journal_evicted_through: 0,
        }
    }
}

impl QueryMemo {
    /// Fast 64-bit fingerprint of a query (FxHash-style multiply-rotate
    /// over the sorted predicate list; queries are canonical by
    /// construction so structurally equal queries fingerprint equal).
    #[inline]
    pub(crate) fn hash_of(query: &ConjunctiveQuery) -> u64 {
        const K: u64 = 0x517c_c1b7_2722_0a95;
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15 ^ query.predicates().len() as u64;
        for p in query.predicates() {
            let word = (u64::from(p.attr.0) << 32) | u64::from(p.value.0);
            h = (h.rotate_left(5) ^ word).wrapping_mul(K);
        }
        h
    }

    /// Fingerprint of the root query — every mutation's first candidate.
    #[inline]
    fn root_hash() -> u64 {
        // `hash_of` with zero predicates is just the seed.
        0x9E37_79B9_7F4A_7C15
    }

    /// Cached evaluation for `query`, if present *and fresh*. Mutable so
    /// the entry can lazily materialise (and then share) its tuple views.
    /// Marks the entry referenced for the CLOCK sweep. `version` is the
    /// database's current version, used by the debug stamp check. A
    /// `Stale` entry reads as a miss here (but is left in place) — the
    /// production path is [`QueryMemo::get_or_revalidate`].
    #[inline]
    pub(crate) fn get_mut(
        &mut self,
        hash: u64,
        query: &ConjunctiveQuery,
        version: u64,
    ) -> Option<&mut CachedEval> {
        #[cfg(debug_assertions)]
        self.debug_assert_current(hash, query, version);
        #[cfg(not(debug_assertions))]
        let _ = version;
        let entry = self.buckets.get_mut(&hash)?.iter_mut().find(|e| e.query == *query)?;
        if entry.stale {
            return None;
        }
        entry.referenced = true;
        Some(&mut entry.eval)
    }

    /// The production lookup: serves a fresh entry directly; runs a
    /// `Stale` entry through the score/bound re-check against `store`,
    /// resurrecting it (stamped at `version`) on success or dropping it
    /// (the caller then re-evaluates from cold) on failure.
    pub(crate) fn get_or_revalidate(
        &mut self,
        hash: u64,
        query: &ConjunctiveQuery,
        version: u64,
        store: &Store,
    ) -> Option<&mut CachedEval> {
        let stale = self
            .buckets
            .get(&hash)
            .and_then(|b| b.iter().find(|e| e.query == *query))
            .map(|e| e.stale)?;
        if stale {
            let passes = self.revalidate && {
                // Deferred reconciliation: fold every journalled
                // mutation since demotion into the entry's churn record
                // before the re-check runs (see the module docs).
                let Self { ref journal, journal_evicted_through, ref mut buckets, .. } = *self;
                let entry = buckets
                    .get_mut(&hash)
                    .and_then(|b| b.iter_mut().find(|e| e.query == *query))
                    .expect("entry probed above");
                Self::reconcile(entry, journal, journal_evicted_through)
                    && Self::revalidation_passes(entry, store)
            };
            let Self { ref mut buckets, ref mut by_posting, .. } = *self;
            let bucket = buckets.get_mut(&hash).expect("bucket probed above");
            let idx = bucket.iter().position(|e| e.query == *query).expect("entry probed above");
            if passes {
                let entry = &mut bucket[idx];
                entry.stale = false;
                // The re-check only proves `matched - churn` matches
                // remain; the original count may have genuinely shrunk.
                // Resurrect with that proven lower bound, so the margin
                // of the *next* demotion cycle cannot double-spend churn
                // already consumed here — keeping the original `matched`
                // would let repeated demote/resurrect rounds of
                // below-floor deletes serve Overflow after the true
                // count fell to `k`.
                entry.eval.matched -= entry.churn as usize;
                entry.churn = 0;
                entry.touched = TouchedSet::Empty;
                entry.stamp = version;
                // Re-enter the posting index (demotion unlinked it).
                for p in entry.query.predicates() {
                    by_posting.entry(pack_posting(p.attr, p.value)).or_default().push(hash);
                }
                self.stale_len -= 1;
                self.stats.resurrected += 1;
            } else {
                // No unlink: demotion already removed the entry from
                // `by_posting` (stale ⟺ unlinked).
                bucket.swap_remove(idx);
                self.len -= 1;
                self.stale_len -= 1;
                self.stats.revalidation_failed += 1;
                if bucket.is_empty() {
                    self.buckets.remove(&hash);
                }
                return None;
            }
        }
        self.get_mut(hash, query, version)
    }

    /// Folds every journalled mutation newer than the entry's replay
    /// low-water mark (`stamp`) into its churn/touched record, in
    /// version order. Returns `false` when the entry cannot be proven
    /// reconcilable: the journal no longer covers its demotion (front
    /// evicted past `stamp`) or a journalled mutation touched its cached
    /// page — the same hard-drop verdict the eager path used to issue at
    /// mutation time, just deferred to the first lookup (sound because a
    /// stale entry is never served in between).
    fn reconcile(
        entry: &mut MemoEntry,
        journal: &VecDeque<JournalEntry>,
        evicted_through: u64,
    ) -> bool {
        debug_assert!(entry.stale, "only stale entries reconcile");
        if evicted_through > entry.stamp {
            return false;
        }
        let start = journal.partition_point(|j| j.version <= entry.stamp);
        for j in journal.iter().skip(start) {
            if j.affects_page(&entry.eval.slots) {
                return false;
            }
            if j.affects_query(&entry.query) {
                entry.churn = entry.churn.saturating_add(j.rows);
                entry.touched.absorb_slots(&j.slots);
            }
        }
        // Advance the low-water mark so a future replay (after further
        // demote-free mutations) cannot double-count this suffix.
        if let Some(last) = journal.back() {
            entry.stamp = entry.stamp.max(last.version);
        }
        true
    }

    /// The lookup-time re-check behind cross-round revalidation (see the
    /// module docs for the soundness argument). Read-only; the caller
    /// applies the verdict.
    fn revalidation_passes(entry: &MemoEntry, store: &Store) -> bool {
        let eval = &entry.eval;
        debug_assert!(eval.overflow, "only overflow entries are demoted");
        // Classification margin: even if every churned row deleted a
        // matching tuple, strictly more than `k` matches remain.
        let margin_ok = (eval.matched as u64)
            .checked_sub(entry.churn)
            .is_some_and(|left| left > eval.slots.len() as u64);
        if !margin_ok {
            return false;
        }
        // Page integrity: guaranteed untouched by the demotion rules;
        // the alive sweep is a cheap belt-and-braces re-check, and debug
        // builds verify the full match.
        if eval.slots.iter().any(|&s| !store.is_alive(s)) {
            debug_assert!(false, "stale entry's page slot died — demotion invariant broken");
            return false;
        }
        debug_assert!(
            eval.slots.iter().all(|&s| slot_matches(&entry.query, store, s)),
            "stale entry's page drifted — demotion invariant broken"
        );
        // Floor check: no churned location can displace a page slot.
        // Only the state at lookup matters — the entry was never served
        // while stale, so transient occupants are irrelevant.
        match &entry.touched {
            TouchedSet::Empty => true,
            TouchedSet::Slots(slots) => slots
                .iter()
                .all(|&s| !slot_matches(&entry.query, store, s) || store.score_at(s) < eval.floor),
            TouchedSet::Segments(segs) => segs.iter().all(|&seg| {
                (seg as usize) >= store.segment_count()
                    || store.segment_max_score(seg as usize) < eval.floor
            }),
            TouchedSet::Unbounded => false,
        }
    }

    /// The stamp-consistency safety net behind every debug-build hit: an
    /// entry may be served only if it was validated no earlier than the
    /// last mutation touching any of its predicates' postings (the root
    /// query checks against the last mutation of any kind). Turns an
    /// invalidation bug into a loud assertion instead of a stale page.
    #[cfg(debug_assertions)]
    fn debug_assert_current(&self, hash: u64, query: &ConjunctiveQuery, version: u64) {
        let Some(entry) =
            self.buckets.get(&hash).and_then(|b| b.iter().find(|e| e.query == *query))
        else {
            return; // miss: nothing to check
        };
        if entry.stale {
            // Known-stale entries are exempt: they are never served
            // without first passing (and being restamped by) the
            // revalidation re-check.
            return;
        }
        assert!(
            entry.stamp <= version,
            "memo entry stamped in the future ({} > {version})",
            entry.stamp
        );
        let current = if query.is_empty() {
            entry.stamp >= self.root_stamp
        } else {
            query.predicates().iter().all(|p| {
                entry.stamp >= self.posting_stamp.get(&(p.attr, p.value)).copied().unwrap_or(0)
            })
        };
        assert!(current, "memo would serve a stale entry for {query} (stamp {})", entry.stamp);
    }

    /// Inserts a confirmed-missing entry (caller has already probed with
    /// [`QueryMemo::get_mut`]; this is the one place the query is cloned),
    /// stamped with the current database version. Evicts via the CLOCK
    /// sweep first if the memo is at capacity.
    pub(crate) fn insert(
        &mut self,
        hash: u64,
        query: &ConjunctiveQuery,
        eval: CachedEval,
        version: u64,
    ) {
        if self.capacity == 0 {
            return;
        }
        while self.len >= self.capacity {
            self.evict_one();
        }
        for p in query.predicates() {
            self.by_posting.entry(pack_posting(p.attr, p.value)).or_default().push(hash);
        }
        let bucket = self.buckets.entry(hash).or_default();
        if bucket.is_empty() {
            self.clock.push_back(hash);
        }
        bucket.push(MemoEntry {
            query: query.clone(),
            eval,
            stamp: version,
            referenced: false,
            stale: false,
            churn: 0,
            touched: TouchedSet::Empty,
        });
        self.len += 1;
        self.stats.insertions += 1;
    }

    /// CLOCK second-chance eviction of one bucket. Terminates: every
    /// referenced bucket loses its bit on the first encounter and is
    /// evictable on the second, and stale ring slots just pop.
    fn evict_one(&mut self) {
        while let Some(hash) = self.clock.pop_front() {
            match self.buckets.get_mut(&hash) {
                // Bucket already gone (invalidated): drop the stale slot.
                None => continue,
                Some(entries) if entries.iter().any(|e| e.referenced) => {
                    for e in entries.iter_mut() {
                        e.referenced = false;
                    }
                    self.clock.push_back(hash);
                }
                Some(_) => {
                    let entries = self.buckets.remove(&hash).expect("bucket just probed");
                    self.len -= entries.len();
                    self.stale_len -= entries.iter().filter(|e| e.stale).count();
                    self.stats.evicted += entries.len() as u64;
                    // Stale entries were already unlinked at demotion;
                    // unlinking them again would steal a bucket mate's
                    // registration under any shared posting.
                    for e in entries.iter().filter(|e| !e.stale) {
                        Self::unlink(&mut self.by_posting, hash, &e.query);
                    }
                    return;
                }
            }
        }
    }

    /// Removes one `hash` occurrence from each of `query`'s posting lists.
    fn unlink(
        by_posting: &mut HashMap<u64, Vec<u64>, BuildHasherDefault<PostingKeyHasher>>,
        hash: u64,
        query: &ConjunctiveQuery,
    ) {
        for p in query.predicates() {
            let key = pack_posting(p.attr, p.value);
            if let Some(hashes) = by_posting.get_mut(&key) {
                if let Some(i) = hashes.iter().position(|&h| h == hash) {
                    hashes.swap_remove(i);
                }
                if hashes.is_empty() {
                    by_posting.remove(&key);
                }
            }
        }
    }

    /// Postings-aware incremental invalidation: drops exactly the entries
    /// the mutation described by `footprint` can have changed, re-stamps
    /// every explicitly checked survivor, and leaves the rest of the memo
    /// untouched. `version` is the database's *post-mutation* version.
    ///
    /// Allocation-free on the mutation hot path: candidates collect into
    /// a reusable scratch buffer and candidate buckets are filtered **in
    /// place** (`retain_mut`) instead of being removed, rebuilt, and
    /// re-inserted — pure-mutation workloads (the interface microbench's
    /// insert+delete pairs) pay vector appends and map probes only.
    pub(crate) fn invalidate(&mut self, footprint: &mut UpdateFootprint, version: u64) {
        footprint.seal();
        self.root_stamp = version;
        #[cfg(debug_assertions)]
        for &posting in footprint.postings() {
            self.posting_stamp.insert(posting, version);
        }
        if self.buckets.is_empty() {
            // Nothing cached: stamps above are all a mutation owes. The
            // ring may still hold slots of buckets a previous pass
            // dropped; keep it bounded.
            self.maybe_compact_clock();
            return;
        }
        let len_before = self.len;
        let mut candidates = std::mem::take(&mut self.scratch);
        candidates.clear();
        candidates.push(Self::root_hash());
        for posting in footprint.postings() {
            if let Some(hashes) = self.by_posting.get(&pack_posting(posting.0, posting.1)) {
                candidates.extend_from_slice(hashes);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        let revalidate = self.revalidate;
        for &hash in &candidates {
            let Some(entries) = self.buckets.get_mut(&hash) else { continue };
            let (by_posting, len, stale_len, stats) =
                (&mut self.by_posting, &mut self.len, &mut self.stale_len, &mut self.stats);
            entries.retain_mut(|e| {
                if e.stale {
                    // Already demoted: unlinked from `by_posting`, so it
                    // is only reachable here as a bucket mate (hash
                    // collision) or via the root bucket. Its churn since
                    // demotion comes from the journal at its next
                    // lookup — the mutation pays nothing for it.
                    return true;
                }
                let page_hit = footprint.affects_page(&e.eval.slots);
                if !page_hit && !footprint.affects_query(&e.query) {
                    // Explicitly checked and retained: validated at the
                    // new version.
                    e.stamp = version;
                    return true;
                }
                // Affected. An overflow page the churn provably spared
                // (no touched slot on the page) demotes to `Stale` for
                // the lookup-time re-check; anything else drops hard —
                // in particular any page hit, which is what upholds the
                // invariant that a stale entry's page slots are
                // untouched since validation.
                if revalidate && e.eval.overflow && !page_hit {
                    e.stale = true;
                    *stale_len += 1;
                    stats.demoted += 1;
                    // The demoting footprint is absorbed eagerly (it is
                    // in hand) and `stamp` records the demotion version:
                    // the journal-replay low-water mark. Everything
                    // after this mutation reaches the entry through the
                    // journal, so drop it from the posting index.
                    e.stamp = version;
                    e.churn = e.churn.saturating_add(footprint.rows() as u64);
                    e.touched.absorb(footprint);
                    Self::unlink(by_posting, hash, &e.query);
                    return true;
                }
                *len -= 1;
                stats.invalidated += 1;
                Self::unlink(by_posting, hash, &e.query);
                false
            });
            if entries.is_empty() {
                self.buckets.remove(&hash);
            }
        }
        self.scratch = candidates;
        // Entries surviving this pass (len_before minus dropped).
        debug_assert!(self.len <= len_before);
        self.stats.retained += self.len as u64;
        if revalidate && self.stale_len > 0 {
            self.journal_push(footprint, version);
        }
        self.maybe_compact_clock();
    }

    /// Appends a sealed footprint to the churn journal, evicting from
    /// the front when any cap is exceeded. An entry demoted at or before
    /// an evicted version can no longer prove coverage and drops at its
    /// next lookup — bounded memory wins over maximal resurrection,
    /// exactly like the [`TouchedSet`] spill ladder.
    fn journal_push(&mut self, footprint: &UpdateFootprint, version: u64) {
        self.journal.push_back(JournalEntry {
            version,
            rows: footprint.rows() as u64,
            postings: footprint.postings().to_vec(),
            slots: footprint.slots().to_vec(),
        });
        self.journal_slots += footprint.slots().len();
        self.journal_postings += footprint.postings().len();
        while self.journal.len() > JOURNAL_ENTRIES_MAX
            || self.journal_slots > JOURNAL_SLOTS_MAX
            || self.journal_postings > JOURNAL_POSTINGS_MAX
        {
            let old = self.journal.pop_front().expect("over-cap journal is non-empty");
            self.journal_slots -= old.slots.len();
            self.journal_postings -= old.postings.len();
            self.journal_evicted_through = old.version;
        }
    }

    /// Bounds the CLOCK ring. Invalidation removes buckets without
    /// touching their ring slots, and below capacity `evict_one` (the
    /// other lazy cleaner) never runs — so under steady invalidate/
    /// re-admit churn the stale slots would otherwise accumulate forever.
    /// When stale slots outnumber live buckets, rebuild the ring in order
    /// keeping one slot per live bucket: amortised O(1) per mutation,
    /// and `clock.len() ≤ 2·buckets + 64` always holds.
    fn maybe_compact_clock(&mut self) {
        if self.clock.len() <= 2 * self.buckets.len() + 64 {
            return;
        }
        let mut seen = HashSet::with_capacity(self.buckets.len());
        let buckets = &self.buckets;
        self.clock.retain(|h| buckets.contains_key(h) && seen.insert(*h));
    }

    /// Drops every entry (wholesale policy, `set_k`, policy switches).
    pub(crate) fn clear(&mut self) {
        self.buckets.clear();
        self.by_posting.clear();
        self.clock.clear();
        self.len = 0;
        self.stale_len = 0;
        self.journal.clear();
        self.journal_slots = 0;
        self.journal_postings = 0;
        self.journal_evicted_through = self.root_stamp;
        self.stats.wholesale_clears += 1;
        // posting_stamp / root_stamp deliberately survive: they describe
        // mutation history, not cache contents.
    }

    /// Toggles stale-entry demotion/revalidation. Turning it off also
    /// refuses to resurrect entries demoted while it was on (they drop
    /// lazily at their next lookup). Any toggle resets the churn journal
    /// and poisons coverage up to the current version: mutations during
    /// an off window are not journalled, so entries demoted before the
    /// window must not resurrect with that gap unaccounted.
    pub(crate) fn set_revalidate(&mut self, on: bool) {
        if on != self.revalidate {
            self.journal.clear();
            self.journal_slots = 0;
            self.journal_postings = 0;
            self.journal_evicted_through = self.root_stamp;
        }
        self.revalidate = on;
    }

    /// Whether demotion/revalidation is active.
    pub(crate) fn revalidate_enabled(&self) -> bool {
        self.revalidate
    }

    /// Number of cached queries currently demoted to `Stale`.
    pub(crate) fn stale_len(&self) -> usize {
        self.stale_len
    }

    /// Caps the number of cached entries, evicting down if over.
    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.len > self.capacity {
            self.evict_one();
        }
    }

    /// The configured entry cap.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifecycle counters.
    pub(crate) fn stats(&self) -> MemoStats {
        self.stats
    }

    /// Number of cached queries.
    pub(crate) fn len(&self) -> usize {
        self.len
    }
}

// ===== shared concurrent memo (service layer) ===========================

/// Shards of the shared memo. A power of two so the shard pick is a mask
/// of the query fingerprint's low bits.
const SHARED_MEMO_SHARDS: usize = 16;

/// Per-shard entry cap: the shared memo as a whole admits about as many
/// entries as the single-owner memo's [`DEFAULT_MEMO_CAPACITY`].
const SHARED_SHARD_CAPACITY: usize = DEFAULT_MEMO_CAPACITY / SHARED_MEMO_SHARDS;

/// One cached `(epoch, query) → outcome` binding. Entries are **never
/// stale**: an epoch's snapshot is immutable, so the outcome of a query
/// against it is fixed forever. The only lifecycle events are admission
/// and eviction.
struct SharedEntry {
    epoch: u64,
    query: ConjunctiveQuery,
    outcome: QueryOutcome,
}

#[derive(Default)]
struct SharedShard {
    /// Fingerprint → entries. Collisions (same fingerprint, different
    /// query or epoch) chain in the bucket and are resolved by equality.
    buckets: HashMap<u64, Vec<SharedEntry>, BuildHasherDefault<IdentityHasher>>,
    /// Total entries across buckets (the capacity signal).
    len: usize,
}

/// The shared concurrent memo of [`crate::service::DbService`]: a sharded
/// `(epoch, query) → QueryOutcome` map serving every session of the
/// service.
///
/// Unlike [`QueryMemo`] there is **no invalidation machinery at all** —
/// keying by epoch makes entries immutable, so the footprint journal,
/// demotion, and revalidation have nothing to do here. What remains is
/// admission control: when a shard fills, entries of *older* epochs are
/// retired first (sessions pinned to old epochs simply re-evaluate — an
/// eviction is never a correctness event), and if the shard is still full
/// of current-epoch entries, new admissions are skipped.
///
/// Locking is per-shard (`Mutex`); the fingerprint's low bits pick the
/// shard, so concurrent sessions asking different queries rarely contend.
pub(crate) struct ConcurrentMemo {
    shards: Box<[Mutex<SharedShard>]>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    retired: AtomicU64,
    admissions_skipped: AtomicU64,
}

impl ConcurrentMemo {
    pub(crate) fn new() -> Self {
        let shards = (0..SHARED_MEMO_SHARDS).map(|_| Mutex::new(SharedShard::default())).collect();
        Self {
            shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            retired: AtomicU64::new(0),
            admissions_skipped: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard_of(hash: u64) -> usize {
        (hash as usize) & (SHARED_MEMO_SHARDS - 1)
    }

    /// Looks up the outcome of `query` against epoch `epoch`. `hash` is
    /// the caller's [`QueryMemo::hash_of`] fingerprint (computed once per
    /// issue, exactly like the owner path).
    pub(crate) fn get(
        &self,
        epoch: u64,
        hash: u64,
        query: &ConjunctiveQuery,
    ) -> Option<QueryOutcome> {
        let shard = self.shards[Self::shard_of(hash)].lock().expect("memo shard poisoned");
        let found = shard.buckets.get(&hash).and_then(|bucket| {
            bucket.iter().find(|e| e.epoch == epoch && e.query == *query).map(|e| e.outcome.clone())
        });
        drop(shard);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Admits `(epoch, query) → outcome`. When the shard is at capacity,
    /// entries of strictly older epochs retire first; a shard still full
    /// of same-or-newer entries skips the admission (correctness-neutral:
    /// the session just re-evaluates next time).
    pub(crate) fn insert(
        &self,
        epoch: u64,
        hash: u64,
        query: &ConjunctiveQuery,
        outcome: QueryOutcome,
    ) {
        let mut shard = self.shards[Self::shard_of(hash)].lock().expect("memo shard poisoned");
        if shard.len >= SHARED_SHARD_CAPACITY {
            let before = shard.len;
            shard.buckets.retain(|_, bucket| {
                bucket.retain(|e| e.epoch >= epoch);
                !bucket.is_empty()
            });
            shard.len = shard.buckets.values().map(Vec::len).sum();
            self.retired.fetch_add((before - shard.len) as u64, Ordering::Relaxed);
            if shard.len >= SHARED_SHARD_CAPACITY {
                self.admissions_skipped.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let bucket = shard.buckets.entry(hash).or_default();
        // Idempotent under races: two sessions that both missed may both
        // insert; keep the first (outcomes are identical by construction).
        if bucket.iter().any(|e| e.epoch == epoch && e.query == *query) {
            return;
        }
        bucket.push(SharedEntry { epoch, query: query.clone(), outcome });
        shard.len += 1;
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Service-wide lookup/admission counters.
    pub(crate) fn stats(&self) -> SharedMemoStats {
        SharedMemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            retired: self.retired.load(Ordering::Relaxed),
            admissions_skipped: self.admissions_skipped.load(Ordering::Relaxed),
        }
    }

    /// Entries currently cached, across all shards.
    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("memo shard poisoned").len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Predicate;

    fn q(pairs: &[(u16, u32)]) -> ConjunctiveQuery {
        ConjunctiveQuery::from_predicates(
            pairs.iter().map(|&(a, v)| Predicate::new(AttrId(a), ValueId(v))),
        )
    }

    fn fp(slot: u32, values: &[u32]) -> UpdateFootprint {
        let mut f = UpdateFootprint::default();
        let vals: Vec<ValueId> = values.iter().map(|&v| ValueId(v)).collect();
        f.record(slot, &vals);
        f
    }

    #[test]
    fn root_hash_matches_hash_of_select_all() {
        assert_eq!(QueryMemo::root_hash(), QueryMemo::hash_of(&ConjunctiveQuery::select_all()));
    }

    #[test]
    fn fingerprints_are_structural() {
        let a = q(&[(0, 1), (2, 3)]);
        let b = q(&[(2, 3), (0, 1)]);
        assert_eq!(QueryMemo::hash_of(&a), QueryMemo::hash_of(&b));
        let c = q(&[(0, 1), (2, 4)]);
        assert_ne!(QueryMemo::hash_of(&a), QueryMemo::hash_of(&c));
        assert_ne!(QueryMemo::hash_of(&ConjunctiveQuery::select_all()), QueryMemo::hash_of(&a));
    }

    #[test]
    fn insert_then_get_roundtrip() {
        let mut memo = QueryMemo::default();
        let query = q(&[(1, 2)]);
        let h = QueryMemo::hash_of(&query);
        assert!(memo.get_mut(h, &query, 0).is_none());
        memo.insert(h, &query, CachedEval::new(true, vec![3, 1]), 0);
        let eval = memo.get_mut(h, &query, 0).expect("entry present");
        assert!(eval.overflow);
        assert_eq!(eval.slots, vec![3, 1]);
        assert_eq!(memo.len(), 1);
        memo.clear();
        assert!(memo.get_mut(h, &query, 0).is_none());
        assert_eq!(memo.len(), 0);
        assert_eq!(memo.stats().wholesale_clears, 1);
    }

    #[test]
    fn colliding_fingerprints_disambiguate_by_equality() {
        // Force a collision by inserting two different queries under the
        // same fingerprint (possible in principle; simulated here).
        let mut memo = QueryMemo::default();
        let a = q(&[(0, 0)]);
        let b = q(&[(0, 1)]);
        let h = 42;
        memo.insert(h, &a, CachedEval::new(false, vec![1]), 0);
        memo.insert(h, &b, CachedEval::new(true, vec![2]), 0);
        assert_eq!(memo.get_mut(h, &a, 0).unwrap().slots, vec![1]);
        assert_eq!(memo.get_mut(h, &b, 0).unwrap().slots, vec![2]);
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn invalidation_drops_only_intersecting_entries() {
        let mut memo = QueryMemo::default();
        let root = ConjunctiveQuery::select_all();
        let touched = q(&[(0, 1)]);
        let untouched = q(&[(0, 0)]);
        let cross = q(&[(1, 1)]); // same value id, different attribute
        for query in [&root, &touched, &untouched, &cross] {
            memo.insert(QueryMemo::hash_of(query), query, CachedEval::new(false, vec![]), 1);
        }
        assert_eq!(memo.len(), 4);

        // Mutated tuple at slot 9 with row (A0=u1, A1=u0).
        let mut footprint = fp(9, &[1, 0]);
        memo.invalidate(&mut footprint, 2);
        assert!(memo.get_mut(QueryMemo::hash_of(&root), &root, 2).is_none(), "root dropped");
        assert!(memo.get_mut(QueryMemo::hash_of(&touched), &touched, 2).is_none());
        assert!(memo.get_mut(QueryMemo::hash_of(&untouched), &untouched, 2).is_some());
        assert!(memo.get_mut(QueryMemo::hash_of(&cross), &cross, 2).is_some());
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.stats().invalidated, 2);
    }

    #[test]
    fn invalidation_drops_entries_whose_page_contains_a_touched_slot() {
        let mut memo = QueryMemo::default();
        // An entry whose predicates do NOT intersect the footprint but
        // whose cached page references the touched slot — the belt-and-
        // braces page check must still drop it. (Unreachable for honest
        // footprints; simulated to pin the safety net.)
        let query = q(&[(0, 0)]);
        let h = QueryMemo::hash_of(&query);
        memo.insert(h, &query, CachedEval::new(false, vec![5]), 1);
        let mut footprint = fp(5, &[7]); // posting (A0,u7) doesn't intersect
        memo.invalidate(&mut footprint, 2);
        // Not a by_posting candidate, so it survives the posting pass…
        // …but the root bucket is always swept; this entry is not in it.
        // The page check only fires for candidates, so the entry survives:
        // its predicates don't intersect, which (for honest footprints)
        // proves its page holds no touched slot. Assert the documented
        // behaviour.
        assert!(memo.get_mut(h, &query, 2).is_some());

        // Now make it a candidate (footprint touches its posting) with a
        // page overlap and watch the page check agree with the predicate
        // check.
        let mut footprint = fp(5, &[0]);
        memo.invalidate(&mut footprint, 3);
        assert!(memo.get_mut(h, &query, 3).is_none());
    }

    #[test]
    fn survivors_are_restamped_when_checked() {
        let mut memo = QueryMemo::default();
        let a = q(&[(0, 0)]);
        let b = q(&[(0, 1)]);
        let ha = QueryMemo::hash_of(&a);
        let hb = QueryMemo::hash_of(&b);
        memo.insert(ha, &a, CachedEval::new(false, vec![]), 1);
        memo.insert(hb, &b, CachedEval::new(false, vec![]), 1);
        // Touch (A0,u1): b drops, a is untouched (not even a candidate).
        memo.invalidate(&mut fp(0, &[1]), 2);
        assert!(memo.get_mut(ha, &a, 2).is_some());
        assert!(memo.get_mut(hb, &b, 2).is_none());
    }

    #[test]
    fn clock_eviction_bounds_len_and_prefers_unreferenced() {
        let mut memo = QueryMemo::default();
        memo.set_capacity(3);
        let queries: Vec<ConjunctiveQuery> = (0..5u32).map(|v| q(&[(0, v)])).collect();
        for query in queries.iter().take(3) {
            memo.insert(QueryMemo::hash_of(query), query, CachedEval::new(false, vec![]), 0);
        }
        // Touch q0 so it is referenced; q1 is the first unreferenced.
        assert!(memo.get_mut(QueryMemo::hash_of(&queries[0]), &queries[0], 0).is_some());
        memo.insert(
            QueryMemo::hash_of(&queries[3]),
            &queries[3],
            CachedEval::new(false, vec![]),
            0,
        );
        assert_eq!(memo.len(), 3, "capacity enforced");
        assert!(
            memo.get_mut(QueryMemo::hash_of(&queries[0]), &queries[0], 0).is_some(),
            "referenced entry got its second chance"
        );
        assert!(
            memo.get_mut(QueryMemo::hash_of(&queries[1]), &queries[1], 0).is_none(),
            "first unreferenced entry evicted"
        );
        assert!(memo.stats().evicted >= 1);

        // A long distinct stream stays bounded.
        for v in 10..200u32 {
            let query = q(&[(1, v)]);
            memo.insert(QueryMemo::hash_of(&query), &query, CachedEval::new(false, vec![]), 0);
            assert!(memo.len() <= 3);
        }
    }

    #[test]
    fn set_capacity_evicts_down() {
        let mut memo = QueryMemo::default();
        for v in 0..10u32 {
            let query = q(&[(0, v)]);
            memo.insert(QueryMemo::hash_of(&query), &query, CachedEval::new(false, vec![]), 0);
        }
        assert_eq!(memo.len(), 10);
        memo.set_capacity(4);
        assert_eq!(memo.len(), 4);
        assert_eq!(memo.capacity(), 4);
    }

    #[test]
    fn zero_capacity_disables_admission() {
        let mut memo = QueryMemo::default();
        memo.set_capacity(0);
        let query = q(&[(0, 0)]);
        memo.insert(QueryMemo::hash_of(&query), &query, CachedEval::new(false, vec![]), 0);
        assert_eq!(memo.len(), 0);
        assert!(memo.get_mut(QueryMemo::hash_of(&query), &query, 0).is_none());
    }

    #[test]
    fn clock_ring_stays_bounded_under_invalidate_readmit_churn() {
        // Below capacity `evict_one` never runs, so without compaction
        // every invalidate/re-admit cycle would leak one stale ring slot
        // forever (the steady-state estimator workload).
        let mut memo = QueryMemo::default();
        let query = q(&[(0, 0)]);
        let h = QueryMemo::hash_of(&query);
        for round in 0..5_000u64 {
            memo.insert(h, &query, CachedEval::new(false, vec![]), round);
            memo.invalidate(&mut fp(0, &[0]), round + 1);
            assert!(memo.get_mut(h, &query, round + 1).is_none());
        }
        assert!(
            memo.clock.len() <= 2 * memo.buckets.len() + 64,
            "clock ring leaked: {} slots for {} buckets",
            memo.clock.len(),
            memo.buckets.len()
        );
    }

    /// Builds a one-attribute store with the given `(key, value, score)`
    /// rows, returning the slot of each.
    fn store_with(rows: &[(u64, u32, u64)]) -> (crate::store::Store, Vec<Slot>) {
        use crate::tuple::Tuple;
        use crate::value::TupleKey;
        let mut store = crate::store::Store::new(1, 0);
        let slots = rows
            .iter()
            .map(|&(key, v, score)| {
                store.insert(Tuple::new(TupleKey(key), vec![ValueId(v)], vec![]), score).unwrap()
            })
            .collect();
        (store, slots)
    }

    /// An overflow entry for `query` over `slots` with explicit
    /// revalidation anchors.
    fn overflow_eval(slots: Vec<Slot>, matched: usize, floor: u64) -> CachedEval {
        let mut eval = CachedEval::new(true, slots);
        eval.matched = matched;
        eval.floor = floor;
        eval
    }

    #[test]
    fn overflow_entry_demotes_then_resurrects_when_churn_stays_below_the_floor() {
        // Page: scores 100, 90 (floor 90); churn lands on a matching
        // tuple scoring 10 — provably unable to enter the page.
        let (store, slots) = store_with(&[(1, 0, 100), (2, 0, 90), (3, 0, 10)]);
        let mut memo = QueryMemo::default();
        let query = q(&[(0, 0)]);
        let h = QueryMemo::hash_of(&query);
        memo.insert(h, &query, overflow_eval(vec![slots[0], slots[1]], 5, 90), 1);

        memo.invalidate(&mut fp(slots[2], &[0]), 2);
        assert_eq!(memo.stale_len(), 1, "demoted, not dropped");
        assert_eq!(memo.len(), 1);
        assert_eq!(memo.stats().demoted, 1);
        assert_eq!(memo.stats().invalidated, 0);
        assert!(memo.get_mut(h, &query, 2).is_none(), "stale entries are never served raw");

        let eval = memo.get_or_revalidate(h, &query, 2, &store).expect("resurrected");
        assert_eq!(eval.slots, vec![slots[0], slots[1]], "same page, same order");
        assert_eq!(memo.stale_len(), 0);
        assert_eq!(memo.stats().resurrected, 1);
        // Fully rehabilitated: raw lookups serve it again.
        assert!(memo.get_mut(h, &query, 2).is_some());
    }

    #[test]
    fn revalidation_fails_when_a_churned_tuple_reaches_the_floor() {
        // Churned occupant scores 95 >= floor 90: it may displace a page
        // slot, so the lookup must fall through to a re-scan.
        let (store, slots) = store_with(&[(1, 0, 100), (2, 0, 90), (3, 0, 95)]);
        let mut memo = QueryMemo::default();
        let query = q(&[(0, 0)]);
        let h = QueryMemo::hash_of(&query);
        memo.insert(h, &query, overflow_eval(vec![slots[0], slots[1]], 5, 90), 1);
        memo.invalidate(&mut fp(slots[2], &[0]), 2);
        assert_eq!(memo.stale_len(), 1);
        assert!(memo.get_or_revalidate(h, &query, 2, &store).is_none(), "refuted at lookup");
        assert_eq!(memo.len(), 0, "refuted entries drop");
        assert_eq!(memo.stats().revalidation_failed, 1);
    }

    #[test]
    fn revalidation_fails_when_the_classification_margin_collapses() {
        // matched 3 with a 2-slot page: one churned row could shrink the
        // match count to k — the overflow classification is no longer
        // provable, even though the churned tuple itself is gone.
        let (mut store, slots) = store_with(&[(1, 0, 100), (2, 0, 90), (3, 0, 10)]);
        let mut memo = QueryMemo::default();
        let query = q(&[(0, 0)]);
        let h = QueryMemo::hash_of(&query);
        memo.insert(h, &query, overflow_eval(vec![slots[0], slots[1]], 3, 90), 1);
        store.delete(crate::value::TupleKey(3)).unwrap();
        memo.invalidate(&mut fp(slots[2], &[0]), 2);
        assert!(memo.get_or_revalidate(h, &query, 2, &store).is_none());
        assert_eq!(memo.stats().revalidation_failed, 1);
    }

    #[test]
    fn page_hits_and_non_overflow_entries_still_drop_hard() {
        let (store, slots) = store_with(&[(1, 0, 100), (2, 0, 90), (3, 0, 10)]);
        let mut memo = QueryMemo::default();
        let query = q(&[(0, 0)]);
        let h = QueryMemo::hash_of(&query);
        // A footprint touching a page slot must drop the entry outright —
        // this is what upholds the page-integrity invariant.
        memo.insert(h, &query, overflow_eval(vec![slots[0], slots[1]], 5, 90), 1);
        memo.invalidate(&mut fp(slots[0], &[0]), 2);
        assert_eq!(memo.len(), 0);
        assert_eq!(memo.stale_len(), 0);
        assert_eq!(memo.stats().demoted, 0);
        assert_eq!(memo.stats().invalidated, 1);
        // Valid (non-overflow) entries are never demoted.
        memo.insert(h, &query, CachedEval::new(false, vec![slots[0]]), 2);
        memo.invalidate(&mut fp(slots[2], &[0]), 3);
        assert_eq!(memo.len(), 0);
        assert_eq!(memo.stats().demoted, 0);
        let _ = store;
    }

    #[test]
    fn churn_accumulates_across_rounds_until_lookup() {
        // Two demoting rounds before the lookup: both churned tuples must
        // be checked, and the margin must count both rows.
        let (store, slots) =
            store_with(&[(1, 0, 100), (2, 0, 90), (3, 0, 10), (4, 0, 20), (5, 0, 30)]);
        let mut memo = QueryMemo::default();
        let query = q(&[(0, 0)]);
        let h = QueryMemo::hash_of(&query);
        memo.insert(h, &query, overflow_eval(vec![slots[0], slots[1]], 9, 90), 1);
        memo.invalidate(&mut fp(slots[2], &[0]), 2);
        memo.invalidate(&mut fp(slots[3], &[0]), 3);
        memo.invalidate(&mut fp(slots[4], &[0]), 4);
        assert_eq!(memo.stale_len(), 1);
        assert_eq!(memo.stats().demoted, 1, "one transition, three accumulations");
        assert!(memo.get_or_revalidate(h, &query, 4, &store).is_some(), "all churn below floor");
        assert_eq!(memo.stats().resurrected, 1);
    }

    /// Regression (code-review finding): resurrection must not reset the
    /// churn margin without also lowering `matched` to the proven lower
    /// bound — otherwise repeated demote/resurrect cycles of below-floor
    /// deletes "forget" earlier churn and keep serving Overflow after
    /// the true match count has fallen to `k`.
    #[test]
    fn margin_is_not_double_spent_across_demote_resurrect_cycles() {
        // k=2; matches: 100, 90 (the page), 10, 20. Two below-floor
        // deletes across two cycles leave exactly k matches — Valid.
        let (mut store, slots) = store_with(&[(1, 0, 100), (2, 0, 90), (3, 0, 10), (4, 0, 20)]);
        let mut memo = QueryMemo::default();
        let query = q(&[(0, 0)]);
        let h = QueryMemo::hash_of(&query);
        memo.insert(h, &query, overflow_eval(vec![slots[0], slots[1]], 4, 90), 1);
        // Cycle 1: delete the score-10 match; margin 4-1 > 2 holds.
        store.delete(crate::value::TupleKey(3)).unwrap();
        memo.invalidate(&mut fp(slots[2], &[0]), 2);
        let eval = memo.get_or_revalidate(h, &query, 2, &store).expect("cycle 1 resurrects");
        assert_eq!(eval.matched, 3, "resurrection must keep only the proven lower bound");
        // Cycle 2: delete the score-20 match; only k matches remain, so
        // the entry must be refuted — Overflow is no longer provable.
        store.delete(crate::value::TupleKey(4)).unwrap();
        memo.invalidate(&mut fp(slots[3], &[0]), 3);
        assert!(
            memo.get_or_revalidate(h, &query, 3, &store).is_none(),
            "margin must account for churn consumed by the earlier resurrection"
        );
        assert_eq!(memo.stats().revalidation_failed, 1);
    }

    #[test]
    fn disabling_revalidation_restores_drop_on_invalidate() {
        let (store, slots) = store_with(&[(1, 0, 100), (2, 0, 90), (3, 0, 10)]);
        let mut memo = QueryMemo::default();
        memo.set_revalidate(false);
        assert!(!memo.revalidate_enabled());
        let query = q(&[(0, 0)]);
        let h = QueryMemo::hash_of(&query);
        memo.insert(h, &query, overflow_eval(vec![slots[0], slots[1]], 5, 90), 1);
        memo.invalidate(&mut fp(slots[2], &[0]), 2);
        assert_eq!(memo.len(), 0, "PR 2 semantics: affected entries drop");
        assert_eq!(memo.stats().demoted, 0);
        let _ = store;
    }

    #[test]
    fn demotion_unlinks_from_the_posting_index_and_resurrection_relinks() {
        // The PR 6 throughput fix: a parked stale entry must not appear
        // in `by_posting`, so pure-mutation passes never walk it.
        let (store, slots) = store_with(&[(1, 0, 100), (2, 0, 90), (3, 0, 10)]);
        let mut memo = QueryMemo::default();
        let query = q(&[(0, 0)]);
        let h = QueryMemo::hash_of(&query);
        let key = pack_posting(AttrId(0), ValueId(0));
        memo.insert(h, &query, overflow_eval(vec![slots[0], slots[1]], 5, 90), 1);
        assert!(memo.by_posting.get(&key).is_some_and(|v| v.contains(&h)));
        memo.invalidate(&mut fp(slots[2], &[0]), 2);
        assert_eq!(memo.stale_len(), 1);
        assert!(
            memo.by_posting.get(&key).is_none_or(|v| !v.contains(&h)),
            "stale entries must leave the posting index"
        );
        assert!(memo.get_or_revalidate(h, &query, 2, &store).is_some(), "resurrects");
        assert!(
            memo.by_posting.get(&key).is_some_and(|v| v.contains(&h)),
            "resurrection must re-enter the posting index"
        );
        // And invalidation reaches it again afterwards: a page hit drops.
        memo.invalidate(&mut fp(slots[0], &[0]), 3);
        assert_eq!(memo.len(), 0);
    }

    #[test]
    fn journal_replay_charges_churn_missed_while_unlinked() {
        // matched 9, page of 2: three below-floor single-row mutations
        // after demotion leave margin 9-3 > 2 — resurrect with the full
        // charge folded in from the journal (the entry was unlinked for
        // mutations 2 and 3).
        let (store, slots) =
            store_with(&[(1, 0, 100), (2, 0, 90), (3, 0, 10), (4, 0, 20), (5, 0, 30)]);
        let mut memo = QueryMemo::default();
        let query = q(&[(0, 0)]);
        let h = QueryMemo::hash_of(&query);
        memo.insert(h, &query, overflow_eval(vec![slots[0], slots[1]], 9, 90), 1);
        memo.invalidate(&mut fp(slots[2], &[0]), 2);
        memo.invalidate(&mut fp(slots[3], &[0]), 3);
        memo.invalidate(&mut fp(slots[4], &[0]), 4);
        let eval = memo.get_or_revalidate(h, &query, 4, &store).expect("margin holds");
        assert_eq!(
            eval.matched, 6,
            "all three churned rows must be charged, not just the demoting one"
        );
    }

    #[test]
    fn journalled_page_hit_drops_the_stale_entry_at_lookup() {
        // After demotion the entry is unlinked, so a later mutation that
        // touches one of its page slots cannot hard-drop it at mutation
        // time — the journal replay must deliver that verdict at lookup.
        let (store, slots) = store_with(&[(1, 0, 100), (2, 0, 90), (3, 0, 10)]);
        let mut memo = QueryMemo::default();
        let query = q(&[(0, 0)]);
        let h = QueryMemo::hash_of(&query);
        memo.insert(h, &query, overflow_eval(vec![slots[0], slots[1]], 9, 90), 1);
        memo.invalidate(&mut fp(slots[2], &[0]), 2);
        assert_eq!(memo.stale_len(), 1);
        memo.invalidate(&mut fp(slots[0], &[0]), 3);
        assert_eq!(memo.stale_len(), 1, "page hit is deferred, not applied at mutation time");
        assert!(memo.get_or_revalidate(h, &query, 3, &store).is_none(), "refuted at lookup");
        assert_eq!(memo.len(), 0);
        assert_eq!(memo.stats().revalidation_failed, 1);
    }

    #[test]
    fn journal_eviction_forfeits_resurrection() {
        // Blow past the journal's entry cap with mutations that cannot
        // have affected the parked entry: coverage of its demotion
        // version is lost, so the lookup must refuse to resurrect.
        let (store, slots) = store_with(&[(1, 0, 100), (2, 0, 90), (3, 0, 10)]);
        let mut memo = QueryMemo::default();
        let query = q(&[(0, 0)]);
        let h = QueryMemo::hash_of(&query);
        memo.insert(h, &query, overflow_eval(vec![slots[0], slots[1]], 1000, 90), 1);
        memo.invalidate(&mut fp(slots[2], &[0]), 2);
        for i in 0..(JOURNAL_ENTRIES_MAX as u64 + 8) {
            // Distinct value, untouched pages: irrelevant to the entry.
            memo.invalidate(&mut fp(1_000 + i as u32, &[7]), 3 + i);
        }
        assert!(
            memo.get_or_revalidate(h, &query, JOURNAL_ENTRIES_MAX as u64 + 16, &store).is_none(),
            "evicted journal coverage must fail closed"
        );
        assert_eq!(memo.stats().revalidation_failed, 1);
    }

    #[test]
    fn revalidation_toggle_poisons_journal_coverage() {
        // Mutations during an off window are not journalled; an entry
        // demoted before the window must not resurrect with that gap
        // unaccounted, even if every mutation stayed below the floor.
        let (store, slots) = store_with(&[(1, 0, 100), (2, 0, 90), (3, 0, 10), (4, 0, 20)]);
        let mut memo = QueryMemo::default();
        let query = q(&[(0, 0)]);
        let h = QueryMemo::hash_of(&query);
        memo.insert(h, &query, overflow_eval(vec![slots[0], slots[1]], 9, 90), 1);
        memo.invalidate(&mut fp(slots[2], &[0]), 2);
        assert_eq!(memo.stale_len(), 1);
        memo.set_revalidate(false);
        memo.invalidate(&mut fp(slots[3], &[0]), 3);
        memo.set_revalidate(true);
        assert!(
            memo.get_or_revalidate(h, &query, 3, &store).is_none(),
            "the off-window mutation left an unjournalled gap"
        );
    }

    #[test]
    fn touched_tracking_spills_from_slots_to_segments_to_unbounded() {
        let mut touched = TouchedSet::Empty;
        let mut footprint = UpdateFootprint::default();
        // Few slots: exact tracking.
        for slot in 0..4u32 {
            footprint.record(slot, &[ValueId(0)]);
        }
        footprint.seal();
        touched.absorb(&footprint);
        assert!(matches!(&touched, TouchedSet::Slots(v) if v.len() == 4));
        // One footprint past the raw slot cap within one segment: the
        // overflow triggers compaction, which spills to segments.
        let mut footprint = UpdateFootprint::default();
        for slot in 0..(RAW_SLOTS_MAX as u32 + 8) {
            footprint.record(slot, &[ValueId(0)]);
        }
        footprint.seal();
        touched.absorb(&footprint);
        touched.compact();
        assert!(matches!(&touched, TouchedSet::Segments(v) if v.len() == 1));
        // Blow past the raw segment cap: unbounded.
        let mut footprint = UpdateFootprint::default();
        for seg in 0..(RAW_SEGS_MAX as u32 + 8) {
            footprint.record(seg * crate::store::SEGMENT_SLOTS as u32, &[ValueId(0)]);
        }
        footprint.seal();
        touched.absorb(&footprint);
        assert!(matches!(touched, TouchedSet::Unbounded));
        // Unbounded absorbs anything and stays unbounded.
        touched.absorb(&footprint);
        assert!(matches!(touched, TouchedSet::Unbounded));
    }

    #[test]
    fn touched_tracking_amortises_absorbs_and_stays_bounded() {
        // The PR 6 throughput fix: repeated small absorptions must not
        // sort/dedup each time, yet the raw buffer must stay bounded and
        // the unique-slot classification must survive compaction.
        let mut touched = TouchedSet::Empty;
        let mut footprint = UpdateFootprint::default();
        for slot in 0..4u32 {
            footprint.record(slot, &[ValueId(0)]);
        }
        footprint.seal();
        for _ in 0..10_000 {
            touched.absorb(&footprint);
            match &touched {
                TouchedSet::Slots(v) => {
                    assert!(v.len() <= RAW_SLOTS_MAX + 4, "raw buffer leaked: {}", v.len())
                }
                other => panic!("4 unique slots must stay at the Slots level, got {other:?}"),
            }
        }
        touched.compact();
        assert!(matches!(&touched, TouchedSet::Slots(v) if v.len() == 4));
    }

    #[test]
    fn eviction_unlinks_postings_so_reinsert_works() {
        let mut memo = QueryMemo::default();
        memo.set_capacity(1);
        let a = q(&[(0, 0)]);
        let b = q(&[(0, 1)]);
        memo.insert(QueryMemo::hash_of(&a), &a, CachedEval::new(false, vec![]), 0);
        memo.insert(QueryMemo::hash_of(&b), &b, CachedEval::new(false, vec![]), 0);
        assert_eq!(memo.len(), 1);
        // Re-admit `a`, then invalidate its posting: exactly one entry
        // must drop (no double-unlink damage from the earlier eviction).
        memo.insert(QueryMemo::hash_of(&a), &a, CachedEval::new(false, vec![]), 1);
        memo.invalidate(&mut fp(0, &[0]), 2);
        assert!(memo.get_mut(QueryMemo::hash_of(&a), &a, 2).is_none());
    }
}
