//! Out-of-core persistence tier for the segmented store.
//!
//! Fixed-size store segments ([`crate::store::SEGMENT_SLOTS`] slots) are
//! the paging unit: each segment serialises to a **fixed-layout region**
//! of a single column file (`segments.dat`), so the byte offset of any
//! segment is a multiply — the classic mmap-style layout, implemented
//! with plain seek/read/write so the tier works on any `std` platform.
//!
//! ## Resident budget
//!
//! A database with persistence enabled keeps at most `resident` segments
//! in memory at once, split across two pools that share the budget:
//!
//! * **in-core** segments live in the writer's `StoreCore` exactly like
//!   the all-RAM configuration (mutable, `Arc`-COW-shared with
//!   snapshots). The writer bounds them to `resident - 1`, evicting with
//!   a CLOCK sweep (write-back on dirty) when a mutation would exceed
//!   the budget;
//! * the remaining slack holds the [`Pager`]'s **read cache**: segments
//!   faulted back in by `&self` readers (query evaluation, ground
//!   truth, snapshot materialisation), evicted clean with a
//!   second-chance CLOCK ring.
//!
//! The split guarantees `in_core + cached <= resident` at every instant
//! (budgets below 2 are clamped to 2 so the read path always has one
//! slot), which is what the `resident_memory_bounded` bench flag
//! asserts. Paging moves bytes, never values: answers are bit-identical
//! to the in-RAM configuration under every eval/policy/thread
//! combination.
//!
//! ## Durability and warm restart
//!
//! The region file is a working set, not a log: it is rebuilt whenever
//! persistence is (re-)enabled. Durability comes from `state.hdbj`, an
//! append-only journal of checksummed full-state snapshot records
//! (format v2 of [`crate::codec`] — segment data *and* warm state:
//! segment/block score bounds, posting-list block directories, the free
//! list). [`crate::database::HiddenDatabase::checkpoint`] appends a
//! record and fsyncs; reopening scans the journal, keeps the last record
//! whose length and FNV-64 checksum validate, and ignores any torn tail
//! from a crash mid-append.

use std::collections::{HashMap, VecDeque};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::stats::PersistStats;
use crate::store::{SegmentData, SEGMENT_SLOTS};

/// Name of the fixed-layout segment region file inside the persist dir.
pub const SEGMENTS_FILE: &str = "segments.dat";

/// Name of the append-only snapshot journal inside the persist dir.
pub const JOURNAL_FILE: &str = "state.hdbj";

const FILE_MAGIC: &[u8; 4] = b"HDBP";
const FILE_VERSION: u32 = 1;
/// Region file header: magic, version, attr count, measure count, pad.
const HEADER_LEN: u64 = 32;

const RECORD_MAGIC: &[u8; 4] = b"HDBR";

/// Where and how large: configuration for the persistence tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistConfig {
    /// Directory holding `segments.dat` and `state.hdbj` (created on
    /// demand).
    pub dir: PathBuf,
    /// Resident-segment budget: the maximum number of segments (in-core
    /// plus pager read cache) held in memory at once. Values below 2
    /// are clamped to 2 so the read path always has a cache slot.
    pub resident_segments: usize,
}

impl PersistConfig {
    /// Creates a config from a directory and a resident-segment budget.
    pub fn new(dir: impl Into<PathBuf>, resident_segments: usize) -> Self {
        Self { dir: dir.into(), resident_segments }
    }

    /// Parses the CLI form `<dir>,resident:<N>` (e.g.
    /// `/tmp/db,resident:64`).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (dir, rest) = spec
            .split_once(',')
            .ok_or_else(|| format!("--persist '{spec}': expected <dir>,resident:<N>"))?;
        let n = rest
            .strip_prefix("resident:")
            .ok_or_else(|| format!("--persist '{spec}': expected resident:<N> after the comma"))?;
        let resident: usize = n
            .parse()
            .map_err(|_| format!("--persist '{spec}': resident budget '{n}' is not a number"))?;
        if dir.is_empty() {
            return Err(format!("--persist '{spec}': empty directory"));
        }
        if resident == 0 {
            return Err(format!("--persist '{spec}': resident budget must be >= 1"));
        }
        Ok(Self::new(dir, resident))
    }
}

/// Byte layout of one segment region. Every array sits at a fixed
/// offset (stride [`SEGMENT_SLOTS`]), so partially grown segments leave
/// gaps — the price of O(1) addressing.
#[derive(Debug, Clone, Copy)]
struct Geometry {
    attr_count: usize,
    measure_count: usize,
    region_len: usize,
}

impl Geometry {
    fn new(attr_count: usize, measure_count: usize) -> Self {
        let s = SEGMENT_SLOTS;
        // rows u64 | keys u64×S | scores u64×S | alive bitmap S/8 |
        // columns u32×S per attr | measures f64×S per measure.
        let region_len = 8 + 8 * s + 8 * s + s / 8 + attr_count * 4 * s + measure_count * 8 * s;
        Self { attr_count, measure_count, region_len }
    }

    fn region_offset(&self, seg: usize) -> u64 {
        HEADER_LEN + seg as u64 * self.region_len as u64
    }

    /// Serialises `data` into `buf` (resized/zeroed to one region).
    fn encode(&self, data: &SegmentData, buf: &mut Vec<u8>) {
        buf.clear();
        buf.resize(self.region_len, 0);
        let rows = data.keys.len();
        debug_assert!(rows <= SEGMENT_SLOTS);
        buf[0..8].copy_from_slice(&(rows as u64).to_le_bytes());
        let mut off = 8;
        for (i, &k) in data.keys.iter().enumerate() {
            buf[off + i * 8..off + i * 8 + 8].copy_from_slice(&k.to_le_bytes());
        }
        off += 8 * SEGMENT_SLOTS;
        for (i, &sc) in data.scores.iter().enumerate() {
            buf[off + i * 8..off + i * 8 + 8].copy_from_slice(&sc.to_le_bytes());
        }
        off += 8 * SEGMENT_SLOTS;
        for (i, &a) in data.alive.iter().enumerate() {
            if a {
                buf[off + i / 8] |= 1 << (i % 8);
            }
        }
        off += SEGMENT_SLOTS / 8;
        for col in &data.columns {
            for (i, &v) in col.iter().enumerate() {
                buf[off + i * 4..off + i * 4 + 4].copy_from_slice(&v.to_le_bytes());
            }
            off += 4 * SEGMENT_SLOTS;
        }
        for col in &data.measures {
            for (i, &m) in col.iter().enumerate() {
                buf[off + i * 8..off + i * 8 + 8].copy_from_slice(&m.to_le_bytes());
            }
            off += 8 * SEGMENT_SLOTS;
        }
        debug_assert_eq!(off, self.region_len);
    }

    /// Deserialises one region back into a resident [`SegmentData`].
    fn decode(&self, buf: &[u8]) -> SegmentData {
        let rows = u64::from_le_bytes(buf[0..8].try_into().unwrap()) as usize;
        assert!(rows <= SEGMENT_SLOTS, "persist: corrupt region (rows {rows})");
        let mut off = 8;
        let mut keys = Vec::with_capacity(rows);
        for i in 0..rows {
            keys.push(u64::from_le_bytes(buf[off + i * 8..off + i * 8 + 8].try_into().unwrap()));
        }
        off += 8 * SEGMENT_SLOTS;
        let mut scores = Vec::with_capacity(rows);
        for i in 0..rows {
            scores.push(u64::from_le_bytes(buf[off + i * 8..off + i * 8 + 8].try_into().unwrap()));
        }
        off += 8 * SEGMENT_SLOTS;
        let mut alive = Vec::with_capacity(rows);
        for i in 0..rows {
            alive.push(buf[off + i / 8] & (1 << (i % 8)) != 0);
        }
        off += SEGMENT_SLOTS / 8;
        let mut columns = Vec::with_capacity(self.attr_count);
        for _ in 0..self.attr_count {
            let mut col = Vec::with_capacity(rows);
            for i in 0..rows {
                col.push(u32::from_le_bytes(buf[off + i * 4..off + i * 4 + 4].try_into().unwrap()));
            }
            columns.push(col);
            off += 4 * SEGMENT_SLOTS;
        }
        let mut measures = Vec::with_capacity(self.measure_count);
        for _ in 0..self.measure_count {
            let mut col = Vec::with_capacity(rows);
            for i in 0..rows {
                col.push(f64::from_le_bytes(buf[off + i * 8..off + i * 8 + 8].try_into().unwrap()));
            }
            measures.push(col);
            off += 8 * SEGMENT_SLOTS;
        }
        SegmentData { columns, measures, keys, scores, alive, evicted: false }
    }
}

#[derive(Debug)]
struct CacheEntry {
    data: Arc<SegmentData>,
    /// CLOCK reference bit: set on every cache hit, cleared when the
    /// sweep hand passes; an unreferenced entry is evicted.
    referenced: bool,
}

#[derive(Debug)]
struct PagerInner {
    file: File,
    /// Read cache over evicted segments, bounded by the budget slack the
    /// in-core pool leaves.
    cache: HashMap<usize, CacheEntry>,
    /// Second-chance CLOCK ring over cached segment ids. May hold stale
    /// ids (entries reclaimed by the writer); they are skipped on pop.
    ring: VecDeque<usize>,
    /// Whether segment `s` has a valid region on disk.
    on_disk: Vec<bool>,
    /// Whether the in-core copy of segment `s` has mutations the disk
    /// region does not.
    dirty: Vec<bool>,
    /// Reusable region-sized IO buffer.
    buf: Vec<u8>,
}

impl PagerInner {
    fn read_region(&mut self, geom: &Geometry, seg: usize) -> io::Result<SegmentData> {
        debug_assert!(self.on_disk[seg], "persist: fault of a segment never spilled");
        self.buf.resize(geom.region_len, 0);
        self.file.seek(SeekFrom::Start(geom.region_offset(seg)))?;
        self.file.read_exact(&mut self.buf)?;
        Ok(geom.decode(&self.buf))
    }

    fn write_region(&mut self, geom: &Geometry, seg: usize, data: &SegmentData) -> io::Result<()> {
        let mut buf = std::mem::take(&mut self.buf);
        geom.encode(data, &mut buf);
        self.file.seek(SeekFrom::Start(geom.region_offset(seg)))?;
        let out = self.file.write_all(&buf);
        self.buf = buf;
        out
    }
}

/// The paging engine behind an out-of-core [`crate::store::StoreCore`]:
/// owns the region file, the bounded read cache, and the spill/fault
/// counters. Shared (`Arc`) between the store and its writer so `&self`
/// readers can fault segments in concurrently (the inner state is
/// mutex-protected; counters are atomics).
#[derive(Debug)]
pub(crate) struct Pager {
    dir: PathBuf,
    geom: Geometry,
    /// Total resident budget (in-core + cache), clamped to >= 2.
    budget: usize,
    /// Shared empty segment installed in place of evicted segments.
    tombstone: Arc<SegmentData>,
    inner: Mutex<PagerInner>,
    /// Non-evicted segments currently held by the owning `StoreCore`
    /// (maintained by the writer; read by the fault path to size the
    /// cache slack).
    in_core: AtomicUsize,
    spilled: AtomicU64,
    faulted: AtomicU64,
    evictions: AtomicU64,
    regions_on_disk: AtomicU64,
    peak_resident: AtomicU64,
}

impl Pager {
    /// Creates the persist directory and a fresh (truncated) region
    /// file. The region file is working state — durable restarts go
    /// through the snapshot journal, not stale regions.
    pub(crate) fn open(
        dir: &Path,
        attr_count: usize,
        measure_count: usize,
        resident_budget: usize,
    ) -> io::Result<Arc<Self>> {
        fs::create_dir_all(dir)?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(dir.join(SEGMENTS_FILE))?;
        let mut header = [0u8; HEADER_LEN as usize];
        header[0..4].copy_from_slice(FILE_MAGIC);
        header[4..8].copy_from_slice(&FILE_VERSION.to_le_bytes());
        header[8..12].copy_from_slice(&(attr_count as u32).to_le_bytes());
        header[12..16].copy_from_slice(&(measure_count as u32).to_le_bytes());
        file.write_all(&header)?;
        Ok(Arc::new(Self {
            dir: dir.to_path_buf(),
            geom: Geometry::new(attr_count, measure_count),
            budget: resident_budget.max(2),
            tombstone: Arc::new(SegmentData::tombstone()),
            inner: Mutex::new(PagerInner {
                file,
                cache: HashMap::new(),
                ring: VecDeque::new(),
                on_disk: Vec::new(),
                dirty: Vec::new(),
                buf: Vec::new(),
            }),
            in_core: AtomicUsize::new(0),
            spilled: AtomicU64::new(0),
            faulted: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            regions_on_disk: AtomicU64::new(0),
            peak_resident: AtomicU64::new(0),
        }))
    }

    /// The persist directory (owns `segments.dat` and the journal).
    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total resident budget (in-core + read cache), always >= 2.
    pub(crate) fn total_budget(&self) -> usize {
        self.budget
    }

    /// How many segments the *writer* may keep in core: one below the
    /// total so the read path always has at least one cache slot.
    pub(crate) fn writer_budget(&self) -> usize {
        self.total_budget() - 1
    }

    /// The shared evicted-segment placeholder.
    pub(crate) fn tombstone(&self) -> Arc<SegmentData> {
        Arc::clone(&self.tombstone)
    }

    /// Grows the per-segment bookkeeping to cover `n` segments.
    pub(crate) fn ensure_segments(&self, n: usize) {
        let mut inner = self.inner.lock().unwrap();
        if inner.on_disk.len() < n {
            inner.on_disk.resize(n, false);
            inner.dirty.resize(n, false);
        }
    }

    /// Records that the in-core copy of `seg` diverged from its region.
    pub(crate) fn mark_dirty(&self, seg: usize) {
        self.inner.lock().unwrap().dirty[seg] = true;
    }

    /// Writer-side bookkeeping: the owning store's in-core count. Shrinks
    /// the read cache to the remaining budget slack, so a rise in the
    /// in-core pool (a write-path fault) can never push total residency
    /// past the budget on the strength of stale cache entries.
    pub(crate) fn set_in_core(&self, n: usize) {
        let allowed = self.budget.saturating_sub(n);
        let mut inner = self.inner.lock().unwrap();
        while inner.cache.len() > allowed && self.evict_one(&mut inner) {}
        let cache_len = inner.cache.len();
        drop(inner);
        self.in_core.store(n, Ordering::Relaxed);
        self.peak_resident.fetch_max((n + cache_len) as u64, Ordering::Relaxed);
    }

    /// Rebases the residency high-water mark to the current level.
    /// Called once attachment has spilled a pre-existing store down to
    /// budget: segments resident *before* the tier took over are the
    /// loader's footprint, not the pager's, and would otherwise pin the
    /// peak above any budget forever.
    pub(crate) fn reset_peak(&self) {
        let cache_len = self.inner.lock().unwrap().cache.len();
        let now = (self.in_core.load(Ordering::Relaxed) + cache_len) as u64;
        self.peak_resident.store(now, Ordering::Relaxed);
    }

    /// One CLOCK step over the cache ring: skips stale ids, gives
    /// referenced entries a second chance, evicts the first unreferenced
    /// entry. Returns `false` when the ring is exhausted.
    fn evict_one(&self, inner: &mut PagerInner) -> bool {
        loop {
            let Some(victim) = inner.ring.pop_front() else { return false };
            match inner.cache.get_mut(&victim) {
                // Stale ring id: the writer reclaimed this entry.
                None => continue,
                Some(e) if e.referenced => {
                    e.referenced = false;
                    inner.ring.push_back(victim);
                }
                Some(_) => {
                    inner.cache.remove(&victim);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
            }
        }
    }

    fn bump_peak(&self, cache_len: usize) {
        let now = self.in_core.load(Ordering::Relaxed) as u64 + cache_len as u64;
        self.peak_resident.fetch_max(now, Ordering::Relaxed);
    }

    /// Read-path fault: returns the segment's data, from cache or disk,
    /// inserting into the CLOCK-bounded cache. Panics on IO failure —
    /// the accessors this serves are infallible `&self` reads.
    pub(crate) fn fault(&self, seg: usize) -> Arc<SegmentData> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(e) = inner.cache.get_mut(&seg) {
            e.referenced = true;
            return Arc::clone(&e.data);
        }
        let data = inner
            .read_region(&self.geom, seg)
            .map(Arc::new)
            .unwrap_or_else(|e| panic!("persist: faulting segment {seg} failed: {e}"));
        self.faulted.fetch_add(1, Ordering::Relaxed);
        let allowed = self.budget.saturating_sub(self.in_core.load(Ordering::Relaxed)).max(1);
        while inner.cache.len() >= allowed && self.evict_one(&mut inner) {}
        inner.cache.insert(seg, CacheEntry { data: Arc::clone(&data), referenced: true });
        inner.ring.push_back(seg);
        self.bump_peak(inner.cache.len());
        data
    }

    /// Writer-side fault: hands the segment's data to the store for
    /// mutation, *removing* any cached copy (the cache must never serve
    /// a segment the writer is about to change).
    pub(crate) fn take_for_write(&self, seg: usize) -> io::Result<Arc<SegmentData>> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(e) = inner.cache.remove(&seg) {
            return Ok(e.data);
        }
        self.faulted.fetch_add(1, Ordering::Relaxed);
        inner.read_region(&self.geom, seg).map(Arc::new)
    }

    /// Cache-bypassing read for snapshot materialisation
    /// ([`crate::store::StoreCore`]'s `Clone`): serves a cached copy if
    /// present but never inserts, so materialising a full snapshot does
    /// not churn the query-path working set.
    pub(crate) fn read_detached(&self, seg: usize) -> Arc<SegmentData> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(e) = inner.cache.get(&seg) {
            return Arc::clone(&e.data);
        }
        inner
            .read_region(&self.geom, seg)
            .map(Arc::new)
            .unwrap_or_else(|e| panic!("persist: materialising segment {seg} failed: {e}"))
    }

    /// Write-back + eviction of an in-core segment: persists the region
    /// if it is dirty (or was never written) and drops any stale cache
    /// entry. The caller swaps the store's `Arc` for the tombstone.
    pub(crate) fn spill(&self, seg: usize, data: &SegmentData) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.cache.remove(&seg);
        if inner.dirty[seg] || !inner.on_disk[seg] {
            inner.write_region(&self.geom, seg, data)?;
            inner.dirty[seg] = false;
            if !inner.on_disk[seg] {
                inner.on_disk[seg] = true;
                self.regions_on_disk.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.spilled.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Counter snapshot (plus derived byte sizes).
    pub(crate) fn stats(&self) -> PersistStats {
        let cache_len = self.inner.lock().unwrap().cache.len() as u64;
        let in_core = self.in_core.load(Ordering::Relaxed) as u64;
        PersistStats {
            segments_spilled: self.spilled.load(Ordering::Relaxed),
            segments_faulted: self.faulted.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes_on_disk: HEADER_LEN
                + self.regions_on_disk.load(Ordering::Relaxed) * self.geom.region_len as u64,
            resident_segments: in_core + cache_len,
            peak_resident_segments: self
                .peak_resident
                .load(Ordering::Relaxed)
                .max(in_core + cache_len),
        }
    }
}

// ----- snapshot journal ---------------------------------------------------

/// FNV-1a 64-bit (the same fold the bench fingerprints use): cheap,
/// dependency-free, and plenty for torn-tail detection.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Appends one checksummed snapshot record
/// (`magic | len u64 | payload | fnv64`) and fsyncs.
pub(crate) fn append_journal_record(path: &Path, payload: &[u8]) -> io::Result<()> {
    let mut f = OpenOptions::new().create(true).append(true).open(path)?;
    let mut rec = Vec::with_capacity(payload.len() + 20);
    rec.extend_from_slice(RECORD_MAGIC);
    rec.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    rec.extend_from_slice(payload);
    rec.extend_from_slice(&fnv64(payload).to_le_bytes());
    f.write_all(&rec)?;
    f.sync_all()
}

/// Scans the journal and returns the payload of the last record whose
/// frame and checksum validate. A torn tail (crash mid-append) or
/// trailing garbage is detected and ignored — recovery resumes from the
/// last durable record. `Ok(None)` when the journal does not exist or
/// holds no valid record.
pub(crate) fn read_last_journal_record(path: &Path) -> io::Result<Option<Vec<u8>>> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut pos = 0usize;
    let mut last = None;
    while bytes.len() - pos >= 20 {
        if &bytes[pos..pos + 4] != RECORD_MAGIC {
            break;
        }
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
        let Some(end) = pos.checked_add(12).and_then(|p| p.checked_add(len)) else { break };
        if end + 8 > bytes.len() {
            break; // torn tail: record longer than the file
        }
        let payload = &bytes[pos + 12..end];
        let sum = u64::from_le_bytes(bytes[end..end + 8].try_into().unwrap());
        if fnv64(payload) != sum {
            break; // corrupt record: everything after is untrusted
        }
        last = Some(payload.to_vec());
        pos = end + 8;
    }
    Ok(last)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hidden-db-persist-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn parse_accepts_the_cli_form() {
        let cfg = PersistConfig::parse("/tmp/x,resident:64").unwrap();
        assert_eq!(cfg.dir, PathBuf::from("/tmp/x"));
        assert_eq!(cfg.resident_segments, 64);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "/tmp/x",
            "/tmp/x,resident:",
            "/tmp/x,resident:abc",
            "/tmp/x,budget:3",
            ",resident:4",
            "/tmp/x,resident:0",
        ] {
            assert!(PersistConfig::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn region_roundtrip_preserves_partial_segments() {
        let geom = Geometry::new(2, 1);
        let mut data = SegmentData::empty(2, 1);
        for i in 0..5u64 {
            data.push_row(
                &[crate::value::ValueId(i as u32), crate::value::ValueId((i * 7) as u32)],
                &[i as f64 * 0.5],
                i + 100,
                i * 1000,
            );
        }
        data.alive[2] = false;
        let mut buf = Vec::new();
        geom.encode(&data, &mut buf);
        assert_eq!(buf.len(), geom.region_len);
        let back = geom.decode(&buf);
        assert_eq!(back.keys, data.keys);
        assert_eq!(back.scores, data.scores);
        assert_eq!(back.alive, data.alive);
        assert_eq!(back.columns, data.columns);
        assert_eq!(back.measures, data.measures);
        assert!(!back.evicted);
    }

    #[test]
    fn journal_keeps_last_valid_record_and_discards_torn_tail() {
        let dir = temp_dir("journal");
        let path = dir.join(JOURNAL_FILE);
        assert!(read_last_journal_record(&path).unwrap().is_none(), "missing journal is empty");
        append_journal_record(&path, b"first").unwrap();
        append_journal_record(&path, b"second").unwrap();
        assert_eq!(read_last_journal_record(&path).unwrap().unwrap(), b"second");
        // Crash mid-append: a torn third record (header + partial payload,
        // no checksum) must be discarded.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(RECORD_MAGIC).unwrap();
            f.write_all(&(1000u64).to_le_bytes()).unwrap();
            f.write_all(b"partial payload only").unwrap();
        }
        assert_eq!(read_last_journal_record(&path).unwrap().unwrap(), b"second");
        // A corrupted checksum invalidates that record (and anything after).
        let mut bytes = fs::read(&path).unwrap();
        let first_len = 20 + 5;
        bytes[first_len + 12] ^= 0xFF; // flip a byte inside "second"'s payload
        fs::write(&path, &bytes).unwrap();
        assert_eq!(read_last_journal_record(&path).unwrap().unwrap(), b"first");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pager_spills_faults_and_bounds_its_cache() {
        let dir = temp_dir("pager");
        let pager = Pager::open(&dir, 1, 0, 2).unwrap();
        pager.ensure_segments(4);
        pager.set_in_core(1); // pretend the writer holds one segment
        let mut segs = Vec::new();
        for s in 0..4usize {
            let mut d = SegmentData::empty(1, 0);
            for i in 0..3u64 {
                d.push_row(&[crate::value::ValueId(s as u32)], &[], s as u64 * 10 + i, i);
            }
            pager.spill(s, &d).unwrap();
            segs.push(d);
        }
        for (s, want) in segs.iter().enumerate() {
            let got = pager.fault(s);
            assert_eq!(got.keys, want.keys, "segment {s} faults back bit-identically");
        }
        let stats = pager.stats();
        assert_eq!(stats.segments_spilled, 4);
        assert_eq!(stats.segments_faulted, 4);
        assert!(stats.evictions >= 3, "cache slack is 1, so 3 of 4 faults evict");
        assert!(stats.resident_segments <= 2, "in-core 1 + cache <= budget 2");
        assert!(stats.peak_resident_segments <= 2);
        assert!(stats.bytes_on_disk > HEADER_LEN);
        // A cache hit does not count as a new fault.
        let _ = pager.fault(3);
        assert_eq!(pager.stats().segments_faulted, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dirty_spill_overwrites_the_region() {
        let dir = temp_dir("dirty");
        let pager = Pager::open(&dir, 1, 0, 2).unwrap();
        pager.ensure_segments(1);
        let mut d = SegmentData::empty(1, 0);
        d.push_row(&[crate::value::ValueId(7)], &[], 42, 9);
        pager.spill(0, &d).unwrap();
        // Take for write, mutate, mark dirty, spill again.
        let taken = pager.take_for_write(0).unwrap();
        let mut mutated = (*taken).clone();
        mutated.keys[0] = 43;
        pager.mark_dirty(0);
        pager.spill(0, &mutated).unwrap();
        assert_eq!(pager.fault(0).keys, vec![43], "rewrite visible on next fault");
        let _ = fs::remove_dir_all(&dir);
    }
}
