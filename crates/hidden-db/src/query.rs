//! Conjunctive point-predicate queries — the only query shape the
//! restrictive interface supports (§2.1):
//!
//! ```sql
//! SELECT * FROM D WHERE A_{i1} = u_{i1} AND … AND A_{is} = u_{is}
//! ```

use crate::schema::Schema;
use crate::value::{AttrId, ValueId};

/// One `A_i = u` point predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Predicate {
    /// The constrained attribute.
    pub attr: AttrId,
    /// The required value.
    pub value: ValueId,
}

impl Predicate {
    /// Creates a predicate `attr = value`.
    pub fn new(attr: AttrId, value: ValueId) -> Self {
        Self { attr, value }
    }
}

/// A conjunctive query: a set of point predicates over distinct attributes,
/// kept sorted by attribute id so that structurally equal queries compare
/// and hash equal regardless of construction order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ConjunctiveQuery {
    predicates: Vec<Predicate>,
}

impl ConjunctiveQuery {
    /// The query with no predicates: `SELECT * FROM D` (the tree root).
    pub fn select_all() -> Self {
        Self { predicates: Vec::new() }
    }

    /// Builds a query from predicates. Later predicates on an attribute
    /// already constrained replace the earlier one (the interface form has
    /// one field per attribute, so duplicates cannot be expressed).
    pub fn from_predicates(preds: impl IntoIterator<Item = Predicate>) -> Self {
        let mut q = Self::select_all();
        for p in preds {
            q.set(p.attr, p.value);
        }
        q
    }

    /// Sets (or replaces) the predicate on `attr`.
    pub fn set(&mut self, attr: AttrId, value: ValueId) {
        match self.predicates.binary_search_by_key(&attr, |p| p.attr) {
            Ok(i) => self.predicates[i].value = value,
            Err(i) => self.predicates.insert(i, Predicate::new(attr, value)),
        }
    }

    /// Returns a copy of this query with the predicate on `attr` set.
    #[must_use]
    pub fn with(&self, attr: AttrId, value: ValueId) -> Self {
        let mut q = self.clone();
        q.set(attr, value);
        q
    }

    /// Returns a copy with the predicate on `attr` removed (no-op if absent).
    #[must_use]
    pub fn without(&self, attr: AttrId) -> Self {
        let mut q = self.clone();
        if let Ok(i) = q.predicates.binary_search_by_key(&attr, |p| p.attr) {
            q.predicates.remove(i);
        }
        q
    }

    /// The predicates, sorted by attribute id.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Number of predicates (`s` in the paper).
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// Whether this is the root `SELECT *` query.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// The value this query requires for `attr`, if constrained.
    pub fn value_for(&self, attr: AttrId) -> Option<ValueId> {
        self.predicates
            .binary_search_by_key(&attr, |p| p.attr)
            .ok()
            .map(|i| self.predicates[i].value)
    }

    /// Whether `values` (a full tuple row in schema order) satisfies every
    /// predicate.
    #[inline]
    pub fn matches_values(&self, values: &[ValueId]) -> bool {
        self.predicates.iter().all(|p| values[p.attr.index()] == p.value)
    }

    /// Validates the query against `schema`: every attribute exists and
    /// every value is in its domain.
    pub fn validate(&self, schema: &Schema) -> Result<(), crate::errors::DbError> {
        for p in &self.predicates {
            if !schema.value_in_domain(p.attr, p.value) {
                return Err(crate::errors::DbError::InvalidQuery(format!(
                    "predicate {}={} outside schema",
                    p.attr, p.value
                )));
            }
        }
        Ok(())
    }

    /// Whether `other`'s predicate set is a superset of this query's —
    /// i.e. `other` is *at least as restrictive* and `Sel(other) ⊆ Sel(self)`.
    pub fn subsumes(&self, other: &Self) -> bool {
        self.predicates.iter().all(|p| other.value_for(p.attr) == Some(p.value))
    }
}

impl std::fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.predicates.is_empty() {
            return write!(f, "SELECT * FROM D");
        }
        write!(f, "SELECT * FROM D WHERE ")?;
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "{}={}", p.attr, p.value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(pairs: &[(u16, u32)]) -> ConjunctiveQuery {
        ConjunctiveQuery::from_predicates(
            pairs.iter().map(|&(a, v)| Predicate::new(AttrId(a), ValueId(v))),
        )
    }

    #[test]
    fn construction_order_is_irrelevant() {
        let a = q(&[(2, 1), (0, 3)]);
        let b = q(&[(0, 3), (2, 1)]);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn set_replaces_existing_predicate() {
        let mut a = q(&[(1, 0)]);
        a.set(AttrId(1), ValueId(2));
        assert_eq!(a.len(), 1);
        assert_eq!(a.value_for(AttrId(1)), Some(ValueId(2)));
    }

    #[test]
    fn with_and_without() {
        let a = q(&[(0, 1)]);
        let b = a.with(AttrId(1), ValueId(2));
        assert_eq!(b.len(), 2);
        assert_eq!(a.len(), 1, "with() must not mutate the receiver");
        let c = b.without(AttrId(0));
        assert_eq!(c.value_for(AttrId(0)), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn matching() {
        let a = q(&[(0, 1), (2, 0)]);
        assert!(a.matches_values(&[ValueId(1), ValueId(9), ValueId(0)]));
        assert!(!a.matches_values(&[ValueId(1), ValueId(9), ValueId(1)]));
        assert!(ConjunctiveQuery::select_all().matches_values(&[ValueId(5)]));
    }

    #[test]
    fn validation_against_schema() {
        let schema = Schema::with_domain_sizes(&[2, 3], &[]).unwrap();
        assert!(q(&[(0, 1), (1, 2)]).validate(&schema).is_ok());
        assert!(q(&[(0, 2)]).validate(&schema).is_err());
        assert!(q(&[(5, 0)]).validate(&schema).is_err());
    }

    #[test]
    fn subsumption() {
        let broad = q(&[(0, 1)]);
        let narrow = q(&[(0, 1), (1, 2)]);
        assert!(broad.subsumes(&narrow));
        assert!(!narrow.subsumes(&broad));
        assert!(ConjunctiveQuery::select_all().subsumes(&broad));
        let conflicting = q(&[(0, 0), (1, 2)]);
        assert!(!broad.subsumes(&conflicting));
    }

    #[test]
    fn display() {
        assert_eq!(ConjunctiveQuery::select_all().to_string(), "SELECT * FROM D");
        assert_eq!(q(&[(0, 1)]).to_string(), "SELECT * FROM D WHERE A0=u1");
    }
}
