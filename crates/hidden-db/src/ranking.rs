//! The "proprietary scoring function" (§2.1) that orders overflowing query
//! results. Real sites never disclose it; estimators must work no matter
//! what it is, so we provide several deterministic simulations and test the
//! estimators under each.

use crate::value::{MeasureId, TupleKey};

/// How the hidden database ranks matching tuples when a query overflows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScoringPolicy {
    /// Default: a deterministic pseudo-random score derived from the tuple
    /// key and a salt. Models a relevance score uncorrelated with any
    /// attribute.
    HashedRandom {
        /// Salt mixed into the hash so different sites rank differently.
        salt: u64,
    },
    /// Rank by a measure, descending (e.g. "highest price first").
    ByMeasureDesc(MeasureId),
    /// Rank by a measure, ascending (e.g. "lowest price first").
    ByMeasureAsc(MeasureId),
    /// Newest first: rank by tuple key, descending. Models "recently listed"
    /// default sort orders.
    NewestFirst,
}

impl Default for ScoringPolicy {
    fn default() -> Self {
        Self::HashedRandom { salt: 0x5EED_CAFE_F00D_D1CE }
    }
}

/// SplitMix64: a tiny, high-quality mixing function. Deterministic across
/// runs and platforms, which keeps experiments reproducible.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ScoringPolicy {
    /// The hidden score of a tuple: larger is better (returned earlier).
    ///
    /// Measure-based scores are mapped to a monotone `u64` so all policies
    /// can share one comparison path; ties are broken by tuple key so the
    /// total order is deterministic.
    #[inline]
    pub(crate) fn score(&self, key: TupleKey, measures: &[f64]) -> u64 {
        match *self {
            Self::HashedRandom { salt } => mix64(key.0 ^ salt),
            Self::ByMeasureDesc(m) => f64_to_ordered(measures[m.index()]),
            Self::ByMeasureAsc(m) => !f64_to_ordered(measures[m.index()]),
            Self::NewestFirst => key.0,
        }
    }
}

/// Maps an `f64` to a `u64` preserving order (for non-NaN inputs). NaN maps
/// below every real value so corrupt measures sink to the bottom rather
/// than panicking inside a sort.
#[inline]
fn f64_to_ordered(x: f64) -> u64 {
    if x.is_nan() {
        return 0;
    }
    let bits = x.to_bits();
    // Flip sign bit for positives; flip everything for negatives.
    if bits >> 63 == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_ordering_preserved() {
        let vals = [-1e9, -1.5, -0.0, 0.0, 0.25, 3.0, 1e18];
        for w in vals.windows(2) {
            assert!(f64_to_ordered(w[0]) <= f64_to_ordered(w[1]), "{} vs {}", w[0], w[1]);
        }
        assert!(f64_to_ordered(f64::NAN) < f64_to_ordered(-1e300));
    }

    #[test]
    fn hashed_random_is_deterministic_and_salt_sensitive() {
        let a = ScoringPolicy::HashedRandom { salt: 1 };
        let b = ScoringPolicy::HashedRandom { salt: 2 };
        let k = TupleKey(77);
        assert_eq!(a.score(k, &[]), a.score(k, &[]));
        assert_ne!(a.score(k, &[]), b.score(k, &[]));
    }

    #[test]
    fn measure_policies_rank_as_documented() {
        let hi = ScoringPolicy::ByMeasureDesc(MeasureId(0));
        let lo = ScoringPolicy::ByMeasureAsc(MeasureId(0));
        let cheap = [10.0];
        let dear = [99.0];
        assert!(hi.score(TupleKey(1), &dear) > hi.score(TupleKey(2), &cheap));
        assert!(lo.score(TupleKey(1), &cheap) > lo.score(TupleKey(2), &dear));
    }

    #[test]
    fn newest_first_ranks_by_key() {
        let p = ScoringPolicy::NewestFirst;
        assert!(p.score(TupleKey(10), &[]) > p.score(TupleKey(3), &[]));
    }

    #[test]
    fn mix64_spreads_consecutive_inputs() {
        // Not a statistical test — just a regression guard that consecutive
        // keys do not produce consecutive scores.
        let d1 = mix64(1) ^ mix64(2);
        let d2 = mix64(2) ^ mix64(3);
        assert_ne!(d1, d2);
        assert!(mix64(1) != mix64(2));
    }
}
