//! Relation schema: categorical attributes with finite domains, plus
//! non-searchable numeric measures.

use crate::errors::SchemaError;
use crate::value::{AttrId, MeasureId, ValueId};

/// Definition of one categorical attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeDef {
    name: String,
    domain_size: u32,
}

impl AttributeDef {
    /// Creates an attribute definition. Domain values are the integers
    /// `0..domain_size`, wrapped as [`ValueId`]s.
    pub fn new(name: impl Into<String>, domain_size: u32) -> Self {
        Self { name: name.into(), domain_size }
    }

    /// Attribute name (for display only; estimators work with ids).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `|U_i|`: the number of values in this attribute's domain.
    pub fn domain_size(&self) -> u32 {
        self.domain_size
    }
}

/// Definition of one measure (numeric, non-searchable) column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasureDef {
    name: String,
}

impl MeasureDef {
    /// Creates a measure definition.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }

    /// Measure name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Immutable schema shared by a database and every query/tree built over it.
///
/// The paper assumes categorical attributes ("numerical attributes can be
/// discretized accordingly", §2.1); measures exist so SUM/AVG aggregates
/// have something numeric to aggregate, exactly like `Price` on Amazon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attributes: Vec<AttributeDef>,
    measures: Vec<MeasureDef>,
}

impl Schema {
    /// Builds a schema, validating that every attribute has a non-empty
    /// domain and that the attribute count fits the id space.
    pub fn new(
        attributes: Vec<AttributeDef>,
        measures: Vec<MeasureDef>,
    ) -> Result<Self, SchemaError> {
        if attributes.is_empty() {
            return Err(SchemaError::NoAttributes);
        }
        if attributes.len() > u16::MAX as usize {
            return Err(SchemaError::TooManyAttributes(attributes.len()));
        }
        if measures.len() > u16::MAX as usize {
            return Err(SchemaError::TooManyMeasures(measures.len()));
        }
        for (i, attr) in attributes.iter().enumerate() {
            if attr.domain_size == 0 {
                return Err(SchemaError::EmptyDomain { attr: AttrId(i as u16) });
            }
        }
        Ok(Self { attributes, measures })
    }

    /// Convenience constructor: `m` attributes named `A0..`, with the given
    /// domain sizes, and measures named per `measure_names`.
    pub fn with_domain_sizes(
        domain_sizes: &[u32],
        measure_names: &[&str],
    ) -> Result<Self, SchemaError> {
        let attributes = domain_sizes
            .iter()
            .enumerate()
            .map(|(i, &d)| AttributeDef::new(format!("A{i}"), d))
            .collect();
        let measures = measure_names.iter().map(|n| MeasureDef::new(*n)).collect();
        Self::new(attributes, measures)
    }

    /// `m`: the number of categorical attributes.
    pub fn attr_count(&self) -> usize {
        self.attributes.len()
    }

    /// Number of measure columns.
    pub fn measure_count(&self) -> usize {
        self.measures.len()
    }

    /// Definition of attribute `attr`. Panics if out of range.
    pub fn attribute(&self, attr: AttrId) -> &AttributeDef {
        &self.attributes[attr.index()]
    }

    /// `|U_i|` for attribute `attr`. Panics if out of range.
    pub fn domain_size(&self, attr: AttrId) -> u32 {
        self.attributes[attr.index()].domain_size
    }

    /// Definition of measure `m`. Panics if out of range.
    pub fn measure(&self, m: MeasureId) -> &MeasureDef {
        &self.measures[m.index()]
    }

    /// Iterator over all attribute ids in schema order.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.attributes.len()).map(|i| AttrId(i as u16))
    }

    /// Whether `value` is a legal value for `attr`.
    pub fn value_in_domain(&self, attr: AttrId, value: ValueId) -> bool {
        attr.index() < self.attributes.len() && value.0 < self.domain_size(attr)
    }

    /// `log2(∏ |U_i|)`: the log of the number of leaves of the full query
    /// tree. The product itself routinely exceeds `u128`, so callers work in
    /// log space.
    pub fn log2_leaf_count(&self) -> f64 {
        self.attributes.iter().map(|a| f64::from(a.domain_size).log2()).sum()
    }

    /// Largest attribute domain, `max_i |U_i|` (used by Theorem 3.2 bounds).
    pub fn max_domain_size(&self) -> u32 {
        self.attributes.iter().map(|a| a.domain_size).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_valid_schema() {
        let s = Schema::with_domain_sizes(&[2, 3, 4], &["price"]).unwrap();
        assert_eq!(s.attr_count(), 3);
        assert_eq!(s.measure_count(), 1);
        assert_eq!(s.domain_size(AttrId(1)), 3);
        assert_eq!(s.attribute(AttrId(0)).name(), "A0");
        assert_eq!(s.measure(MeasureId(0)).name(), "price");
    }

    #[test]
    fn rejects_empty_attribute_list() {
        assert!(matches!(Schema::with_domain_sizes(&[], &[]), Err(SchemaError::NoAttributes)));
    }

    #[test]
    fn rejects_empty_domain() {
        assert!(matches!(
            Schema::with_domain_sizes(&[2, 0], &[]),
            Err(SchemaError::EmptyDomain { attr: AttrId(1) })
        ));
    }

    #[test]
    fn value_domain_checks() {
        let s = Schema::with_domain_sizes(&[2, 3], &[]).unwrap();
        assert!(s.value_in_domain(AttrId(0), ValueId(1)));
        assert!(!s.value_in_domain(AttrId(0), ValueId(2)));
        assert!(s.value_in_domain(AttrId(1), ValueId(2)));
        assert!(!s.value_in_domain(AttrId(2), ValueId(0)));
    }

    #[test]
    fn leaf_count_log_is_sum_of_logs() {
        let s = Schema::with_domain_sizes(&[2, 4, 8], &[]).unwrap();
        let expected = 1.0 + 2.0 + 3.0;
        assert!((s.log2_leaf_count() - expected).abs() < 1e-12);
    }

    #[test]
    fn max_domain() {
        let s = Schema::with_domain_sizes(&[2, 9, 4], &[]).unwrap();
        assert_eq!(s.max_domain_size(), 9);
    }
}
