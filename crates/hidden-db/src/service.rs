//! Shared concurrent database service: epoch-published snapshots,
//! a single-writer apply queue, and per-session handles.
//!
//! [`DbService`] wraps one [`HiddenDatabase`] (the *writer copy*) and
//! publishes immutable [`DbSnapshot`]s of it. Any number of
//! [`ServiceSession`]s — each a [`SearchBackend`] with its own budget
//! and counters — read a pinned snapshot lock-free; mutations funnel
//! through a queue drained under the single writer lock, and each drain
//! publishes exactly one new epoch.
//!
//! The contract that makes this safe to hand to estimators: a session
//! pinned to epoch `E` produces answers **bit-identical** to a private
//! [`HiddenDatabase`] frozen at `E`, at any thread count and any
//! interleaving with concurrent writers. Snapshots share segment and
//! posting-list storage with the writer via `Arc` copy-on-write, so
//! publication is O(segments + lists) pointer copies, not a data copy.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};

use crate::budget::QueryBudget;
use crate::database::{evaluate_query, EvalConfig, HiddenDatabase, MaintenanceBudget};
use crate::errors::{DbError, IssueError};
use crate::index::InvertedIndex;
use crate::interface::QueryOutcome;
use crate::memo::{ConcurrentMemo, QueryMemo};
use crate::query::ConjunctiveQuery;
use crate::schema::Schema;
use crate::session::SearchBackend;
use crate::stats::{EvalStats, InterfaceStats, SharedMemoStats};
use crate::store::StoreCore;
use crate::updates::{UpdateBatch, UpdateSummary};

/// When the writer queue triggers maintenance on its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AutoMaintain {
    /// Never — maintenance only runs when [`DbService::maintain`] (or a
    /// bench harness) asks for it.
    #[default]
    Off,
    /// After draining a write batch, run a full [`HiddenDatabase::compact`]
    /// if any segment's pressure (stale bound ops + dead slots) reached
    /// `threshold`.
    Pressure {
        /// Per-segment pressure at which compaction fires.
        threshold: u32,
    },
}

/// An immutable, self-contained copy of the database at one epoch.
///
/// Shares tuple and posting storage with the writer via `Arc` — cloning
/// the writer's [`StoreCore`]/[`InvertedIndex`] bumps refcounts; the
/// writer un-shares lazily, segment by segment, as it mutates. All
/// posting-list sorts are paid before publication
/// ([`HiddenDatabase::snapshot_parts`] calls `ensure_all_sorted`), so
/// evaluation here needs only `&self`.
pub struct DbSnapshot {
    schema: Schema,
    store: StoreCore,
    index: InvertedIndex,
    k: usize,
    epoch: u64,
    eval_config: EvalConfig,
}

impl DbSnapshot {
    fn capture(db: &mut HiddenDatabase) -> Self {
        let (schema, store, index, k, epoch, eval_config) = db.snapshot_parts();
        Self { schema, store, index, k, epoch, eval_config }
    }

    /// The epoch (writer data version) this snapshot was published at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The interface's page size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// `|D|` at this epoch: number of alive tuples.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the snapshot holds no alive tuples.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Answers a search query against this frozen epoch. Unbudgeted and
    /// memo-free — sessions layer budget charging and the shared memo on
    /// top. Outcomes are bit-identical to a private [`HiddenDatabase`]
    /// frozen at the same epoch (eval-path outcome invariance: the
    /// top-`k` page is a pure function of the alive tuple set).
    ///
    /// # Panics
    /// If the query references attributes/values outside the schema —
    /// a caller bug, as in [`HiddenDatabase::answer`].
    pub fn answer(&self, query: &ConjunctiveQuery, eval_stats: &mut EvalStats) -> QueryOutcome {
        query.validate(&self.schema).expect("search query must be valid for the schema");
        let mut eval =
            evaluate_query(query, &self.store, &self.index, self.k, self.eval_config, eval_stats);
        eval.outcome(&self.store)
    }
}

/// A queued mutation plus the channel its result travels back on.
struct QueuedJob {
    batch: UpdateBatch,
    done: mpsc::Sender<Result<UpdateSummary, DbError>>,
}

/// Service-level counters (all monotonic, `Relaxed` — they are
/// diagnostics, not synchronization).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Update batches applied through the writer queue.
    pub batches_applied: u64,
    /// Snapshot publications (one per non-empty drain or maintenance).
    pub epochs_published: u64,
    /// Compactions fired by the [`AutoMaintain::Pressure`] trigger.
    pub auto_maintain_runs: u64,
}

struct ServiceInner {
    /// The writer copy. Only the queue drainer holds this lock for
    /// writing; `maintain` takes it directly (it is a writer too).
    writer: Mutex<HiddenDatabase>,
    /// Pending mutations. Held only for push/pop — never while applying.
    queue: Mutex<VecDeque<QueuedJob>>,
    /// The latest published snapshot. Readers clone the `Arc` and drop
    /// the lock immediately; sessions never touch this again after
    /// pinning.
    published: RwLock<Arc<DbSnapshot>>,
    /// Shared across every session; entries keyed by `(epoch, query)`
    /// are immutable, so no invalidation is ever needed.
    memo: ConcurrentMemo,
    auto: AutoMaintain,
    batches_applied: AtomicU64,
    epochs_published: AtomicU64,
    auto_maintain_runs: AtomicU64,
}

impl ServiceInner {
    /// Drains every queued job under the writer lock, then publishes at
    /// most one new snapshot. Deadlock-free: the queue lock and writer
    /// lock are never held together, and results are sent *before*
    /// publication so a caller observing its result may still see the
    /// pre-drain snapshot briefly (epochs are monotonic; `apply` itself
    /// re-reads after the drain returns, by which point the publish —
    /// ours or a concurrent drainer's covering our job — has happened).
    fn drain_writer(&self) {
        let mut db = self.writer.lock().expect("writer lock poisoned");
        let mut applied = 0u64;
        loop {
            let job = self.queue.lock().expect("queue lock poisoned").pop_front();
            let Some(job) = job else { break };
            let result = db.apply(job.batch);
            applied += 1;
            // A dropped receiver just means the caller gave up waiting.
            let _ = job.done.send(result);
        }
        if applied == 0 {
            return;
        }
        self.batches_applied.fetch_add(applied, Ordering::Relaxed);
        if let AutoMaintain::Pressure { threshold } = self.auto {
            if db.max_segment_pressure() >= threshold {
                db.compact();
                self.auto_maintain_runs.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.publish(&mut db);
    }

    fn publish(&self, db: &mut HiddenDatabase) {
        let snap = Arc::new(DbSnapshot::capture(db));
        *self.published.write().expect("published lock poisoned") = snap;
        self.epochs_published.fetch_add(1, Ordering::Relaxed);
    }
}

/// Handle to the shared service. Cheap to clone; all clones share the
/// writer, the published snapshot, and the concurrent memo.
#[derive(Clone)]
pub struct DbService {
    inner: Arc<ServiceInner>,
}

impl DbService {
    /// Wraps a database and publishes its current state as epoch 0's
    /// snapshot (or whatever `db.version()` currently is).
    pub fn new(db: HiddenDatabase) -> Self {
        Self::with_auto_maintain(db, AutoMaintain::Off)
    }

    /// [`DbService::new`] with an automatic-maintenance policy for the
    /// writer queue.
    pub fn with_auto_maintain(mut db: HiddenDatabase, auto: AutoMaintain) -> Self {
        let first = Arc::new(DbSnapshot::capture(&mut db));
        Self {
            inner: Arc::new(ServiceInner {
                writer: Mutex::new(db),
                queue: Mutex::new(VecDeque::new()),
                published: RwLock::new(first),
                memo: ConcurrentMemo::new(),
                auto,
                batches_applied: AtomicU64::new(0),
                epochs_published: AtomicU64::new(0),
                auto_maintain_runs: AtomicU64::new(0),
            }),
        }
    }

    /// The latest published snapshot.
    pub fn snapshot(&self) -> Arc<DbSnapshot> {
        self.inner.published.read().expect("published lock poisoned").clone()
    }

    /// The latest published epoch.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// Opens a session pinned to the latest snapshot, with a budget of
    /// `g` queries.
    pub fn session(&self, g: u64) -> ServiceSession {
        self.session_at(self.snapshot(), g)
    }

    /// Opens a session pinned to an explicit snapshot — e.g. one
    /// captured before a round of churn, so a long-running estimator
    /// keeps reading the epoch it started on.
    pub fn session_at(&self, snap: Arc<DbSnapshot>, g: u64) -> ServiceSession {
        ServiceSession {
            snap,
            inner: Arc::clone(&self.inner),
            budget: QueryBudget::new(g),
            stats: InterfaceStats::default(),
            eval_stats: EvalStats::default(),
        }
    }

    /// Applies a batch through the single-writer queue and blocks until
    /// it has been applied (by this thread or by whichever thread held
    /// the writer lock when it drained the queue). On return the
    /// published snapshot includes this batch.
    pub fn apply(&self, batch: UpdateBatch) -> Result<UpdateSummary, DbError> {
        let (tx, rx) = mpsc::channel();
        self.inner
            .queue
            .lock()
            .expect("queue lock poisoned")
            .push_back(QueuedJob { batch, done: tx });
        self.inner.drain_writer();
        // The job is guaranteed processed: either our drain popped it,
        // or a concurrent drainer holding the writer lock did (and its
        // publish covered it before our `drain_writer` call could
        // acquire the writer lock and observe an empty queue).
        rx.recv().expect("writer queue dropped a job")
    }

    /// Runs maintenance on the writer copy and republishes. Maintenance
    /// is outcome-invariant (bounds tighten, tuples never move), so the
    /// epoch does not change — sessions pinned before and after see
    /// bit-identical answers.
    pub fn maintain(&self, budget: MaintenanceBudget) -> crate::database::MaintenanceReport {
        let mut db = self.inner.writer.lock().expect("writer lock poisoned");
        let report = db.maintain(budget);
        self.inner.publish(&mut db);
        report
    }

    /// Reopens a service from the persistence tier's journal: the last
    /// durable checkpoint becomes the writer copy (with the tier
    /// re-attached, so the pool stays out-of-core) and is published as
    /// the first snapshot. The warm-restart path for a long-running
    /// experiment host.
    pub fn open_persistent(
        cfg: &crate::persist::PersistConfig,
        auto: AutoMaintain,
    ) -> std::io::Result<Self> {
        let db = HiddenDatabase::open_persistent(cfg)?;
        Ok(Self::with_auto_maintain(db, auto))
    }

    /// Checkpoints the writer's current (fully applied) state to the
    /// persistence journal. Takes the writer lock, so the record is a
    /// consistent cut: every batch whose `apply` returned before this
    /// call is durable, and no torn batch ever is.
    pub fn checkpoint(&self) -> std::io::Result<()> {
        self.inner.writer.lock().expect("writer lock poisoned").checkpoint()
    }

    /// Shared-memo counters (hits/misses/admissions across all sessions).
    pub fn memo_stats(&self) -> SharedMemoStats {
        self.inner.memo.stats()
    }

    /// Entries currently held by the shared memo, across all shards.
    pub fn memo_len(&self) -> usize {
        self.inner.memo.len()
    }

    /// Service-level counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            batches_applied: self.inner.batches_applied.load(Ordering::Relaxed),
            epochs_published: self.inner.epochs_published.load(Ordering::Relaxed),
            auto_maintain_runs: self.inner.auto_maintain_runs.load(Ordering::Relaxed),
        }
    }
}

/// A per-round, per-client session over a pinned [`DbSnapshot`].
///
/// Owns its budget and counters (no cross-charging between concurrent
/// sessions) and shares only the immutable snapshot and the epoch-keyed
/// memo — so it is `Send` and can be moved into a worker thread.
pub struct ServiceSession {
    snap: Arc<DbSnapshot>,
    inner: Arc<ServiceInner>,
    budget: QueryBudget,
    stats: InterfaceStats,
    eval_stats: EvalStats,
}

impl ServiceSession {
    /// The epoch this session is pinned to.
    pub fn epoch(&self) -> u64 {
        self.snap.epoch()
    }

    /// The pinned snapshot.
    pub fn snapshot(&self) -> &Arc<DbSnapshot> {
        &self.snap
    }

    /// The budget state.
    pub fn budget(&self) -> QueryBudget {
        self.budget
    }

    /// This session's interface counters (answered/classes/cache hits).
    pub fn stats(&self) -> InterfaceStats {
        self.stats
    }

    /// This session's evaluation counters. Memo hits (shared across
    /// sessions) skip evaluation, so these depend on what *other*
    /// sessions have already cached — unlike outcomes, which never do.
    pub fn eval_stats(&self) -> EvalStats {
        self.eval_stats
    }

    fn count_outcome(&mut self, out: &QueryOutcome) {
        match out {
            QueryOutcome::Underflow => self.stats.underflows += 1,
            QueryOutcome::Valid(_) => self.stats.valids += 1,
            QueryOutcome::Overflow(_) => self.stats.overflows += 1,
        }
    }
}

impl SearchBackend for ServiceSession {
    fn schema(&self) -> &Schema {
        self.snap.schema()
    }

    fn k(&self) -> usize {
        self.snap.k()
    }

    fn issue(&mut self, query: &ConjunctiveQuery) -> Result<QueryOutcome, IssueError> {
        // Charge first, exactly like `SearchSession::issue` — budget
        // accounting must be bit-identical to the private path.
        self.budget.charge()?;
        self.stats.answered += 1;
        let epoch = self.snap.epoch();
        let hash = QueryMemo::hash_of(query);
        if let Some(out) = self.inner.memo.get(epoch, hash, query) {
            self.stats.cache_hits += 1;
            self.count_outcome(&out);
            return Ok(out);
        }
        let out = self.snap.answer(query, &mut self.eval_stats);
        self.inner.memo.insert(epoch, hash, query, out.clone());
        self.count_outcome(&out);
        Ok(out)
    }

    fn remaining(&self) -> u64 {
        self.budget.remaining()
    }

    fn spent(&self) -> u64 {
        self.budget.spent()
    }
}

impl AutoMaintain {
    /// Parses the `--auto-maintain` bench flag: `off` or `pressure:<t>`.
    pub fn parse(text: &str) -> Result<Self, String> {
        if text == "off" {
            return Ok(AutoMaintain::Off);
        }
        if let Some(t) = text.strip_prefix("pressure:") {
            let threshold: u32 = t
                .parse()
                .map_err(|_| format!("--auto-maintain pressure threshold must be a u32: {t:?}"))?;
            if threshold == 0 {
                return Err("--auto-maintain pressure threshold must be positive".into());
            }
            return Ok(AutoMaintain::Pressure { threshold });
        }
        Err(format!("--auto-maintain expects off|pressure:<t>, got {text:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::ScoringPolicy;
    use crate::session::SearchSession;
    use crate::tuple::Tuple;
    use crate::value::{TupleKey, ValueId};

    fn seed_db(n: u64) -> HiddenDatabase {
        let schema = Schema::with_domain_sizes(&[4, 3], &["m"]).unwrap();
        let mut db = HiddenDatabase::new(schema, 5, ScoringPolicy::default());
        for key in 0..n {
            db.insert(Tuple::new(
                TupleKey(key),
                vec![ValueId((key % 4) as u32), ValueId((key % 3) as u32)],
                vec![key as f64],
            ))
            .unwrap();
        }
        db
    }

    fn queries(schema: &Schema) -> Vec<ConjunctiveQuery> {
        let mut qs = vec![ConjunctiveQuery::select_all()];
        for a in 0..schema.attr_count() {
            let attr = crate::value::AttrId(a as u16);
            for v in 0..schema.domain_size(attr) {
                qs.push(ConjunctiveQuery::select_all().with(attr, ValueId(v)));
            }
        }
        qs
    }

    #[test]
    fn snapshot_answers_match_private_database() {
        let db = seed_db(200);
        let mut private = db.clone();
        let service = DbService::new(db);
        let snap = service.snapshot();
        let mut eval = EvalStats::default();
        for q in queries(snap.schema()) {
            assert_eq!(snap.answer(&q, &mut eval), private.answer(&q));
        }
    }

    #[test]
    fn sessions_pin_epochs_across_churn() {
        let db = seed_db(100);
        let reference = db.clone();
        let service = DbService::new(db);
        let snap0 = service.snapshot();
        let epoch0 = snap0.epoch();

        // Churn: delete a third of the tuples and add replacements.
        let mut batch = UpdateBatch::default();
        for key in (0..100).step_by(3) {
            batch.deletes.push(TupleKey(key));
        }
        for key in 200..230 {
            batch.inserts.push(Tuple::new(
                TupleKey(key),
                vec![ValueId((key % 4) as u32), ValueId((key % 3) as u32)],
                vec![key as f64],
            ));
        }
        let summary = service.apply(batch).unwrap();
        assert_eq!(summary.deleted, 34);
        assert_eq!(summary.inserted, 30);
        assert!(service.epoch() > epoch0, "apply must publish a new epoch");

        // A session pinned to epoch 0 still sees the pre-churn world...
        let mut old = service.session_at(snap0, u64::MAX);
        let mut frozen = reference.clone();
        let qs = queries(reference.schema());
        for q in &qs {
            assert_eq!(old.issue(q).unwrap(), frozen.answer(q));
        }
        // ...while a fresh session sees the post-churn world.
        let fresh = service.session(u64::MAX);
        assert_eq!(fresh.snapshot().len(), 100 - 34 + 30);
    }

    #[test]
    fn service_session_matches_search_session_budgeting() {
        let db = seed_db(50);
        let mut private = db.clone();
        let service = DbService::new(db);
        let mut svc = service.session(3);
        let mut classic = SearchSession::new(&mut private, 3);
        let root = ConjunctiveQuery::select_all();
        for _ in 0..3 {
            assert_eq!(svc.issue(&root).unwrap(), classic.issue(&root).unwrap());
            assert_eq!(svc.remaining(), classic.remaining());
            assert_eq!(svc.spent(), classic.spent());
        }
        assert!(svc.issue(&root).unwrap_err().is_budget());
        assert!(classic.issue(&root).unwrap_err().is_budget());
    }

    #[test]
    fn shared_memo_serves_repeat_queries_across_sessions() {
        let db = seed_db(80);
        let service = DbService::new(db);
        let root = ConjunctiveQuery::select_all();
        let mut a = service.session(10);
        let mut b = service.session(10);
        let out_a = a.issue(&root).unwrap();
        let out_b = b.issue(&root).unwrap();
        assert_eq!(out_a, out_b);
        let memo = service.memo_stats();
        assert_eq!(memo.misses, 1, "first lookup misses");
        assert_eq!(memo.hits, 1, "second session hits the shared entry");
        assert_eq!(a.stats().cache_hits, 0);
        assert_eq!(b.stats().cache_hits, 1);
        // Budgets are private: each session paid for its own query.
        assert_eq!(a.spent(), 1);
        assert_eq!(b.spent(), 1);
    }

    #[test]
    fn auto_maintain_fires_on_pressure() {
        let db = seed_db(300);
        let service = DbService::with_auto_maintain(db, AutoMaintain::Pressure { threshold: 10 });
        let mut batch = UpdateBatch::default();
        for key in 0..60 {
            batch.deletes.push(TupleKey(key));
        }
        service.apply(batch).unwrap();
        assert!(
            service.stats().auto_maintain_runs >= 1,
            "60 deletes in one segment must cross a pressure threshold of 10"
        );
    }

    #[test]
    fn auto_maintain_parse() {
        assert_eq!(AutoMaintain::parse("off"), Ok(AutoMaintain::Off));
        assert_eq!(
            AutoMaintain::parse("pressure:64"),
            Ok(AutoMaintain::Pressure { threshold: 64 })
        );
        assert!(AutoMaintain::parse("pressure:0").is_err());
        assert!(AutoMaintain::parse("pressure:x").is_err());
        assert!(AutoMaintain::parse("eager").is_err());
    }

    #[test]
    fn concurrent_sessions_under_churn_stay_bit_identical() {
        let db = seed_db(256);
        let reference = db.clone();
        let service = DbService::new(db);
        let snap0 = service.snapshot();
        let qs = queries(snap0.schema());

        // Expected outcomes from a private database frozen at epoch 0.
        let mut frozen = reference.clone();
        let expected: Vec<QueryOutcome> = qs.iter().map(|q| frozen.answer(q)).collect();

        std::thread::scope(|scope| {
            // A writer thread churning the service the whole time.
            let svc = service.clone();
            scope.spawn(move || {
                for round in 0u64..20 {
                    let mut batch = UpdateBatch::default();
                    batch.deletes.push(TupleKey(round * 7 % 256));
                    batch.inserts.push(Tuple::new(
                        TupleKey(1000 + round),
                        vec![ValueId((round % 4) as u32), ValueId((round % 3) as u32)],
                        vec![round as f64],
                    ));
                    svc.apply(batch).unwrap();
                }
            });
            for t in 0..4 {
                let svc = service.clone();
                let snap = Arc::clone(&snap0);
                let qs = &qs;
                let expected = &expected;
                scope.spawn(move || {
                    let mut session = svc.session_at(snap, u64::MAX);
                    // Rotate the order per thread: outcomes must not
                    // depend on issue order or interleaving.
                    for i in 0..qs.len() {
                        let j = (i + t) % qs.len();
                        assert_eq!(session.issue(&qs[j]).unwrap(), expected[j]);
                    }
                });
            }
        });
    }

    /// Warm restart through the service: checkpoint a live service,
    /// reopen from the journal, and the new service serves the same
    /// epoch-0 answers the old one would — with the tier still attached.
    #[test]
    fn service_checkpoint_and_reopen() {
        let dir =
            std::env::temp_dir().join(format!("hidden-db-service-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = crate::persist::PersistConfig::new(dir.clone(), 2);

        let mut db = seed_db(0);
        db.enable_persist(&cfg).unwrap();
        let service = DbService::new(db);
        let mut batch = UpdateBatch::empty();
        for key in 0..500u64 {
            batch = batch.insert(Tuple::new(
                TupleKey(key),
                vec![ValueId((key % 4) as u32), ValueId((key % 3) as u32)],
                vec![key as f64],
            ));
        }
        service.apply(batch).unwrap();
        service.checkpoint().unwrap();

        let qs = queries(service.snapshot().schema());
        let mut eval = EvalStats::default();
        let expected: Vec<_> = qs.iter().map(|q| service.snapshot().answer(q, &mut eval)).collect();

        drop(service);
        let reopened = DbService::open_persistent(&cfg, AutoMaintain::Off).unwrap();
        let snap = reopened.snapshot();
        assert_eq!(snap.len(), 500);
        for (q, want) in qs.iter().zip(&expected) {
            assert_eq!(snap.answer(q, &mut eval), *want, "query {q}");
        }
        // Still out-of-core: further churn pages, identically.
        reopened.apply(UpdateBatch::empty().delete(TupleKey(3))).unwrap();
        assert_eq!(reopened.snapshot().len(), 499);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
