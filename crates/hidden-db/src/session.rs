//! Budgeted access to the search interface — the **only** surface an
//! estimator is allowed to touch.
//!
//! Estimator crates are generic over [`SearchBackend`] so the same code
//! runs against a plain per-round session, an intra-round session that
//! interleaves updates with queries (constant-update model, §5.2), a
//! [`crate::service::ServiceSession`] pinned to one epoch of the shared
//! concurrent [`crate::service::DbService`], or any future adapter for a
//! real web API.

use crate::budget::QueryBudget;
use crate::database::HiddenDatabase;
use crate::errors::IssueError;
use crate::interface::QueryOutcome;
use crate::query::ConjunctiveQuery;
use crate::schema::Schema;

/// What the restricted interface lets a third party do: learn the schema
/// and the page size, and issue budgeted conjunctive queries.
pub trait SearchBackend {
    /// The (public) schema of the search form: attributes and domains.
    fn schema(&self) -> &Schema;

    /// The interface's page size `k`.
    fn k(&self) -> usize;

    /// Issues one search query, charging one unit of budget.
    ///
    /// Since PR 6 the error type is the full [`IssueError`] taxonomy:
    /// an in-process session only ever raises
    /// [`IssueError::BudgetExhausted`], but fault-injecting and remote
    /// adapters surface transient errors, rate limits, and timeouts
    /// through the same signature.
    fn issue(&mut self, query: &ConjunctiveQuery) -> Result<QueryOutcome, IssueError>;

    /// Queries remaining in this round's budget.
    fn remaining(&self) -> u64;

    /// Queries spent so far this round.
    fn spent(&self) -> u64;
}

/// A per-round session over a [`HiddenDatabase`]: borrows the database,
/// charges a [`QueryBudget`] per issued query.
pub struct SearchSession<'a> {
    db: &'a mut HiddenDatabase,
    budget: QueryBudget,
}

impl<'a> SearchSession<'a> {
    /// Starts a session with a budget of `g` queries.
    pub fn new(db: &'a mut HiddenDatabase, g: u64) -> Self {
        Self { db, budget: QueryBudget::new(g) }
    }

    /// Starts a session with an unlimited budget (tests/ground truth).
    pub fn unlimited(db: &'a mut HiddenDatabase) -> Self {
        Self { db, budget: QueryBudget::unlimited() }
    }

    /// The budget state.
    pub fn budget(&self) -> QueryBudget {
        self.budget
    }
}

impl SearchBackend for SearchSession<'_> {
    fn schema(&self) -> &Schema {
        self.db.schema()
    }

    fn k(&self) -> usize {
        self.db.k()
    }

    fn issue(&mut self, query: &ConjunctiveQuery) -> Result<QueryOutcome, IssueError> {
        self.budget.charge()?;
        Ok(self.db.answer(query))
    }

    fn remaining(&self) -> u64 {
        self.budget.remaining()
    }

    fn spent(&self) -> u64 {
        self.budget.spent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::ScoringPolicy;
    use crate::tuple::Tuple;
    use crate::value::{TupleKey, ValueId};

    fn db() -> HiddenDatabase {
        let schema = Schema::with_domain_sizes(&[2], &[]).unwrap();
        let mut d = HiddenDatabase::new(schema, 5, ScoringPolicy::default());
        for key in 0..3 {
            d.insert(Tuple::new(TupleKey(key), vec![ValueId(0)], vec![])).unwrap();
        }
        d
    }

    #[test]
    fn session_charges_budget() {
        let mut d = db();
        let mut s = SearchSession::new(&mut d, 2);
        let root = ConjunctiveQuery::select_all();
        assert!(s.issue(&root).is_ok());
        assert_eq!(s.remaining(), 1);
        assert!(s.issue(&root).is_ok());
        assert_eq!(s.remaining(), 0);
        let err = s.issue(&root).unwrap_err();
        assert!(err.is_budget(), "a plain session only ever raises budget errors: {err}");
        assert_eq!(s.spent(), 2);
    }

    #[test]
    fn unlimited_session_never_errors() {
        let mut d = db();
        let mut s = SearchSession::unlimited(&mut d);
        let root = ConjunctiveQuery::select_all();
        for _ in 0..1000 {
            assert!(s.issue(&root).is_ok());
        }
    }

    #[test]
    fn schema_and_k_are_visible() {
        let mut d = db();
        let s = SearchSession::new(&mut d, 1);
        assert_eq!(s.schema().attr_count(), 1);
        assert_eq!(s.k(), 5);
    }
}
