//! Interface-side counters, useful for experiments and benches.

/// Counters describing the traffic a database has served.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterfaceStats {
    /// Total queries answered (including memoised ones).
    pub answered: u64,
    /// Queries that overflowed.
    pub overflows: u64,
    /// Queries answered with a complete (valid) page.
    pub valids: u64,
    /// Queries that underflowed.
    pub underflows: u64,
    /// Answers served from the per-version memo cache.
    pub cache_hits: u64,
}

impl InterfaceStats {
    /// Fraction of answers served from cache, in `[0,1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.answered == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.answered as f64
        }
    }
}

/// Counters describing which paths the evaluation engine took — useful
/// for benches and for tests asserting a strategy actually engaged.
/// Like [`InterfaceStats::cache_hits`] these depend on the memo policy
/// (a memo hit skips evaluation entirely); they are deterministic for a
/// fixed policy and workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Root (`SELECT *`) segment scans.
    pub root_scans: u64,
    /// Single-predicate posting-list scans.
    pub single_scans: u64,
    /// Multi-predicate evaluations that galloped the two rarest lists.
    pub gallop_intersections: u64,
    /// Multi-predicate evaluations that used per-segment bitsets.
    pub bitset_intersections: u64,
    /// Multi-predicate evaluations on the legacy rarest-list re-check
    /// path (forced via [`crate::IntersectPolicy::Recheck`]).
    pub recheck_scans: u64,
    /// Multi-predicate evaluations on the k-way block-max engine
    /// ([`crate::IntersectPolicy::BlockMax`], or `Auto` at 3+
    /// predicates).
    pub blockmax_intersections: u64,
    /// Scans stopped early by the overflow + heap-floor proof.
    pub early_exits: u64,
    /// Segments (or posting runs) never visited thanks to early exits.
    pub segments_skipped: u64,
    /// Candidate blocks the block-max engine actually intersected.
    pub blocks_scanned: u64,
    /// Candidate blocks skipped whole because their combined bound could
    /// not beat the top-`k` floor.
    pub blocks_skipped: u64,
    /// Galloping cursor advances on the block-max sparse path (one per
    /// non-pivot list consulted per pivot slot).
    pub pivot_advances: u64,
}

/// Counters describing the query memo's lifecycle: what the invalidation
/// policy dropped, what the admission policy evicted, and what the
/// cross-round revalidation path saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Entries admitted into the memo.
    pub insertions: u64,
    /// Entries dropped by postings-aware incremental invalidation.
    pub invalidated: u64,
    /// Entries that survived at least one incremental invalidation pass
    /// (summed over passes: an entry surviving `n` mutations counts `n`
    /// times — the "warm rounds saved" currency).
    pub retained: u64,
    /// Entries evicted by the bounded admission (CLOCK) policy.
    pub evicted: u64,
    /// Wholesale clears (policy [`Wholesale`](crate::InvalidationPolicy),
    /// `set_k`, or policy switches).
    pub wholesale_clears: u64,
    /// Overflow entries demoted to `Stale` (kept for revalidation)
    /// instead of being dropped by an invalidation pass.
    pub demoted: u64,
    /// Stale entries resurrected by the lookup-time score/bound re-check
    /// — each one a full re-scan saved.
    pub resurrected: u64,
    /// Stale entries whose re-check failed at lookup (dropped, then
    /// re-evaluated from cold).
    pub revalidation_failed: u64,
}

/// Counters of the shared concurrent memo serving every session of a
/// [`crate::service::DbService`]. Keyed by `(epoch, query)`, entries are
/// immutable — there is no invalidation to count, only lookups and
/// admission control.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedMemoStats {
    /// Lookups answered from the shared cache.
    pub hits: u64,
    /// Lookups that fell through to snapshot evaluation.
    pub misses: u64,
    /// Entries admitted.
    pub insertions: u64,
    /// Older-epoch entries retired to make room in a full shard.
    pub retired: u64,
    /// Admissions skipped because a shard stayed full of
    /// same-or-newer-epoch entries (correctness-neutral).
    pub admissions_skipped: u64,
}

impl SharedMemoStats {
    /// Fraction of lookups served from the shared cache, in `[0,1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Counters describing the persistence tier's paging activity
/// ([`crate::database::HiddenDatabase::persist_stats`]). All zeros when
/// no tier is attached. Like the eval counters these are observability,
/// not semantics: paging never changes an answer bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Segments written back and evicted from the writer's in-core set.
    pub segments_spilled: u64,
    /// Segments read back from the region file (write-path reclaims and
    /// read-path cache misses; cache hits don't count).
    pub segments_faulted: u64,
    /// Entries dropped from the pager's read cache by its CLOCK sweep.
    pub evictions: u64,
    /// Bytes occupied by the region file (header + every region ever
    /// written).
    pub bytes_on_disk: u64,
    /// Segments in memory right now (writer in-core + read cache).
    pub resident_segments: u64,
    /// High-water mark of `resident_segments` — what the
    /// `resident_memory_bounded` bench flag compares against the budget.
    pub peak_resident_segments: u64,
}

/// Counters accumulated across [`crate::database::HiddenDatabase::maintain`]
/// calls: what the segment compaction subsystem has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// `maintain`/`compact` invocations.
    pub maintain_calls: u64,
    /// Store segments whose score bound was recomputed exactly.
    pub segments_recomputed: u64,
    /// Recomputes that actually tightened a bound.
    pub bounds_tightened: u64,
    /// Posting lists compacted (tombstones purged, runs rebuilt).
    pub lists_compacted: u64,
    /// Tombstoned/duplicate postings removed from lists.
    pub postings_purged: u64,
    /// Slots/postings scanned by maintenance sweeps (the budget
    /// currency).
    pub slots_scanned: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate() {
        let mut s = InterfaceStats::default();
        assert_eq!(s.cache_hit_rate(), 0.0);
        s.answered = 4;
        s.cache_hits = 1;
        assert!((s.cache_hit_rate() - 0.25).abs() < 1e-12);
    }
}
