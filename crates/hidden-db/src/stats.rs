//! Interface-side counters, useful for experiments and benches.

/// Counters describing the traffic a database has served.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterfaceStats {
    /// Total queries answered (including memoised ones).
    pub answered: u64,
    /// Queries that overflowed.
    pub overflows: u64,
    /// Queries answered with a complete (valid) page.
    pub valids: u64,
    /// Queries that underflowed.
    pub underflows: u64,
    /// Answers served from the per-version memo cache.
    pub cache_hits: u64,
}

impl InterfaceStats {
    /// Fraction of answers served from cache, in `[0,1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.answered == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.answered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate() {
        let mut s = InterfaceStats::default();
        assert_eq!(s.cache_hit_rate(), 0.0);
        s.answered = 4;
        s.cache_hits = 1;
        assert!((s.cache_hit_rate() - 0.25).abs() < 1e-12);
    }
}
