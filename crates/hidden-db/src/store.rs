//! Columnar slot-based tuple storage, organised in fixed-size segments.
//!
//! Tuples live in *slots*; deleting a tuple frees its slot for reuse by a
//! later insert. All hot query-evaluation paths index columns directly by
//! slot, so matching a predicate against a candidate tuple is two array
//! loads. External identity is the [`TupleKey`], which is never reused.
//!
//! ## Segments
//!
//! Slots are grouped into fixed-size segments of [`SEGMENT_SLOTS`]
//! consecutive slots. Each segment's column data lives in its own
//! [`Arc`]-shared block ([`SegmentData`]), so cloning the read-side of the
//! store ([`StoreCore`]) is a handful of reference-count bumps plus the
//! small per-segment summary vector — the substrate for the epoch-published
//! snapshots of [`crate::service::DbService`]. Mutation goes through
//! [`Arc::make_mut`]: copy-on-write at segment granularity, so a published
//! snapshot keeps the old block while the writer pays one segment copy the
//! first time it touches a shared segment.
//!
//! Each segment carries two summaries maintained on every mutation:
//!
//! * an **alive count** — lets scans (and the parallel ground-truth
//!   fan-out) skip fully dead segments without touching the bitmap;
//! * a **max-score upper bound** — never underestimates the best hidden
//!   ranking score of any alive occupant, which is what lets the
//!   evaluation engine stop a top-`k` scan early once the heap floor
//!   provably beats every remaining segment (see
//!   [`crate::interface::TopK::can_stop`]). Deletes do not lower the
//!   bound (that would cost a segment sweep); it resets to the true
//!   maximum whenever a segment empties, and is exact for append-mostly
//!   workloads like `NewestFirst` timelines.
//!
//! ## Maintenance
//!
//! Each segment additionally tracks how far its bound may have drifted
//! from exact: a **bound-staleness counter** counts the deletes and
//! score-drops since the bound was last known exact, and the **dead-slot
//! count** is derivable from the alive count. The maintenance pass
//! ([`crate::database::HiddenDatabase::maintain`]) consumes these to pick
//! the stalest segments and [`Store::recompute_segment_bound`] rewrites
//! each bound to the true maximum over alive occupants — re-arming
//! early exits under delete-heavy / measure-drop churn, where the lazy
//! bound otherwise only ever grows. Maintenance never moves a tuple and
//! never touches the free list, so slot identity (and with it every
//! cached page, tie-break, and RNG draw) is bit-for-bit unaffected.

use std::collections::HashMap;
use std::ops::Deref;
use std::sync::Arc;

use crate::errors::DbError;
use crate::persist::Pager;
use crate::tuple::{Tuple, TupleView};
use crate::value::{TupleKey, ValueId};

/// Slot index within the store. Internal; never exposed through the
/// search interface.
pub type Slot = u32;

/// Slots per store segment.
pub const SEGMENT_SLOTS: usize = 4096;

// `segment_of` shifts, `segment_range` multiplies, and the evaluation
// engine's bitsets are `SEGMENT_SLOTS / 64` whole words — all three only
// agree for power-of-two, word-divisible sizes, so retuning to anything
// else must fail at compile time.
const _: () = assert!(SEGMENT_SLOTS.is_power_of_two() && SEGMENT_SLOTS.is_multiple_of(64));

/// `log2(SEGMENT_SLOTS)` — segment of a slot is `slot >> SEGMENT_SHIFT`.
pub const SEGMENT_SHIFT: u32 = SEGMENT_SLOTS.trailing_zeros();

/// `slot & SEGMENT_MASK` is the slot's offset within its segment.
pub const SEGMENT_MASK: usize = SEGMENT_SLOTS - 1;

/// Slots per block-max block: the sub-segment granularity of the score
/// bounds driving the k-way block-max intersection. 256 slots is 1/16th
/// of a segment — fine enough that one hot tuple no longer pins a whole
/// 4096-slot segment's worth of candidates into a scan, coarse enough
/// that the per-list block directories stay small (a full segment run
/// costs 16 entries) and a block's bitset is 4 words.
pub const BLOCK_SLOTS: usize = 256;

// The block-max engine word-ANDs whole blocks (`BLOCK_SLOTS / 64` words)
// and derives a slot's block by shifting, so blocks must be power-of-two,
// word-divisible, and must tile segments exactly.
const _: () = assert!(
    BLOCK_SLOTS.is_power_of_two()
        && BLOCK_SLOTS.is_multiple_of(64)
        && SEGMENT_SLOTS.is_multiple_of(BLOCK_SLOTS)
);

/// Blocks per segment (`SEGMENT_SLOTS / BLOCK_SLOTS`).
pub const BLOCKS_PER_SEGMENT: usize = SEGMENT_SLOTS / BLOCK_SLOTS;

/// `log2(BLOCK_SLOTS)` — global block of a slot is `slot >> BLOCK_SHIFT`.
pub const BLOCK_SHIFT: u32 = BLOCK_SLOTS.trailing_zeros();

/// The segment a slot belongs to.
#[inline]
pub fn segment_of(slot: Slot) -> usize {
    (slot >> SEGMENT_SHIFT) as usize
}

/// The global block a slot belongs to (block `b` covers slots
/// `b * BLOCK_SLOTS .. (b+1) * BLOCK_SLOTS`; segment `s` owns blocks
/// `s * BLOCKS_PER_SEGMENT .. (s+1) * BLOCKS_PER_SEGMENT`).
#[inline]
pub fn block_of(slot: Slot) -> usize {
    (slot >> BLOCK_SHIFT) as usize
}

/// `(segment, offset within segment)` of a slot.
#[inline]
fn locate(slot: Slot) -> (usize, usize) {
    (segment_of(slot), slot as usize & SEGMENT_MASK)
}

/// Per-segment summary maintained incrementally by the store.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SegmentMeta {
    /// Alive tuples in the segment.
    pub(crate) alive: u32,
    /// Upper bound on the hidden score of any alive occupant. May
    /// overestimate after deletes/score-drops; never underestimates.
    pub(crate) max_score: u64,
    /// Mutations since `max_score` was last known exact (deletes and
    /// in-place score drops — the two operations that can leave the
    /// bound standing above the true maximum). `0` means exact.
    pub(crate) stale_ops: u32,
    /// Per-block score upper bounds (block `b` covers local slots
    /// `b * BLOCK_SLOTS .. (b+1) * BLOCK_SLOTS`). Same soundness
    /// contract as `max_score` — never understates — but looseness is
    /// tracked only at segment granularity: `stale_ops == 0` promises
    /// an exact *segment* bound (a score raise snaps it back without a
    /// sweep), while block bounds are guaranteed exact only right after
    /// [`Store::recompute_segment_bound`] rebuilds them.
    pub(crate) block_max: [u64; BLOCKS_PER_SEGMENT],
    /// CLOCK reference bit for the persistence tier's writer-side
    /// eviction sweep: set on every writer touch, cleared as the hand
    /// passes. Meaningless (and harmlessly carried) without a pager.
    pub(crate) ref_bit: bool,
}

/// One segment's column data: up to [`SEGMENT_SLOTS`] rows, grown lazily
/// as slots are allocated. Shared between the writer and any published
/// snapshots via [`Arc`]; mutated only through [`Arc::make_mut`].
///
/// With the persistence tier attached, a segment may instead be
/// **evicted**: its slot in `StoreCore::segs` holds the pager's shared
/// empty tombstone (`evicted == true`) and the real rows live in the
/// region file until a read faults them back or the writer reclaims
/// them for mutation.
#[derive(Debug, Clone)]
pub(crate) struct SegmentData {
    /// `columns[a][off]` = value code of attribute `a` for local slot `off`.
    pub(crate) columns: Vec<Vec<u32>>,
    /// `measures[m][off]` = measure value.
    pub(crate) measures: Vec<Vec<f64>>,
    /// `keys[off]` = external key of the occupant (stale if dead).
    pub(crate) keys: Vec<u64>,
    /// `scores[off]` = hidden ranking score of the occupant.
    pub(crate) scores: Vec<u64>,
    /// Liveness per local slot.
    pub(crate) alive: Vec<bool>,
    /// Whether this is an eviction tombstone (rows on disk, not here).
    /// Always `false` for real data; the pager's shared tombstone is the
    /// only instance with `true`.
    pub(crate) evicted: bool,
}

impl SegmentData {
    pub(crate) fn empty(attr_count: usize, measure_count: usize) -> Self {
        Self {
            columns: vec![Vec::new(); attr_count],
            measures: vec![Vec::new(); measure_count],
            keys: Vec::new(),
            scores: Vec::new(),
            alive: Vec::new(),
            evicted: false,
        }
    }

    /// The shared placeholder installed in place of evicted segments.
    pub(crate) fn tombstone() -> Self {
        Self { evicted: true, ..Self::empty(0, 0) }
    }

    /// Appends a row at the next local offset (caller tracks allocation).
    pub(crate) fn push_row(&mut self, values: &[ValueId], measures: &[f64], key: u64, score: u64) {
        for (a, col) in self.columns.iter_mut().enumerate() {
            col.push(values[a].0);
        }
        for (m, col) in self.measures.iter_mut().enumerate() {
            col.push(measures[m]);
        }
        self.keys.push(key);
        self.scores.push(score);
        self.alive.push(true);
    }

    /// Overwrites the row at local offset `off` (slot reuse).
    pub(crate) fn write_row(
        &mut self,
        off: usize,
        values: &[ValueId],
        measures: &[f64],
        key: u64,
        score: u64,
    ) {
        for (a, col) in self.columns.iter_mut().enumerate() {
            col[off] = values[a].0;
        }
        for (m, col) in self.measures.iter_mut().enumerate() {
            col[off] = measures[m];
        }
        self.keys[off] = key;
        self.scores[off] = score;
        self.alive[off] = true;
    }
}

/// A borrowed-or-faulted view of one segment's data: the uniform read
/// path over resident and evicted segments. Resident segments come back
/// as a plain borrow (`Ram`, the all-RAM fast path — one predicted
/// branch over the previous direct indexing); evicted segments fault
/// through the pager's bounded read cache (`Hot`). `Deref` makes the
/// two cases indistinguishable to accessors.
#[derive(Debug)]
pub(crate) enum SegView<'a> {
    /// Segment is resident in the store.
    Ram(&'a SegmentData),
    /// Segment was faulted in from the persistence tier.
    Hot(Arc<SegmentData>),
}

impl Deref for SegView<'_> {
    type Target = SegmentData;

    #[inline]
    fn deref(&self) -> &SegmentData {
        match self {
            SegView::Ram(d) => d,
            SegView::Hot(a) => a,
        }
    }
}

/// The read side of the store: `Arc`-shared segment data blocks plus the
/// per-segment summaries. Everything query evaluation, ground truth, and
/// the memo need lives here; cloning is cheap (reference-count bumps plus
/// the summary vector), which is what makes publishing an immutable
/// snapshot per epoch affordable. [`Store`] derefs to this, so owner-side
/// code reads through the same API.
///
/// Cloning a core that has a persistence tier attached **materialises**
/// it: evicted segments are read back from disk and the clone is fully
/// resident with no pager — snapshots are self-contained and never
/// compete for the resident budget (the documented trade: publishing a
/// snapshot of an out-of-core database pins the whole pool in RAM).
#[derive(Debug)]
pub struct StoreCore {
    attr_count: usize,
    measure_count: usize,
    /// Segment data blocks; segment `s` covers slots
    /// `s * SEGMENT_SLOTS .. (s+1) * SEGMENT_SLOTS`. With a pager
    /// attached, entries may be the shared eviction tombstone.
    segs: Vec<Arc<SegmentData>>,
    /// Per-segment alive counts and score upper bounds, in lockstep with
    /// `segs`.
    meta: Vec<SegmentMeta>,
    /// Total slots allocated (alive + dead). Slots are allocated in
    /// ascending order, so only the last segment is partially grown.
    allocated: usize,
    alive_count: usize,
    /// The persistence tier, when attached (writer side only; clones
    /// materialise and drop it).
    pager: Option<Arc<Pager>>,
    /// Segments currently resident (`!evicted`). Equals `segs.len()`
    /// without a pager.
    resident: usize,
}

impl Clone for StoreCore {
    fn clone(&self) -> Self {
        let segs = match &self.pager {
            // No tier: the original cheap path — reference-count bumps.
            None => self.segs.clone(),
            Some(pager) => self
                .segs
                .iter()
                .enumerate()
                .map(
                    |(s, data)| {
                        if data.evicted {
                            pager.read_detached(s)
                        } else {
                            Arc::clone(data)
                        }
                    },
                )
                .collect(),
        };
        Self {
            attr_count: self.attr_count,
            measure_count: self.measure_count,
            resident: segs.len(),
            segs,
            meta: self.meta.clone(),
            allocated: self.allocated,
            alive_count: self.alive_count,
            pager: None,
        }
    }
}

/// Columnar storage for tuples plus the per-tuple hidden ranking score.
///
/// Wraps the shared [`StoreCore`] with the writer-only state: the free
/// list and the key → slot map. Read accessors come through `Deref`.
#[derive(Debug, Clone)]
pub struct Store {
    core: StoreCore,
    /// Free slots available for reuse.
    free: Vec<Slot>,
    /// Alive key → slot.
    key_to_slot: HashMap<u64, Slot>,
    /// CLOCK hand of the writer-side eviction sweep (persistence tier
    /// only; idle without a pager).
    clock_hand: usize,
}

impl Deref for Store {
    type Target = StoreCore;

    #[inline]
    fn deref(&self) -> &StoreCore {
        &self.core
    }
}

impl StoreCore {
    /// Number of alive tuples (`|D|`).
    pub fn len(&self) -> usize {
        self.alive_count
    }

    /// Whether the store holds no alive tuples.
    pub fn is_empty(&self) -> bool {
        self.alive_count == 0
    }

    /// Total slots allocated (alive + dead); the exclusive upper bound of
    /// valid slot indices.
    pub fn slot_bound(&self) -> Slot {
        self.allocated as Slot
    }

    /// The uniform read path over one segment's data: a plain borrow for
    /// resident segments, a pager fault for evicted ones. Hot-path
    /// accessors and the evaluation engine route every data read through
    /// here so paging stays invisible above this line.
    #[inline]
    pub(crate) fn seg_view(&self, seg: usize) -> SegView<'_> {
        let data = &self.segs[seg];
        if !data.evicted {
            SegView::Ram(data)
        } else {
            let pager = self.pager.as_ref().expect("evicted segment without a pager");
            SegView::Hot(pager.fault(seg))
        }
    }

    /// The persistence tier, if one is attached.
    pub(crate) fn pager(&self) -> Option<&Arc<Pager>> {
        self.pager.as_ref()
    }

    /// Per-segment summaries, in lockstep with the segments.
    pub(crate) fn metas(&self) -> &[SegmentMeta] {
        &self.meta
    }

    /// Whether `slot` currently holds an alive tuple.
    #[inline]
    pub fn is_alive(&self, slot: Slot) -> bool {
        let (seg, off) = locate(slot);
        self.seg_view(seg).alive[off]
    }

    /// Value code of attribute `attr_idx` at `slot` (caller guarantees the
    /// slot is alive).
    #[inline]
    pub fn value_at(&self, attr_idx: usize, slot: Slot) -> u32 {
        let (seg, off) = locate(slot);
        self.seg_view(seg).columns[attr_idx][off]
    }

    /// Measure value at `slot`.
    #[inline]
    pub fn measure_at(&self, measure_idx: usize, slot: Slot) -> f64 {
        let (seg, off) = locate(slot);
        self.seg_view(seg).measures[measure_idx][off]
    }

    /// Hidden ranking score at `slot`.
    #[inline]
    pub fn score_at(&self, slot: Slot) -> u64 {
        let (seg, off) = locate(slot);
        self.seg_view(seg).scores[off]
    }

    /// External key at `slot`.
    #[inline]
    pub fn key_at(&self, slot: Slot) -> TupleKey {
        let (seg, off) = locate(slot);
        TupleKey(self.seg_view(seg).keys[off])
    }

    // ----- segment summaries ---------------------------------------------

    /// Number of segments allocated (covers every slot below
    /// [`StoreCore::slot_bound`]).
    pub fn segment_count(&self) -> usize {
        self.meta.len()
    }

    /// Alive tuples in segment `seg`.
    #[inline]
    pub fn segment_alive(&self, seg: usize) -> u32 {
        self.meta[seg].alive
    }

    /// Upper bound on the hidden score of any alive tuple in `seg`
    /// (never underestimates; exact until a delete or score-drop).
    #[inline]
    pub fn segment_max_score(&self, seg: usize) -> u64 {
        self.meta[seg].max_score
    }

    /// Upper bound on the hidden score of any alive tuple in global
    /// block `blk` (see [`block_of`]). Never underestimates, and never
    /// exceeds the owning segment's [`StoreCore::segment_max_score`]
    /// (every block-bound raise raises the segment bound with it, and
    /// the two operations that lower the segment bound — exact
    /// recompute and the empty-segment reset — rebuild the block bounds
    /// in the same step). Exact right after
    /// [`Store::recompute_segment_bound`]; possibly loose otherwise.
    #[inline]
    pub fn block_max_score(&self, blk: usize) -> u64 {
        self.meta[blk / BLOCKS_PER_SEGMENT].block_max[blk % BLOCKS_PER_SEGMENT]
    }

    /// Dead (allocated but not alive) slots in segment `seg` — the
    /// sparsity signal maintenance uses to prioritise posting-list
    /// compaction.
    #[inline]
    pub fn segment_dead(&self, seg: usize) -> u32 {
        let span = self.segment_range(seg);
        (span.end - span.start) - self.meta[seg].alive
    }

    /// Mutations since `seg`'s score bound was last known exact. `0`
    /// means [`StoreCore::segment_max_score`] equals the true maximum over
    /// alive occupants.
    #[inline]
    pub fn segment_bound_staleness(&self, seg: usize) -> u32 {
        self.meta[seg].stale_ops
    }

    /// Number of segments with a possibly-loose score bound
    /// (allocation-free; [`StoreCore::stale_segments`] builds the ordered
    /// work queue).
    pub fn stale_segment_count(&self) -> usize {
        self.meta.iter().filter(|m| m.stale_ops > 0).count()
    }

    /// The worst per-segment maintenance pressure across the store:
    /// `max(stale_ops + dead slots)` over all segments. The writer queue's
    /// automatic maintenance trigger compares this against its threshold.
    pub fn max_segment_pressure(&self) -> u32 {
        (0..self.meta.len())
            .map(|s| self.meta[s].stale_ops.saturating_add(self.segment_dead(s)))
            .max()
            .unwrap_or(0)
    }

    /// Segments with a possibly-loose score bound, most-stale first
    /// (segment id breaks ties) — the maintenance pass's work queue.
    pub fn stale_segments(&self) -> Vec<usize> {
        let mut segs: Vec<(u32, usize)> = self
            .meta
            .iter()
            .enumerate()
            .filter(|(_, m)| m.stale_ops > 0)
            .map(|(s, m)| (m.stale_ops, s))
            .collect();
        segs.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        segs.into_iter().map(|(_, s)| s).collect()
    }

    /// The slot range covered by segment `seg`, clamped to allocated
    /// slots.
    #[inline]
    pub fn segment_range(&self, seg: usize) -> std::ops::Range<Slot> {
        let start = (seg * SEGMENT_SLOTS) as Slot;
        let end = ((seg + 1) * SEGMENT_SLOTS).min(self.allocated) as Slot;
        start..end
    }

    /// Segment ids with at least one alive tuple, ascending.
    pub fn live_segments(&self) -> impl Iterator<Item = usize> + '_ {
        self.meta.iter().enumerate().filter(|(_, m)| m.alive > 0).map(|(s, _)| s)
    }

    /// For every segment (descending max-score order, segment id as the
    /// deterministic tie-break): `(segment, score upper bound)`. This is
    /// the visit order that lets early-exit scans stop as soon as the
    /// heap floor beats the bound of the *next* segment.
    pub fn segments_by_score_desc(&self) -> Vec<(usize, u64)> {
        let mut order: Vec<(usize, u64)> = self
            .meta
            .iter()
            .enumerate()
            .filter(|(_, m)| m.alive > 0)
            .map(|(s, m)| (s, m.max_score))
            .collect();
        order.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        order
    }

    /// `suffix_max[seg]` = the max-score upper bound over all segments
    /// `>= seg` — the early-exit bound for *slot-ascending* scans
    /// (galloping intersections emit candidates in slot order).
    pub fn segment_suffix_max(&self) -> Vec<u64> {
        let mut suffix = vec![0u64; self.meta.len()];
        let mut best = 0u64;
        for (s, meta) in self.meta.iter().enumerate().rev() {
            if meta.alive > 0 {
                best = best.max(meta.max_score);
            }
            suffix[s] = best;
        }
        suffix
    }

    /// Materialises a read-only view of the tuple at `slot`.
    pub fn view(&self, slot: Slot) -> TupleView {
        let (seg, off) = locate(slot);
        let data = self.seg_view(seg);
        let values: Box<[ValueId]> = data.columns.iter().map(|col| ValueId(col[off])).collect();
        let measures: Box<[f64]> = data.measures.iter().map(|col| col[off]).collect();
        TupleView::new(TupleKey(data.keys[off]), values, measures)
    }

    /// Iterates over the slots of all alive tuples.
    pub fn alive_slots(&self) -> impl Iterator<Item = Slot> + '_ {
        (0..self.segs.len()).flat_map(move |seg| {
            let base = (seg * SEGMENT_SLOTS) as Slot;
            let data = self.seg_view(seg);
            (0..data.alive.len())
                .filter_map(move |off| data.alive[off].then_some(base + off as Slot))
        })
    }

    /// Iterates over the alive slots of one segment, ascending. Skipping
    /// the scan entirely for empty segments is the caller's job (check
    /// [`StoreCore::segment_alive`] first).
    pub fn alive_slots_in(&self, seg: usize) -> impl Iterator<Item = Slot> + '_ {
        let base = (seg * SEGMENT_SLOTS) as Slot;
        let data = self.seg_view(seg);
        (0..data.alive.len()).filter_map(move |off| data.alive[off].then_some(base + off as Slot))
    }

    /// Exact maximum score over alive occupants of `seg` (one sweep).
    fn exact_segment_max(&self, seg: usize) -> u64 {
        let data = self.seg_view(seg);
        data.alive
            .iter()
            .zip(data.scores.iter())
            .filter(|(&a, _)| a)
            .map(|(_, &score)| score)
            .max()
            .unwrap_or(0)
    }

    /// Exact per-block maximum scores over alive occupants of `seg`
    /// (one sweep; empty blocks come back as `0`).
    fn exact_block_maxes(&self, seg: usize) -> [u64; BLOCKS_PER_SEGMENT] {
        let data = self.seg_view(seg);
        let mut maxes = [0u64; BLOCKS_PER_SEGMENT];
        for (off, (&a, &score)) in data.alive.iter().zip(data.scores.iter()).enumerate() {
            if a {
                let b = off >> BLOCK_SHIFT;
                maxes[b] = maxes[b].max(score);
            }
        }
        maxes
    }
}

impl Store {
    /// Creates an empty store for `attr_count` attributes and
    /// `measure_count` measures.
    pub fn new(attr_count: usize, measure_count: usize) -> Self {
        Self {
            core: StoreCore {
                attr_count,
                measure_count,
                segs: Vec::new(),
                meta: Vec::new(),
                allocated: 0,
                alive_count: 0,
                pager: None,
                resident: 0,
            },
            free: Vec::new(),
            key_to_slot: HashMap::new(),
            clock_hand: 0,
        }
    }

    /// Rebuilds a store from restored snapshot state (codec v2): segment
    /// data and summaries verbatim, the free list in its original order
    /// (so future slot reuse replays identically), and the key → slot
    /// map rebuilt by one scan over alive occupants. Returns `None` if
    /// two alive slots carry the same key — snapshot bytes that violate
    /// the store invariant (corruption), not a programming error.
    pub(crate) fn from_restored(
        attr_count: usize,
        measure_count: usize,
        segs: Vec<SegmentData>,
        meta: Vec<SegmentMeta>,
        allocated: usize,
        alive_count: usize,
        free: Vec<Slot>,
    ) -> Option<Self> {
        let segs: Vec<Arc<SegmentData>> = segs.into_iter().map(Arc::new).collect();
        let mut key_to_slot = HashMap::with_capacity(alive_count);
        for (seg, data) in segs.iter().enumerate() {
            let base = (seg * SEGMENT_SLOTS) as Slot;
            for (off, &a) in data.alive.iter().enumerate() {
                if a && key_to_slot.insert(data.keys[off], base + off as Slot).is_some() {
                    return None;
                }
            }
        }
        debug_assert_eq!(key_to_slot.len(), alive_count);
        Some(Self {
            core: StoreCore {
                attr_count,
                measure_count,
                resident: segs.len(),
                segs,
                meta,
                allocated,
                alive_count,
                pager: None,
            },
            free,
            key_to_slot,
            clock_hand: 0,
        })
    }

    /// The shared read side, cloned cheaply into published snapshots.
    pub fn core(&self) -> &StoreCore {
        &self.core
    }

    /// Free slots pending reuse, oldest first (snapshot input: restoring
    /// this list in order is what makes the restored database's future
    /// slot allocation bit-identical).
    pub(crate) fn free_slots(&self) -> &[Slot] {
        &self.free
    }

    // ----- persistence tier ----------------------------------------------

    /// Attaches the persistence tier: from here on the writer keeps at
    /// most `pager.writer_budget()` segments in core (CLOCK eviction with
    /// write-back) and evicted segments fault back transparently through
    /// [`StoreCore::seg_view`]. Immediately spills down to budget, so a
    /// store larger than the budget pages out its cold majority here.
    pub(crate) fn attach_pager(&mut self, pager: Arc<Pager>) {
        assert!(self.core.pager.is_none(), "persistence tier already attached");
        pager.ensure_segments(self.core.segs.len());
        self.core.resident = self.core.segs.iter().filter(|s| !s.evicted).count();
        pager.set_in_core(self.core.resident);
        self.core.pager = Some(pager);
        self.enforce_budget(usize::MAX);
        // Residency before the tier attached was the loader's footprint;
        // the bounded-memory promise starts now.
        self.core.pager.as_ref().unwrap().reset_peak();
    }

    /// Ensures `seg`'s data is in core for mutation, reclaiming it from
    /// the pager (cache or disk) if evicted.
    fn make_resident(&mut self, seg: usize) {
        if !self.core.segs[seg].evicted {
            return;
        }
        let pager = self.core.pager.as_ref().expect("evicted segment without a pager");
        let data = pager.take_for_write(seg).expect("persist: write-path fault failed");
        debug_assert!(!data.evicted);
        self.core.segs[seg] = data;
        self.core.resident += 1;
        let pager = self.core.pager.as_ref().unwrap();
        pager.set_in_core(self.core.resident);
    }

    /// The single writer-side mutation gate: faults the segment in if
    /// needed, marks it dirty for write-back, touches its CLOCK bit, and
    /// hands out the COW-exclusive data. Callers must follow the
    /// mutation with [`Store::enforce_budget`].
    fn seg_mut(&mut self, seg: usize) -> &mut SegmentData {
        self.make_resident(seg);
        if let Some(pager) = &self.core.pager {
            pager.mark_dirty(seg);
            self.core.meta[seg].ref_bit = true;
        }
        Arc::make_mut(&mut self.core.segs[seg])
    }

    /// Writes `seg` back to its region (skipped if clean and already on
    /// disk) and replaces the in-core data with the shared tombstone.
    fn spill_segment(&mut self, pager: &Pager, seg: usize) {
        pager.spill(seg, &self.core.segs[seg]).expect("persist: segment write-back failed");
        self.core.segs[seg] = pager.tombstone();
        self.core.resident -= 1;
        pager.set_in_core(self.core.resident);
    }

    /// Spills segments until the writer is back under its in-core budget,
    /// choosing victims with a CLOCK sweep (referenced segments get a
    /// second chance; `protect` — normally the segment just mutated — is
    /// never evicted). No-op without a pager.
    fn enforce_budget(&mut self, protect: usize) {
        let Some(pager) = self.core.pager.clone() else { return };
        let limit = pager.writer_budget();
        let n = self.core.segs.len();
        while self.core.resident > limit {
            let mut victim = None;
            // Two full revolutions always suffice: the first clears every
            // reference bit on the path, the second must find a victim
            // (resident > limit >= 1 means at least one evictable,
            // unprotected segment exists).
            for _ in 0..2 * n {
                let s = self.clock_hand;
                self.clock_hand = (self.clock_hand + 1) % n;
                if self.core.segs[s].evicted || s == protect {
                    continue;
                }
                if self.core.meta[s].ref_bit {
                    self.core.meta[s].ref_bit = false;
                    continue;
                }
                victim = Some(s);
                break;
            }
            let Some(v) = victim else { break };
            self.spill_segment(&pager, v);
        }
    }

    /// Slot of an alive tuple by key.
    pub fn slot_of(&self, key: TupleKey) -> Option<Slot> {
        self.key_to_slot.get(&key.0).copied()
    }

    /// Iterates over `(key, slot)` of all alive tuples in unspecified order.
    pub fn alive_keys(&self) -> impl Iterator<Item = (TupleKey, Slot)> + '_ {
        self.key_to_slot.iter().map(|(&k, &s)| (TupleKey(k), s))
    }

    /// Recomputes `seg`'s score bound as the exact maximum over alive
    /// occupants (one sweep of the segment) and clears its staleness
    /// counter. Returns whether the bound tightened. Purely a summary
    /// rewrite: no tuple moves, no slot changes hands, and since the
    /// bound only ever shrinks towards the true maximum, every scan
    /// that consulted the old bound stays correct.
    pub fn recompute_segment_bound(&mut self, seg: usize) -> bool {
        let exact = self.core.exact_segment_max(seg);
        let blocks = self.core.exact_block_maxes(seg);
        let meta = &mut self.core.meta[seg];
        debug_assert!(exact <= meta.max_score, "segment bound was not an upper bound");
        debug_assert!(
            blocks.iter().zip(meta.block_max.iter()).all(|(e, b)| e <= b),
            "a block bound was not an upper bound"
        );
        let tightened = exact < meta.max_score;
        meta.max_score = exact;
        meta.block_max = blocks;
        meta.stale_ops = 0;
        tightened
    }

    /// Debug-build audit: `seg`'s bound must equal the true maximum over
    /// alive occupants. Called by the maintenance pass after every
    /// compaction step; release builds compile it away.
    pub fn debug_assert_bound_exact(&self, seg: usize) {
        #[cfg(debug_assertions)]
        {
            let exact = self.core.exact_segment_max(seg);
            assert_eq!(
                self.core.meta[seg].max_score, exact,
                "segment {seg}: bound not exact after compaction"
            );
            assert_eq!(self.core.meta[seg].stale_ops, 0, "segment {seg}: staleness not cleared");
            let blocks = self.core.exact_block_maxes(seg);
            assert_eq!(
                self.core.meta[seg].block_max, blocks,
                "segment {seg}: block bounds not exact after compaction"
            );
        }
        #[cfg(not(debug_assertions))]
        let _ = seg;
    }

    #[inline]
    fn note_insert(&mut self, slot: Slot, score: u64) {
        let meta = &mut self.core.meta[segment_of(slot)];
        meta.alive += 1;
        meta.max_score = meta.max_score.max(score);
        let blk = block_of(slot) % BLOCKS_PER_SEGMENT;
        meta.block_max[blk] = meta.block_max[blk].max(score);
    }

    #[inline]
    fn note_delete(&mut self, slot: Slot) {
        let meta = &mut self.core.meta[segment_of(slot)];
        meta.alive -= 1;
        if meta.alive == 0 {
            // Empty segment: the bounds reset exactly for free.
            meta.max_score = 0;
            meta.stale_ops = 0;
            meta.block_max = [0; BLOCKS_PER_SEGMENT];
        } else {
            meta.stale_ops = meta.stale_ops.saturating_add(1);
        }
    }

    /// Inserts a tuple with the given hidden score, returning its slot.
    ///
    /// Errors with [`DbError::DuplicateKey`] if the key is already alive.
    /// Shape validation against the schema happens in the database facade.
    pub fn insert(&mut self, tuple: Tuple, score: u64) -> Result<Slot, DbError> {
        let (key, values, measures) = tuple.into_parts();
        if self.key_to_slot.contains_key(&key.0) {
            return Err(DbError::DuplicateKey(key));
        }
        let slot = match self.free.pop() {
            Some(s) => {
                let (seg, off) = locate(s);
                self.seg_mut(seg).write_row(off, &values, &measures, key.0, score);
                self.enforce_budget(seg);
                s
            }
            None => {
                let s = self.core.allocated as Slot;
                let seg = segment_of(s);
                if seg == self.core.segs.len() {
                    let (attrs, ms) = (self.core.attr_count, self.core.measure_count);
                    self.core.segs.push(Arc::new(SegmentData::empty(attrs, ms)));
                    self.core.meta.push(SegmentMeta::default());
                    self.core.resident += 1;
                    if let Some(pager) = &self.core.pager {
                        pager.ensure_segments(self.core.segs.len());
                        pager.set_in_core(self.core.resident);
                    }
                }
                self.seg_mut(seg).push_row(&values, &measures, key.0, score);
                self.core.allocated += 1;
                self.enforce_budget(seg);
                s
            }
        };
        self.key_to_slot.insert(key.0, slot);
        self.core.alive_count += 1;
        self.note_insert(slot, score);
        Ok(slot)
    }

    /// Deletes the alive tuple with `key`, returning the freed slot.
    pub fn delete(&mut self, key: TupleKey) -> Result<Slot, DbError> {
        let slot = self.key_to_slot.remove(&key.0).ok_or(DbError::UnknownKey(key))?;
        let (seg, off) = locate(slot);
        self.seg_mut(seg).alive[off] = false;
        self.free.push(slot);
        self.core.alive_count -= 1;
        self.note_delete(slot);
        self.enforce_budget(seg);
        Ok(slot)
    }

    /// Overwrites the measures of an alive tuple in place (models a price
    /// change that does not move the tuple in the query tree).
    pub fn update_measures(&mut self, key: TupleKey, measures: &[f64]) -> Result<Slot, DbError> {
        let slot = self.slot_of(key).ok_or(DbError::UnknownKey(key))?;
        let (seg, off) = locate(slot);
        let data = self.seg_mut(seg);
        for (m, col) in data.measures.iter_mut().enumerate() {
            col[off] = measures[m];
        }
        self.enforce_budget(seg);
        Ok(slot)
    }

    /// Overwrites the hidden ranking score at `slot` (used when a measure
    /// update changes a measure-based rank). Raises the segment bound if
    /// needed; a lowered score leaves the old bound standing (still a
    /// valid upper bound) and marks the bound stale for maintenance.
    pub fn set_score(&mut self, slot: Slot, score: u64) {
        let (seg, off) = locate(slot);
        self.seg_mut(seg).scores[off] = score;
        self.enforce_budget(seg);
        let meta = &mut self.core.meta[seg];
        let blk = off >> BLOCK_SHIFT;
        // A raise must propagate to the slot's block bound immediately —
        // the tuple may now out-score its block's recorded maximum, and
        // block bounds must never understate. A drop leaves the block
        // bound standing (still a valid upper bound).
        meta.block_max[blk] = meta.block_max[blk].max(score);
        if score >= meta.max_score {
            // The new score meets or beats the old bound, so it *is* the
            // segment's true maximum: the bound snaps back to exact.
            meta.max_score = score;
            meta.stale_ops = 0;
        } else {
            // A drop below the bound may have demoted the previous
            // maximum holder; the bound stays sound but possibly loose.
            meta.stale_ops = meta.stale_ops.saturating_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(key: u64, vals: &[u32], ms: &[f64]) -> Tuple {
        Tuple::new(TupleKey(key), vals.iter().map(|&v| ValueId(v)).collect(), ms.to_vec())
    }

    #[test]
    fn insert_and_read_back() {
        let mut s = Store::new(2, 1);
        let slot = s.insert(t(1, &[0, 1], &[5.0]), 99).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.value_at(0, slot), 0);
        assert_eq!(s.value_at(1, slot), 1);
        assert_eq!(s.measure_at(0, slot), 5.0);
        assert_eq!(s.score_at(slot), 99);
        assert_eq!(s.key_at(slot), TupleKey(1));
        let v = s.view(slot);
        assert_eq!(v.key(), TupleKey(1));
        assert_eq!(v.values(), &[ValueId(0), ValueId(1)]);
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut s = Store::new(1, 0);
        s.insert(t(1, &[0], &[]), 0).unwrap();
        assert!(matches!(s.insert(t(1, &[0], &[]), 0), Err(DbError::DuplicateKey(TupleKey(1)))));
    }

    #[test]
    fn delete_frees_slot_for_reuse() {
        let mut s = Store::new(1, 0);
        let a = s.insert(t(1, &[0], &[]), 0).unwrap();
        s.insert(t(2, &[1], &[]), 0).unwrap();
        s.delete(TupleKey(1)).unwrap();
        assert_eq!(s.len(), 1);
        assert!(!s.is_alive(a));
        let b = s.insert(t(3, &[1], &[]), 0).unwrap();
        assert_eq!(a, b, "freed slot must be reused");
        assert_eq!(s.len(), 2);
        assert_eq!(s.key_at(b), TupleKey(3));
    }

    #[test]
    fn delete_unknown_key_errors() {
        let mut s = Store::new(1, 0);
        assert!(matches!(s.delete(TupleKey(9)), Err(DbError::UnknownKey(TupleKey(9)))));
        s.insert(t(9, &[0], &[]), 0).unwrap();
        s.delete(TupleKey(9)).unwrap();
        assert!(s.delete(TupleKey(9)).is_err(), "double delete must fail");
    }

    #[test]
    fn update_measures_in_place() {
        let mut s = Store::new(1, 2);
        let slot = s.insert(t(1, &[0], &[1.0, 2.0]), 0).unwrap();
        s.update_measures(TupleKey(1), &[3.0, 4.0]).unwrap();
        assert_eq!(s.measure_at(0, slot), 3.0);
        assert_eq!(s.measure_at(1, slot), 4.0);
    }

    #[test]
    fn alive_iteration() {
        let mut s = Store::new(1, 0);
        s.insert(t(1, &[0], &[]), 0).unwrap();
        s.insert(t(2, &[0], &[]), 0).unwrap();
        s.insert(t(3, &[0], &[]), 0).unwrap();
        s.delete(TupleKey(2)).unwrap();
        let mut keys: Vec<u64> = s.alive_keys().map(|(k, _)| k.0).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 3]);
        assert_eq!(s.alive_slots().count(), 2);
    }

    #[test]
    fn segment_alive_counts_track_mutations() {
        let mut s = Store::new(1, 0);
        for key in 0..10u64 {
            s.insert(t(key, &[0], &[]), key).unwrap();
        }
        assert_eq!(s.segment_count(), 1);
        assert_eq!(s.segment_alive(0), 10);
        for key in 0..4u64 {
            s.delete(TupleKey(key)).unwrap();
        }
        assert_eq!(s.segment_alive(0), 6);
        assert_eq!(s.live_segments().collect::<Vec<_>>(), vec![0]);
        assert_eq!(s.alive_slots_in(0).count(), 6);
        // Segment slot range is clamped to allocated slots.
        assert_eq!(s.segment_range(0), 0..10);
    }

    #[test]
    fn segment_max_score_is_an_upper_bound_and_resets_on_empty() {
        let mut s = Store::new(1, 0);
        s.insert(t(1, &[0], &[]), 50).unwrap();
        s.insert(t(2, &[0], &[]), 99).unwrap();
        assert_eq!(s.segment_max_score(0), 99);
        // Deleting the max holder leaves the (stale but sound) bound.
        s.delete(TupleKey(2)).unwrap();
        assert!(s.segment_max_score(0) >= 50);
        // Raising a score raises the bound.
        let slot = s.slot_of(TupleKey(1)).unwrap();
        s.set_score(slot, 200);
        assert_eq!(s.segment_max_score(0), 200);
        // Emptying the segment resets the bound exactly.
        s.delete(TupleKey(1)).unwrap();
        assert_eq!(s.segment_max_score(0), 0);
        assert_eq!(s.segment_alive(0), 0);
    }

    /// The exact-after-compact sibling of
    /// `segment_max_score_is_an_upper_bound_and_resets_on_empty`: after a
    /// recompute the bound must equal the true maximum, not merely bound
    /// it — and the staleness counter must reflect every loosening op.
    #[test]
    fn segment_max_score_is_exact_after_recompute() {
        let mut s = Store::new(1, 0);
        for key in 0..6u64 {
            s.insert(t(key, &[0], &[]), key * 10).unwrap();
        }
        assert_eq!(s.segment_bound_staleness(0), 0, "append-only bounds are exact");
        assert_eq!(s.segment_dead(0), 0);
        // Delete the two top scorers: the bound goes stale-high.
        s.delete(TupleKey(5)).unwrap();
        s.delete(TupleKey(4)).unwrap();
        assert_eq!(s.segment_max_score(0), 50, "lazy bound left standing");
        assert_eq!(s.segment_bound_staleness(0), 2);
        assert_eq!(s.segment_dead(0), 2);
        assert_eq!(s.stale_segments(), vec![0]);
        // Recompute: exact maximum over alive occupants, staleness reset.
        assert!(s.recompute_segment_bound(0), "bound must tighten");
        assert_eq!(s.segment_max_score(0), 30);
        assert_eq!(s.segment_bound_staleness(0), 0);
        assert!(s.stale_segments().is_empty());
        s.debug_assert_bound_exact(0);
        // A second recompute is a no-op.
        assert!(!s.recompute_segment_bound(0));
        // Score drops mark the bound stale; raises to/above the bound
        // snap it back to exact.
        let slot = s.slot_of(TupleKey(3)).unwrap();
        s.set_score(slot, 5);
        assert_eq!(s.segment_bound_staleness(0), 1);
        assert_eq!(s.segment_max_score(0), 30, "drop leaves the bound standing");
        s.set_score(slot, 99);
        assert_eq!(s.segment_bound_staleness(0), 0, "raise to a new max is exact again");
        assert_eq!(s.segment_max_score(0), 99);
        s.debug_assert_bound_exact(0);
    }

    /// Block-granularity sibling of `segment_max_score_is_exact_after_recompute`:
    /// per-block bounds never understate under deletes and score drops,
    /// and a recompute rebuilds every block bound exactly.
    #[test]
    fn block_max_scores_never_understate_and_are_exact_after_recompute() {
        let mut s = Store::new(1, 0);
        // Two blocks' worth of tuples: block 0 holds scores 0..BLOCK_SLOTS,
        // block 1 holds BLOCK_SLOTS..2*BLOCK_SLOTS (slot == key == score).
        let n = (2 * BLOCK_SLOTS) as u64;
        for key in 0..n {
            s.insert(t(key, &[0], &[]), key).unwrap();
        }
        assert_eq!(s.block_max_score(0), BLOCK_SLOTS as u64 - 1);
        assert_eq!(s.block_max_score(1), n - 1);
        assert!(s.block_max_score(0) <= s.segment_max_score(0));
        // Delete block 1's top two scorers: its bound goes stale-high but
        // must keep bounding the survivors; block 0's bound is untouched.
        s.delete(TupleKey(n - 1)).unwrap();
        s.delete(TupleKey(n - 2)).unwrap();
        assert_eq!(s.block_max_score(1), n - 1, "lazy block bound left standing");
        assert!(s.block_max_score(1) >= n - 3, "bound must cover survivors");
        // A score drop inside block 0 marks the segment stale but leaves
        // the (sound) block bound in place.
        let slot = s.slot_of(TupleKey(7)).unwrap();
        s.set_score(slot, 1);
        assert_eq!(s.block_max_score(0), BLOCK_SLOTS as u64 - 1);
        // A raise above the block bound must propagate immediately.
        s.set_score(slot, 10_000);
        assert_eq!(s.block_max_score(0), 10_000);
        assert_eq!(s.segment_max_score(0), 10_000);
        // Recompute rebuilds every block bound exactly.
        s.set_score(slot, 7);
        assert!(s.recompute_segment_bound(0));
        assert_eq!(s.block_max_score(0), BLOCK_SLOTS as u64 - 1);
        assert_eq!(s.block_max_score(1), n - 3);
        s.debug_assert_bound_exact(0);
        // Emptying a block (but not the segment) and recomputing resets
        // that block's bound to zero exactly.
        for key in BLOCK_SLOTS as u64..n - 2 {
            s.delete(TupleKey(key)).unwrap();
        }
        s.recompute_segment_bound(0);
        assert_eq!(s.block_max_score(1), 0, "empty block rebuilds to zero");
        assert_eq!(s.block_max_score(0), BLOCK_SLOTS as u64 - 1);
        s.debug_assert_bound_exact(0);
    }

    #[test]
    fn emptying_a_segment_clears_staleness_too() {
        let mut s = Store::new(1, 0);
        s.insert(t(1, &[0], &[]), 10).unwrap();
        s.insert(t(2, &[0], &[]), 20).unwrap();
        s.delete(TupleKey(2)).unwrap();
        assert_eq!(s.segment_bound_staleness(0), 1);
        s.delete(TupleKey(1)).unwrap();
        assert_eq!(s.segment_bound_staleness(0), 0, "empty segment is exactly bounded");
        assert_eq!(s.segment_max_score(0), 0);
        s.debug_assert_bound_exact(0);
    }

    #[test]
    fn segment_orderings_are_deterministic() {
        let mut s = Store::new(1, 0);
        // Only one segment exists at this size, but the orderings must
        // still be internally consistent.
        for key in 0..5u64 {
            s.insert(t(key, &[0], &[]), key * 10).unwrap();
        }
        let desc = s.segments_by_score_desc();
        assert_eq!(desc, vec![(0, 40)]);
        let suffix = s.segment_suffix_max();
        assert_eq!(suffix, vec![40]);
    }

    /// A cloned `StoreCore` is an immutable snapshot: segment-granular
    /// copy-on-write means later writer mutations never show through, and
    /// untouched segments keep sharing the same blocks.
    #[test]
    fn core_clone_is_isolated_from_later_mutations() {
        let mut s = Store::new(1, 1);
        for key in 0..8u64 {
            s.insert(t(key, &[0], &[key as f64]), key * 10).unwrap();
        }
        let snap = s.core().clone();
        assert!(Arc::ptr_eq(&snap.segs[0], &s.core.segs[0]), "clone shares segment blocks");

        s.delete(TupleKey(3)).unwrap();
        s.update_measures(TupleKey(5), &[99.0]).unwrap();
        s.insert(t(100, &[0], &[1.0]), 500).unwrap();

        // The snapshot still sees the pre-mutation world, bit for bit.
        assert_eq!(snap.len(), 8);
        assert!(snap.is_alive(3));
        assert_eq!(snap.measure_at(0, 5), 5.0);
        assert_eq!(snap.segment_max_score(0), 70);
        assert_eq!(snap.alive_slots().count(), 8);
        // The writer moved on (slot 3 reused by key 100, score bound up).
        assert_eq!(s.len(), 8);
        assert_eq!(s.key_at(3), TupleKey(100));
        assert_eq!(s.segment_max_score(0), 500);
        assert!(!Arc::ptr_eq(&snap.segs[0], &s.core.segs[0]), "writer copied on write");
    }

    fn pager_dir(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("hidden-db-store-{}-{name}", std::process::id()))
    }

    fn paged(name: &str, attr_count: usize, measure_count: usize, budget: usize) -> Store {
        let dir = pager_dir(name);
        let pager = crate::persist::Pager::open(&dir, attr_count, measure_count, budget)
            .expect("pager open");
        let mut s = Store::new(attr_count, measure_count);
        s.attach_pager(pager);
        s
    }

    /// The paging oracle at store granularity: a budget-2 paged store
    /// over 3 segments answers every read identically to the plain
    /// in-RAM store across inserts, deletes, reuse, measure updates and
    /// score raises — while actually spilling and faulting.
    #[test]
    fn paged_store_matches_plain_store_bit_for_bit() {
        let n = (SEGMENT_SLOTS * 2 + 100) as u64; // 3 segments
        let mut plain = Store::new(1, 1);
        let mut disk = paged("oracle", 1, 1, 2);
        for s in [&mut plain, &mut disk] {
            for key in 0..n {
                s.insert(t(key, &[0], &[key as f64]), key % 997).unwrap();
            }
            // Churn across all three segments: deletes (slot reuse),
            // measure updates, score raises.
            for key in (0..n).step_by(513) {
                s.delete(TupleKey(key)).unwrap();
            }
            for key in (1..n).step_by(771) {
                s.update_measures(TupleKey(key), &[-1.0]).unwrap();
            }
            for key in (2..n).step_by(997) {
                let slot = s.slot_of(TupleKey(key)).unwrap();
                s.set_score(slot, 50_000 + key);
            }
            for key in 0..64u64 {
                s.insert(t(n + key, &[0], &[0.0]), 40_000 + key).unwrap();
            }
        }

        assert_eq!(disk.len(), plain.len());
        assert_eq!(disk.slot_bound(), plain.slot_bound());
        assert_eq!(disk.alive_slots().collect::<Vec<_>>(), plain.alive_slots().collect::<Vec<_>>());
        for slot in plain.alive_slots().collect::<Vec<_>>() {
            assert_eq!(disk.key_at(slot), plain.key_at(slot));
            assert_eq!(disk.score_at(slot), plain.score_at(slot));
            assert_eq!(disk.value_at(0, slot), plain.value_at(0, slot));
            assert_eq!(disk.measure_at(0, slot), plain.measure_at(0, slot));
        }
        for seg in 0..plain.segment_count() {
            assert_eq!(disk.segment_max_score(seg), plain.segment_max_score(seg));
            assert_eq!(disk.segment_bound_staleness(seg), plain.segment_bound_staleness(seg));
        }
        for blk in 0..plain.segment_count() * BLOCKS_PER_SEGMENT {
            assert_eq!(disk.block_max_score(blk), plain.block_max_score(blk));
        }

        let pager = disk.core().pager().expect("pager attached").clone();
        let stats = pager.stats();
        assert!(stats.segments_spilled > 0, "budget 2 over 3 segments must spill");
        assert!(stats.segments_faulted > 0, "churn across segments must fault");
        assert!(
            stats.peak_resident_segments <= pager.total_budget() as u64,
            "peak residency {} exceeded the budget {}",
            stats.peak_resident_segments,
            pager.total_budget()
        );
    }

    /// Cloning a paged core materialises every evicted segment and
    /// detaches from the pager: the snapshot is fully in-RAM, immune to
    /// later evictions, and identical to the paged view.
    #[test]
    fn paged_core_clone_materializes_and_detaches() {
        let n = (SEGMENT_SLOTS * 2 + 10) as u64;
        let mut s = paged("clone", 1, 0, 2);
        for key in 0..n {
            s.insert(t(key, &[0], &[]), key).unwrap();
        }
        assert!(
            s.core().segs.iter().any(|d| d.evicted),
            "3 segments at budget 2 must leave one evicted"
        );
        let snap = s.core().clone();
        assert!(snap.pager().is_none(), "clone must not depend on the pager");
        assert!(snap.segs.iter().all(|d| !d.evicted), "clone materialises everything");
        assert_eq!(snap.len(), s.len());
        assert_eq!(snap.alive_slots().count(), n as usize);
        // Writer keeps moving; the snapshot is frozen.
        s.delete(TupleKey(0)).unwrap();
        assert!(snap.is_alive(0));
    }
}
