//! Columnar slot-based tuple storage.
//!
//! Tuples live in *slots*; deleting a tuple frees its slot for reuse by a
//! later insert. All hot query-evaluation paths index columns directly by
//! slot, so matching a predicate against a candidate tuple is two array
//! loads. External identity is the [`TupleKey`], which is never reused.

use std::collections::HashMap;

use crate::errors::DbError;
use crate::tuple::{Tuple, TupleView};
use crate::value::{TupleKey, ValueId};

/// Slot index within the store. Internal; never exposed through the
/// search interface.
pub type Slot = u32;

/// Columnar storage for tuples plus the per-tuple hidden ranking score.
#[derive(Debug, Clone)]
pub struct Store {
    /// `columns[a][slot]` = value code of attribute `a` for that slot.
    columns: Vec<Vec<u32>>,
    /// `measure_cols[m][slot]` = measure value.
    measure_cols: Vec<Vec<f64>>,
    /// `keys[slot]` = external key of the occupant (stale if dead).
    keys: Vec<u64>,
    /// `scores[slot]` = hidden ranking score of the occupant.
    scores: Vec<u64>,
    /// Liveness per slot.
    alive: Vec<bool>,
    /// Free slots available for reuse.
    free: Vec<Slot>,
    /// Alive key → slot.
    key_to_slot: HashMap<u64, Slot>,
    alive_count: usize,
}

impl Store {
    /// Creates an empty store for `attr_count` attributes and
    /// `measure_count` measures.
    pub fn new(attr_count: usize, measure_count: usize) -> Self {
        Self {
            columns: vec![Vec::new(); attr_count],
            measure_cols: vec![Vec::new(); measure_count],
            keys: Vec::new(),
            scores: Vec::new(),
            alive: Vec::new(),
            free: Vec::new(),
            key_to_slot: HashMap::new(),
            alive_count: 0,
        }
    }

    /// Number of alive tuples (`|D|`).
    pub fn len(&self) -> usize {
        self.alive_count
    }

    /// Whether the store holds no alive tuples.
    pub fn is_empty(&self) -> bool {
        self.alive_count == 0
    }

    /// Total slots allocated (alive + dead); the exclusive upper bound of
    /// valid slot indices.
    pub fn slot_bound(&self) -> Slot {
        self.keys.len() as Slot
    }

    /// Whether `slot` currently holds an alive tuple.
    #[inline]
    pub fn is_alive(&self, slot: Slot) -> bool {
        self.alive[slot as usize]
    }

    /// Value code of attribute `attr_idx` at `slot` (caller guarantees the
    /// slot is alive).
    #[inline]
    pub fn value_at(&self, attr_idx: usize, slot: Slot) -> u32 {
        self.columns[attr_idx][slot as usize]
    }

    /// Measure value at `slot`.
    #[inline]
    pub fn measure_at(&self, measure_idx: usize, slot: Slot) -> f64 {
        self.measure_cols[measure_idx][slot as usize]
    }

    /// Hidden ranking score at `slot`.
    #[inline]
    pub fn score_at(&self, slot: Slot) -> u64 {
        self.scores[slot as usize]
    }

    /// External key at `slot`.
    #[inline]
    pub fn key_at(&self, slot: Slot) -> TupleKey {
        TupleKey(self.keys[slot as usize])
    }

    /// Slot of an alive tuple by key.
    pub fn slot_of(&self, key: TupleKey) -> Option<Slot> {
        self.key_to_slot.get(&key.0).copied()
    }

    /// Inserts a tuple with the given hidden score, returning its slot.
    ///
    /// Errors with [`DbError::DuplicateKey`] if the key is already alive.
    /// Shape validation against the schema happens in the database facade.
    pub fn insert(&mut self, tuple: Tuple, score: u64) -> Result<Slot, DbError> {
        let (key, values, measures) = tuple.into_parts();
        if self.key_to_slot.contains_key(&key.0) {
            return Err(DbError::DuplicateKey(key));
        }
        let slot = match self.free.pop() {
            Some(s) => {
                let i = s as usize;
                for (a, col) in self.columns.iter_mut().enumerate() {
                    col[i] = values[a].0;
                }
                for (m, col) in self.measure_cols.iter_mut().enumerate() {
                    col[i] = measures[m];
                }
                self.keys[i] = key.0;
                self.scores[i] = score;
                self.alive[i] = true;
                s
            }
            None => {
                let s = self.keys.len() as Slot;
                for (a, col) in self.columns.iter_mut().enumerate() {
                    col.push(values[a].0);
                }
                for (m, col) in self.measure_cols.iter_mut().enumerate() {
                    col.push(measures[m]);
                }
                self.keys.push(key.0);
                self.scores.push(score);
                self.alive.push(true);
                s
            }
        };
        self.key_to_slot.insert(key.0, slot);
        self.alive_count += 1;
        Ok(slot)
    }

    /// Deletes the alive tuple with `key`, returning the freed slot.
    pub fn delete(&mut self, key: TupleKey) -> Result<Slot, DbError> {
        let slot = self.key_to_slot.remove(&key.0).ok_or(DbError::UnknownKey(key))?;
        self.alive[slot as usize] = false;
        self.free.push(slot);
        self.alive_count -= 1;
        Ok(slot)
    }

    /// Overwrites the measures of an alive tuple in place (models a price
    /// change that does not move the tuple in the query tree).
    pub fn update_measures(&mut self, key: TupleKey, measures: &[f64]) -> Result<Slot, DbError> {
        let slot = self.slot_of(key).ok_or(DbError::UnknownKey(key))?;
        for (m, col) in self.measure_cols.iter_mut().enumerate() {
            col[slot as usize] = measures[m];
        }
        Ok(slot)
    }

    /// Overwrites the hidden ranking score at `slot` (used when a measure
    /// update changes a measure-based rank).
    pub fn set_score(&mut self, slot: Slot, score: u64) {
        self.scores[slot as usize] = score;
    }

    /// Materialises a read-only view of the tuple at `slot`.
    pub fn view(&self, slot: Slot) -> TupleView {
        let i = slot as usize;
        let values: Box<[ValueId]> = self.columns.iter().map(|col| ValueId(col[i])).collect();
        let measures: Box<[f64]> = self.measure_cols.iter().map(|col| col[i]).collect();
        TupleView::new(TupleKey(self.keys[i]), values, measures)
    }

    /// Iterates over the slots of all alive tuples.
    pub fn alive_slots(&self) -> impl Iterator<Item = Slot> + '_ {
        self.alive.iter().enumerate().filter(|(_, &a)| a).map(|(i, _)| i as Slot)
    }

    /// Iterates over `(key, slot)` of all alive tuples in unspecified order.
    pub fn alive_keys(&self) -> impl Iterator<Item = (TupleKey, Slot)> + '_ {
        self.key_to_slot.iter().map(|(&k, &s)| (TupleKey(k), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(key: u64, vals: &[u32], ms: &[f64]) -> Tuple {
        Tuple::new(TupleKey(key), vals.iter().map(|&v| ValueId(v)).collect(), ms.to_vec())
    }

    #[test]
    fn insert_and_read_back() {
        let mut s = Store::new(2, 1);
        let slot = s.insert(t(1, &[0, 1], &[5.0]), 99).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.value_at(0, slot), 0);
        assert_eq!(s.value_at(1, slot), 1);
        assert_eq!(s.measure_at(0, slot), 5.0);
        assert_eq!(s.score_at(slot), 99);
        assert_eq!(s.key_at(slot), TupleKey(1));
        let v = s.view(slot);
        assert_eq!(v.key(), TupleKey(1));
        assert_eq!(v.values(), &[ValueId(0), ValueId(1)]);
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut s = Store::new(1, 0);
        s.insert(t(1, &[0], &[]), 0).unwrap();
        assert!(matches!(s.insert(t(1, &[0], &[]), 0), Err(DbError::DuplicateKey(TupleKey(1)))));
    }

    #[test]
    fn delete_frees_slot_for_reuse() {
        let mut s = Store::new(1, 0);
        let a = s.insert(t(1, &[0], &[]), 0).unwrap();
        s.insert(t(2, &[1], &[]), 0).unwrap();
        s.delete(TupleKey(1)).unwrap();
        assert_eq!(s.len(), 1);
        assert!(!s.is_alive(a));
        let b = s.insert(t(3, &[1], &[]), 0).unwrap();
        assert_eq!(a, b, "freed slot must be reused");
        assert_eq!(s.len(), 2);
        assert_eq!(s.key_at(b), TupleKey(3));
    }

    #[test]
    fn delete_unknown_key_errors() {
        let mut s = Store::new(1, 0);
        assert!(matches!(s.delete(TupleKey(9)), Err(DbError::UnknownKey(TupleKey(9)))));
        s.insert(t(9, &[0], &[]), 0).unwrap();
        s.delete(TupleKey(9)).unwrap();
        assert!(s.delete(TupleKey(9)).is_err(), "double delete must fail");
    }

    #[test]
    fn update_measures_in_place() {
        let mut s = Store::new(1, 2);
        let slot = s.insert(t(1, &[0], &[1.0, 2.0]), 0).unwrap();
        s.update_measures(TupleKey(1), &[3.0, 4.0]).unwrap();
        assert_eq!(s.measure_at(0, slot), 3.0);
        assert_eq!(s.measure_at(1, slot), 4.0);
    }

    #[test]
    fn alive_iteration() {
        let mut s = Store::new(1, 0);
        s.insert(t(1, &[0], &[]), 0).unwrap();
        s.insert(t(2, &[0], &[]), 0).unwrap();
        s.insert(t(3, &[0], &[]), 0).unwrap();
        s.delete(TupleKey(2)).unwrap();
        let mut keys: Vec<u64> = s.alive_keys().map(|(k, _)| k.0).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 3]);
        assert_eq!(s.alive_slots().count(), 2);
    }
}
