//! Tuples as inserted by workload generators and as returned (read-only)
//! by the search interface.

use crate::value::{AttrId, MeasureId, TupleKey, ValueId};

/// An owned tuple: one categorical value per attribute (in schema order)
/// plus one `f64` per measure.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    key: TupleKey,
    values: Vec<ValueId>,
    measures: Vec<f64>,
}

impl Tuple {
    /// Creates a tuple. `values.len()` must equal the schema's attribute
    /// count and `measures.len()` its measure count; this is validated at
    /// insert time by the database, not here.
    pub fn new(key: TupleKey, values: Vec<ValueId>, measures: Vec<f64>) -> Self {
        Self { key, values, measures }
    }

    /// The tuple's stable external key.
    pub fn key(&self) -> TupleKey {
        self.key
    }

    /// Categorical values in schema order.
    pub fn values(&self) -> &[ValueId] {
        &self.values
    }

    /// Measure values in schema order.
    pub fn measures(&self) -> &[f64] {
        &self.measures
    }

    /// Value of attribute `attr` (`t[A_i]` in the paper).
    pub fn value(&self, attr: AttrId) -> ValueId {
        self.values[attr.index()]
    }

    /// Value of measure `m`.
    pub fn measure(&self, m: MeasureId) -> f64 {
        self.measures[m.index()]
    }

    /// Consumes the tuple into its parts.
    pub fn into_parts(self) -> (TupleKey, Vec<ValueId>, Vec<f64>) {
        (self.key, self.values, self.measures)
    }
}

/// A read-only snapshot of a tuple as returned through the search
/// interface. This is what estimators see: the key, the categorical values,
/// and the measures — but **not** the hidden ranking score.
#[derive(Debug, Clone, PartialEq)]
pub struct TupleView {
    key: TupleKey,
    values: Box<[ValueId]>,
    measures: Box<[f64]>,
}

impl TupleView {
    pub(crate) fn new(key: TupleKey, values: Box<[ValueId]>, measures: Box<[f64]>) -> Self {
        Self { key, values, measures }
    }

    /// The tuple's stable external key.
    pub fn key(&self) -> TupleKey {
        self.key
    }

    /// Categorical values in schema order.
    pub fn values(&self) -> &[ValueId] {
        &self.values
    }

    /// Measure values in schema order.
    pub fn measures(&self) -> &[f64] {
        &self.measures
    }

    /// Value of attribute `attr`.
    pub fn value(&self, attr: AttrId) -> ValueId {
        self.values[attr.index()]
    }

    /// Value of measure `m`.
    pub fn measure(&self, m: MeasureId) -> f64 {
        self.measures[m.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_accessors() {
        let t = Tuple::new(TupleKey(7), vec![ValueId(1), ValueId(0)], vec![19.5]);
        assert_eq!(t.key(), TupleKey(7));
        assert_eq!(t.value(AttrId(0)), ValueId(1));
        assert_eq!(t.value(AttrId(1)), ValueId(0));
        assert_eq!(t.measure(MeasureId(0)), 19.5);
        let (k, v, m) = t.into_parts();
        assert_eq!(k, TupleKey(7));
        assert_eq!(v.len(), 2);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn view_accessors() {
        let v = TupleView::new(
            TupleKey(3),
            vec![ValueId(2)].into_boxed_slice(),
            vec![1.0, 2.0].into_boxed_slice(),
        );
        assert_eq!(v.key(), TupleKey(3));
        assert_eq!(v.value(AttrId(0)), ValueId(2));
        assert_eq!(v.measure(MeasureId(1)), 2.0);
        assert_eq!(v.values().len(), 1);
    }
}
