//! Batched updates: the unit of change between rounds (round-update model,
//! §2.1) or at arbitrary instants (constant-update model, §5.2).

use crate::tuple::Tuple;
use crate::value::TupleKey;

/// A set of modifications applied atomically to the database.
///
/// Application order is **deletes → measure updates → inserts**, so a batch
/// can delete a key and re-insert it (a "changed tuple") in one step.
#[derive(Debug, Clone, Default)]
pub struct UpdateBatch {
    /// Keys to delete.
    pub deletes: Vec<TupleKey>,
    /// In-place measure overwrites: `(key, new measures)`.
    pub measure_updates: Vec<(TupleKey, Vec<f64>)>,
    /// Tuples to insert.
    pub inserts: Vec<Tuple>,
}

impl UpdateBatch {
    /// An empty batch (a round in which nothing changes).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Whether the batch performs no modifications.
    pub fn is_empty(&self) -> bool {
        self.deletes.is_empty() && self.inserts.is_empty() && self.measure_updates.is_empty()
    }

    /// Total number of elementary modifications.
    pub fn len(&self) -> usize {
        self.deletes.len() + self.inserts.len() + self.measure_updates.len()
    }

    /// Builder: adds a delete.
    #[must_use]
    pub fn delete(mut self, key: TupleKey) -> Self {
        self.deletes.push(key);
        self
    }

    /// Builder: adds an insert.
    #[must_use]
    pub fn insert(mut self, tuple: Tuple) -> Self {
        self.inserts.push(tuple);
        self
    }

    /// Builder: adds a measure update.
    #[must_use]
    pub fn update_measures(mut self, key: TupleKey, measures: Vec<f64>) -> Self {
        self.measure_updates.push((key, measures));
        self
    }
}

/// What an applied batch did (for experiment logging).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateSummary {
    /// Tuples removed.
    pub deleted: usize,
    /// Tuples added.
    pub inserted: usize,
    /// Tuples whose measures changed in place.
    pub measures_updated: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueId;

    #[test]
    fn builder_accumulates() {
        let b = UpdateBatch::empty()
            .delete(TupleKey(1))
            .insert(Tuple::new(TupleKey(2), vec![ValueId(0)], vec![]))
            .update_measures(TupleKey(3), vec![1.0]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.deletes, vec![TupleKey(1)]);
        assert_eq!(b.measure_updates[0].0, TupleKey(3));
    }

    #[test]
    fn empty_batch() {
        assert!(UpdateBatch::empty().is_empty());
        assert_eq!(UpdateBatch::empty().len(), 0);
    }
}
