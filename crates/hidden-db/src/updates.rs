//! Batched updates: the unit of change between rounds (round-update model,
//! §2.1) or at arbitrary instants (constant-update model, §5.2) — plus the
//! [`UpdateFootprint`] an applied batch leaves behind, which drives the
//! query memo's postings-aware incremental invalidation.

use crate::store::Slot;
use crate::tuple::Tuple;
use crate::value::{AttrId, TupleKey, ValueId};

/// A set of modifications applied atomically to the database.
///
/// Application order is **deletes → measure updates → inserts**, so a batch
/// can delete a key and re-insert it (a "changed tuple") in one step.
#[derive(Debug, Clone, Default)]
pub struct UpdateBatch {
    /// Keys to delete.
    pub deletes: Vec<TupleKey>,
    /// In-place measure overwrites: `(key, new measures)`.
    pub measure_updates: Vec<(TupleKey, Vec<f64>)>,
    /// Tuples to insert.
    pub inserts: Vec<Tuple>,
}

impl UpdateBatch {
    /// An empty batch (a round in which nothing changes).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Whether the batch performs no modifications.
    pub fn is_empty(&self) -> bool {
        self.deletes.is_empty() && self.inserts.is_empty() && self.measure_updates.is_empty()
    }

    /// Total number of elementary modifications.
    pub fn len(&self) -> usize {
        self.deletes.len() + self.inserts.len() + self.measure_updates.len()
    }

    /// Builder: adds a delete.
    #[must_use]
    pub fn delete(mut self, key: TupleKey) -> Self {
        self.deletes.push(key);
        self
    }

    /// Builder: adds an insert.
    #[must_use]
    pub fn insert(mut self, tuple: Tuple) -> Self {
        self.inserts.push(tuple);
        self
    }

    /// Builder: adds a measure update.
    #[must_use]
    pub fn update_measures(mut self, key: TupleKey, measures: Vec<f64>) -> Self {
        self.measure_updates.push((key, measures));
        self
    }
}

/// The set of postings (and slots) a mutation actually touched.
///
/// Every elementary change records the full `(attribute, value)` row of the
/// tuple it affected: the values of an inserted or deleted tuple, and the
/// values of a tuple whose measures — hence possibly its hidden rank score
/// — changed in place. A cached query can only have gained, lost, or
/// reordered results if one of the touched tuples *matches* it, and a tuple
/// matches a query exactly when the query's predicate set is a subset of
/// the tuple's postings. The memo therefore drops a cached entry iff its
/// predicate set intersects this footprint (the root query, whose predicate
/// set is empty, is affected by any non-empty footprint), plus — belt and
/// braces — any entry whose cached result page contains a touched slot.
///
/// The footprint is accumulated op by op while a batch applies, so a batch
/// that fails mid-way still describes exactly the prefix that *did* apply.
#[derive(Debug, Clone, Default)]
pub struct UpdateFootprint {
    /// Touched `(attr, value)` postings; sorted + deduped by [`Self::seal`].
    postings: Vec<(AttrId, ValueId)>,
    /// Touched slots; sorted + deduped by [`Self::seal`].
    slots: Vec<Slot>,
    /// Rows recorded since the last clear — a single-row footprint (the
    /// single-op mutation hot path) is sorted by construction, so its
    /// seal is O(1).
    rows: usize,
    sealed: bool,
}

impl UpdateFootprint {
    /// Records one touched tuple: its slot and its full value row in
    /// schema order. Plain vector appends — the whole batch is collected
    /// in one pass and sorted once at [`Self::seal`], not per op.
    pub fn record(&mut self, slot: Slot, values: &[ValueId]) {
        for (a, &v) in values.iter().enumerate() {
            self.postings.push((AttrId(a as u16), v));
        }
        self.slots.push(slot);
        self.rows += 1;
        self.sealed = false;
    }

    /// Empties the footprint, keeping its buffers (scratch reuse across
    /// mutations).
    pub fn clear(&mut self) {
        self.postings.clear();
        self.slots.clear();
        self.rows = 0;
        self.sealed = false;
    }

    /// Whether no change was recorded (the mutation was a true no-op).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty() && self.postings.is_empty()
    }

    /// Sorts and dedupes the posting/slot sets so the `affects_*` probes
    /// can binary-search. Called once by the memo before invalidating.
    /// A single-row footprint is already sorted (one slot; postings in
    /// strictly ascending attribute order) and skips the sort entirely.
    pub fn seal(&mut self) {
        if self.sealed {
            return;
        }
        if self.rows > 1 {
            self.postings.sort_unstable();
            self.postings.dedup();
            self.slots.sort_unstable();
            self.slots.dedup();
        }
        self.sealed = true;
    }

    /// The touched postings (sorted after [`Self::seal`]).
    pub fn postings(&self) -> &[(AttrId, ValueId)] {
        &self.postings
    }

    /// The touched slots (sorted + deduped after [`Self::seal`]) — what
    /// the memo's revalidation tracks per demoted entry so the
    /// lookup-time re-check knows exactly where churn landed.
    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    /// Number of elementary changes recorded (NOT deduped — a slot
    /// deleted and refilled twice counts twice). An upper bound on how
    /// many matching tuples any one query can have lost, which is the
    /// conservative margin revalidation subtracts from a cached overflow
    /// entry's match count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether a cached answer to `query` may have changed: its predicate
    /// set intersects the touched postings. The root query (no predicates)
    /// is affected by any non-empty footprint, since every tuple matches it.
    ///
    /// Must be called after [`Self::seal`].
    pub fn affects_query(&self, query: &crate::query::ConjunctiveQuery) -> bool {
        debug_assert!(self.sealed, "footprint must be sealed before probing");
        if query.is_empty() {
            return !self.is_empty();
        }
        query.predicates().iter().any(|p| self.postings.binary_search(&(p.attr, p.value)).is_ok())
    }

    /// Whether a cached result page references a touched slot. Subsumed by
    /// [`Self::affects_query`] for correctly-recorded footprints (a touched
    /// tuple in the page matches the query, so the predicate intersection
    /// already fires) — kept as a cheap independent safety net.
    ///
    /// Must be called after [`Self::seal`].
    pub fn affects_page(&self, page_slots: &[Slot]) -> bool {
        debug_assert!(self.sealed, "footprint must be sealed before probing");
        page_slots.iter().any(|s| self.slots.binary_search(s).is_ok())
    }
}

/// What an applied batch did (for experiment logging).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateSummary {
    /// Tuples removed.
    pub deleted: usize,
    /// Tuples added.
    pub inserted: usize,
    /// Tuples whose measures changed in place.
    pub measures_updated: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueId;

    #[test]
    fn builder_accumulates() {
        let b = UpdateBatch::empty()
            .delete(TupleKey(1))
            .insert(Tuple::new(TupleKey(2), vec![ValueId(0)], vec![]))
            .update_measures(TupleKey(3), vec![1.0]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.deletes, vec![TupleKey(1)]);
        assert_eq!(b.measure_updates[0].0, TupleKey(3));
    }

    #[test]
    fn empty_batch() {
        assert!(UpdateBatch::empty().is_empty());
        assert_eq!(UpdateBatch::empty().len(), 0);
    }

    #[test]
    fn footprint_intersection_semantics() {
        use crate::query::{ConjunctiveQuery, Predicate};
        use crate::value::AttrId;

        let mut fp = UpdateFootprint::default();
        assert!(fp.is_empty());
        fp.record(7, &[ValueId(1), ValueId(2)]);
        fp.record(7, &[ValueId(1), ValueId(2)]); // dup collapses on seal
        fp.seal();
        assert!(!fp.is_empty());
        assert_eq!(fp.postings(), &[(AttrId(0), ValueId(1)), (AttrId(1), ValueId(2))]);

        let root = ConjunctiveQuery::select_all();
        assert!(fp.affects_query(&root), "root is affected by any change");
        let hit = ConjunctiveQuery::from_predicates([Predicate::new(AttrId(1), ValueId(2))]);
        assert!(fp.affects_query(&hit));
        let miss = ConjunctiveQuery::from_predicates([Predicate::new(AttrId(1), ValueId(0))]);
        assert!(!fp.affects_query(&miss));
        // A query on the same value but a different attribute is unaffected.
        let cross = ConjunctiveQuery::from_predicates([Predicate::new(AttrId(0), ValueId(2))]);
        assert!(!fp.affects_query(&cross));

        assert!(fp.affects_page(&[3, 7]));
        assert!(!fp.affects_page(&[3, 8]));
    }

    #[test]
    fn empty_footprint_affects_nothing() {
        let mut fp = UpdateFootprint::default();
        fp.seal();
        assert!(!fp.affects_query(&crate::query::ConjunctiveQuery::select_all()));
        assert!(!fp.affects_page(&[0, 1, 2]));
    }
}
