//! Strongly-typed identifiers used throughout the hidden database.
//!
//! The paper's data model (§2.1) is a relation with `m` categorical
//! attributes `A_1 … A_m`, each with a finite domain `U_i`. We additionally
//! support *measure* columns (numeric payloads such as `Price`) that SUM/AVG
//! aggregates can reference; measures are **not searchable** through the
//! interface, mirroring real form interfaces where you can filter on
//! categorical facets but not on arbitrary numeric fields.

use std::fmt;

/// Index of a categorical attribute (`A_i` in the paper, zero-based here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u16);

/// Index of a value within an attribute's domain (`u_{ij}` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// Index of a measure (non-searchable numeric) column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MeasureId(pub u16);

/// Stable external identity of a tuple, unique across the database's whole
/// lifetime (survives slot reuse after deletion).
///
/// The interface intentionally exposes tuple keys: real web databases expose
/// item/listing identifiers (ASINs, listing ids), and the estimators never
/// rely on them for anything beyond debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleKey(pub u64);

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for MeasureId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

impl fmt::Display for TupleKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl AttrId {
    /// Returns the attribute index as a plain `usize` for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ValueId {
    /// Returns the value index as a plain `usize` for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl MeasureId {
    /// Returns the measure index as a plain `usize` for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(AttrId(3).to_string(), "A3");
        assert_eq!(ValueId(7).to_string(), "u7");
        assert_eq!(MeasureId(1).to_string(), "M1");
        assert_eq!(TupleKey(42).to_string(), "t42");
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(AttrId(65535).index(), 65535);
        assert_eq!(ValueId(12).index(), 12);
        assert_eq!(MeasureId(2).index(), 2);
    }

    #[test]
    fn ordering_follows_numeric_order() {
        assert!(AttrId(1) < AttrId(2));
        assert!(ValueId(0) < ValueId(1));
        assert!(TupleKey(5) < TupleKey(6));
    }
}
