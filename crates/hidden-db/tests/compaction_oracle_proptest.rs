//! Churn oracle for the maintenance subsystem: under arbitrary
//! interleavings of `apply` (including mid-way-failing batches),
//! `maintain` (zero, small, and unlimited budgets), and `evaluate`,
//! a maintained database — running every [`EvalConfig`] variant, the
//! default incremental memo policy, and cross-round revalidation — must
//! produce answers **bit-identical** to a never-compact,
//! wholesale-invalidation reference database, and to a memo-disabled
//! trusted oracle. Both ranking families run: `NewestFirst` (distinct
//! scores) and `ByMeasureDesc` over a tiny measure domain (heavy score
//! ties, so slot tie-breaks decide pages — the regime where an unsound
//! compaction that moved slots or loosened a bound would diverge first).

use hidden_db::database::HiddenDatabase;
use hidden_db::query::{ConjunctiveQuery, Predicate};
use hidden_db::ranking::ScoringPolicy;
use hidden_db::schema::Schema;
use hidden_db::tuple::Tuple;
use hidden_db::updates::UpdateBatch;
use hidden_db::value::{AttrId, MeasureId, TupleKey, ValueId};
use hidden_db::{EvalConfig, IntersectPolicy, InvalidationPolicy, MaintenanceBudget};
use proptest::prelude::*;

const DOMAINS: [u32; 2] = [3, 4];

/// One step of the interleaving.
#[derive(Debug, Clone)]
enum Step {
    /// Apply a batch assembled from the current alive-key set (indices
    /// modulo alive count; `poison` injects an unknown-key delete so the
    /// partial-failure path runs under maintenance too).
    Batch {
        delete_picks: Vec<usize>,
        update_picks: Vec<(usize, i32)>,
        inserts: Vec<(u32, u32, i32)>,
        poison: bool,
    },
    /// Run maintenance on the maintained databases only: 0 = no budget
    /// (pure no-op with an `exhausted` report), 1 = one segment's worth,
    /// 2 = unlimited (`compact`).
    Maintain(u8),
    /// Issue the query with the given optional predicates on A0/A1.
    Query { a0: Option<u32>, a1: Option<u32> },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    let batch = (
        prop::collection::vec(0..64usize, 0..3),
        prop::collection::vec((0..64usize, -4..4i32), 0..3),
        prop::collection::vec((0..DOMAINS[0], 0..DOMAINS[1], -4..4i32), 0..4),
        (0..6u32).prop_map(|v| v == 0),
    )
        .prop_map(|(delete_picks, update_picks, inserts, poison)| Step::Batch {
            delete_picks,
            update_picks,
            inserts,
            poison,
        });
    let maintain = (0..3u8).prop_map(Step::Maintain);
    let query = (0..DOMAINS[0] + 1, 0..DOMAINS[1] + 1).prop_map(|(a0, a1)| Step::Query {
        a0: (a0 < DOMAINS[0]).then_some(a0),
        a1: (a1 < DOMAINS[1]).then_some(a1),
    });
    prop_oneof![2 => batch, 2 => maintain, 3 => query]
}

fn build_query(a0: Option<u32>, a1: Option<u32>) -> ConjunctiveQuery {
    let mut preds = Vec::new();
    if let Some(v) = a0 {
        preds.push(Predicate::new(AttrId(0), ValueId(v)));
    }
    if let Some(v) = a1 {
        preds.push(Predicate::new(AttrId(1), ValueId(v)));
    }
    ConjunctiveQuery::from_predicates(preds)
}

fn build_batch(
    reference: &HiddenDatabase,
    next_key: &mut u64,
    delete_picks: &[usize],
    update_picks: &[(usize, i32)],
    inserts: &[(u32, u32, i32)],
    poison: bool,
) -> UpdateBatch {
    let alive = reference.alive_keys_sorted();
    let mut batch = UpdateBatch::empty();
    for (i, &pick) in delete_picks.iter().enumerate() {
        if poison && i == delete_picks.len() / 2 {
            batch = batch.delete(TupleKey(u64::MAX));
        }
        if !alive.is_empty() {
            batch = batch.delete(alive[pick % alive.len()]);
        }
    }
    if poison && delete_picks.is_empty() {
        batch = batch.delete(TupleKey(u64::MAX));
    }
    for &(pick, m) in update_picks {
        if !alive.is_empty() {
            batch = batch.update_measures(alive[pick % alive.len()], vec![m as f64]);
        }
    }
    for &(a0, a1, m) in inserts {
        let key = *next_key;
        *next_key += 1;
        batch =
            batch.insert(Tuple::new(TupleKey(key), vec![ValueId(a0), ValueId(a1)], vec![m as f64]));
    }
    batch
}

fn fresh_db(
    k: usize,
    scoring: ScoringPolicy,
    policy: InvalidationPolicy,
    config: EvalConfig,
) -> HiddenDatabase {
    let schema = Schema::with_domain_sizes(&DOMAINS, &["m"]).unwrap();
    let mut db = HiddenDatabase::new(schema, k, scoring);
    db.set_invalidation_policy(policy);
    db.set_eval_config(config);
    db
}

/// The maintained engine variants under test.
fn variants() -> Vec<(&'static str, EvalConfig)> {
    vec![
        ("recheck", EvalConfig { early_exit: false, intersect: IntersectPolicy::Recheck }),
        ("auto", EvalConfig { early_exit: true, intersect: IntersectPolicy::Auto }),
        ("gallop", EvalConfig { early_exit: true, intersect: IntersectPolicy::Gallop }),
        ("bitset", EvalConfig { early_exit: true, intersect: IntersectPolicy::Bitset }),
        // Maintain/compact interleavings must rebuild the per-block
        // max-score bounds exactly — a block-max skip consulting a bound
        // rebuilt wrong (understated) would drop page members.
        ("blockmax", EvalConfig { early_exit: true, intersect: IntersectPolicy::BlockMax }),
        ("auto-exhaustive", EvalConfig { early_exit: false, intersect: IntersectPolicy::Auto }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn maintained_databases_are_bit_identical_to_the_never_compact_reference(
        steps in prop::collection::vec(step_strategy(), 1..60),
        k in 1..5usize,
        newest_first in any::<bool>(),
    ) {
        let scoring = if newest_first {
            ScoringPolicy::NewestFirst
        } else {
            // Tiny measure domain: heavy score ties, slot tie-breaks
            // decide pages.
            ScoringPolicy::ByMeasureDesc(MeasureId(0))
        };
        // Never-compact references: the trusted memo-free oracle and the
        // PR 2 wholesale-invalidation baseline.
        let oracle = &mut fresh_db(
            k,
            scoring,
            InvalidationPolicy::Disabled,
            EvalConfig { early_exit: false, intersect: IntersectPolicy::Recheck },
        );
        let wholesale = &mut fresh_db(
            k,
            scoring,
            InvalidationPolicy::Wholesale,
            EvalConfig { early_exit: false, intersect: IntersectPolicy::Recheck },
        );
        // Maintained variants: every engine config, incremental memo with
        // revalidation (the default).
        let mut maintained: Vec<(&str, HiddenDatabase)> = variants()
            .into_iter()
            .map(|(name, config)| {
                (name, fresh_db(k, scoring, InvalidationPolicy::Incremental, config))
            })
            .collect();
        let mut next_key = 0u64;
        for step in &steps {
            match step {
                Step::Batch { delete_picks, update_picks, inserts, poison } => {
                    let batch = build_batch(
                        oracle, &mut next_key, delete_picks, update_picks, inserts, *poison,
                    );
                    let want = oracle.apply(batch.clone());
                    let got = wholesale.apply(batch.clone());
                    prop_assert_eq!(got.is_ok(), want.is_ok(), "wholesale: apply diverged");
                    for (name, db) in maintained.iter_mut() {
                        let got = db.apply(batch.clone());
                        prop_assert_eq!(got.is_ok(), want.is_ok(), "{}: apply diverged", name);
                        if let (Ok(g), Ok(w)) = (&got, &want) {
                            prop_assert_eq!(g, w, "{}: summary diverged", name);
                        }
                        prop_assert_eq!(db.len(), oracle.len(), "{}: |D| diverged", name);
                    }
                }
                Step::Maintain(budget) => {
                    // Reference databases never compact.
                    for (name, db) in maintained.iter_mut() {
                        let report = match budget {
                            0 => db.maintain(MaintenanceBudget::slots(0)),
                            1 => db.maintain(MaintenanceBudget::slots(
                                hidden_db::SEGMENT_SLOTS,
                            )),
                            _ => db.compact(),
                        };
                        if *budget == 0 {
                            prop_assert_eq!(
                                (report.segments_recomputed, report.lists_compacted),
                                (0, 0),
                                "{}: zero budget must do no work", name
                            );
                        }
                        if *budget == 2 {
                            prop_assert_eq!(
                                db.stale_segment_count(), 0,
                                "{}: compact leaves no stale bounds", name
                            );
                        }
                    }
                }
                Step::Query { a0, a1 } => {
                    let query = build_query(*a0, *a1);
                    let want = oracle.answer(&query);
                    let truth = oracle.exact_count(Some(&query));
                    // Independent classification oracle.
                    match truth {
                        0 => prop_assert!(want.is_underflow(), "{}: truth 0", &query),
                        n if n <= k as u64 => {
                            prop_assert!(want.is_valid(), "{}: truth {}", &query, n)
                        }
                        _ => prop_assert!(want.is_overflow(), "{}: truth {}", &query, truth),
                    }
                    let got = wholesale.answer(&query);
                    prop_assert_eq!(&got, &want, "wholesale diverged on {}", &query);
                    for (name, db) in maintained.iter_mut() {
                        let got = db.answer(&query);
                        prop_assert_eq!(
                            &got, &want,
                            "{}: diverged on {} (stale {})", name, &query, db.memo_stale_len()
                        );
                        for (gt, wt) in got.tuples().iter().zip(want.tuples()) {
                            prop_assert_eq!(gt.key(), wt.key());
                            prop_assert_eq!(gt.values(), wt.values());
                            for (gm, wm) in gt.measures().iter().zip(wt.measures()) {
                                prop_assert_eq!(gm.to_bits(), wm.to_bits());
                            }
                        }
                    }
                }
            }
        }
        // End-state parity: classification tallies and alive sets agree.
        let want = oracle.stats();
        for (name, db) in maintained.iter() {
            let got = db.stats();
            prop_assert_eq!(
                (got.answered, got.underflows, got.valids, got.overflows),
                (want.answered, want.underflows, want.valids, want.overflows),
                "{}: classification counters diverged", name
            );
            prop_assert_eq!(
                db.alive_keys_sorted(), oracle.alive_keys_sorted(),
                "{}: final alive set diverged", name
            );
            prop_assert_eq!(db.exact_count(None), oracle.exact_count(None));
        }
    }
}
