//! Evaluation-engine oracle: the segmented intersection/early-exit
//! engine must be **bit-identical** — outcome class, returned page
//! (keys, values, measure bits), and interface classification counters —
//! to the naive re-check-every-predicate reference evaluator
//! ([`IntersectPolicy::Recheck`] with early exits disabled, the PR 2
//! semantics), under random mutation streams, random 0–3-predicate
//! queries, and both ranking orders. For `NewestFirst` the expected page
//! is additionally recomputed from scratch inside the test (top-`k`
//! matching keys, descending), so the engines are checked against an
//! oracle that shares none of their code.

use hidden_db::database::HiddenDatabase;
use hidden_db::query::{ConjunctiveQuery, Predicate};
use hidden_db::ranking::ScoringPolicy;
use hidden_db::schema::Schema;
use hidden_db::tuple::Tuple;
use hidden_db::value::{AttrId, TupleKey, ValueId};
use hidden_db::{EvalConfig, IntersectPolicy, InvalidationPolicy};
use proptest::prelude::*;

const DOMAINS: [u32; 3] = [2, 3, 4];

#[derive(Debug, Clone)]
enum Step {
    /// Insert a tuple with the given values and measure.
    Insert(u32, u32, u32, i32),
    /// Delete the `pick % alive`-th alive key (no-op when empty).
    Delete(usize),
    /// Overwrite the measures of the `pick % alive`-th alive key.
    Update(usize, i32),
    /// Query with optional predicates per attribute
    /// (`DOMAINS[i]` encodes "unconstrained").
    Query(u32, u32, u32),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (0..DOMAINS[0], 0..DOMAINS[1], 0..DOMAINS[2], -99..99i32)
            .prop_map(|(a, b, c, m)| Step::Insert(a, b, c, m)),
        1 => (0..64usize).prop_map(Step::Delete),
        1 => (0..64usize, -99..99i32).prop_map(|(p, m)| Step::Update(p, m)),
        4 => (0..DOMAINS[0] + 1, 0..DOMAINS[1] + 1, 0..DOMAINS[2] + 1)
            .prop_map(|(a, b, c)| Step::Query(a, b, c)),
    ]
}

fn build_query(a: u32, b: u32, c: u32) -> ConjunctiveQuery {
    let mut preds = Vec::new();
    for (i, (v, dom)) in [a, b, c].into_iter().zip(DOMAINS).enumerate() {
        if v < dom {
            preds.push(Predicate::new(AttrId(i as u16), ValueId(v)));
        }
    }
    ConjunctiveQuery::from_predicates(preds)
}

fn fresh_db(k: usize, scoring: ScoringPolicy, config: EvalConfig) -> HiddenDatabase {
    let schema = Schema::with_domain_sizes(&DOMAINS, &["m"]).unwrap();
    let mut db = HiddenDatabase::new(schema, k, scoring);
    // Memo off: every answer exercises the evaluation engine itself.
    db.set_invalidation_policy(InvalidationPolicy::Disabled);
    db.set_eval_config(config);
    db
}

/// The engine variants under test; the first is the naive reference.
fn variants() -> Vec<(&'static str, EvalConfig)> {
    vec![
        (
            "recheck-reference",
            EvalConfig { early_exit: false, intersect: IntersectPolicy::Recheck },
        ),
        ("auto", EvalConfig { early_exit: true, intersect: IntersectPolicy::Auto }),
        ("gallop", EvalConfig { early_exit: true, intersect: IntersectPolicy::Gallop }),
        ("bitset", EvalConfig { early_exit: true, intersect: IntersectPolicy::Bitset }),
        ("blockmax", EvalConfig { early_exit: true, intersect: IntersectPolicy::BlockMax }),
        ("auto-exhaustive", EvalConfig { early_exit: false, intersect: IntersectPolicy::Auto }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn engine_is_bit_identical_to_recheck_reference(
        steps in prop::collection::vec(step_strategy(), 1..60),
        k in 1..5usize,
        newest_first in any::<bool>(),
    ) {
        let scoring =
            if newest_first { ScoringPolicy::NewestFirst } else { ScoringPolicy::default() };
        let mut dbs: Vec<(&str, HiddenDatabase)> = variants()
            .into_iter()
            .map(|(name, config)| (name, fresh_db(k, scoring, config)))
            .collect();
        let mut next_key = 0u64;
        for step in &steps {
            match *step {
                Step::Insert(a, b, c, m) => {
                    let tuple = Tuple::new(
                        TupleKey(next_key),
                        vec![ValueId(a), ValueId(b), ValueId(c)],
                        vec![m as f64],
                    );
                    next_key += 1;
                    for (_, db) in dbs.iter_mut() {
                        db.insert(tuple.clone()).unwrap();
                    }
                }
                Step::Delete(pick) => {
                    let alive = dbs[0].1.alive_keys_sorted();
                    if !alive.is_empty() {
                        let victim = alive[pick % alive.len()];
                        for (_, db) in dbs.iter_mut() {
                            db.delete(victim).unwrap();
                        }
                    }
                }
                Step::Update(pick, m) => {
                    let alive = dbs[0].1.alive_keys_sorted();
                    if !alive.is_empty() {
                        let victim = alive[pick % alive.len()];
                        for (_, db) in dbs.iter_mut() {
                            db.update_measures(victim, vec![m as f64]).unwrap();
                        }
                    }
                }
                Step::Query(a, b, c) => {
                    let query = build_query(a, b, c);
                    let (_, reference_db) = &mut dbs[0];
                    let want = reference_db.answer(&query);
                    let truth = reference_db.exact_count(Some(&query));

                    // Independent classification oracle.
                    match truth {
                        0 => prop_assert!(want.is_underflow(), "{query}: truth 0"),
                        n if n <= k as u64 => prop_assert!(want.is_valid(), "{query}: truth {n}"),
                        _ => prop_assert!(want.is_overflow(), "{query}: truth {truth}"),
                    }
                    // Independent page oracle for the transparent ranking.
                    if newest_first {
                        let mut matching: Vec<u64> = Vec::new();
                        reference_db.for_each_alive(|t| {
                            if t.matches(&query) {
                                matching.push(t.key().0);
                            }
                        });
                        matching.sort_unstable_by(|x, y| y.cmp(x));
                        matching.truncate(k);
                        let got: Vec<u64> = want.keys().map(|key| key.0).collect();
                        prop_assert_eq!(got, matching, "{}: page oracle", &query);
                    }

                    for (name, db) in dbs.iter_mut().skip(1) {
                        let got = db.answer(&query);
                        prop_assert_eq!(&got, &want, "{}: diverged on {}", name, &query);
                        prop_assert_eq!(got.class(), want.class(), "{}: class", name);
                        for (gt, wt) in got.tuples().iter().zip(want.tuples()) {
                            prop_assert_eq!(gt.key(), wt.key());
                            prop_assert_eq!(gt.values(), wt.values());
                            for (gm, wm) in gt.measures().iter().zip(wt.measures()) {
                                prop_assert_eq!(gm.to_bits(), wm.to_bits());
                            }
                        }
                    }
                }
            }
        }
        // Classification tallies agree across every variant, and every
        // database holds the same final state.
        let want_stats = dbs[0].1.stats();
        for (name, db) in dbs.iter().skip(1) {
            let got = db.stats();
            prop_assert_eq!(
                (got.answered, got.underflows, got.valids, got.overflows),
                (want_stats.answered, want_stats.underflows, want_stats.valids,
                 want_stats.overflows),
                "{}: classification counters diverged", name
            );
            prop_assert_eq!(
                db.alive_keys_sorted(), dbs[0].1.alive_keys_sorted(),
                "{}: final alive set diverged", name
            );
            prop_assert_eq!(db.exact_count(None), dbs[0].1.exact_count(None));
        }
    }
}
