//! Memo-consistency oracle: under arbitrary interleavings of update
//! batches (including batches that fail mid-way) and queries, a database
//! running postings-aware incremental invalidation must produce answers
//! **bit-identical** to a memo-disabled (always-uncached) database — and
//! to the legacy wholesale-clear baseline — at every step. A
//! tight-capacity variant rides along so the CLOCK admission/eviction
//! path is exercised under churn too.

use hidden_db::database::HiddenDatabase;
use hidden_db::query::{ConjunctiveQuery, Predicate};
use hidden_db::ranking::ScoringPolicy;
use hidden_db::schema::Schema;
use hidden_db::tuple::Tuple;
use hidden_db::updates::UpdateBatch;
use hidden_db::value::{AttrId, TupleKey, ValueId};
use hidden_db::InvalidationPolicy;
use proptest::prelude::*;

const DOMAINS: [u32; 2] = [3, 4];

/// One step of the interleaving.
#[derive(Debug, Clone)]
enum Step {
    /// Apply a batch assembled from the current alive-key set. Indices are
    /// taken modulo the alive count; duplicate picks make the batch fail
    /// mid-way organically (second delete of the same key → `UnknownKey`),
    /// and `poison` injects a guaranteed-unknown delete to force the
    /// partial-failure path deterministically.
    Batch {
        delete_picks: Vec<usize>,
        update_picks: Vec<(usize, i32)>,
        inserts: Vec<(u32, u32, i32)>,
        poison: bool,
    },
    /// Issue the query with the given optional predicates on A0/A1.
    Query { a0: Option<u32>, a1: Option<u32> },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    let batch = (
        prop::collection::vec(0..64usize, 0..3),
        prop::collection::vec((0..64usize, -50..50i32), 0..3),
        prop::collection::vec((0..DOMAINS[0], 0..DOMAINS[1], -50..50i32), 0..4),
        // ~20 % of batches are poisoned with an unknown-key delete.
        (0..5u32).prop_map(|v| v == 0),
    )
        .prop_map(|(delete_picks, update_picks, inserts, poison)| Step::Batch {
            delete_picks,
            update_picks,
            inserts,
            poison,
        });
    // `DOMAINS[i]` encodes "no predicate on that attribute".
    let query = (0..DOMAINS[0] + 1, 0..DOMAINS[1] + 1).prop_map(|(a0, a1)| Step::Query {
        a0: (a0 < DOMAINS[0]).then_some(a0),
        a1: (a1 < DOMAINS[1]).then_some(a1),
    });
    prop_oneof![2 => batch, 3 => query]
}

fn build_query(a0: Option<u32>, a1: Option<u32>) -> ConjunctiveQuery {
    let mut preds = Vec::new();
    if let Some(v) = a0 {
        preds.push(Predicate::new(AttrId(0), ValueId(v)));
    }
    if let Some(v) = a1 {
        preds.push(Predicate::new(AttrId(1), ValueId(v)));
    }
    ConjunctiveQuery::from_predicates(preds)
}

/// Materialises a [`Step::Batch`] against the current alive-key set.
fn build_batch(
    reference: &HiddenDatabase,
    next_key: &mut u64,
    delete_picks: &[usize],
    update_picks: &[(usize, i32)],
    inserts: &[(u32, u32, i32)],
    poison: bool,
) -> UpdateBatch {
    let alive = reference.alive_keys_sorted();
    let mut batch = UpdateBatch::empty();
    for (i, &pick) in delete_picks.iter().enumerate() {
        if poison && i == delete_picks.len() / 2 {
            batch = batch.delete(TupleKey(u64::MAX)); // never a real key
        }
        if !alive.is_empty() {
            batch = batch.delete(alive[pick % alive.len()]);
        }
    }
    if poison && delete_picks.is_empty() {
        batch = batch.delete(TupleKey(u64::MAX));
    }
    for &(pick, m) in update_picks {
        if !alive.is_empty() {
            batch = batch.update_measures(alive[pick % alive.len()], vec![m as f64]);
        }
    }
    for &(a0, a1, m) in inserts {
        let key = *next_key;
        *next_key += 1;
        batch =
            batch.insert(Tuple::new(TupleKey(key), vec![ValueId(a0), ValueId(a1)], vec![m as f64]));
    }
    batch
}

fn fresh_db(k: usize, policy: InvalidationPolicy) -> HiddenDatabase {
    let schema = Schema::with_domain_sizes(&DOMAINS, &["m"]).unwrap();
    let mut db = HiddenDatabase::new(schema, k, ScoringPolicy::NewestFirst);
    db.set_invalidation_policy(policy);
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The oracle proper: four databases — memo-disabled (trusted),
    // incremental, wholesale, and incremental with a tiny capacity —
    // must agree bit-for-bit on every answer of every interleaving.
    #[test]
    fn incremental_memo_is_answer_invariant(
        steps in prop::collection::vec(step_strategy(), 1..50),
        k in 1..5usize,
    ) {
        let oracle_db = &mut fresh_db(k, InvalidationPolicy::Disabled);
        let mut tracked: Vec<(&str, HiddenDatabase)> = vec![
            ("incremental", fresh_db(k, InvalidationPolicy::Incremental)),
            ("wholesale", fresh_db(k, InvalidationPolicy::Wholesale)),
            ("incremental-tight", {
                let mut db = fresh_db(k, InvalidationPolicy::Incremental);
                db.set_memo_capacity(4);
                db
            }),
        ];
        let mut next_key = 0u64;
        for step in &steps {
            match step {
                Step::Batch { delete_picks, update_picks, inserts, poison } => {
                    let batch = build_batch(
                        oracle_db, &mut next_key, delete_picks, update_picks, inserts, *poison,
                    );
                    let want = oracle_db.apply(batch.clone());
                    for (name, db) in tracked.iter_mut() {
                        let got = db.apply(batch.clone());
                        prop_assert_eq!(
                            got.is_ok(), want.is_ok(),
                            "{}: apply outcome diverged", name
                        );
                        if let (Ok(g), Ok(w)) = (&got, &want) {
                            prop_assert_eq!(g, w, "{}: summary diverged", name);
                        }
                        prop_assert_eq!(db.len(), oracle_db.len(), "{}: |D| diverged", name);
                        prop_assert_eq!(
                            db.version(), oracle_db.version(),
                            "{}: version policy diverged", name
                        );
                    }
                }
                Step::Query { a0, a1 } => {
                    let query = build_query(*a0, *a1);
                    let want = oracle_db.answer(&query);
                    for (name, db) in tracked.iter_mut() {
                        let got = db.answer(&query);
                        prop_assert_eq!(
                            &got, &want,
                            "{}: answer diverged on {} (memo_len {})",
                            name, &query, db.memo_len()
                        );
                        // Bit-identical measures, not just PartialEq.
                        for (gt, wt) in got.tuples().iter().zip(want.tuples()) {
                            for (gm, wm) in gt.measures().iter().zip(wt.measures()) {
                                prop_assert_eq!(gm.to_bits(), wm.to_bits());
                            }
                        }
                    }
                }
            }
        }
        // End-state parity: alive keys and ground-truth aggregates agree.
        for (name, db) in tracked.iter() {
            prop_assert_eq!(
                db.alive_keys_sorted(), oracle_db.alive_keys_sorted(),
                "{}: final alive set diverged", name
            );
        }
        // The tight variant genuinely exercised its bound.
        let (_, tight) = &tracked[2];
        prop_assert!(tight.memo_len() <= 4, "tight memo exceeded its cap");
    }
}
