//! Model-based property tests: the indexed, memoised, slot-reusing
//! database must behave exactly like a naive in-memory reference model
//! under arbitrary operation sequences and all expressible queries.

use hidden_db::database::HiddenDatabase;
use hidden_db::query::{ConjunctiveQuery, Predicate};
use hidden_db::ranking::ScoringPolicy;
use hidden_db::schema::Schema;
use hidden_db::tuple::Tuple;
use hidden_db::value::{AttrId, TupleKey, ValueId};
use proptest::prelude::*;

const DOMAINS: [u32; 2] = [2, 3];

#[derive(Debug, Clone)]
enum Op {
    Insert {
        a0: u32,
        a1: u32,
        m: i32,
    },
    /// Deletes the `idx % alive`-th alive key (no-op when empty).
    Delete {
        idx: usize,
    },
    /// Updates measures of the `idx % alive`-th alive key (no-op when empty).
    Update {
        idx: usize,
        m: i32,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..DOMAINS[0], 0..DOMAINS[1], -50..50i32)
            .prop_map(|(a0, a1, m)| Op::Insert { a0, a1, m }),
        1 => (0..64usize).prop_map(|idx| Op::Delete { idx }),
        1 => (0..64usize, -50..50i32).prop_map(|(idx, m)| Op::Update { idx, m }),
    ]
}

/// The naive reference: a vector of alive rows.
#[derive(Default)]
struct Model {
    rows: Vec<(u64, [u32; 2], f64)>,
    next_key: u64,
}

impl Model {
    fn alive_sorted_keys(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.rows.iter().map(|r| r.0).collect();
        v.sort_unstable();
        v
    }

    /// Reference answer: matching rows ranked newest-first, truncated at k.
    fn answer(&self, q: &[(usize, u32)], k: usize) -> (bool, Vec<u64>) {
        let mut matches: Vec<&(u64, [u32; 2], f64)> =
            self.rows.iter().filter(|(_, vals, _)| q.iter().all(|&(a, v)| vals[a] == v)).collect();
        matches.sort_by_key(|r| std::cmp::Reverse(r.0));
        let overflow = matches.len() > k;
        (overflow, matches.iter().take(k).map(|r| r.0).collect())
    }
}

fn apply(db: &mut HiddenDatabase, model: &mut Model, op: &Op) {
    match *op {
        Op::Insert { a0, a1, m } => {
            let key = model.next_key;
            model.next_key += 1;
            db.insert(Tuple::new(TupleKey(key), vec![ValueId(a0), ValueId(a1)], vec![m as f64]))
                .expect("insert valid tuple");
            model.rows.push((key, [a0, a1], m as f64));
        }
        Op::Delete { idx } => {
            if model.rows.is_empty() {
                return;
            }
            let keys = model.alive_sorted_keys();
            let key = keys[idx % keys.len()];
            db.delete(TupleKey(key)).expect("delete alive key");
            model.rows.retain(|r| r.0 != key);
        }
        Op::Update { idx, m } => {
            if model.rows.is_empty() {
                return;
            }
            let keys = model.alive_sorted_keys();
            let key = keys[idx % keys.len()];
            db.update_measures(TupleKey(key), vec![m as f64]).expect("update alive key");
            for r in &mut model.rows {
                if r.0 == key {
                    r.2 = m as f64;
                }
            }
        }
    }
}

/// All conjunctive queries with ≤ 2 predicates over the tiny schema.
fn all_queries() -> Vec<(Vec<(usize, u32)>, ConjunctiveQuery)> {
    let mut out = vec![(vec![], ConjunctiveQuery::select_all())];
    for v0 in 0..DOMAINS[0] {
        out.push((
            vec![(0, v0)],
            ConjunctiveQuery::from_predicates([Predicate::new(AttrId(0), ValueId(v0))]),
        ));
    }
    for v1 in 0..DOMAINS[1] {
        out.push((
            vec![(1, v1)],
            ConjunctiveQuery::from_predicates([Predicate::new(AttrId(1), ValueId(v1))]),
        ));
    }
    for v0 in 0..DOMAINS[0] {
        for v1 in 0..DOMAINS[1] {
            out.push((
                vec![(0, v0), (1, v1)],
                ConjunctiveQuery::from_predicates([
                    Predicate::new(AttrId(0), ValueId(v0)),
                    Predicate::new(AttrId(1), ValueId(v1)),
                ]),
            ));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn database_matches_reference_model(
        ops in prop::collection::vec(op_strategy(), 1..80),
        k in 1..6usize,
    ) {
        let schema = Schema::with_domain_sizes(&DOMAINS, &["m"]).unwrap();
        // NewestFirst makes the hidden ranking equal to key order, which
        // the reference model can reproduce exactly.
        let mut db = HiddenDatabase::new(schema, k, ScoringPolicy::NewestFirst);
        let mut model = Model::default();
        for op in &ops {
            apply(&mut db, &mut model, op);
            prop_assert_eq!(db.len(), model.rows.len());
        }
        prop_assert_eq!(
            db.alive_keys_sorted().iter().map(|k| k.0).collect::<Vec<_>>(),
            model.alive_sorted_keys()
        );
        for (raw, query) in all_queries() {
            let (want_overflow, want_keys) = model.answer(&raw, k);
            let out = db.answer(&query);
            prop_assert_eq!(
                out.is_overflow(),
                want_overflow,
                "overflow mismatch on {}", query
            );
            let got_keys: Vec<u64> = out.tuples().iter().map(|t| t.key().0).collect();
            prop_assert_eq!(&got_keys, &want_keys, "result mismatch on {}", query);
            // Measures must reflect the latest updates.
            for t in out.tuples() {
                let model_m = model.rows.iter().find(|r| r.0 == t.key().0).unwrap().2;
                prop_assert_eq!(t.measures()[0], model_m);
            }
            // Exact counts agree too.
            let model_count = model
                .rows
                .iter()
                .filter(|(_, vals, _)| raw.iter().all(|&(a, v)| vals[a] == v))
                .count() as u64;
            prop_assert_eq!(db.exact_count(Some(&query)), model_count);
        }
    }

    #[test]
    fn memoisation_is_transparent(
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        // Asking the same query twice (cache hit) must give the same
        // answer, and mutations must invalidate.
        let schema = Schema::with_domain_sizes(&DOMAINS, &["m"]).unwrap();
        let mut db = HiddenDatabase::new(schema, 3, ScoringPolicy::NewestFirst);
        let mut model = Model::default();
        let root = ConjunctiveQuery::select_all();
        for op in &ops {
            apply(&mut db, &mut model, op);
            let first = db.answer(&root);
            let second = db.answer(&root);
            prop_assert_eq!(first, second);
        }
    }
}
