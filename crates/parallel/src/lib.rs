//! # aggtrack-parallel — deterministic fan-out over scoped threads
//!
//! The experiment pipeline is dominated by embarrassingly parallel loops:
//! independent seeded trials, independent figures, independent replicate
//! sweeps. This crate provides the one primitive they need —
//! [`par_map_indexed`] — built on `std::thread::scope` so it works in this
//! dependency-free workspace (the build environment has no registry
//! access, so `rayon` is unavailable; see `shims/` for the same story on
//! other dependencies).
//!
//! Guarantees:
//!
//! * **Deterministic output order.** Results come back indexed; the
//!   returned `Vec` is in input order no matter which thread ran what or
//!   when it finished.
//! * **Work stealing.** Jobs are handed out from a shared atomic counter,
//!   so uneven job costs don't idle workers.
//! * **Panic propagation.** A panicking job panics the caller (after all
//!   workers stop picking up new jobs).
//!
//! Thread count resolution (first match wins): explicit
//! [`Threads::Fixed`], the `AGGTRACK_THREADS` environment variable,
//! [`std::thread::available_parallelism`].

#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Thread-count policy for [`par_map_indexed`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Threads {
    /// `AGGTRACK_THREADS` if set, else the machine's available parallelism.
    #[default]
    Auto,
    /// Exactly this many worker threads.
    Fixed(NonZeroUsize),
}

impl Threads {
    /// A fixed thread count (panics on 0).
    pub fn fixed(n: usize) -> Self {
        Self::Fixed(NonZeroUsize::new(n).expect("thread count must be ≥ 1"))
    }

    /// Exactly one worker: jobs run inline on the caller's thread in
    /// index order, byte-identical to a plain loop. The default for
    /// fan-out APIs embedded in code that may itself already be running
    /// inside a pool (e.g. ground truth inside parallel trials).
    pub fn sequential() -> Self {
        Self::fixed(1)
    }

    /// Resolves the policy to a concrete count, capped by `jobs` (no point
    /// spawning idle workers).
    pub fn resolve(self, jobs: usize) -> usize {
        let n = match self {
            Threads::Fixed(n) => n.get(),
            Threads::Auto => std::env::var("AGGTRACK_THREADS")
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
                }),
        };
        n.min(jobs).max(1)
    }
}

/// Maps `f` over `0..jobs` on a scoped worker pool, returning results in
/// index order. `f` must be deterministic per index for the caller to get
/// run-to-run reproducibility — everything in this workspace derives its
/// RNG stream from the job index, so that holds by construction.
///
/// With one resolved thread the jobs run inline on the caller's thread in
/// index order (no spawn overhead, byte-identical to a plain loop).
pub fn par_map_indexed<T, F>(jobs: usize, threads: Threads, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let workers = threads.resolve(jobs);
    if workers == 1 {
        return (0..jobs).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    return;
                }
                let out = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker finished without storing a result")
        })
        .collect()
}

/// Like [`par_map_indexed`], but hands work out in contiguous chunks of
/// `chunk` indices — one atomic claim and one result slot per chunk
/// instead of per index. The right shape for many thousands of cheap
/// jobs (e.g. bootstrap replicates), where per-index handout and slot
/// overhead would dominate the work itself. Output order and the
/// one-worker inline path are identical to [`par_map_indexed`], so the
/// same bit-identical merge discipline holds at any thread count.
pub fn par_map_indexed_chunked<T, F>(jobs: usize, chunk: usize, threads: Threads, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(chunk >= 1, "chunk size must be ≥ 1");
    if jobs == 0 {
        return Vec::new();
    }
    let n_chunks = jobs.div_ceil(chunk);
    let workers = threads.resolve(n_chunks);
    if workers == 1 {
        return (0..jobs).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Vec<T>>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    return;
                }
                let lo = c * chunk;
                let hi = (lo + chunk).min(jobs);
                let out: Vec<T> = (lo..hi).map(&f).collect();
                *slots[c].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    let mut out = Vec::with_capacity(jobs);
    for m in slots {
        out.extend(
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker finished without storing a result"),
        );
    }
    out
}

/// Runs independent closures concurrently, returning their results in
/// input order — convenience wrapper over [`par_map_indexed`] for
/// heterogeneous jobs of the same output type.
pub fn par_run<T, F>(jobs: Vec<F>, threads: Threads) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
    par_map_indexed(slots.len(), threads, |i| {
        let f = slots[i].lock().expect("job slot poisoned").take().expect("job ran twice");
        f()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        for threads in [Threads::fixed(1), Threads::fixed(4), Threads::Auto] {
            let out = par_map_indexed(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<u8> = par_map_indexed(0, Threads::Auto, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_jobs_all_complete() {
        let out = par_map_indexed(37, Threads::fixed(5), |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn par_run_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..10)
            .map(|i: usize| Box::new(move || i * 3) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = par_run(jobs, Threads::fixed(3));
        assert_eq!(out, (0..10).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let _ = par_map_indexed(8, Threads::fixed(2), |i| {
            if i == 3 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn chunked_matches_per_index_map() {
        for (jobs, chunk) in [(1, 1), (7, 3), (100, 16), (100, 100), (100, 1000), (97, 1)] {
            for threads in [Threads::fixed(1), Threads::fixed(4), Threads::Auto] {
                let chunked = par_map_indexed_chunked(jobs, chunk, threads, |i| i * 31 + 7);
                let plain = par_map_indexed(jobs, Threads::fixed(1), |i| i * 31 + 7);
                assert_eq!(chunked, plain, "jobs={jobs} chunk={chunk} threads={threads:?}");
            }
        }
        let empty: Vec<usize> = par_map_indexed_chunked(0, 8, Threads::Auto, |_| unreachable!());
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk size must be ≥ 1")]
    fn zero_chunk_rejected() {
        let _ = par_map_indexed_chunked(10, 0, Threads::Auto, |i| i);
    }

    #[test]
    fn threads_resolution_caps_at_jobs() {
        assert_eq!(Threads::fixed(16).resolve(3), 3);
        assert_eq!(Threads::fixed(2).resolve(100), 2);
        assert!(Threads::Auto.resolve(100) >= 1);
    }
}
