//! Drill-down execution: fresh drill-downs from the root (the static
//! estimator of \[13\], reused by RESTART) and *resumed* drill-downs that
//! start from the previous round's terminal node (REISSUE/RS, §3.1).

use hidden_db::errors::IssueError;
use hidden_db::interface::QueryOutcome;
use hidden_db::session::SearchBackend;

use crate::signature::Signature;
use crate::tree::QueryTree;

/// How a resumed drill-down treats its memory of the previous round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReissuePolicy {
    /// Always establish the *exact* top non-overflowing node of the current
    /// round by verifying ancestors until one overflows (or the root is
    /// reached). Two queries when nothing changed (node + parent), matching
    /// the §4.1 cost model; preserves the partition argument of Theorem 3.1
    /// exactly, hence unbiasedness.
    #[default]
    Strict,
    /// Trust that ancestors which overflowed in the previous round still
    /// overflow: a node found valid is terminal immediately (1 query when
    /// nothing changed — the §3.2 case-1 cost model), and a roll-up stops
    /// at the first non-underflowing node. Cheaper, but biased when
    /// deletions shrink an ancestor to ≤ k tuples without the drill-down
    /// noticing.
    Trusting,
}

/// Where a drill-down ended: its terminal (top non-overflowing) node.
#[derive(Debug, Clone)]
pub struct DrillOutcome {
    /// Depth of the terminal node (0 = tree root).
    pub depth: usize,
    /// The terminal node's interface answer. `Valid` or `Underflow` in the
    /// normal case; `Overflow` only in the degenerate leaf-overflow case
    /// (more than `k` tuples share every categorical value — impossible
    /// under the paper's all-distinct-tuples assumption, tolerated here).
    pub outcome: QueryOutcome,
    /// Search queries spent by this operation.
    pub cost: u64,
}

impl DrillOutcome {
    /// Whether the drill-down terminated at an underflowing (empty) node,
    /// contributing a zero estimate.
    pub fn is_empty_terminal(&self) -> bool {
        self.outcome.is_underflow()
    }
}

/// Performs a fresh drill-down: issue the path's nodes root-first until one
/// does not overflow (§3.1).
///
/// Errors abort the drill-down mid-path: budget exhaustion is terminal
/// for the round, and an unrecovered interface fault (PR 6) surfaces the
/// same way — the caller treats both as a resumable interruption.
pub fn drill_from_root<B: SearchBackend + ?Sized>(
    tree: &QueryTree,
    sig: &Signature,
    backend: &mut B,
) -> Result<DrillOutcome, IssueError> {
    descend(tree, sig, 0, 0, backend)
}

/// Descends from `from_depth` (inclusive) until a non-overflowing node,
/// starting with `base_cost` already spent.
fn descend<B: SearchBackend + ?Sized>(
    tree: &QueryTree,
    sig: &Signature,
    from_depth: usize,
    base_cost: u64,
    backend: &mut B,
) -> Result<DrillOutcome, IssueError> {
    let mut cost = base_cost;
    let mut depth = from_depth;
    loop {
        let outcome = backend.issue(&tree.node_query(sig, depth))?;
        cost += 1;
        if outcome.is_overflow() && depth < tree.depth() {
            depth += 1;
            continue;
        }
        return Ok(DrillOutcome { depth, outcome, cost });
    }
}

/// Resumes a drill-down whose terminal node in the previous round was at
/// `prev_depth` (Algorithm 1, lines 5–9):
///
/// * if that node now **overflows**, drill further down;
/// * if it is **valid** or **underflows**, verify/locate the top
///   non-overflowing node per `policy` by rolling up.
pub fn resume_from<B: SearchBackend + ?Sized>(
    tree: &QueryTree,
    sig: &Signature,
    prev_depth: usize,
    policy: ReissuePolicy,
    backend: &mut B,
) -> Result<DrillOutcome, IssueError> {
    assert!(
        prev_depth <= tree.depth(),
        "previous depth {prev_depth} exceeds tree depth {}",
        tree.depth()
    );
    let first = backend.issue(&tree.node_query(sig, prev_depth))?;
    let mut cost = 1;
    if first.is_overflow() {
        if prev_depth == tree.depth() {
            // Degenerate leaf overflow: terminal where we stand.
            return Ok(DrillOutcome { depth: prev_depth, outcome: first, cost });
        }
        return descend(tree, sig, prev_depth + 1, cost, backend);
    }
    if prev_depth == 0 {
        // Root does not overflow: it is the terminal node by definition.
        return Ok(DrillOutcome { depth: 0, outcome: first, cost });
    }
    match policy {
        ReissuePolicy::Trusting => {
            if first.is_valid() {
                // §3.2 case 1: trust that ancestors still overflow.
                return Ok(DrillOutcome { depth: prev_depth, outcome: first, cost });
            }
            // Underflow: roll up to the first non-underflowing node, or an
            // underflowing node whose parent overflows (Algorithm 1 line 8).
            let mut best_depth = prev_depth;
            let mut best_outcome = first;
            for depth in (0..prev_depth).rev() {
                let outcome = backend.issue(&tree.node_query(sig, depth))?;
                cost += 1;
                if outcome.is_overflow() {
                    return Ok(DrillOutcome { depth: best_depth, outcome: best_outcome, cost });
                }
                best_depth = depth;
                best_outcome = outcome.clone();
                if outcome.is_valid() {
                    // First non-underflowing node found: stop (Trusting).
                    return Ok(DrillOutcome { depth, outcome, cost });
                }
            }
            Ok(DrillOutcome { depth: best_depth, outcome: best_outcome, cost })
        }
        ReissuePolicy::Strict => {
            // Walk up until an overflowing ancestor pins the terminal node.
            let mut best_depth = prev_depth;
            let mut best_outcome = first;
            for depth in (0..prev_depth).rev() {
                let outcome = backend.issue(&tree.node_query(sig, depth))?;
                cost += 1;
                if outcome.is_overflow() {
                    return Ok(DrillOutcome { depth: best_depth, outcome: best_outcome, cost });
                }
                best_depth = depth;
                best_outcome = outcome;
            }
            // Reached the root without meeting an overflow: root terminal.
            Ok(DrillOutcome { depth: best_depth, outcome: best_outcome, cost })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::enumerate_all;
    use hidden_db::database::HiddenDatabase;
    use hidden_db::ranking::ScoringPolicy;
    use hidden_db::schema::Schema;
    use hidden_db::session::SearchSession;
    use hidden_db::tuple::Tuple;
    use hidden_db::value::{TupleKey, ValueId};

    /// 3-attribute db: values of tuple key t are (t%2, (t/2)%3, (t/6)%2).
    fn build_db(n: u64, k: usize) -> HiddenDatabase {
        let schema = Schema::with_domain_sizes(&[2, 3, 2], &[]).unwrap();
        let mut db = HiddenDatabase::new(schema, k, ScoringPolicy::default());
        for t in 0..n {
            db.insert(Tuple::new(
                TupleKey(t),
                vec![
                    ValueId((t % 2) as u32),
                    ValueId(((t / 2) % 3) as u32),
                    ValueId(((t / 6) % 2) as u32),
                ],
                vec![],
            ))
            .unwrap();
        }
        db
    }

    /// Brute-force the expected terminal depth: smallest depth whose node
    /// matches ≤ k tuples.
    fn expected_terminal(db: &HiddenDatabase, tree: &QueryTree, sig: &Signature) -> usize {
        for depth in 0..=tree.depth() {
            let q = tree.node_query(sig, depth);
            if db.exact_count(Some(&q)) <= db.k() as u64 {
                return depth;
            }
        }
        tree.depth()
    }

    #[test]
    fn fresh_drill_finds_top_nonoverflowing_node_for_every_leaf() {
        let mut db = build_db(24, 2);
        let tree = QueryTree::full(&db.schema().clone());
        for sig in enumerate_all(&tree) {
            let expect = expected_terminal(&db, &tree, &sig);
            let mut session = SearchSession::unlimited(&mut db);
            let out = drill_from_root(&tree, &sig, &mut session).unwrap();
            assert_eq!(out.depth, expect, "sig {sig:?}");
            assert_eq!(out.cost, expect as u64 + 1, "cost = path length");
            assert!(!out.outcome.is_overflow());
        }
    }

    #[test]
    fn fresh_drill_on_tiny_db_stops_at_root() {
        let mut db = build_db(2, 5);
        let tree = QueryTree::full(&db.schema().clone());
        let sig = Signature::from_choices(vec![0, 0, 0]);
        let mut session = SearchSession::unlimited(&mut db);
        let out = drill_from_root(&tree, &sig, &mut session).unwrap();
        assert_eq!(out.depth, 0);
        assert_eq!(out.cost, 1);
        assert!(out.outcome.is_valid());
    }

    #[test]
    fn resume_unchanged_costs_two_strict_one_trusting() {
        let mut db = build_db(24, 2);
        let tree = QueryTree::full(&db.schema().clone());
        let sig = Signature::from_choices(vec![0, 0, 0]);
        let prev = {
            let mut s = SearchSession::unlimited(&mut db);
            drill_from_root(&tree, &sig, &mut s).unwrap()
        };
        assert!(prev.outcome.is_valid(), "fixture should land on a valid node");
        assert!(prev.depth > 0);
        let strict = {
            let mut s = SearchSession::unlimited(&mut db);
            resume_from(&tree, &sig, prev.depth, ReissuePolicy::Strict, &mut s).unwrap()
        };
        assert_eq!(strict.depth, prev.depth);
        assert_eq!(strict.cost, 2, "node + overflowing parent");
        let trusting = {
            let mut s = SearchSession::unlimited(&mut db);
            resume_from(&tree, &sig, prev.depth, ReissuePolicy::Trusting, &mut s).unwrap()
        };
        assert_eq!(trusting.depth, prev.depth);
        assert_eq!(trusting.cost, 1, "single verification query");
    }

    #[test]
    fn resume_after_growth_drills_down() {
        let mut db = build_db(6, 2);
        let tree = QueryTree::full(&db.schema().clone());
        // Terminal for this sig before growth.
        let sig = Signature::from_choices(vec![0, 0, 0]);
        let prev = {
            let mut s = SearchSession::unlimited(&mut db);
            drill_from_root(&tree, &sig, &mut s).unwrap()
        };
        // Insert many tuples matching the previous terminal node's query.
        let q_prev = tree.node_query(&sig, prev.depth);
        for t in 100..120u64 {
            let mut vals = vec![ValueId(0), ValueId(0), ValueId((t % 2) as u32)];
            // Force values to match the prefix predicates.
            for p in q_prev.predicates() {
                vals[p.attr.index()] = p.value;
            }
            db.insert(Tuple::new(TupleKey(t), vals, vec![])).unwrap();
        }
        let expect = expected_terminal(&db, &tree, &sig);
        assert!(expect > prev.depth, "fixture must actually push the terminal deeper");
        let mut s = SearchSession::unlimited(&mut db);
        let out = resume_from(&tree, &sig, prev.depth, ReissuePolicy::Strict, &mut s).unwrap();
        assert_eq!(out.depth, expect);
    }

    #[test]
    fn resume_after_mass_deletion_rolls_up_strict_matches_fresh() {
        let mut db = build_db(24, 2);
        let tree = QueryTree::full(&db.schema().clone());
        for sig in enumerate_all(&tree) {
            let prev = {
                let mut s = SearchSession::unlimited(&mut db);
                drill_from_root(&tree, &sig, &mut s).unwrap()
            };
            // Delete most tuples, then check resume == fresh drill (Strict).
            let mut db2 = db.clone();
            for t in 0..20u64 {
                db2.delete(TupleKey(t)).unwrap();
            }
            let expect = expected_terminal(&db2, &tree, &sig);
            let mut s = SearchSession::unlimited(&mut db2);
            let out = resume_from(&tree, &sig, prev.depth, ReissuePolicy::Strict, &mut s).unwrap();
            assert_eq!(out.depth, expect, "sig {sig:?}");
            assert!(!out.outcome.is_overflow());
        }
    }

    #[test]
    fn resume_on_emptied_database_reaches_root() {
        let mut db = build_db(24, 2);
        let tree = QueryTree::full(&db.schema().clone());
        let sig = Signature::from_choices(vec![1, 2, 1]);
        let prev = {
            let mut s = SearchSession::unlimited(&mut db);
            drill_from_root(&tree, &sig, &mut s).unwrap()
        };
        for t in 0..24u64 {
            db.delete(TupleKey(t)).unwrap();
        }
        let mut s = SearchSession::unlimited(&mut db);
        let out = resume_from(&tree, &sig, prev.depth, ReissuePolicy::Strict, &mut s).unwrap();
        assert_eq!(out.depth, 0);
        assert!(out.outcome.is_underflow());
    }

    #[test]
    fn trusting_rollup_stops_at_first_valid_node() {
        // Build a situation where the trusting roll-up stops early:
        // previous terminal deep, after deletion the node underflows, its
        // parent is valid, grandparent also valid. Trusting stops at parent;
        // Strict walks to the top non-overflowing node (grandparent or
        // higher).
        let schema = Schema::with_domain_sizes(&[2, 2, 2], &[]).unwrap();
        let mut db = HiddenDatabase::new(schema, 1, ScoringPolicy::default());
        // Two tuples share A0=0, splitting at A1: (0,0,0) and (0,1,0).
        for (i, vals) in [(0, [0, 0, 0]), (1, [0, 1, 0])].iter() {
            db.insert(Tuple::new(TupleKey(*i), vals.iter().map(|&v| ValueId(v)).collect(), vec![]))
                .unwrap();
        }
        let tree = QueryTree::full(&db.schema().clone());
        let sig = Signature::from_choices(vec![0, 0, 0]);
        let prev = {
            let mut s = SearchSession::unlimited(&mut db);
            drill_from_root(&tree, &sig, &mut s).unwrap()
        };
        assert_eq!(prev.depth, 2, "A0=0 has 2 tuples > k=1; (A0=0,A1=0) has 1");
        // Delete (0,0,0) → node (A0=0,A1=0) underflows; A0=0 keeps 1 tuple
        // (valid); the root keeps 1 (valid).
        db.delete(TupleKey(0)).unwrap();
        let trusting = {
            let mut s = SearchSession::unlimited(&mut db);
            resume_from(&tree, &sig, prev.depth, ReissuePolicy::Trusting, &mut s).unwrap()
        };
        // Trusting stops at depth 1 (A0=0 valid), even though the true top
        // non-overflowing node is the root.
        assert_eq!(trusting.depth, 1);
        let strict = {
            let mut s = SearchSession::unlimited(&mut db);
            resume_from(&tree, &sig, prev.depth, ReissuePolicy::Strict, &mut s).unwrap()
        };
        assert_eq!(strict.depth, 0, "strict walks to the true terminal (root)");
        assert!(strict.outcome.is_valid());
    }

    #[test]
    fn budget_exhaustion_propagates() {
        let mut db = build_db(24, 2);
        let tree = QueryTree::full(&db.schema().clone());
        let sig = Signature::from_choices(vec![0, 0, 0]);
        let mut s = SearchSession::new(&mut db, 1);
        let r = drill_from_root(&tree, &sig, &mut s);
        assert!(r.is_err(), "drill needs >1 query here");
    }

    #[test]
    fn leaf_overflow_is_terminal() {
        // k=1 with two tuples sharing all attribute values: the leaf
        // overflows and must be treated as terminal.
        let schema = Schema::with_domain_sizes(&[2], &[]).unwrap();
        let mut db = HiddenDatabase::new(schema, 1, ScoringPolicy::default());
        db.insert(Tuple::new(TupleKey(0), vec![ValueId(0)], vec![])).unwrap();
        db.insert(Tuple::new(TupleKey(1), vec![ValueId(0)], vec![])).unwrap();
        let tree = QueryTree::full(&db.schema().clone());
        let sig = Signature::from_choices(vec![0]);
        let mut s = SearchSession::unlimited(&mut db);
        let out = drill_from_root(&tree, &sig, &mut s).unwrap();
        assert_eq!(out.depth, 1);
        assert!(out.outcome.is_overflow());
    }
}
