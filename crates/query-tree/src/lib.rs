//! # query-tree — drill-down machinery over the hidden database
//!
//! Implements §3.1 of *Aggregate Estimation Over Dynamic Hidden Web
//! Databases*: the query tree whose level `i` appends a point predicate on
//! the `i`-th attribute, uniform leaf **signatures**, fresh **drill-downs**
//! (issue path nodes top-down until one does not overflow) and **resumed**
//! drill-downs that restart from the previous round's terminal node and
//! drill down / roll up as the database changed.
//!
//! The estimators in `aggtrack-core` consume this crate; it knows nothing
//! about aggregates, only about locating top non-overflowing nodes and the
//! probability `p(q)` with which a uniform drill-down reaches them.
//!
//! ```
//! use hidden_db::{database::HiddenDatabase, ranking::ScoringPolicy,
//!                 schema::Schema, session::SearchSession,
//!                 tuple::Tuple, value::{TupleKey, ValueId}};
//! use query_tree::{drill::drill_from_root, signature::Signature, tree::QueryTree};
//! use rand::SeedableRng;
//!
//! let schema = Schema::with_domain_sizes(&[2, 2], &[]).unwrap();
//! let mut db = HiddenDatabase::new(schema, 1, ScoringPolicy::default());
//! for t in 0..4u64 {
//!     db.insert(Tuple::new(
//!         TupleKey(t),
//!         vec![ValueId((t % 2) as u32), ValueId(((t / 2) % 2) as u32)],
//!         vec![],
//!     ))
//!     .unwrap();
//! }
//! let tree = QueryTree::full(&db.schema().clone());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let sig = Signature::sample(&tree, &mut rng);
//! let mut session = SearchSession::new(&mut db, 10);
//! let out = drill_from_root(&tree, &sig, &mut session).unwrap();
//! // One tuple per leaf: every drill-down ends at a valid node.
//! assert!(out.outcome.is_valid());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod crawl;
pub mod drill;
pub mod order;
pub mod signature;
pub mod tree;

pub use crawl::{crawl, CrawlOutcome};
pub use drill::{drill_from_root, resume_from, DrillOutcome, ReissuePolicy};
pub use order::{attribute_order, tree_with_heuristic, OrderHeuristic};
pub use signature::{enumerate_all, Signature};
pub use tree::QueryTree;
